// Domain example: the homonym problem for songs (the paper's hardest
// class). Two different songs frequently share a title — sometimes even
// similar descriptions (cover versions). This example trains the row
// clusterer on the Song gold standard and inspects how rows of homonym
// groups are split into clusters, comparing label-only clustering against
// the full six-metric aggregation.

#include <cstdio>
#include <map>
#include <set>

#include "eval/clustering_eval.h"
#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "rowcluster/row_clusterer.h"
#include "synth/dataset.h"

int main() {
  using namespace ltee;

  synth::DatasetOptions data_options;
  data_options.scale = 0.004;
  data_options.seed = 77;
  auto dataset = synth::BuildDataset(data_options);

  // Locate the Song gold standard.
  const eval::GoldStandard* song_gold = nullptr;
  for (const auto& gs : dataset.gold) {
    if (dataset.kb.cls(gs.cls).name == "Song") song_gold = &gs;
  }
  if (song_gold == nullptr) {
    std::fprintf(stderr, "no Song gold standard\n");
    return 1;
  }

  // Gold schema mapping + row features for the Song class.
  auto dict = std::make_shared<util::TokenDictionary>();
  auto kb_index = pipeline::BuildKbLabelIndex(dataset.kb, dict);
  webtable::PreparedCorpus prepared(dataset.gs_corpus, dict);
  matching::SchemaMapping mapping;
  mapping.tables.resize(dataset.gs_corpus.size());
  for (const auto& gs : dataset.gold) {
    auto m = pipeline::GoldSchemaMapping(dataset.gs_corpus, gs, dataset.kb);
    pipeline::MergeGoldMappings(m, &mapping);
  }
  auto rows = rowcluster::BuildClassRowSet(prepared, mapping,
                                           song_gold->cls, dataset.kb,
                                           kb_index);
  std::vector<int> gold_assignment(rows.rows.size(), -1);
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    gold_assignment[i] = song_gold->ClusterOfRow(rows.rows[i].ref);
  }

  // Train and run two clusterers: LABEL-only vs all six metrics.
  util::Rng rng(5);
  auto evaluate = [&](int num_metrics) {
    rowcluster::RowClustererOptions options;
    options.enabled_metrics = rowcluster::FirstKMetrics(num_metrics);
    rowcluster::RowClusterer clusterer(options);
    clusterer.Train(rows, gold_assignment, rng);
    auto result = clusterer.Cluster(rows);
    std::vector<webtable::RowRef> refs;
    for (const auto& row : rows.rows) refs.push_back(row.ref);
    auto grouped = eval::GroupRows(refs, result.cluster_of);
    auto metrics = eval::EvaluateClustering(grouped, *song_gold);
    std::printf("  %-28s clusters=%-4d PCP=%.2f AR=%.2f F1=%.2f\n",
                num_metrics == 1 ? "LABEL only" : "all six metrics",
                result.num_clusters, metrics.penalized_precision,
                metrics.average_recall, metrics.f1);
    return result;
  };

  std::printf("Song row clustering (%zu rows, %zu gold clusters):\n",
              rows.rows.size(), song_gold->clusters.size());
  auto label_only = evaluate(1);
  auto full = evaluate(6);

  // Inspect one homonym group: same title, different songs.
  std::map<int64_t, std::vector<size_t>> homonym_clusters;
  for (size_t c = 0; c < song_gold->clusters.size(); ++c) {
    if (song_gold->clusters[c].homonym_group >= 0) {
      homonym_clusters[song_gold->clusters[c].homonym_group].push_back(c);
    }
  }
  for (const auto& [group, clusters] : homonym_clusters) {
    if (clusters.size() < 2) continue;
    const auto& world_entity =
        dataset.world.entity(song_gold->clusters[clusters[0]].world_entity);
    std::printf("\nhomonym group \"%s\" (%zu distinct songs):\n",
                world_entity.label.c_str(), clusters.size());
    for (size_t c : clusters) {
      const auto& cluster = song_gold->clusters[c];
      std::printf("  gold cluster %zu (%s): ", c,
                  cluster.is_new ? "new" : "existing");
      std::set<int> label_ids, full_ids;
      for (const auto& ref : cluster.rows) {
        for (size_t i = 0; i < rows.rows.size(); ++i) {
          if (rows.rows[i].ref == ref) {
            label_ids.insert(label_only.cluster_of[i]);
            full_ids.insert(full.cluster_of[i]);
          }
        }
      }
      std::printf("%zu rows -> %zu cluster(s) with LABEL only, %zu with all "
                  "metrics\n",
                  cluster.rows.size(), label_ids.size(), full_ids.size());
    }
    break;  // one example group suffices
  }
  return 0;
}
