// Quickstart: build a synthetic experiment environment, train the LTEE
// pipeline on the gold standard, run it over the web table corpus, and
// print the discovered long-tail entities per class.
//
// This exercises the complete public API surface: synth (data), pipeline
// (training + the two-iteration run), and the per-class results.

#include <cstdio>

#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "synth/dataset.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace ltee;

  // 1. A small synthetic world: knowledge base, web table corpus, gold
  //    standard — deterministic from the seed.
  synth::DatasetOptions data_options;
  data_options.scale = 0.004;
  data_options.seed = 4711;
  util::WallTimer timer;
  synth::SyntheticDataset dataset = synth::BuildDataset(data_options);
  std::printf("built dataset in %.1fs: %zu KB instances, %zu tables, %zu rows\n",
              timer.ElapsedSeconds(), dataset.kb.num_instances(),
              dataset.corpus.size(), dataset.corpus.TotalRows());

  // 2. Train every learned component on the gold standard.
  pipeline::PipelineOptions options;
  pipeline::LteePipeline ltee_pipeline(dataset.kb, options);
  util::Rng rng(7);
  timer.Restart();
  pipeline::TrainPipelineOnGold(&ltee_pipeline, dataset.gs_corpus,
                                dataset.gold, rng);
  std::printf("trained pipeline in %.1fs\n", timer.ElapsedSeconds());

  // 3. Run the two-iteration pipeline over the full corpus.
  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  timer.Restart();
  pipeline::PipelineRunResult run = ltee_pipeline.Run(dataset.corpus, classes);
  std::printf("ran pipeline in %.1fs (%d iterations)\n",
              timer.ElapsedSeconds(), options.iterations);

  // 4. Report: new entities found per class, with a few examples.
  for (const auto& class_run : run.classes) {
    const auto& cls = dataset.kb.cls(class_run.cls);
    size_t new_count = 0, new_facts = 0;
    for (size_t e = 0; e < class_run.entities.size(); ++e) {
      if (class_run.detections[e].is_new) {
        ++new_count;
        new_facts += class_run.entities[e].facts.size();
      }
    }
    std::printf("\nclass %-24s rows=%-6zu clusters=%-5d new=%zu (facts=%zu)\n",
                cls.name.c_str(), class_run.rows.rows.size(),
                class_run.num_clusters, new_count, new_facts);
    int shown = 0;
    for (size_t e = 0; e < class_run.entities.size() && shown < 3; ++e) {
      if (!class_run.detections[e].is_new) continue;
      const auto& entity = class_run.entities[e];
      if (entity.labels.empty() || entity.facts.empty()) continue;
      std::printf("  new: %-28s", entity.labels.front().c_str());
      for (const auto& fact : entity.facts) {
        std::printf(" %s=%s", dataset.kb.property(fact.property).name.c_str(),
                    fact.value.ToString().c_str());
      }
      std::printf("\n");
      ++shown;
    }
  }
  return 0;
}
