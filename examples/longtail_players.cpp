// Domain example: augmenting the GridironFootballPlayer class with long
// tail players (the paper's Section 5 scenario, condensed). Trains the
// pipeline on the gold standard, runs the large-scale profiling over the
// whole corpus, and reports — per the paper's analysis — how accuracy
// rises when requiring a minimum number of facts per new entity.

#include <cstdio>

#include "pipeline/profiling.h"
#include "synth/dataset.h"

int main() {
  using namespace ltee;

  synth::DatasetOptions data_options;
  data_options.scale = 0.005;
  data_options.seed = 1306;
  auto dataset = synth::BuildDataset(data_options);

  pipeline::ProfilingOptions options;
  options.sample_size = 50;
  auto result = pipeline::RunLargeScaleProfiling(dataset, options);

  for (const auto& row : result.classes) {
    if (row.class_name != "GridironFootballPlayer") continue;
    std::printf("GridironFootballPlayer profiling\n");
    std::printf("  rows matched to class: %zu\n", row.total_rows);
    std::printf("  existing entities:     %zu (over %zu distinct KB "
                "instances, ratio %.2f)\n",
                row.existing_entities, row.matched_kb_instances,
                row.matching_ratio);
    std::printf("  new entities:          %zu (+%.0f%% vs KB), new facts "
                "%zu (+%.0f%%)\n",
                row.new_entities, 100.0 * row.instance_increase,
                row.new_facts, 100.0 * row.fact_increase);
    std::printf("  sampled accuracy:      entities %.2f, facts %.2f\n",
                row.new_entity_accuracy, row.new_fact_accuracy);
    for (const auto& [min_facts, accuracy] : row.accuracy_with_min_facts) {
      std::printf("  accuracy with >= %d facts: %.2f\n", min_facts, accuracy);
    }
    std::printf("\n  new-entity property densities (Table 12 style):\n");
    for (const auto& density : row.property_densities) {
      std::printf("    %-14s %5zu facts  %5.1f%%\n", density.property.c_str(),
                  density.facts, 100.0 * density.density);
    }
  }

  // Show a handful of concrete discoveries.
  std::printf("\nexample new players:\n");
  int shown = 0;
  for (const auto& class_run : result.run.classes) {
    if (dataset.kb.cls(class_run.cls).name != "GridironFootballPlayer") {
      continue;
    }
    for (size_t e = 0; e < class_run.entities.size() && shown < 5; ++e) {
      if (!class_run.detections[e].is_new) continue;
      const auto& entity = class_run.entities[e];
      if (entity.facts.size() < 3) continue;  // the high-accuracy regime
      std::printf("  %-26s", entity.labels.empty()
                                 ? "?"
                                 : entity.labels.front().c_str());
      for (const auto& fact : entity.facts) {
        std::printf(" %s=%s",
                    dataset.kb.property(fact.property).name.c_str(),
                    fact.value.ToString().c_str());
      }
      std::printf("\n");
      ++shown;
    }
  }
  return 0;
}
