// Domain example: why settlements are hard to extend (the paper's Section
// 5 analysis). Wikipedia already covers almost every legally recognized
// settlement, so few new entities exist, and the dominant error source is
// conflicting values — outdated population numbers and alternate isPartOf
// assignments that prevent an entity from matching its KB instance. This
// example runs new detection over gold-cluster entities of the Settlement
// class and audits the disagreements between fused facts and KB facts.

#include <cstdio>

#include "fusion/entity_creator.h"
#include "newdetect/new_detector.h"
#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "types/type_similarity.h"
#include "synth/dataset.h"

int main() {
  using namespace ltee;

  synth::DatasetOptions data_options;
  data_options.scale = 0.004;
  data_options.seed = 909;
  auto dataset = synth::BuildDataset(data_options);

  const eval::GoldStandard* gold = nullptr;
  for (const auto& gs : dataset.gold) {
    if (dataset.kb.cls(gs.cls).name == "Settlement") gold = &gs;
  }
  if (gold == nullptr) return 1;

  auto dict = std::make_shared<util::TokenDictionary>();
  auto kb_index = pipeline::BuildKbLabelIndex(dataset.kb, dict);
  webtable::PreparedCorpus prepared(dataset.gs_corpus, dict);
  matching::SchemaMapping mapping;
  mapping.tables.resize(dataset.gs_corpus.size());
  for (const auto& gs : dataset.gold) {
    auto m = pipeline::GoldSchemaMapping(dataset.gs_corpus, gs, dataset.kb);
    pipeline::MergeGoldMappings(m, &mapping);
  }
  auto rows = rowcluster::BuildClassRowSet(prepared, mapping,
                                           gold->cls, dataset.kb, kb_index);
  std::vector<int> assignment(rows.rows.size(), -1);
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    assignment[i] = gold->ClusterOfRow(rows.rows[i].ref);
  }
  fusion::EntityCreator creator(dataset.kb);
  auto entities = creator.Create(rows, assignment, mapping, prepared);

  // Train new detection on all gold clusters, then audit.
  std::vector<fusion::CreatedEntity> train;
  std::vector<newdetect::DetectionLabel> labels;
  std::vector<const eval::GsCluster*> clusters;
  for (size_t k = 0; k < entities.size() && k < gold->clusters.size(); ++k) {
    if (entities[k].rows.empty()) continue;
    clusters.push_back(&gold->clusters[k]);
    labels.push_back({gold->clusters[k].is_new,
                      gold->clusters[k].kb_instance});
    train.push_back(std::move(entities[k]));
  }
  newdetect::NewDetector detector(dataset.kb, kb_index);
  util::Rng rng(3);
  detector.Train(train, labels, rng);
  auto detections = detector.Detect(train);

  size_t correct = 0, conflict_errors = 0, other_errors = 0;
  const types::TypeSimilarityOptions sim;
  std::printf("Settlement new-detection audit (%zu entities):\n\n",
              train.size());
  for (size_t e = 0; e < train.size(); ++e) {
    const bool ok = detections[e].is_new == labels[e].is_new &&
                    (labels[e].is_new ||
                     detections[e].instance == labels[e].instance);
    if (ok) {
      ++correct;
      continue;
    }
    // Audit: does the entity disagree with its true KB instance's facts?
    size_t conflicts = 0, overlaps = 0;
    if (!labels[e].is_new) {
      for (const auto& fact : train[e].facts) {
        const types::Value* kb_fact =
            dataset.kb.FactOf(labels[e].instance, fact.property);
        if (kb_fact == nullptr) continue;
        ++overlaps;
        if (!types::ValuesEqual(fact.value, *kb_fact, sim)) ++conflicts;
      }
    }
    const bool conflicting = overlaps > 0 && 2 * conflicts >= overlaps;
    (conflicting ? conflict_errors : other_errors) += 1;
    if (conflict_errors + other_errors <= 5 && !labels[e].is_new) {
      std::printf("  missed match: \"%s\" (%zu/%zu overlapping facts "
                  "conflict with the KB)\n",
                  train[e].labels.empty() ? "?" : train[e].labels[0].c_str(),
                  conflicts, overlaps);
      for (const auto& fact : train[e].facts) {
        const types::Value* kb_fact =
            dataset.kb.FactOf(labels[e].instance, fact.property);
        if (kb_fact == nullptr ||
            types::ValuesEqual(fact.value, *kb_fact, sim)) {
          continue;
        }
        std::printf("    %-16s table says %-14s KB says %s\n",
                    dataset.kb.property(fact.property).name.c_str(),
                    fact.value.ToString().c_str(),
                    kb_fact->ToString().c_str());
      }
    }
  }
  std::printf("\naccuracy: %.2f (%zu/%zu)\n",
              static_cast<double>(correct) / train.size(), correct,
              train.size());
  std::printf("errors dominated by conflicting values: %zu of %zu "
              "(paper: 36%% of settlement errors)\n",
              conflict_errors, conflict_errors + other_errors);
  return 0;
}
