// Tests for the decision-provenance ledger (src/prov): deterministic
// byte-identical export across repeated fixed-seed runs, full-lineage
// completeness of every accepted fact from a real pipeline run, and the
// explain walker's dedup-crossing path on a hand-crafted ledger whose
// fact reached the KB through entity deduplication plus slot filling.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/dedup.h"
#include "pipeline/kb_update.h"
#include "pipeline/pipeline.h"
#include "pipeline/slot_filling.h"
#include "pipeline/training.h"
#include "prov/explain.h"
#include "prov/ledger.h"
#include "synth/dataset.h"
#include "util/json_parse.h"

namespace ltee {
namespace {

/// One full fixed-seed provenance run built from scratch — own dataset,
/// own pipeline trained with Rng(41), ledger enabled only for inference
/// (the CLI shape — training probes would pollute the decision record),
/// then the dedup / slot-filling / KB-update post-stages.
std::string BuildLedger() {
  synth::DatasetOptions dataset_options;
  dataset_options.scale = 0.002;
  dataset_options.seed = 20190326;
  auto ds = synth::BuildDataset(dataset_options);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(ds.kb, options);
  util::Rng rng(41);
  pipeline::TrainPipelineOnGold(&pipe, ds.gs_corpus, ds.gold, rng);

  prov::SetEnabled(true);
  prov::Clear();
  std::vector<kb::ClassId> classes;
  for (const auto& gs : ds.gold) classes.push_back(gs.cls);
  auto run = pipe.Run(ds.gs_corpus, classes);

  for (auto& class_run : run.classes) {
    auto deduped = pipeline::DeduplicateEntities(
        std::move(class_run.entities), std::move(class_run.detections));
    auto fills =
        pipeline::FillSlots(ds.kb, deduped.entities, deduped.detections);
    pipeline::ApplySlotFills(&ds.kb, fills.new_facts);
    pipeline::AddNewEntitiesToKb(&ds.kb, deduped.entities,
                                 deduped.detections);
  }

  std::string ledger = prov::ExportJsonLines();
  prov::SetEnabled(false);
  prov::Clear();
  return ledger;
}

/// Two independent runs, built once per binary. Training and the class
/// sweep are multi-threaded, so equality of the pair is the determinism
/// property the --provenance-out golden contract relies on.
const std::pair<std::string, std::string>& Ledgers() {
  static const auto* ledgers =
      new std::pair<std::string, std::string>(BuildLedger(), BuildLedger());
  return *ledgers;
}

TEST(ProvLedger, FixedSeedExportIsByteIdentical) {
  const auto& [first, second] = Ledgers();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
}

TEST(ProvLedger, EveryLineIsValidJsonWithEnvelope) {
  const std::string& ledger = Ledgers().first;
  size_t pos = 0, lines = 0;
  while (pos < ledger.size()) {
    size_t end = ledger.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string line = ledger.substr(pos, end - pos);
    pos = end + 1;
    ++lines;
    util::JsonValue value;
    std::string error;
    ASSERT_TRUE(util::ParseJson(line, &value, &error))
        << "line " << lines << ": " << error;
    EXPECT_FALSE(value.StringOr("kind", "").empty()) << line;
    EXPECT_GE(value.NumberOr("iter", 0), 1) << line;
    EXPECT_GE(value.NumberOr("cls", -1), 0) << line;
  }
  EXPECT_GT(lines, 0u);
}

TEST(ProvExplain, FullRunLineageIsCompleteForEveryAcceptedFact) {
  prov::ExplainOptions options;  // no filter: every accepted triple
  const prov::ExplainResult result = prov::Explain(Ledgers().first, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_GT(result.facts_found, 0);
  EXPECT_EQ(result.complete_chains, result.facts_found)
      << result.facts_found - result.complete_chains
      << " facts have missing lineage links";
  EXPECT_NE(result.output.find("chain: COMPLETE"), std::string::npos);
  EXPECT_EQ(result.output.find("MISSING"), std::string::npos);
}

TEST(ProvExplain, FindsFactBySubjectAndProperty) {
  const std::string& ledger = Ledgers().first;
  // Pull the first accepted triple-level kb_update out of the ledger and
  // explain exactly that fact back.
  std::string subject, property_name;
  size_t pos = 0;
  while (pos < ledger.size() && subject.empty()) {
    size_t end = ledger.find('\n', pos);
    const std::string line = ledger.substr(pos, end - pos);
    pos = end + 1;
    if (line.find("\"kind\":\"kb_update\"") == std::string::npos) continue;
    util::JsonValue value;
    ASSERT_TRUE(util::ParseJson(line, &value));
    const util::JsonValue* accepted = value.Find("accepted");
    if (accepted == nullptr || !accepted->as_bool()) continue;
    if (value.NumberOr("property", -1) < 0) continue;
    subject = value.StringOr("subject", "");
    property_name = value.StringOr("property_name", "");
  }
  ASSERT_FALSE(subject.empty());
  ASSERT_FALSE(property_name.empty());

  prov::ExplainOptions options;
  options.entity = subject;
  options.property = property_name;
  const prov::ExplainResult result = prov::Explain(ledger, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_GT(result.facts_found, 0);
  EXPECT_EQ(result.complete_chains, result.facts_found);
  EXPECT_NE(result.output.find(subject), std::string::npos);
  EXPECT_NE(result.output.find("--" + property_name + "-->"),
            std::string::npos);
}

// A fact that reached the KB through slot filling on a deduplicated
// cluster: fused on cluster 11, which dedup absorbed into cluster 10,
// whose entity matched an existing instance and filled its empty slot.
// The explain walker must cross the dedup hop to recover the fusion
// event and the source cells behind it.
constexpr char kDedupSlotFillLedger[] =
    R"({"kind":"schema_map","iter":2,"cls":0,"table":3,"column":1,"property":7,"property_name":"college","score":0.9,"threshold":0.5,"accepted":true}
{"kind":"cluster","iter":2,"cls":0,"table":3,"row":4,"cluster_id":11,"cluster_size":2,"support":0.8,"threshold":0.1}
{"kind":"fusion","iter":2,"cls":0,"cluster_id":11,"property":7,"property_name":"college","value":"Yale","rule":"majority","score":1.0,"candidates":1,"sources":[{"table":3,"row":4,"column":1}]}
{"kind":"new_detect","iter":2,"cls":0,"cluster_id":10,"label":"Jane Doe","is_new":false,"best_score":0.9,"new_threshold":0.4,"match_threshold":0.8,"matched_instance":"Jane Doe"}
{"kind":"dedup","iter":2,"cls":0,"cluster_id":10,"absorbed_cluster":11,"facts_adopted":1,"label":"Jane Doe"}
{"kind":"kb_update","iter":2,"cls":0,"cluster_id":10,"subject":"Jane Doe","property":7,"property_name":"college","value":"Yale","accepted":true,"reason":"slot_fill"}
)";

TEST(ProvExplain, CrossesDedupToReachSlotFilledFact) {
  prov::ExplainOptions options;
  options.entity = "jane";  // case-insensitive substring match
  const prov::ExplainResult result =
      prov::Explain(kDedupSlotFillLedger, options);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.facts_found, 1);
  EXPECT_EQ(result.complete_chains, 1);
  // The full chain: slot-filled triple, the dedup hop it crossed, the
  // fused value, the source cell with its cluster membership and column
  // mapping, and the EXISTING verdict.
  EXPECT_NE(result.output.find("Jane Doe --college--> Yale"),
            std::string::npos);
  EXPECT_NE(result.output.find("slot_fill"), std::string::npos);
  EXPECT_NE(result.output.find("dedup: cluster 11 absorbed into 10"),
            std::string::npos);
  EXPECT_NE(result.output.find("rule=majority"), std::string::npos);
  EXPECT_NE(result.output.find("cell t3:r4:c1"), std::string::npos);
  EXPECT_NE(result.output.find("in cluster 11"), std::string::npos);
  EXPECT_NE(result.output.find("-> college"), std::string::npos);
  EXPECT_NE(result.output.find("verdict: EXISTING"), std::string::npos);
  EXPECT_NE(result.output.find("chain: COMPLETE"), std::string::npos);
}

TEST(ProvExplain, JsonRenderingEmbedsRawEvents) {
  prov::ExplainOptions options;
  options.entity = "jane";
  options.json = true;
  const prov::ExplainResult result =
      prov::Explain(kDedupSlotFillLedger, options);
  ASSERT_TRUE(result.ok) << result.error;
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::ParseJson(result.output, &doc, &error)) << error;
  const util::JsonValue* facts = doc.Find("facts");
  ASSERT_NE(facts, nullptr);
  ASSERT_EQ(facts->items().size(), 1u);
  const util::JsonValue& fact = facts->items().front();
  const util::JsonValue* complete = fact.Find("complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_TRUE(complete->as_bool());
  ASSERT_NE(fact.Find("kb_update"), nullptr);
  ASSERT_NE(fact.Find("fusion"), nullptr);
  ASSERT_NE(fact.Find("dedups"), nullptr);
  EXPECT_EQ(fact.Find("dedups")->items().size(), 1u);
  const util::JsonValue* sources = fact.Find("sources");
  ASSERT_NE(sources, nullptr);
  ASSERT_EQ(sources->items().size(), 1u);
  EXPECT_NE(sources->items().front().Find("cluster"), nullptr);
  EXPECT_NE(sources->items().front().Find("schema_map"), nullptr);
}

TEST(ProvExplain, PropertyFilterAndMissingEntity) {
  prov::ExplainOptions options;
  options.entity = "jane";
  options.property = "birthplace";  // no such triple in the ledger
  prov::ExplainResult result = prov::Explain(kDedupSlotFillLedger, options);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.facts_found, 0);
  EXPECT_NE(result.output.find("no matching accepted facts"),
            std::string::npos);

  options.property.clear();
  options.entity = "nobody-by-this-name";
  result = prov::Explain(kDedupSlotFillLedger, options);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.facts_found, 0);
}

TEST(ProvExplain, RejectsMalformedLedger) {
  const prov::ExplainResult result =
      prov::Explain("{\"kind\":\"kb_update\"\n", {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace ltee
