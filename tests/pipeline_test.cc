#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "pipeline/run_summary.h"
#include "pipeline/training.h"
#include "test_dataset.h"

namespace ltee::pipeline {
namespace {

using ::ltee::testing::SharedDataset;

TEST(GoldArtifactsTest, GoldMappingReflectsAnnotations) {
  const auto& ds = SharedDataset();
  const auto& gs = ds.gold.front();
  auto mapping = GoldSchemaMapping(ds.gs_corpus, gs, ds.kb);
  ASSERT_EQ(mapping.tables.size(), ds.gs_corpus.size());
  for (const auto& attr : gs.attributes) {
    const auto& tm = mapping.tables[attr.table];
    EXPECT_EQ(tm.cls, gs.cls);
    EXPECT_EQ(tm.columns[attr.column].property, attr.property);
  }
  // Tables of other classes stay unmapped.
  size_t mapped = 0;
  for (const auto& tm : mapping.tables) mapped += tm.table >= 0 ? 1 : 0;
  EXPECT_EQ(mapped, gs.tables.size());
}

TEST(GoldArtifactsTest, RowInstancesOnlyForExistingClusters) {
  const auto& ds = SharedDataset();
  const auto& gs = ds.gold.front();
  auto instances = GoldRowInstances(gs);
  for (const auto& cluster : gs.clusters) {
    for (const auto& row : cluster.rows) {
      if (cluster.is_new) {
        EXPECT_EQ(instances.count(row), 0u);
      } else {
        ASSERT_EQ(instances.count(row), 1u);
        EXPECT_EQ(instances[row], cluster.kb_instance);
      }
    }
  }
}

TEST(GoldArtifactsTest, RowClustersOffsetApplied) {
  const auto& ds = SharedDataset();
  const auto& gs = ds.gold.front();
  auto clusters = GoldRowClusters(gs, 1000);
  for (const auto& [row, cluster] : clusters) {
    EXPECT_GE(cluster, 1000);
    EXPECT_LT(cluster, 1000 + static_cast<int>(gs.clusters.size()));
  }
}

TEST(KbLabelIndexTest, FindsInstancesByLabel) {
  const auto& ds = SharedDataset();
  auto index = BuildKbLabelIndex(ds.kb);
  const auto& instance = ds.kb.instances().front();
  auto hits = index.Search(instance.labels.front(), 5);
  ASSERT_FALSE(hits.empty());
  bool found = false;
  for (const auto& hit : hits) {
    if (static_cast<kb::InstanceId>(hit.doc) == instance.id) found = true;
  }
  EXPECT_TRUE(found);
}

/// End-to-end: trained pipeline over the gold-standard corpus. Built once.
struct TrainedRun {
  std::unique_ptr<LteePipeline> pipeline;
  PipelineRunResult run;
};

const TrainedRun& SharedRun() {
  static const TrainedRun* state = [] {
    const auto& ds = SharedDataset();
    auto* s = new TrainedRun;
    PipelineOptions options;
    s->pipeline = std::make_unique<LteePipeline>(ds.kb, options);
    util::Rng rng(41);
    TrainPipelineOnGold(s->pipeline.get(), ds.gs_corpus, ds.gold, rng);
    std::vector<kb::ClassId> classes;
    for (const auto& gs : ds.gold) classes.push_back(gs.cls);
    s->run = s->pipeline->Run(ds.gs_corpus, classes);
    return s;
  }();
  return *state;
}

TEST(PipelineTest, RunProducesOneMappingPerIteration) {
  const auto& run = SharedRun().run;
  EXPECT_EQ(run.mappings.size(), 2u);
  EXPECT_EQ(run.classes.size(), 3u);
}

TEST(PipelineTest, ClassResultsAreInternallyConsistent) {
  const auto& run = SharedRun().run;
  for (const auto& class_run : run.classes) {
    EXPECT_EQ(class_run.cluster_of_row.size(), class_run.rows.rows.size());
    EXPECT_EQ(class_run.detections.size(), class_run.entities.size());
    std::set<int> clusters(class_run.cluster_of_row.begin(),
                           class_run.cluster_of_row.end());
    EXPECT_EQ(static_cast<int>(clusters.size()), class_run.num_clusters);
    for (const auto& entity : class_run.entities) {
      EXPECT_EQ(entity.cls, class_run.cls);
      EXPECT_FALSE(entity.rows.empty());
    }
  }
}

TEST(PipelineTest, SecondIterationMatchesAtLeastAsManyColumns) {
  const auto& run = SharedRun().run;
  auto count_matched = [](const matching::SchemaMapping& mapping) {
    size_t matched = 0;
    for (const auto& tm : mapping.tables) {
      for (const auto& col : tm.columns) {
        matched += col.property != kb::kInvalidProperty ? 1 : 0;
      }
    }
    return matched;
  };
  // The duplicate-based matchers add signals; the refined mapping should
  // not collapse.
  EXPECT_GE(count_matched(run.mappings[1]) * 10,
            count_matched(run.mappings[0]) * 7);
}

TEST(PipelineTest, DetectionsFindBothNewAndExisting) {
  const auto& run = SharedRun().run;
  size_t new_count = 0, existing_count = 0;
  for (const auto& class_run : run.classes) {
    for (const auto& detection : class_run.detections) {
      (detection.is_new ? new_count : existing_count) += 1;
    }
  }
  EXPECT_GT(new_count, 0u);
  EXPECT_GT(existing_count, 0u);
}

TEST(PipelineTest, FeedbackMapsCoverClusteredRows) {
  const auto& run = SharedRun().run;
  matching::RowInstanceMap instances;
  matching::RowClusterMap clusters;
  LteePipeline::CollectFeedback(run.classes, &instances, &clusters);
  size_t total_rows = 0;
  for (const auto& class_run : run.classes) {
    total_rows += class_run.rows.rows.size();
  }
  EXPECT_EQ(clusters.size(), total_rows);
  EXPECT_LE(instances.size(), total_rows);
  EXPECT_GT(instances.size(), 0u);
}

// Golden regression: the fixed-seed run must stay byte-identical to the
// checked-in summary (tools/golden_pipeline regenerates it; see also
// LTEE_REGEN_GOLDEN below). This pins down the determinism contract of the
// prepared-corpus layer and the parallel per-class execution: interning
// order and thread schedule must not leak into results.
TEST(PipelineTest, RunMatchesGoldenSummary) {
  const std::string golden_path =
      std::string(LTEE_GOLDEN_DIR) + "/pipeline_summary.txt";
  const std::string summary = SummarizeRun(SharedRun().run);
  if (std::getenv("LTEE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << summary;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden summary: " << golden_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string golden = buffer.str();
  ASSERT_EQ(summary.size(), golden.size())
      << "summary size drifted; run tools/golden_pipeline or set "
         "LTEE_REGEN_GOLDEN=1 if the change is intentional";
  // Avoid dumping half a megabyte on failure: report the first divergence.
  if (summary != golden) {
    size_t pos = 0;
    while (pos < summary.size() && summary[pos] == golden[pos]) ++pos;
    const size_t line = 1 + static_cast<size_t>(std::count(
                                golden.begin(), golden.begin() + pos, '\n'));
    FAIL() << "summary diverges from golden at byte " << pos << " (line "
           << line << ")";
  }
}

}  // namespace
}  // namespace ltee::pipeline
