#include "cluster/correlation_clusterer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace ltee::cluster {
namespace {

/// Similarity from a fixed ground-truth partition: +1 within, -1 across.
SimilarityFn PartitionSimilarity(const std::vector<int>& truth) {
  return [truth](int i, int j) {
    return truth[i] == truth[j] ? 1.0 : -1.0;
  };
}

std::vector<std::vector<int32_t>> SingleBlock(size_t n) {
  return std::vector<std::vector<int32_t>>(n, {0});
}

std::set<std::set<int>> AsPartition(const std::vector<int>& cluster_of) {
  std::map<int, std::set<int>> by_cluster;
  for (size_t i = 0; i < cluster_of.size(); ++i) {
    by_cluster[cluster_of[i]].insert(static_cast<int>(i));
  }
  std::set<std::set<int>> out;
  for (auto& [c, members] : by_cluster) out.insert(members);
  return out;
}

TEST(CorrelationClustererTest, RecoversCleanPartition) {
  const std::vector<int> truth = {0, 0, 0, 1, 1, 2, 2, 2, 2};
  auto result = ClusterCorrelation(truth.size(),
                                   PartitionSimilarity(truth),
                                   SingleBlock(truth.size()));
  EXPECT_EQ(result.num_clusters, 3);
  EXPECT_EQ(AsPartition(result.cluster_of),
            (std::set<std::set<int>>{{0, 1, 2}, {3, 4}, {5, 6, 7, 8}}));
}

TEST(CorrelationClustererTest, AllSingletonsWhenEverythingDissimilar) {
  auto result = ClusterCorrelation(
      5, [](int, int) { return -1.0; }, SingleBlock(5));
  EXPECT_EQ(result.num_clusters, 5);
}

TEST(CorrelationClustererTest, OneClusterWhenEverythingSimilar) {
  auto result = ClusterCorrelation(
      6, [](int, int) { return 1.0; }, SingleBlock(6));
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_DOUBLE_EQ(result.fitness, 15.0);  // C(6,2) pairs
}

TEST(CorrelationClustererTest, EmptyInput) {
  auto result = ClusterCorrelation(0, [](int, int) { return 0.0; }, {});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.cluster_of.empty());
}

TEST(CorrelationClustererTest, BlockingPreventsCrossBlockMerges) {
  // Everything is similar, but items live in two disjoint blocks, so the
  // clusterer must not merge across them.
  std::vector<std::vector<int32_t>> blocks = {{0}, {0}, {1}, {1}};
  auto result = ClusterCorrelation(
      4, [](int, int) { return 1.0; }, blocks);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.cluster_of[0], result.cluster_of[1]);
  EXPECT_EQ(result.cluster_of[2], result.cluster_of[3]);
  EXPECT_NE(result.cluster_of[0], result.cluster_of[2]);
}

TEST(CorrelationClustererTest, KljRepairsGreedyBatchErrors) {
  // With a large batch, the greedy phase assigns the whole batch against
  // an empty snapshot, creating many singletons; KLj must merge them.
  const std::vector<int> truth = {0, 0, 0, 0, 1, 1, 1, 1};
  ClusteringOptions options;
  options.batch_size = 8;  // whole input in one parallel batch
  options.num_threads = 2;
  auto with_klj = ClusterCorrelation(truth.size(),
                                     PartitionSimilarity(truth),
                                     SingleBlock(truth.size()), options);
  EXPECT_EQ(with_klj.num_clusters, 2);

  options.enable_klj = false;
  auto without_klj = ClusterCorrelation(truth.size(),
                                        PartitionSimilarity(truth),
                                        SingleBlock(truth.size()), options);
  // Without the repair phase the one-shot batch yields all singletons.
  EXPECT_GT(without_klj.num_clusters, 2);
  EXPECT_GE(with_klj.fitness, without_klj.fitness);
}

TEST(CorrelationClustererTest, KljSplitsNegativeContributors) {
  // Item 4 is dissimilar to everything; a noisy similarity briefly binds
  // it, the split step must free it. Construct: 0-3 mutually +1, item 4
  // has -1 to all.
  auto sim = [](int i, int j) {
    if (i == 4 || j == 4) return -1.0;
    return 1.0;
  };
  auto result = ClusterCorrelation(5, sim, SingleBlock(5));
  EXPECT_EQ(result.num_clusters, 2);
  // Item 4 alone.
  const int c4 = result.cluster_of[4];
  for (int i = 0; i < 4; ++i) EXPECT_NE(result.cluster_of[i], c4);
}

TEST(CorrelationClustererTest, NoisyPartitionStillMostlyRecovered) {
  // 30 items, 3 clusters of 10, 15% flipped similarities.
  std::vector<int> truth(30);
  for (size_t i = 0; i < truth.size(); ++i) truth[i] = static_cast<int>(i / 10);
  auto noisy = [&truth](int i, int j) {
    // Deterministic hash-based noise.
    uint64_t h = (static_cast<uint64_t>(std::min(i, j)) << 32) |
                 static_cast<uint64_t>(std::max(i, j));
    h = h * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
    const bool flip = (h >> 60) == 0;  // ~6 %
    const double base = truth[i] == truth[j] ? 1.0 : -1.0;
    return flip ? -base : base;
  };
  auto result = ClusterCorrelation(truth.size(), noisy, SingleBlock(30));
  // Allow slight deviation from the ideal 3 clusters.
  EXPECT_GE(result.num_clusters, 3);
  EXPECT_LE(result.num_clusters, 5);
}

}  // namespace
}  // namespace ltee::cluster
