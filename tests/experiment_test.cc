// Smoke tests of the two experiment drivers at tiny scale: the 3-fold gold
// experiment (Tables 6-10) and the large-scale profiling run (Tables
// 11-12). These are integration tests — they assert structural sanity and
// metric bounds, not absolute values.

#include <gtest/gtest.h>

#include "pipeline/experiment.h"
#include "pipeline/profiling.h"
#include "synth/dataset.h"

namespace ltee::pipeline {
namespace {

const synth::SyntheticDataset& TinyDataset() {
  static const synth::SyntheticDataset* dataset = [] {
    synth::DatasetOptions options;
    options.scale = 0.0015;
    options.seed = 5;
    return new synth::SyntheticDataset(synth::BuildDataset(options));
  }();
  return *dataset;
}

TEST(GoldExperimentTest, SchemaIterationsAndClusteringAreSane) {
  const auto& ds = TinyDataset();
  GoldExperiment experiment(ds.kb, ds.gs_corpus, ds.gold, {}, 2, 11);
  ASSERT_EQ(experiment.num_classes(), 3);

  auto iterations = experiment.SchemaMatchingByIteration(2);
  ASSERT_EQ(iterations.size(), 2u);
  for (const auto& it : iterations) {
    EXPECT_GE(it.precision, 0.0);
    EXPECT_LE(it.precision, 1.0);
    EXPECT_GE(it.recall, 0.0);
    EXPECT_LE(it.recall, 1.0);
    EXPECT_LE(it.f1, 1.0);
  }
  // Matching is learnable on this data at all.
  EXPECT_GT(iterations[1].f1, 0.3);

  auto weights = experiment.AverageSchemaWeights();
  double sum = 0.0;
  for (double w : weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);

  auto clustering = experiment.RowClustering(
      rowcluster::FirstKMetrics(rowcluster::kNumRowMetrics),
      ml::AggregationKind::kCombined);
  EXPECT_GT(clustering.f1, 0.2);
  EXPECT_LE(clustering.f1, 1.0);
  EXPECT_EQ(clustering.importances.size(), 6u);

  auto detection = experiment.NewDetection(
      newdetect::FirstKEntityMetrics(newdetect::kNumEntityMetrics));
  EXPECT_GT(detection.accuracy, 0.4);
  EXPECT_LE(detection.accuracy, 1.0);

  auto instances = experiment.NewInstancesFound(0, /*gold_clustering=*/true);
  EXPECT_GE(instances.f1, 0.0);
  EXPECT_LE(instances.f1, 1.0);

  auto facts = experiment.FactsFound(0, true, true,
                                     fusion::ScoringApproach::kVoting);
  EXPECT_GE(facts.f1, 0.0);
  EXPECT_LE(facts.f1, 1.0);
}

TEST(ProfilingTest, LargeScaleRunProducesCoherentTables) {
  const auto& ds = TinyDataset();
  ProfilingOptions options;
  options.sample_size = 20;
  auto result = RunLargeScaleProfiling(ds, options);
  ASSERT_EQ(result.classes.size(), 3u);
  for (const auto& row : result.classes) {
    EXPECT_GT(row.total_rows, 0u);
    EXPECT_GE(row.new_entity_accuracy, 0.0);
    EXPECT_LE(row.new_entity_accuracy, 1.0);
    EXPECT_GE(row.new_fact_accuracy, 0.0);
    EXPECT_LE(row.new_fact_accuracy, 1.0);
    // Property densities cover the class schema and are in [0, 1].
    EXPECT_FALSE(row.property_densities.empty());
    size_t fact_sum = 0;
    for (const auto& density : row.property_densities) {
      EXPECT_GE(density.density, 0.0);
      EXPECT_LE(density.density, 1.0);
      fact_sum += density.facts;
    }
    EXPECT_EQ(fact_sum, row.new_facts);
    // Existing/new split covers all entities of the final run.
  }
  // Run artifacts exposed for downstream processing.
  EXPECT_EQ(result.run.classes.size(), 3u);
  EXPECT_EQ(result.run.mappings.size(), 2u);
}

}  // namespace
}  // namespace ltee::pipeline
