// Additional behavioural coverage: corpus themes, feedback id-spaces,
// index and parser edge cases.

#include <gtest/gtest.h>

#include <set>

#include "index/label_index.h"
#include "pipeline/pipeline.h"
#include "synth/corpus_builder.h"
#include "test_dataset.h"
#include "types/type_similarity.h"
#include "types/value_parser.h"

namespace ltee {
namespace {

using ::ltee::testing::SharedDataset;

// ---------------------------------------------------------------------------
// Corpus builder: themes
// ---------------------------------------------------------------------------

TEST(CorpusThemeTest, ThemedTablesShareTheThemeValue) {
  const auto& ds = SharedDataset();
  const types::TypeSimilarityOptions sim;
  size_t themed_tables = 0, coherent = 0;
  for (size_t t = 0; t < ds.table_truth.size(); ++t) {
    const auto& truth = ds.table_truth[t];
    if (truth.theme_property < 0 || truth.row_entity.size() < 5) continue;
    ++themed_tables;
    // The dominant truth value of the theme property across rows should
    // cover the vast majority of rows (the theme's defining feature).
    std::map<std::string, int> counts;
    for (int eid : truth.row_entity) {
      const auto& v = ds.world.entity(eid).truth[truth.theme_property];
      std::string key = v.type == types::DataType::kDate
                            ? std::to_string(v.date.year)
                            : v.ToString();
      counts[key] += 1;
    }
    int best = 0;
    for (const auto& [key, count] : counts) best = std::max(best, count);
    // The dominant theme value must cover at least half the rows (theme
    // sampling retries dilute full coherence on larger tables).
    if (best * 2 >= static_cast<int>(truth.row_entity.size())) {
      ++coherent;
    }
  }
  ASSERT_GT(themed_tables, 10u);
  EXPECT_GT(static_cast<double>(coherent) / themed_tables, 0.75);
}

TEST(CorpusThemeTest, ThemeColumnsAreUsuallyOmitted) {
  // IMPLICIT_ATT's premise: the theme value is implied by context, not
  // stated in a cell. Most themed tables must not carry the theme column.
  const auto& ds = SharedDataset();
  size_t themed = 0, with_theme_column = 0;
  for (const auto& truth : ds.table_truth) {
    if (truth.theme_property < 0) continue;
    ++themed;
    for (int cp : truth.column_property) {
      if (cp == truth.theme_property) {
        ++with_theme_column;
        break;
      }
    }
  }
  ASSERT_GT(themed, 10u);
  EXPECT_LT(static_cast<double>(with_theme_column) / themed, 0.5);
}

// ---------------------------------------------------------------------------
// Pipeline feedback id spaces
// ---------------------------------------------------------------------------

TEST(CollectFeedbackTest, ClusterIdsDisjointAcrossClasses) {
  pipeline::ClassRunResult a, b;
  a.cls = 0;
  a.num_clusters = 3;
  b.cls = 1;
  b.num_clusters = 2;
  for (int i = 0; i < 4; ++i) {
    rowcluster::RowFeature row;
    row.ref = {0, i};
    a.rows.rows.push_back(row);
    row.ref = {1, i};
    b.rows.rows.push_back(row);
  }
  a.cluster_of_row = {0, 1, 2, 0};
  b.cluster_of_row = {0, 0, 1, 1};
  a.detections.resize(0);
  b.detections.resize(0);

  matching::RowInstanceMap instances;
  matching::RowClusterMap clusters;
  pipeline::LteePipeline::CollectFeedback({a, b}, &instances, &clusters);
  std::set<int> a_ids, b_ids;
  for (int i = 0; i < 4; ++i) {
    a_ids.insert(clusters[{0, i}]);
    b_ids.insert(clusters[{1, i}]);
  }
  for (int id : a_ids) EXPECT_EQ(b_ids.count(id), 0u);
  // Class b's ids start after class a's cluster count.
  EXPECT_EQ(*b_ids.begin(), 3);
}

// ---------------------------------------------------------------------------
// Index and parser edges
// ---------------------------------------------------------------------------

TEST(LabelIndexEdgeTest, ZeroKAndEmptyQuery) {
  index::LabelIndex index;
  index.Add(0, "springfield");
  index.Build();
  EXPECT_TRUE(index.Search("springfield", 0).empty());
  EXPECT_TRUE(index.Search("", 5).empty());
  EXPECT_TRUE(index.Search("   ", 5).empty());
}

TEST(LabelIndexEdgeTest, EmptyIndexSearches) {
  index::LabelIndex index;
  index.Build();
  EXPECT_TRUE(index.Search("anything", 5).empty());
  EXPECT_EQ(index.BlockOf("anything"), -1);
}

TEST(ParserEdgeTest, DateRejectsInvalidCalendarFields) {
  EXPECT_FALSE(types::ParseDate("13/40/1990").has_value());
  EXPECT_FALSE(types::ParseDate("0/5/1990").has_value());
  EXPECT_FALSE(types::ParseDate("June 45, 1987").has_value());
  EXPECT_FALSE(types::ParseDate("1987-13-01").has_value());
  EXPECT_FALSE(types::ParseDate("1987-00-10").has_value());
}

TEST(ParserEdgeTest, MonthAbbreviations) {
  auto d = types::ParseDate("Dec 25, 1999");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->month, 12);
  // Ambiguous prefixes that are not months stay unparsed.
  EXPECT_FALSE(types::ParseDate("Xyz 25, 1999").has_value());
}

TEST(ParserEdgeTest, WhitespaceOnlyCellsStayEmptyEverywhere) {
  for (auto type : {types::DataType::kText, types::DataType::kQuantity,
                    types::DataType::kDate, types::DataType::kNominalInteger,
                    types::DataType::kNominalString,
                    types::DataType::kInstanceReference}) {
    EXPECT_FALSE(types::NormalizeCell("   \t ", type).has_value());
  }
}

}  // namespace
}  // namespace ltee
