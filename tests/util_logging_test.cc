// Tests of the logging layer: ISO-8601 timestamped stderr lines with
// stable thread ids, level filtering, and LTEE_LOG_LEVEL parsing.

#include "util/logging.h"

#include <regex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace ltee::util {
namespace {

bool ContainsPattern(const std::string& text, const std::string& pattern) {
  return std::regex_search(text, std::regex(pattern));
}

/// Restores the process log level on scope exit so tests compose.
struct LogLevelGuard {
  LogLevel saved = GetLogLevel();
  ~LogLevelGuard() { SetLogLevel(saved); }
};

TEST(LoggingTest, EmitsIso8601TimestampLevelAndThreadId) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  LTEE_LOG(kInfo) << "hello " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  // e.g. "2026-08-07T12:34:56.789Z [INFO] [t1] hello 42"
  EXPECT_TRUE(ContainsPattern(
      out, "^\\d{4}-\\d{2}-\\d{2}T\\d{2}:\\d{2}:\\d{2}"
           "\\.\\d{3}Z \\[INFO\\] \\[t\\d+\\] hello 42\n"))
      << "got: " << out;
}

TEST(LoggingTest, LevelsBelowThresholdAreSuppressed) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  LTEE_LOG(kDebug) << "debug hidden";
  LTEE_LOG(kInfo) << "info hidden";
  LTEE_LOG(kWarning) << "warning shown";
  LTEE_LOG(kError) << "error shown";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_TRUE(
      ContainsPattern(out, "\\[WARN\\] \\[t\\d+\\] warning shown"))
      << "got: " << out;
  EXPECT_TRUE(
      ContainsPattern(out, "\\[ERROR\\] \\[t\\d+\\] error shown"))
      << "got: " << out;
}

TEST(LoggingTest, SuppressedLinesDoNotEvaluateStream) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "x";
  };
  LTEE_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  LTEE_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("2"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("4"), std::nullopt);
}

TEST(LoggingTest, StableThreadIdsAreDistinctAndStable) {
  const uint32_t mine = StableThreadId();
  EXPECT_EQ(StableThreadId(), mine);
  uint32_t other = 0;
  std::thread t([&other] { other = StableThreadId(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

}  // namespace
}  // namespace ltee::util
