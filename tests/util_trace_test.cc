// Tests of the tracing layer: enable/disable semantics, span recording
// from multiple threads, and Chrome trace-event JSON export validity.

#include "util/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace ltee::util::trace {
namespace {

/// RAII guard: every test leaves tracing disabled and the buffers empty so
/// unrelated tests in this binary are unaffected.
struct TraceSandbox {
  TraceSandbox() {
    Clear();
    SetEnabled(true);
  }
  ~TraceSandbox() {
    SetEnabled(false);
    Clear();
  }
};

TEST(TraceTest, DisabledRecordsNothing) {
  Clear();
  SetEnabled(false);
  {
    ScopedSpan span("should.not.appear");
    span.AddArg("key", "value");
  }
  EXPECT_EQ(EventCount(), 0u);
}

TEST(TraceTest, RecordsSpansWithArgs) {
  TraceSandbox sandbox;
  {
    ScopedSpan span("test.outer");
    span.AddArg("text", "hello \"quoted\"");
    span.AddArg("count", static_cast<long long>(42));
    span.AddArg("ratio", 0.5);
    ScopedSpan inner("test.inner");
  }
  EXPECT_EQ(EventCount(), 2u);

  const std::string json = ExportChromeTrace();
  std::string error;
  ASSERT_TRUE(JsonIsValid(json, &error)) << error;
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":\"42\""), std::string::npos);
  EXPECT_NE(json.find("hello \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, MacroAndThreadNames) {
  TraceSandbox sandbox;
  SetCurrentThreadName("trace-test-main");
  { LTEE_TRACE_SPAN("test.macro_span"); }
  const std::string json = ExportChromeTrace();
  std::string error;
  ASSERT_TRUE(JsonIsValid(json, &error)) << error;
  EXPECT_NE(json.find("\"test.macro_span\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"trace-test-main\""), std::string::npos);
}

TEST(TraceTest, SpansFromManyThreadsAllSurvive) {
  TraceSandbox sandbox;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      SetCurrentThreadName("trace-test-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("test.threaded");
        span.AddArg("i", static_cast<long long>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  // Buffers outlive their threads: every span must still be exported.
  EXPECT_EQ(EventCount(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  const std::string json = ExportChromeTrace();
  std::string error;
  EXPECT_TRUE(JsonIsValid(json, &error)) << error;

  // Distinct threads have distinct tids in the export.
  EXPECT_NE(json.find("\"trace-test-0\""), std::string::npos);
  EXPECT_NE(json.find("\"trace-test-7\""), std::string::npos);
}

TEST(TraceTest, ClearDropsEvents) {
  TraceSandbox sandbox;
  { ScopedSpan span("test.cleared"); }
  EXPECT_GT(EventCount(), 0u);
  Clear();
  EXPECT_EQ(EventCount(), 0u);
}

TEST(TraceTest, SpansCarryTheCurrentTraceContext) {
  TraceSandbox sandbox;
  ClearCurrentContext();
  { ScopedSpan span("test.no_context"); }

  SetCurrentContext("aaaabbbbccccddddaaaabbbbccccdddd", "1122334455667788");
  EXPECT_TRUE(HasCurrentContext());
  EXPECT_EQ(CurrentTraceId(), "aaaabbbbccccddddaaaabbbbccccdddd");
  EXPECT_EQ(CurrentSpanId(), "1122334455667788");
  { ScopedSpan span("test.with_context"); }
  ClearCurrentContext();
  EXPECT_FALSE(HasCurrentContext());
  { ScopedSpan span("test.context_cleared"); }

  const std::string json = ExportChromeTrace();
  // Only the span opened under the context carries the ids.
  EXPECT_NE(json.find("aaaabbbbccccddddaaaabbbbccccdddd"), std::string::npos);
  EXPECT_NE(json.find("1122334455667788"), std::string::npos);
  const size_t id_pos = json.find("aaaabbbbccccddddaaaabbbbccccdddd");
  EXPECT_EQ(json.find("aaaabbbbccccddddaaaabbbbccccdddd", id_pos + 1),
            std::string::npos)
      << "exactly one span should carry the trace id";

  // The context is thread-local: a fresh thread starts without one.
  bool other_thread_has_context = true;
  std::thread([&other_thread_has_context] {
    other_thread_has_context = HasCurrentContext();
  }).join();
  EXPECT_FALSE(other_thread_has_context);
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  std::string error;
  EXPECT_TRUE(JsonIsValid(R"({"a":[1,2.5,-3e4],"b":{"c":null},"d":"é"})",
                          &error))
      << error;
  EXPECT_FALSE(JsonIsValid("{\"a\":}", &error));
  EXPECT_FALSE(JsonIsValid("[1,2", &error));
  EXPECT_FALSE(JsonIsValid("{} trailing", &error));
  EXPECT_FALSE(JsonIsValid("{\"a\":01}", &error));
}

}  // namespace
}  // namespace ltee::util::trace
