#include <gtest/gtest.h>

#include <span>

#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "webtable/web_table.h"

namespace ltee {
namespace {

// ---------------------------------------------------------------------------
// KnowledgeBase
// ---------------------------------------------------------------------------

class KnowledgeBaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    agent_ = kb_.AddClass("Agent");
    athlete_ = kb_.AddClass("Athlete", agent_);
    player_ = kb_.AddClass("GridironFootballPlayer", athlete_);
    musician_ = kb_.AddClass("Musician", athlete_);  // sibling of player
    team_prop_ = kb_.AddProperty(player_, "team",
                                 types::DataType::kInstanceReference, {"Club"});
    height_prop_ =
        kb_.AddProperty(player_, "height", types::DataType::kQuantity);
    a_ = kb_.AddInstance(player_, {"John Smith"}, 10.0);
    b_ = kb_.AddInstance(player_, {"Jane Doe", "J. Doe"}, 20.0);
    kb_.AddFact(a_, team_prop_,
                types::Value::InstanceRef("dallas cowboys"));
    kb_.AddFact(a_, height_prop_, types::Value::OfQuantity(190));
    kb_.AddFact(b_, team_prop_, types::Value::InstanceRef("chicago bears"));
  }

  kb::KnowledgeBase kb_;
  kb::ClassId agent_, athlete_, player_, musician_;
  kb::PropertyId team_prop_, height_prop_;
  kb::InstanceId a_, b_;
};

TEST_F(KnowledgeBaseTest, SchemaAccessors) {
  EXPECT_EQ(kb_.num_classes(), 4u);
  EXPECT_EQ(kb_.num_properties(), 2u);
  EXPECT_EQ(kb_.FindClass("Athlete"), athlete_);
  EXPECT_EQ(kb_.FindClass("Nope"), kb::kInvalidClass);
  EXPECT_EQ(kb_.FindProperty(player_, "team"), team_prop_);
  EXPECT_EQ(kb_.FindProperty(player_, "nope"), kb::kInvalidProperty);
  // Property labels include the normalized name and synonyms.
  EXPECT_EQ(kb_.property(team_prop_).labels.front(), "team");
  EXPECT_EQ(kb_.property(team_prop_).labels.back(), "club");
}

TEST_F(KnowledgeBaseTest, InstanceAndFactAccess) {
  EXPECT_EQ(kb_.num_instances(), 2u);
  EXPECT_EQ(kb_.InstancesOfClass(player_).size(), 2u);
  ASSERT_NE(kb_.FactOf(a_, team_prop_), nullptr);
  EXPECT_EQ(kb_.FactOf(a_, team_prop_)->text, "dallas cowboys");
  EXPECT_EQ(kb_.FactOf(b_, height_prop_), nullptr);
}

TEST_F(KnowledgeBaseTest, AncestorsMostSpecificFirst) {
  const auto ancestors = kb_.Ancestors(player_);
  ASSERT_EQ(ancestors.size(), 3u);
  EXPECT_EQ(ancestors[0], player_);
  EXPECT_EQ(ancestors[1], athlete_);
  EXPECT_EQ(ancestors[2], agent_);
}

TEST_F(KnowledgeBaseTest, ClassCompatibility) {
  EXPECT_TRUE(kb_.ClassesCompatible(player_, player_));
  EXPECT_TRUE(kb_.ClassesCompatible(player_, athlete_));  // ancestor
  EXPECT_TRUE(kb_.ClassesCompatible(athlete_, player_));
  EXPECT_TRUE(kb_.ClassesCompatible(player_, musician_));  // shared parent
  EXPECT_TRUE(kb_.ClassesCompatible(agent_, agent_));
}

TEST_F(KnowledgeBaseTest, ClassOverlapIsJaccardOfAncestors) {
  EXPECT_DOUBLE_EQ(kb_.ClassOverlap(player_, player_), 1.0);
  // player {P,Ath,Ag} vs musician {M,Ath,Ag}: 2 shared of 4 distinct.
  EXPECT_DOUBLE_EQ(kb_.ClassOverlap(player_, musician_), 0.5);
}

TEST_F(KnowledgeBaseTest, Statistics) {
  const auto stats = kb_.StatsOfClass(player_);
  EXPECT_EQ(stats.instances, 2u);
  EXPECT_EQ(stats.facts, 3u);
  const auto team_stats = kb_.StatsOfProperty(team_prop_);
  EXPECT_EQ(team_stats.facts, 2u);
  EXPECT_DOUBLE_EQ(team_stats.density, 1.0);
  const auto height_stats = kb_.StatsOfProperty(height_prop_);
  EXPECT_DOUBLE_EQ(height_stats.density, 0.5);
}

// ---------------------------------------------------------------------------
// TableCorpus
// ---------------------------------------------------------------------------

TEST(TableCorpusTest, AddAssignsIdsAndStats) {
  webtable::TableCorpus corpus;
  webtable::WebTable t1;
  t1.headers = {"Name", "Team"};
  t1.rows = {{"a", "x"}, {"b", "y"}, {"c", "z"}};
  webtable::WebTable t2;
  t2.headers = {"Name", "Pop", "Country"};
  t2.rows = {{"d", "1", "u"}};
  EXPECT_EQ(corpus.Add(std::move(t1)), 0);
  EXPECT_EQ(corpus.Add(std::move(t2)), 1);
  EXPECT_EQ(corpus.TotalRows(), 4u);
  EXPECT_EQ(corpus.cell({0, 1}, 1), "y");

  const auto stats = corpus.Stats();
  EXPECT_EQ(stats.num_tables, 2u);
  EXPECT_DOUBLE_EQ(stats.rows.average, 2.0);
  EXPECT_DOUBLE_EQ(stats.rows.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.rows.max, 3.0);
  EXPECT_DOUBLE_EQ(stats.columns.average, 2.5);
}

TEST(RowRefTest, Ordering) {
  webtable::RowRef a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (webtable::RowRef{1, 2}));
}

// ---------------------------------------------------------------------------
// LabelIndex
// ---------------------------------------------------------------------------

TEST(LabelIndexTest, ExactLabelRanksFirst) {
  index::LabelIndex index;
  index.Add(0, "Springfield");
  index.Add(1, "North Springfield");
  index.Add(2, "Tokyo");
  index.Build();
  auto hits = index.Search("Springfield", 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(LabelIndexTest, NoSharedTokensNoHits) {
  index::LabelIndex index;
  index.Add(0, "Springfield");
  index.Build();
  EXPECT_TRUE(index.Search("Tokyo", 5).empty());
}

TEST(LabelIndexTest, MultiLabelDocScoredByBestLabel) {
  index::LabelIndex index;
  index.Add(0, "J. Doe");
  index.Add(0, "Jane Doe");
  index.Add(1, "Jane Roe");
  index.Build();
  auto hits = index.Search("Jane Doe", 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc, 0u);
}

TEST(LabelIndexTest, KLimitsResults) {
  index::LabelIndex index;
  for (uint32_t i = 0; i < 20; ++i) {
    index.Add(i, "common token" + std::to_string(i));
  }
  index.Build();
  EXPECT_EQ(index.Search("common", 5).size(), 5u);
}

// The raw-string Search overload and the pre-tokenized span overload must
// agree exactly: the serving layer feeds interned query tokens straight to
// the span overload and relies on it ranking identically to the string path.
TEST(LabelIndexTest, StringAndTokenSearchOverloadsAgree) {
  index::LabelIndex index;
  index.Add(0, "Jane Doe");
  index.Add(0, "J. Doe");       // alias for the same doc
  index.Add(1, "Jane Roe");
  index.Add(2, "John Doe Jr");
  index.Add(3, "Tokyo Tower");
  index.Add(4, "tokyo  tower");  // normalizes to a duplicate label
  index.Build();

  const std::string queries[] = {
      "Jane Doe",          // multi-token, multiple candidates
      "doe",               // single shared token
      "Tokyo",             // token shared by duplicate labels
      "jane unknowntoken", // partially out-of-vocabulary
      "unknowntoken",      // fully out-of-vocabulary
      "",                  // empty query
      "doe doe jane",      // duplicate query tokens, shuffled order
  };
  for (const std::string& query : queries) {
    const auto via_string = index.Search(query, 10);
    // Same tokenization the string overload applies, mapped through the
    // index's own dictionary; kNoToken entries are kept — the overload
    // must skip them itself.
    const std::vector<uint32_t> token_ids =
        index.dict().FindTokens(query);
    const auto via_tokens =
        index.Search(std::span<const uint32_t>(token_ids), 10);

    ASSERT_EQ(via_tokens.size(), via_string.size()) << "query: " << query;
    for (size_t i = 0; i < via_string.size(); ++i) {
      EXPECT_EQ(via_tokens[i].doc, via_string[i].doc)
          << "query: " << query << " hit " << i;
      EXPECT_DOUBLE_EQ(via_tokens[i].score, via_string[i].score)
          << "query: " << query << " hit " << i;
    }
  }
}

TEST(LabelIndexTest, BlocksAreDistinctNormalizedLabels) {
  index::LabelIndex index;
  index.Add(0, "New York");
  index.Add(1, "new  york!");  // same normalized label
  index.Add(2, "Boston");
  index.Build();
  EXPECT_EQ(index.num_blocks(), 2u);
  EXPECT_EQ(index.BlockOf("NEW YORK"), index.BlockOf("new york"));
  EXPECT_NE(index.BlockOf("Boston"), index.BlockOf("new york"));
  EXPECT_EQ(index.BlockOf("unseen label"), -1);
}

}  // namespace
}  // namespace ltee
