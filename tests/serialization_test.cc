#include <gtest/gtest.h>

#include <sstream>

#include "kb/serialization.h"
#include "test_dataset.h"
#include "util/random.h"
#include "eval/gold_serialization.h"
#include "webtable/serialization.h"

namespace ltee {
namespace {

using ::ltee::testing::SharedDataset;

TEST(EscapeTest, RoundTripsSpecials) {
  const std::string nasty = "a\tb\nc\\d";
  EXPECT_EQ(kb::UnescapeField(kb::EscapeField(nasty)), nasty);
  EXPECT_EQ(kb::EscapeField("plain"), "plain");
}

TEST(ValueSerializationTest, RoundTripsEveryType) {
  const types::Value values[] = {
      types::Value::Text("hello world"),
      types::Value::Nominal("iso-3166"),
      types::Value::InstanceRef("dallas cowboys", 42),
      types::Value::InstanceRef("unresolved"),
      types::Value::YearDate(1987),
      types::Value::DayDate(1987, 6, 5),
      types::Value::OfQuantity(12345.5),
      types::Value::OfInteger(-7),
  };
  for (const auto& v : values) {
    auto round = kb::DeserializeValue(kb::SerializeValue(v));
    ASSERT_TRUE(round.has_value()) << kb::SerializeValue(v);
    EXPECT_EQ(round->type, v.type);
    EXPECT_EQ(round->text, v.text);
    EXPECT_EQ(round->ref, v.ref);
    EXPECT_EQ(round->integer, v.integer);
    EXPECT_DOUBLE_EQ(round->number, v.number);
    EXPECT_EQ(round->date, v.date);
  }
}

TEST(ValueSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(kb::DeserializeValue("").has_value());
  EXPECT_FALSE(kb::DeserializeValue("notavalue").has_value());
  EXPECT_FALSE(kb::DeserializeValue("99:payload").has_value());
  EXPECT_FALSE(kb::DeserializeValue("3:garbagedate|X").has_value());
}

TEST(KbSerializationTest, RoundTripsSyntheticKb) {
  const auto& ds = SharedDataset();
  std::stringstream stream;
  kb::SaveKnowledgeBase(ds.kb, stream);
  auto loaded = kb::LoadKnowledgeBase(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_classes(), ds.kb.num_classes());
  ASSERT_EQ(loaded->num_properties(), ds.kb.num_properties());
  ASSERT_EQ(loaded->num_instances(), ds.kb.num_instances());
  // Spot-check schema and facts.
  for (size_t c = 0; c < ds.kb.num_classes(); ++c) {
    EXPECT_EQ(loaded->cls(static_cast<kb::ClassId>(c)).name,
              ds.kb.cls(static_cast<kb::ClassId>(c)).name);
    EXPECT_EQ(loaded->cls(static_cast<kb::ClassId>(c)).parent,
              ds.kb.cls(static_cast<kb::ClassId>(c)).parent);
  }
  for (size_t p = 0; p < ds.kb.num_properties(); ++p) {
    const auto& a = ds.kb.property(static_cast<kb::PropertyId>(p));
    const auto& b = loaded->property(static_cast<kb::PropertyId>(p));
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.labels, b.labels);
  }
  for (size_t i = 0; i < ds.kb.num_instances(); i += 37) {
    const auto& a = ds.kb.instance(static_cast<kb::InstanceId>(i));
    const auto& b = loaded->instance(static_cast<kb::InstanceId>(i));
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.cls, b.cls);
    ASSERT_EQ(a.facts.size(), b.facts.size());
    for (size_t f = 0; f < a.facts.size(); ++f) {
      EXPECT_EQ(a.facts[f].property, b.facts[f].property);
      EXPECT_EQ(a.facts[f].value.ToString(), b.facts[f].value.ToString());
    }
    EXPECT_EQ(a.abstract_tokens, b.abstract_tokens);
  }
}

// Builds a randomized KB exercising every data type, escape-worthy label
// characters, and empty corners (instances with no facts, classes with no
// instances). Deterministic given `seed`.
kb::KnowledgeBase RandomKb(uint64_t seed) {
  util::Rng rng(seed);
  kb::KnowledgeBase out;
  const size_t num_classes = 1 + rng.NextBounded(4);
  std::vector<kb::ClassId> classes;
  for (size_t c = 0; c < num_classes; ++c) {
    const kb::ClassId parent =
        (c > 0 && rng.NextDouble() < 0.5)
            ? classes[rng.NextBounded(classes.size())]
            : kb::kInvalidClass;
    classes.push_back(out.AddClass("class " + std::to_string(c), parent));
  }
  const std::string nasty[] = {"tab\there", "line\nbreak", "back\\slash",
                               "plain token soup", ""};
  std::vector<kb::PropertyId> properties;
  for (size_t p = 0; p < 2 + rng.NextBounded(6); ++p) {
    std::vector<std::string> extras;
    if (rng.NextDouble() < 0.6) extras.push_back(nasty[rng.NextBounded(5)]);
    properties.push_back(out.AddProperty(
        classes[rng.NextBounded(classes.size())], "prop " + std::to_string(p),
        static_cast<types::DataType>(rng.NextBounded(types::kNumDataTypes)),
        std::move(extras)));
  }
  for (size_t i = 0; i < 3 + rng.NextBounded(20); ++i) {
    std::vector<std::string> labels = {"instance " + std::to_string(i)};
    if (rng.NextDouble() < 0.4) labels.push_back(nasty[rng.NextBounded(5)]);
    const kb::InstanceId id =
        out.AddInstance(classes[rng.NextBounded(classes.size())],
                        std::move(labels), rng.NextDouble() * 100.0);
    const size_t num_facts = rng.NextBounded(4);
    for (size_t f = 0; f < num_facts; ++f) {
      const kb::PropertyId prop =
          properties[rng.NextBounded(properties.size())];
      types::Value value;
      switch (out.property(prop).type) {
        case types::DataType::kText:
          value = types::Value::Text(nasty[rng.NextBounded(5)]);
          break;
        case types::DataType::kNominalString:
          value = types::Value::Nominal("code-" + std::to_string(rng.Next() % 97));
          break;
        case types::DataType::kInstanceReference:
          value = rng.NextDouble() < 0.5
                      ? types::Value::InstanceRef("ref label", id)
                      : types::Value::InstanceRef("dangling ref");
          break;
        case types::DataType::kDate:
          value = rng.NextDouble() < 0.5
                      ? types::Value::YearDate(
                            static_cast<int>(rng.NextInt(1800, 2030)))
                      : types::Value::DayDate(
                            static_cast<int>(rng.NextInt(1800, 2030)),
                            static_cast<int>(rng.NextInt(1, 12)),
                            static_cast<int>(rng.NextInt(1, 28)));
          break;
        case types::DataType::kQuantity:
          value = types::Value::OfQuantity(rng.NextDouble() * 1e6 - 5e5);
          break;
        case types::DataType::kNominalInteger:
          value = types::Value::OfInteger(rng.NextInt(-1000, 1000));
          break;
      }
      out.AddFact(id, prop, value);
    }
    if (rng.NextDouble() < 0.3) {
      out.SetAbstractTokens(id, {"born", std::to_string(rng.Next() % 50)});
    }
  }
  return out;
}

size_t TotalFacts(const kb::KnowledgeBase& kb) {
  size_t n = 0;
  for (size_t i = 0; i < kb.num_instances(); ++i) {
    n += kb.instance(static_cast<kb::InstanceId>(i)).facts.size();
  }
  return n;
}

// Property test: serialize -> parse -> serialize is byte-identical and
// preserves fact counts, across randomized KBs covering every value type
// and escape-sensitive characters.
TEST(KbSerializationTest, RandomKbsRoundTripByteIdentically) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const kb::KnowledgeBase original = RandomKb(seed);
    std::stringstream first;
    kb::SaveKnowledgeBase(original, first);
    const std::string first_bytes = first.str();

    std::stringstream parse_from(first_bytes);
    auto loaded = kb::LoadKnowledgeBase(parse_from);
    ASSERT_TRUE(loaded.has_value()) << "seed " << seed;
    EXPECT_EQ(loaded->num_classes(), original.num_classes()) << "seed " << seed;
    EXPECT_EQ(loaded->num_properties(), original.num_properties())
        << "seed " << seed;
    EXPECT_EQ(loaded->num_instances(), original.num_instances())
        << "seed " << seed;
    EXPECT_EQ(TotalFacts(*loaded), TotalFacts(original)) << "seed " << seed;

    std::stringstream second;
    kb::SaveKnowledgeBase(*loaded, second);
    EXPECT_EQ(second.str(), first_bytes) << "seed " << seed;
  }
}

TEST(KbSerializationTest, RejectsMalformedInput) {
  std::stringstream bad("X\tunknown\trecord\n");
  EXPECT_FALSE(kb::LoadKnowledgeBase(bad).has_value());
  std::stringstream truncated("C\t0\n");
  EXPECT_FALSE(kb::LoadKnowledgeBase(truncated).has_value());
}

TEST(CorpusSerializationTest, RoundTripsSyntheticCorpus) {
  const auto& ds = SharedDataset();
  std::stringstream stream;
  webtable::SaveCorpus(ds.gs_corpus, stream);
  auto loaded = webtable::LoadCorpus(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), ds.gs_corpus.size());
  for (size_t t = 0; t < ds.gs_corpus.size(); t += 11) {
    const auto& a = ds.gs_corpus.table(static_cast<int>(t));
    const auto& b = loaded->table(static_cast<int>(t));
    EXPECT_EQ(a.headers, b.headers);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.page_url, b.page_url);
  }
}

TEST(CorpusSerializationTest, RejectsRowWidthMismatch) {
  std::stringstream bad("T\turl\nH\ta\tb\nR\tonly-one-cell\n");
  EXPECT_FALSE(webtable::LoadCorpus(bad).has_value());
}

TEST(CorpusSerializationTest, EmptyCorpusRoundTrips) {
  webtable::TableCorpus corpus;
  std::stringstream stream;
  webtable::SaveCorpus(corpus, stream);
  auto loaded = webtable::LoadCorpus(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
}


TEST(GoldSerializationTest, RoundTripsSyntheticGold) {
  const auto& ds = SharedDataset();
  std::stringstream stream;
  eval::SaveGoldStandards(ds.gold, stream);
  auto loaded = eval::LoadGoldStandards(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), ds.gold.size());
  for (size_t g = 0; g < ds.gold.size(); ++g) {
    const auto& a = ds.gold[g];
    const auto& b = (*loaded)[g];
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.tables, b.tables);
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (size_t c = 0; c < a.clusters.size(); ++c) {
      EXPECT_EQ(a.clusters[c].rows, b.clusters[c].rows);
      EXPECT_EQ(a.clusters[c].is_new, b.clusters[c].is_new);
      EXPECT_EQ(a.clusters[c].kb_instance, b.clusters[c].kb_instance);
      EXPECT_EQ(a.clusters[c].homonym_group, b.clusters[c].homonym_group);
    }
    ASSERT_EQ(a.facts.size(), b.facts.size());
    for (size_t f = 0; f < a.facts.size(); ++f) {
      EXPECT_EQ(a.facts[f].cluster, b.facts[f].cluster);
      EXPECT_EQ(a.facts[f].property, b.facts[f].property);
      EXPECT_EQ(a.facts[f].correct_value_present,
                b.facts[f].correct_value_present);
      EXPECT_EQ(a.facts[f].correct_value.ToString(),
                b.facts[f].correct_value.ToString());
    }
    // Lookups rebuilt.
    EXPECT_EQ(b.ClusterOfRow(a.clusters[0].rows[0]), 0);
  }
}

TEST(GoldSerializationTest, RejectsMalformedInput) {
  std::stringstream no_header("K 1 -1 -1 -1 0:0\n");
  EXPECT_FALSE(eval::LoadGoldStandards(no_header).has_value());
  std::stringstream bad_fact("G 0\nF 0 0 1 garbage\n");
  EXPECT_FALSE(eval::LoadGoldStandards(bad_fact).has_value());
}

}  // namespace
}  // namespace ltee
