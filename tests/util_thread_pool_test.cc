// Stress coverage for the thread pool paths the parallel pipeline Run
// leans on: empty and undersized ParallelFor ranges, nested fan-out from
// worker threads, and teardown with work still queued.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace ltee::util {
namespace {

TEST(ThreadPoolTest, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> seen(3);
  pool.ParallelFor(3, [&](size_t i) {
    seen[i].fetch_add(1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> seen(kN);
  pool.ParallelFor(kN, [&](size_t i) { seen[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.Submit([&] {
    // A task submitting more tasks must not deadlock the queue.
    for (int k = 0; k < 16; ++k) {
      pool.Submit([&] { inner.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(inner.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  // Outer ParallelFor occupies every worker; the nested calls only finish
  // because the blocked callers help drain the queue.
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, DestructionWithQueuedTasksRunsThemAll) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int k = 0; k < 64; ++k) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
    // No Wait(): the destructor must drain the queue, not drop tasks.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 5);
}

}  // namespace
}  // namespace ltee::util
