// Unit tests for the serving layer: snapshot building (dense views,
// per-class lists, label search, deterministic content hash), the binary
// snapshot file format (round trip, checksum/truncation/magic
// rejection), the query engine (JSON rendering, result cache, version
// keying), the sharded LRU cache, the regression-gate units behind
// report_diff (ms_p95 latency percentiles, ops_s throughput), the /kb/*
// HTTP endpoints over a real socket, and the RCU snapshot swap under
// concurrent readers.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "obsv/http_client.h"
#include "obsv/http_server.h"
#include "obsv/regression_gate.h"
#include "obsv/status_server.h"
#include "serve/kb_endpoints.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/snapshot.h"
#include "serve/snapshot_io.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/metrics.h"

namespace ltee {
namespace {

/// A small two-class KB with labelled, fact-bearing instances.
kb::KnowledgeBase MakeKb(size_t players = 4) {
  kb::KnowledgeBase kb;
  const kb::ClassId agent = kb.AddClass("Agent");
  const kb::ClassId player = kb.AddClass("Player", agent);
  const kb::ClassId song = kb.AddClass("Song", agent);
  const kb::PropertyId team =
      kb.AddProperty(player, "team", types::DataType::kText, {"club"});
  const kb::PropertyId number =
      kb.AddProperty(player, "number", types::DataType::kNominalInteger);
  const kb::PropertyId year =
      kb.AddProperty(song, "releaseYear", types::DataType::kDate);
  for (size_t i = 0; i < players; ++i) {
    const std::string n = std::to_string(i);
    const auto id = kb.AddInstance(player, {"Player " + n, "P" + n}, 0.5);
    const std::string parity = std::to_string(i % 2);
    kb.AddFact(id, team, types::Value::Text("Team " + parity));
    kb.AddFact(id, number, types::Value::OfInteger(static_cast<int64_t>(i)));
  }
  const auto ballad = kb.AddInstance(song, {"Midnight Ballad"}, 0.9);
  kb.AddFact(ballad, year, types::Value::YearDate(1987));
  return kb;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Snapshot

TEST(Snapshot, BuildsDenseViewOfKb) {
  auto kb = MakeKb();
  auto snap = serve::Snapshot::Build(kb, {.version = 7, .num_shards = 2});
  EXPECT_EQ(snap->version(), 7u);
  EXPECT_EQ(snap->num_shards(), 2u);
  EXPECT_EQ(snap->num_entities(), 5u);
  EXPECT_EQ(snap->num_classes(), 3u);
  EXPECT_EQ(snap->num_properties(), 3u);
  EXPECT_EQ(snap->num_facts(), 9u);

  const serve::SnapshotEntity* entity = snap->entity(0);
  ASSERT_NE(entity, nullptr);
  EXPECT_EQ(entity->labels[0], "Player 0");
  ASSERT_EQ(entity->facts.size(), 2u);
  EXPECT_EQ(snap->property(entity->facts[0].property)->name, "team");
  EXPECT_EQ(snap->entity(-1), nullptr);
  EXPECT_EQ(snap->entity(99), nullptr);

  const serve::SnapshotClassInfo* player = snap->FindClass("Player");
  ASSERT_NE(player, nullptr);
  EXPECT_EQ(player->num_instances, 4u);
  EXPECT_EQ(player->num_facts, 8u);
  EXPECT_EQ(snap->InstancesOfClass(player->id).size(), 4u);
  EXPECT_EQ(snap->FindClass("Nope"), nullptr);
  EXPECT_TRUE(snap->InstancesOfClass(99).empty());
}

TEST(Snapshot, LabelLookupNormalizes) {
  auto kb = MakeKb();
  auto snap = serve::Snapshot::Build(kb, {});
  EXPECT_EQ(snap->EntitiesByLabel("Midnight Ballad").size(), 1u);
  EXPECT_EQ(snap->EntitiesByLabel("  MIDNIGHT   ballad ").size(), 1u);
  EXPECT_TRUE(snap->EntitiesByLabel("unknown thing").empty());
}

TEST(Snapshot, SearchRanksAcrossShards) {
  auto kb = MakeKb(8);
  // More shards than a trivial corpus would need, so the merge path is
  // actually exercised: entities land in id % 3 shards.
  auto snap = serve::Snapshot::Build(kb, {.num_shards = 3});
  const auto hits = snap->Search("player 3", 5);
  ASSERT_FALSE(hits.empty());
  // The exact-label entity outranks entities sharing only "player".
  EXPECT_EQ(hits[0].id, 3);
  EXPECT_LE(hits.size(), 5u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
  EXPECT_TRUE(snap->Search("zzz qqq", 5).empty());
  EXPECT_TRUE(snap->Search("player", 0).empty());
}

TEST(Snapshot, ContentHashIsDeterministicAndContentSensitive) {
  auto kb1 = MakeKb();
  auto kb2 = MakeKb();
  auto a = serve::Snapshot::Build(kb1, {.version = 1});
  auto b = serve::Snapshot::Build(kb2, {.version = 2, .num_shards = 8});
  // Equal content: equal hash, regardless of version and shard count.
  EXPECT_EQ(a->content_hash(), b->content_hash());

  kb2.AddInstance(kb2.FindClass("Song"), {"Another Song"}, 0.1);
  auto c = serve::Snapshot::Build(kb2, {.version = 2});
  EXPECT_NE(a->content_hash(), c->content_hash());
}

TEST(Snapshot, EmptyKbStillServes) {
  kb::KnowledgeBase kb;
  auto snap = serve::Snapshot::Build(kb, {});
  EXPECT_EQ(snap->num_entities(), 0u);
  EXPECT_TRUE(snap->Search("anything", 3).empty());
}

// ---------------------------------------------------------------------------
// Snapshot file format

TEST(SnapshotIo, RoundTripsKbAndVersion) {
  auto kb = MakeKb();
  const std::string path = TempPath("snap_roundtrip.bin");
  std::string error;
  ASSERT_TRUE(serve::SaveSnapshotFile(kb, 42, path, &error)) << error;

  kb::KnowledgeBase loaded;
  uint64_t version = 0;
  ASSERT_TRUE(serve::LoadSnapshotFile(path, &loaded, &version, &error))
      << error;
  EXPECT_EQ(version, 42u);
  EXPECT_EQ(loaded.num_instances(), kb.num_instances());
  EXPECT_EQ(loaded.num_classes(), kb.num_classes());
  EXPECT_EQ(loaded.property(0).labels, kb.property(0).labels);

  // The reloaded KB builds a snapshot with the identical content hash —
  // the round trip is logically lossless.
  auto original = serve::Snapshot::Build(kb, {.version = 42});
  auto reloaded = serve::LoadSnapshot(path, 4, &error);
  ASSERT_NE(reloaded, nullptr) << error;
  EXPECT_EQ(reloaded->version(), 42u);
  EXPECT_EQ(reloaded->content_hash(), original->content_hash());
  std::remove(path.c_str());
}

TEST(SnapshotIo, RejectsCorruptTruncatedAndForeignFiles) {
  auto kb = MakeKb();
  const std::string path = TempPath("snap_corrupt.bin");
  std::string error;
  ASSERT_TRUE(serve::SaveSnapshotFile(kb, 1, path, &error)) << error;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }

  const auto write_and_try = [&path](const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    out.close();
    kb::KnowledgeBase scratch;
    std::string err;
    const bool ok = serve::LoadSnapshotFile(path, &scratch, nullptr, &err);
    return std::make_pair(ok, err);
  };

  // Flip one payload byte: checksum must catch it.
  std::string flipped = bytes;
  flipped[flipped.size() - 3] ^= 0x40;
  auto [ok1, err1] = write_and_try(flipped);
  EXPECT_FALSE(ok1);
  EXPECT_NE(err1.find("checksum"), std::string::npos) << err1;

  // Truncation: payload size mismatch.
  auto [ok2, err2] = write_and_try(bytes.substr(0, bytes.size() - 10));
  EXPECT_FALSE(ok2);
  EXPECT_NE(err2.find("size mismatch"), std::string::npos) << err2;

  // Not a snapshot at all.
  auto [ok3, err3] = write_and_try("C\t0\tAgent\t-1\n");
  EXPECT_FALSE(ok3);
  EXPECT_NE(err3.find("magic"), std::string::npos) << err3;

  kb::KnowledgeBase scratch;
  EXPECT_FALSE(serve::LoadSnapshotFile(TempPath("snap_does_not_exist.bin"),
                                       &scratch, nullptr, &error));
  std::remove(path.c_str());
}

/// Systematic byte-mangling of a valid snapshot file. Every mangling
/// must produce a clean `false` + error from LoadSnapshotFile — never a
/// crash, hang, or a silently wrong KB. Payload manglings recompute the
/// FNV-1a checksum so they reach the decoder's own range checks instead
/// of being caught by the integrity layer.
TEST(SnapshotIo, ByteManglingsFailCleanly) {
  // A minimal KB with a hand-computable payload layout:
  //   [0]  num_classes=1   [4] len=1 [8] 'A'      [9]  parent int16
  //   [11] num_properties=1 [15] cls int16 [17] len=1 [21] 'p'
  //   [22] type uint8      [23] extras uint32     [27] num_instances
  kb::KnowledgeBase kb;
  kb.AddClass("A");
  kb.AddProperty(0, "p", types::DataType::kText);
  const std::string path = TempPath("snap_mangle.bin");
  std::string error;
  ASSERT_TRUE(serve::SaveSnapshotFile(kb, 9, path, &error)) << error;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  // Header: magic[0..7], format u32 @8, version u64 @12, checksum u64
  // @20, payload size u64 @28, payload @36.
  constexpr size_t kHeader = 36;
  ASSERT_GT(bytes.size(), kHeader);

  const auto fnv1a = [](const std::string& s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h;
  };
  const auto expect_rejected = [&path](const std::string& content,
                                       const std::string& needle) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << content;
    }
    kb::KnowledgeBase scratch;
    std::string err;
    EXPECT_FALSE(serve::LoadSnapshotFile(path, &scratch, nullptr, &err));
    EXPECT_NE(err.find(needle), std::string::npos)
        << "expected \"" << needle << "\" in: " << err;
  };
  // Rebuilds a consistent file around a mangled payload: the checksum
  // and size fields are recomputed so only the decoder can object.
  const auto reseal = [&bytes, &fnv1a, kHeader](const std::string& payload) {
    std::string out = bytes.substr(0, kHeader);
    const uint64_t checksum = fnv1a(payload);
    const uint64_t size = payload.size();
    std::memcpy(out.data() + 20, &checksum, sizeof(checksum));
    std::memcpy(out.data() + 28, &size, sizeof(size));
    return out + payload;
  };
  std::string payload = bytes.substr(kHeader);

  // Truncations everywhere in the header land in "bad magic" (file too
  // short to even carry a header).
  for (const size_t cut : {size_t{0}, size_t{3}, size_t{8}, size_t{20},
                           kHeader - 1}) {
    expect_rejected(bytes.substr(0, cut), "magic");
  }
  {  // One flipped magic byte.
    std::string mangled = bytes;
    mangled[5] ^= 0x01;
    expect_rejected(mangled, "magic");
  }
  {  // Unsupported format version.
    std::string mangled = bytes;
    mangled[8] = 0x7f;
    expect_rejected(mangled, "format version");
  }
  {  // Header lies about the payload size.
    std::string mangled = bytes;
    mangled[28] ^= 0x01;
    expect_rejected(mangled, "size mismatch");
  }
  // Trailing garbage after the payload.
  expect_rejected(bytes + "xyz", "size mismatch");
  {  // Corrupted checksum field.
    std::string mangled = bytes;
    mangled[21] ^= 0x10;
    expect_rejected(mangled, "checksum");
  }

  // -- resealed manglings: integrity layer passes, decoder must catch --

  {  // Class parent below -1 (would index out of bounds in Ancestors).
    std::string p = payload;
    const int16_t bogus = -7;
    std::memcpy(p.data() + 9, &bogus, sizeof(bogus));
    expect_rejected(reseal(p), "class parent out of range");
  }
  {  // Property data-type byte outside the enum.
    std::string p = payload;
    p[22] = static_cast<char>(0xff);
    expect_rejected(reseal(p), "data type out of range");
  }
  {  // A string length pointing far past the end of the payload.
    std::string p = payload;
    const uint32_t huge = 0x7fffffffu;
    std::memcpy(p.data() + 4, &huge, sizeof(huge));
    expect_rejected(reseal(p), "truncated");
  }
  // Payload cut mid-record, resealed so size and checksum agree.
  expect_rejected(reseal(payload.substr(0, payload.size() / 2)),
                  "truncated");
  // Extra payload bytes the decoder never consumes.
  expect_rejected(reseal(payload + std::string(4, '\0')), "trailing bytes");

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sharded LRU cache

TEST(ShardedLruCache, EvictsLeastRecentlyUsedPerShard) {
  serve::ShardedLruCache<std::string> cache(1, 2);
  std::string out;
  cache.Put("a", "1");
  cache.Put("b", "2");
  ASSERT_TRUE(cache.Get("a", &out));  // refreshes "a"
  cache.Put("c", "3");                // evicts "b"
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_FALSE(cache.Get("b", &out));
  ASSERT_TRUE(cache.Get("c", &out));
  EXPECT_EQ(out, "3");
  EXPECT_EQ(cache.size(), 2u);

  cache.Put("c", "3b");  // refresh keeps size
  ASSERT_TRUE(cache.Get("c", &out));
  EXPECT_EQ(out, "3b");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCache, EvictionAccountingReconciles) {
  // One shard of capacity 4, overfilled by 10 distinct keys: exactly 6
  // evictions, and the eviction counter mirror sees each one.
  serve::ShardedLruCache<std::string> cache(1, 4);
  util::Counter counter;
  cache.SetEvictionCounter(&counter);

  for (int i = 0; i < 10; ++i) {
    cache.Put("key" + std::to_string(i), std::to_string(i));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 6u);
  EXPECT_EQ(counter.value(), 6u);

  // Refreshing a resident key is not an eviction.
  cache.Put("key9", "again");
  EXPECT_EQ(cache.evictions(), 6u);

  // Hits/misses/evictions reconcile: the 4 newest keys hit, the 6
  // evicted ones miss, and insertions - evictions == resident size.
  std::string out;
  uint64_t observed_hits = 0, observed_misses = 0;
  for (int i = 0; i < 10; ++i) {
    (cache.Get("key" + std::to_string(i), &out) ? observed_hits
                                                : observed_misses)++;
  }
  EXPECT_EQ(observed_hits, 4u);
  EXPECT_EQ(observed_misses, 6u);
  EXPECT_EQ(10u - cache.evictions(), cache.size());
}

TEST(QueryEngine, CacheEvictionsExportedAsMetric) {
  auto kb = MakeKb();
  // A deliberately tiny cache: 1 shard x 2 entries, so distinct entity
  // lookups overflow it immediately.
  serve::QueryEngineOptions options;
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  serve::QueryEngine engine(options);
  engine.Publish(serve::Snapshot::Build(kb, {.version = 1}));

  auto& evictions = util::Metrics().GetCounter("ltee.serve.cache.evictions");
  auto& misses = util::Metrics().GetCounter("ltee.serve.cache.misses");
  const uint64_t evictions_before = evictions.value();
  const uint64_t misses_before = misses.value();
  const uint64_t cache_evictions_before = engine.cache().evictions();

  for (int64_t id = 0; id < 5; ++id) engine.EntityById(id);

  // 5 distinct keys through a 2-entry cache: 5 misses, 3 evictions —
  // and misses reconcile against resident + evicted entries.
  EXPECT_EQ(misses.value() - misses_before, 5u);
  const uint64_t evicted = engine.cache().evictions() - cache_evictions_before;
  EXPECT_EQ(evicted, 3u);
  EXPECT_EQ(evictions.value() - evictions_before, evicted);
  EXPECT_EQ(engine.cache().size() + evicted, 5u);
}

// ---------------------------------------------------------------------------
// Query engine

TEST(QueryEngine, ServesEntitiesSearchAndClassesAsValidJson) {
  auto kb = MakeKb();
  serve::QueryEngine engine;
  EXPECT_EQ(engine.EntityById(0).status, 503);
  engine.Publish(serve::Snapshot::Build(kb, {.version = 3}));

  for (auto result :
       {engine.EntityById(0), engine.EntityByLabel("Midnight Ballad"),
        engine.Search("player", 3), engine.Classes(),
        engine.ClassInstances("Player", 2), engine.SnapshotInfo(),
        engine.EntityById(999), engine.ClassInstances("Nope", 2)}) {
    std::string error;
    EXPECT_TRUE(util::JsonIsValid(result.body, &error))
        << result.body << ": " << error;
  }

  const auto entity = engine.EntityById(0);
  EXPECT_EQ(entity.status, 200);
  EXPECT_NE(entity.body.find("\"snapshot_version\":3"), std::string::npos);
  EXPECT_NE(entity.body.find("\"Player 0\""), std::string::npos);
  EXPECT_NE(entity.body.find("\"team\""), std::string::npos);

  EXPECT_EQ(engine.EntityById(999).status, 404);
  EXPECT_EQ(engine.EntityByLabel("nope").status, 404);
  EXPECT_EQ(engine.ClassInstances("Nope", 2).status, 404);

  const auto search = engine.Search("midnight ballad", 5);
  EXPECT_EQ(search.status, 200);
  EXPECT_NE(search.body.find("Midnight Ballad"), std::string::npos);

  const auto classes = engine.Classes();
  EXPECT_NE(classes.body.find("\"Player\""), std::string::npos);
  EXPECT_NE(classes.body.find("\"instances\":4"), std::string::npos);
}

TEST(QueryEngine, CachesRepeatedQueries) {
  auto kb = MakeKb();
  serve::QueryEngine engine;
  engine.Publish(serve::Snapshot::Build(kb, {.version = 1}));

  auto& hits = util::Metrics().GetCounter("ltee.serve.cache.hits");
  auto& misses = util::Metrics().GetCounter("ltee.serve.cache.misses");
  const uint64_t hits_before = hits.value();
  const uint64_t misses_before = misses.value();

  const auto first = engine.EntityById(1);
  EXPECT_EQ(misses.value(), misses_before + 1);
  const auto second = engine.EntityById(1);
  EXPECT_EQ(hits.value(), hits_before + 1);
  EXPECT_EQ(first.body, second.body);
}

TEST(QueryEngine, CacheKeysIncludeSnapshotVersion) {
  auto kb1 = MakeKb(2);
  serve::QueryEngine engine;
  engine.Publish(serve::Snapshot::Build(kb1, {.version = 1}));
  const auto before = engine.Search("player 1", 3);

  // Same query against a richer snapshot must not serve the v1 entry.
  auto kb2 = MakeKb(4);
  engine.Publish(serve::Snapshot::Build(kb2, {.version = 2}));
  const auto after = engine.Search("player 1", 3);
  EXPECT_NE(before.body, after.body);
  EXPECT_NE(after.body.find("\"snapshot_version\":2"), std::string::npos);

  EXPECT_EQ(util::Metrics()
                .GetGauge("ltee.serve.snapshot.version")
                .value(),
            2.0);
}

/// Staleness regression for the result cache during live promotion: a
/// Publish must make every cached prior-version body unreachable at
/// once, even while readers hammer the very queries that warmed it.
/// Each response must be self-consistent (body content matches its own
/// stamped version) and per-reader monotonic — once a reader has seen
/// v2 it must never again be handed a cached v1 body.
TEST(QueryEngine, PublishNeverServesStaleCachedBodies) {
  const auto make_kb = [](const std::string& tag) {
    kb::KnowledgeBase kb;
    const kb::ClassId cls = kb.AddClass("Thing");
    kb.AddInstance(cls, {"payload " + tag}, 1.0);
    return kb;
  };

  serve::QueryEngine engine;
  auto kb1 = make_kb("v1");
  engine.Publish(serve::Snapshot::Build(kb1, {.version = 1}));
  // Warm the cache with v1 entries for the exact queries readers issue.
  ASSERT_EQ(engine.EntityById(0).status, 200);
  ASSERT_EQ(engine.Search("payload", 3).status, 200);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&engine, &stop, &violations] {
      uint64_t highest_seen = 1;
      while (!stop.load()) {
        for (const auto& result :
             {engine.EntityById(0), engine.Search("payload", 3)}) {
          util::JsonValue doc;
          std::string error;
          if (result.status != 200 ||
              !util::ParseJson(result.body, &doc, &error)) {
            ++violations;
            continue;
          }
          const auto version =
              static_cast<uint64_t>(doc.NumberOr("snapshot_version", 0));
          // The body must carry its own version's payload — a v2-stamped
          // response with v1 content would be a torn cache entry.
          if (result.body.find("payload v" + std::to_string(version)) ==
              std::string::npos) {
            ++violations;
          }
          // Monotonic per reader: Publish swaps the snapshot pointer
          // before any cache fill for the new version, so a reader that
          // has observed v2 can never fall back to a v1 cache hit.
          if (version < highest_seen) ++violations;
          if (version > highest_seen) highest_seen = version;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto kb2 = make_kb("v2");
  engine.Publish(serve::Snapshot::Build(kb2, {.version = 2}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(violations.load(), 0);

  // The prior-version entries are unreachable for good: both warmed
  // queries now serve v2 bodies.
  EXPECT_NE(engine.EntityById(0).body.find("payload v2"),
            std::string::npos);
  EXPECT_NE(engine.Search("payload", 3).body.find("payload v2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Regression-gate units (the report_diff core)

obsv::GateMetricMap OneMetric(const std::string& name, double value,
                              const std::string& unit) {
  obsv::GateMetricMap map;
  map[name] = {value, unit};
  return map;
}

TEST(RegressionGate, LatencyPercentileUnitsGateUpward) {
  using obsv::GateDirection;
  EXPECT_EQ(obsv::GateDirectionOf("ms_p50"), GateDirection::kHigherIsWorse);
  EXPECT_EQ(obsv::GateDirectionOf("ms_p95"), GateDirection::kHigherIsWorse);
  EXPECT_EQ(obsv::GateDirectionOf("ms_p99"), GateDirection::kHigherIsWorse);
  EXPECT_TRUE(obsv::IsLatencyPercentileUnit("ms_p95"));
  EXPECT_FALSE(obsv::IsLatencyPercentileUnit("ms"));

  obsv::GateThresholds thresholds;  // time +25%, floor 1ms
  // 10ms -> 20ms p95: +100%, above the floor — regression.
  auto report = obsv::CompareGateMetrics(
      OneMetric("serve_load/latency_p95", 10.0, "ms_p95"),
      OneMetric("serve_load/latency_p95", 20.0, "ms_p95"), thresholds);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.deltas[0].regressed);
  EXPECT_EQ(report.regressions, 1u);

  // Within threshold: no regression.
  report = obsv::CompareGateMetrics(
      OneMetric("serve_load/latency_p95", 10.0, "ms_p95"),
      OneMetric("serve_load/latency_p95", 11.0, "ms_p95"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // Microsecond-scale noise below the 1ms floor never gates, even at
  // +200%.
  report = obsv::CompareGateMetrics(
      OneMetric("serve_load/latency_p95", 0.005, "ms_p95"),
      OneMetric("serve_load/latency_p95", 0.015, "ms_p95"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // Crossing the floor upward does gate.
  report = obsv::CompareGateMetrics(
      OneMetric("serve_load/latency_p95", 0.5, "ms_p95"),
      OneMetric("serve_load/latency_p95", 2.0, "ms_p95"), thresholds);
  EXPECT_EQ(report.regressions, 1u);
}

TEST(RegressionGate, ThroughputGatesDownwardImprovementsPass) {
  obsv::GateThresholds thresholds;
  EXPECT_EQ(obsv::GateDirectionOf("ops_s"),
            obsv::GateDirection::kLowerIsWorse);
  // Halving throughput regresses; doubling it does not.
  auto report = obsv::CompareGateMetrics(
      OneMetric("serve_load/throughput", 1000.0, "ops_s"),
      OneMetric("serve_load/throughput", 500.0, "ops_s"), thresholds);
  EXPECT_EQ(report.regressions, 1u);
  report = obsv::CompareGateMetrics(
      OneMetric("serve_load/throughput", 1000.0, "ops_s"),
      OneMetric("serve_load/throughput", 2000.0, "ops_s"), thresholds);
  EXPECT_EQ(report.regressions, 0u);
  // A big latency drop is an improvement, not a regression.
  report = obsv::CompareGateMetrics(
      OneMetric("serve_load/latency_p95", 20.0, "ms_p95"),
      OneMetric("serve_load/latency_p95", 5.0, "ms_p95"), thresholds);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(RegressionGate, PctOverheadUnitGatesUpwardAboveItsFloor) {
  EXPECT_EQ(obsv::GateDirectionOf("pct"),
            obsv::GateDirection::kHigherIsWorse);
  obsv::GateThresholds thresholds;  // time +25%, min_pct floor 3.0

  // Both sides under the 3% budget: relative jumps are noise, no gate —
  // this is what keeps the profiler-overhead metric quiet at 1% -> 2%.
  auto report = obsv::CompareGateMetrics(
      OneMetric("micro_perf/profiler_overhead_pct", 1.0, "pct"),
      OneMetric("micro_perf/profiler_overhead_pct", 2.0, "pct"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // Crossing the budget with a big relative jump gates.
  report = obsv::CompareGateMetrics(
      OneMetric("micro_perf/profiler_overhead_pct", 2.0, "pct"),
      OneMetric("micro_perf/profiler_overhead_pct", 5.0, "pct"), thresholds);
  EXPECT_EQ(report.regressions, 1u);

  // Above the floor but within the relative threshold: still fine.
  report = obsv::CompareGateMetrics(
      OneMetric("micro_perf/profiler_overhead_pct", 4.0, "pct"),
      OneMetric("micro_perf/profiler_overhead_pct", 4.5, "pct"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // Overhead going down is an improvement, never a regression.
  report = obsv::CompareGateMetrics(
      OneMetric("micro_perf/profiler_overhead_pct", 5.0, "pct"),
      OneMetric("micro_perf/profiler_overhead_pct", 1.0, "pct"), thresholds);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(RegressionGate, MbMemoryUnitGatesUpwardAboveItsFloor) {
  EXPECT_EQ(obsv::GateDirectionOf("mb"),
            obsv::GateDirection::kHigherIsWorse);
  obsv::GateThresholds thresholds;  // time +25%, min_mb floor 50.0

  // The acceptance scenario: a 100 MB -> 150 MB peak-RSS jump is +50%,
  // both sides past the floor — must gate.
  auto report = obsv::CompareGateMetrics(
      OneMetric("run/peak_rss_mb", 100.0, "mb"),
      OneMetric("run/peak_rss_mb", 150.0, "mb"), thresholds);
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.deltas[0].regressed);
  EXPECT_EQ(report.regressions, 1u);

  // Both sides under the 50 MB floor: allocator noise, never gates even
  // at +150%.
  report = obsv::CompareGateMetrics(
      OneMetric("run/peak_rss_mb", 12.0, "mb"),
      OneMetric("run/peak_rss_mb", 30.0, "mb"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // Crossing the floor upward with a big relative jump gates.
  report = obsv::CompareGateMetrics(
      OneMetric("run/peak_rss_mb", 40.0, "mb"),
      OneMetric("run/peak_rss_mb", 80.0, "mb"), thresholds);
  EXPECT_EQ(report.regressions, 1u);

  // Above the floor but within the relative threshold: fine.
  report = obsv::CompareGateMetrics(
      OneMetric("run/peak_rss_mb", 100.0, "mb"),
      OneMetric("run/peak_rss_mb", 110.0, "mb"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // Memory going down is an improvement, never a regression.
  report = obsv::CompareGateMetrics(
      OneMetric("run/peak_rss_mb", 150.0, "mb"),
      OneMetric("run/peak_rss_mb", 100.0, "mb"), thresholds);
  EXPECT_EQ(report.regressions, 0u);

  // A raised --min-mb floor silences a pair the default would gate.
  thresholds.min_mb = 200.0;
  report = obsv::CompareGateMetrics(
      OneMetric("run/peak_rss_mb", 100.0, "mb"),
      OneMetric("run/peak_rss_mb", 150.0, "mb"), thresholds);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(RegressionGate, FlattensRunReportPeakRssAsMbMetric) {
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::ParseJson(
      R"({"total_seconds":1.5,"peak_rss_bytes":157286400,)"
      R"("stages":[{"stage":"prepare","seconds":0.5,"live_bytes_delta":1024}],)"
      R"("metrics":{"counters":{},"gauges":{}}})",
      &doc, &error))
      << error;
  obsv::GateMetricMap map;
  ASSERT_TRUE(obsv::FlattenGateSnapshot(doc, &map, &error)) << error;
  ASSERT_TRUE(map.count("run/peak_rss_mb"));
  EXPECT_DOUBLE_EQ(map.at("run/peak_rss_mb").value, 150.0);
  EXPECT_EQ(map.at("run/peak_rss_mb").unit, "mb");

  // Reports without the field (older snapshots, unsupported platforms
  // writing 0) flatten without the metric — no spurious comparisons.
  util::JsonValue old_doc;
  ASSERT_TRUE(util::ParseJson(
      R"({"total_seconds":1.5,"peak_rss_bytes":0,"stages":[],)"
      R"("metrics":{"counters":{},"gauges":{}}})",
      &old_doc, &error))
      << error;
  obsv::GateMetricMap old_map;
  ASSERT_TRUE(obsv::FlattenGateSnapshot(old_doc, &old_map, &error)) << error;
  EXPECT_FALSE(old_map.count("run/peak_rss_mb"));
}

TEST(RegressionGate, FlattensBenchHistoryEntriesWithUnits) {
  util::JsonValue doc;
  std::string error;
  ASSERT_TRUE(util::ParseJson(
      R"({"commit":"abc","results":[)"
      R"({"bench":"serve_load","metric":"latency_p95","value":3.5,"unit":"ms_p95"},)"
      R"({"bench":"serve_load","metric":"throughput","value":1200,"unit":"ops_s"}]})",
      &doc, &error))
      << error;
  obsv::GateMetricMap map;
  ASSERT_TRUE(obsv::FlattenGateSnapshot(doc, &map, &error)) << error;
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at("serve_load/latency_p95").unit, "ms_p95");
  EXPECT_EQ(map.at("serve_load/throughput").value, 1200.0);

  util::JsonValue bogus;
  ASSERT_TRUE(util::ParseJson("{\"x\":1}", &bogus, &error));
  obsv::GateMetricMap empty;
  EXPECT_FALSE(obsv::FlattenGateSnapshot(bogus, &empty, &error));
}

// ---------------------------------------------------------------------------
// HTTP endpoints

TEST(KbEndpoints, ServeEntitySearchClassesOverHttp) {
  auto kb = MakeKb();
  serve::QueryEngine engine;
  engine.Publish(serve::Snapshot::Build(kb, {.version = 5}));

  obsv::HttpServer server;
  serve::RegisterKbEndpoints(&server, &engine);
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  int status = 0;
  std::string body;
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/entity?id=0", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(util::JsonIsValid(body, &error)) << body << ": " << error;
  EXPECT_NE(body.find("Player 0"), std::string::npos);

  ASSERT_TRUE(obsv::HttpGet(server.port(),
                            "/kb/entity?label=midnight+ballad", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("Midnight Ballad"), std::string::npos);

  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/search?q=player&k=2",
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(util::JsonIsValid(body, &error)) << body << ": " << error;

  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/classes", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"Player\""), std::string::npos);

  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/snapshot", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"snapshot_version\":5"), std::string::npos);

  // Parameter and lookup failures per RFC 9110.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/entity", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 400);
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/entity?id=banana", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 400);
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/search", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 400);
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/kb/entity?id=12345", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 404);

  // The serve metrics observed this traffic.
  const auto snapshot = util::Metrics().Snapshot();
  bool saw_requests = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "ltee.serve.requests") saw_requests = value > 0;
  }
  EXPECT_TRUE(saw_requests);
  server.Stop();
}

/// The serve series must reach the Prometheus exposition on the same
/// StatusServer that `ltee_cli serve` runs, name-mangled per the shared
/// scheme (ltee.serve.cache.hits -> ltee_serve_cache_hits_total).
TEST(KbEndpoints, ServeMetricsAppearOnPrometheusEndpoint) {
  auto kb = MakeKb();
  serve::QueryEngine engine;
  engine.Publish(serve::Snapshot::Build(kb, {.version = 7}));

  obsv::StatusServer status_server;
  serve::RegisterKbEndpoints(&status_server.http(), &engine);
  std::string error;
  ASSERT_TRUE(status_server.Start(0, &error)) << error;

  int status = 0;
  std::string body;
  ASSERT_TRUE(obsv::HttpGet(status_server.port(), "/kb/search?q=player&k=2",
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);

  ASSERT_TRUE(obsv::HttpGet(status_server.port(), "/metrics", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("ltee_serve_requests_total"), std::string::npos);
  EXPECT_NE(body.find("ltee_serve_queries_total"), std::string::npos);
  EXPECT_NE(body.find("ltee_serve_snapshot_version 7"), std::string::npos);
  EXPECT_NE(body.find("ltee_serve_request_ms_bucket"), std::string::npos);
  status_server.Stop();
}

// ---------------------------------------------------------------------------
// Concurrency: the RCU snapshot swap

/// Readers hammer the engine while a writer publishes progressively
/// larger snapshots. Every response must be internally consistent with
/// exactly one published version: snapshot v has v+1 entities and every
/// entity label carries the version stamp. A torn read (fields from two
/// snapshots in one response) or a use-after-free under ASan fails.
TEST(QueryEngine, AtomicSnapshotSwapUnderConcurrentReaders) {
  constexpr int kVersions = 12;
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 400;

  const auto make_versioned_kb = [](uint64_t version) {
    kb::KnowledgeBase kb;
    const kb::ClassId cls = kb.AddClass("Thing");
    // Version v: v+1 entities labelled "thing <v> <i>".
    for (uint64_t i = 0; i <= version; ++i) {
      kb.AddInstance(cls,
                     {"thing v" + std::to_string(version) + " n" +
                      std::to_string(i)},
                     1.0);
    }
    return kb;
  };

  serve::QueryEngine engine;
  {
    auto kb = make_versioned_kb(1);
    engine.Publish(serve::Snapshot::Build(kb, {.version = 1}));
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &done, &failures] {
      for (int i = 0; i < kReadsPerReader && !done.load(); ++i) {
        // /kb/snapshot: entity count must equal version + 1.
        const auto info = engine.SnapshotInfo();
        util::JsonValue doc;
        std::string error;
        if (!util::ParseJson(info.body, &doc, &error)) {
          ++failures;
          continue;
        }
        const double version = doc.NumberOr("snapshot_version", -1);
        const double entities = doc.NumberOr("entities", -1);
        if (entities != version + 1) ++failures;

        // /kb/entity: the label stamp must match the response's claimed
        // version (both fields rendered from one snapshot).
        const auto entity = engine.EntityById(0);
        if (entity.status != 200) {
          ++failures;
          continue;
        }
        util::JsonValue entity_doc;
        if (!util::ParseJson(entity.body, &entity_doc, &error)) {
          ++failures;
          continue;
        }
        const double claimed = entity_doc.NumberOr("snapshot_version", -1);
        const std::string expected =
            "thing v" + std::to_string(static_cast<uint64_t>(claimed)) + " ";
        if (entity.body.find(expected) == std::string::npos) ++failures;
      }
    });
  }

  for (uint64_t version = 2; version <= kVersions; ++version) {
    auto kb = make_versioned_kb(version);
    engine.Publish(serve::Snapshot::Build(kb, {.version = version}));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // After the last publish every new read sees the final version.
  const auto final_info = engine.SnapshotInfo();
  EXPECT_NE(final_info.body.find("\"snapshot_version\":" +
                                 std::to_string(kVersions)),
            std::string::npos);
}

}  // namespace
}  // namespace ltee
