// End-to-end observability: a traced pipeline run over the shared
// synthetic dataset must produce spans for every stage, a structurally
// valid RunReport JSON, and non-zero counters for the instrumented
// subsystems (thread pool, pair cache, prepared corpus).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/pipeline.h"
#include "pipeline/run_report.h"
#include "pipeline/training.h"
#include "test_dataset.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ltee::pipeline {
namespace {

using ::ltee::testing::SharedDataset;

/// One traced, trained run shared by all tests in this file. Tracing is
/// enabled before Run so that every stage records spans.
struct TracedRun {
  std::unique_ptr<LteePipeline> pipeline;
  PipelineRunResult run;
  std::string trace_json;
};

const TracedRun& SharedTracedRun() {
  static const TracedRun* state = [] {
    util::trace::Clear();
    util::trace::SetEnabled(true);
    const auto& ds = SharedDataset();
    auto* s = new TracedRun;
    PipelineOptions options;
    s->pipeline = std::make_unique<LteePipeline>(ds.kb, options);
    util::Rng rng(41);
    TrainPipelineOnGold(s->pipeline.get(), ds.gs_corpus, ds.gold, rng);
    std::vector<kb::ClassId> classes;
    for (const auto& gs : ds.gold) classes.push_back(gs.cls);
    s->run = s->pipeline->Run(ds.gs_corpus, classes);
    s->trace_json = util::trace::ExportChromeTrace();
    util::trace::SetEnabled(false);
    return s;
  }();
  return *state;
}

uint64_t CounterValue(const util::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& [counter, value] : snapshot.counters) {
    if (counter == name) return value;
  }
  return 0;
}

TEST(ObservabilityTest, TraceIsValidJsonWithSpansForEveryStage) {
  const auto& traced = SharedTracedRun();
  std::string error;
  ASSERT_TRUE(util::JsonIsValid(traced.trace_json, &error)) << error;
  for (const char* span : {
           "\"pipeline.run\"", "\"webtable.prepare_corpus\"",
           "\"pipeline.schema_match\"", "\"matching.schema_match\"",
           "\"pipeline.class_sweep\"", "\"pipeline.run_class\"",
           "\"rowcluster.metric_bank\"", "\"rowcluster.cluster\"",
           "\"fusion.create\"", "\"newdetect.detect\"",
       }) {
    EXPECT_NE(traced.trace_json.find(span), std::string::npos)
        << "missing span " << span;
  }
}

TEST(ObservabilityTest, ReportHasAllPipelineStages) {
  const auto& report = SharedTracedRun().run.report;
  std::vector<std::string> stages;
  for (const auto& stage : report.stages) {
    stages.push_back(stage.stage);
    EXPECT_GE(stage.seconds, 0.0);
  }
  const std::vector<std::string> expected = {
      "prepare_corpus",       "schema_match.iter1", "class_sweep.iter1",
      "collect_feedback.iter1", "schema_match.iter2", "class_sweep.iter2",
      "collect_feedback.iter2"};
  EXPECT_EQ(stages, expected);
  EXPECT_GT(report.total_seconds, 0.0);
  // One ClassStageReport per class per iteration, each with stage timings.
  EXPECT_EQ(report.classes.size(), SharedDataset().gold.size() * 2);
  for (const auto& class_report : report.classes) {
    EXPECT_FALSE(class_report.stages.empty());
  }
}

TEST(ObservabilityTest, ReportJsonIsValid) {
  const auto& report = SharedTracedRun().run.report;
  const std::string json = RunReportToJson(report);
  std::string error;
  ASSERT_TRUE(util::JsonIsValid(json, &error)) << error;
  EXPECT_NE(json.find("\"total_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"prepare_corpus\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(ObservabilityTest, InstrumentedSubsystemCountersAreNonZero) {
  const auto& metrics = SharedTracedRun().run.report.metrics;
  EXPECT_GT(CounterValue(metrics, "ltee.threadpool.tasks_completed"), 0u);
  EXPECT_GT(CounterValue(metrics, "ltee.prepared.tables"), 0u);
  EXPECT_GT(CounterValue(metrics, "ltee.rowcluster.pair_cache.misses"), 0u);
  EXPECT_GT(CounterValue(metrics, "ltee.fusion.entities_created"), 0u);
  EXPECT_GT(CounterValue(metrics, "ltee.newdetect.entities_scored"), 0u);
  EXPECT_GT(CounterValue(metrics, "ltee.matching.columns_matched"), 0u);
}

}  // namespace
}  // namespace ltee::pipeline
