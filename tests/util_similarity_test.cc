#include "util/similarity.h"

#include <gtest/gtest.h>

namespace ltee::util {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
}

TEST(LevenshteinSimilarityTest, NormalizedToUnitInterval) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-9);
}

TEST(JaccardTest, SetOverlap) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(std::vector<std::string>{},
                                     std::vector<std::string>{}),
                   1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, std::vector<std::string>{}),
                   0.0);
  // Duplicates are set-collapsed.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a"}, {"a"}), 1.0);
}

TEST(MongeElkanTest, IdenticalTokensAreFullySimilar) {
  EXPECT_DOUBLE_EQ(MongeElkanLevenshtein("John Smith", "John Smith"), 1.0);
}

TEST(MongeElkanTest, TokenOrderDoesNotMatter) {
  EXPECT_DOUBLE_EQ(MongeElkanLevenshtein("Smith John", "John Smith"), 1.0);
}

TEST(MongeElkanTest, RobustToSmallTypos) {
  const double sim = MongeElkanLevenshtein("Jon Smith", "John Smith");
  EXPECT_GT(sim, 0.85);
  EXPECT_LT(sim, 1.0);
}

TEST(MongeElkanTest, DissimilarStringsScoreLow) {
  EXPECT_LT(MongeElkanLevenshtein("Springfield", "Tokyo"), 0.5);
}

TEST(MongeElkanTest, SubsetOfTokensScoresHighViaSymmetry) {
  // The directed score from the shorter side is perfect; the symmetrized
  // maximum keeps it high.
  EXPECT_DOUBLE_EQ(MongeElkanLevenshtein("Smith", "John Smith"), 1.0);
}

TEST(CosineBinaryTest, OverlapScaledByNorms) {
  std::unordered_set<std::string> a = {"x", "y"};
  std::unordered_set<std::string> b = {"y", "z"};
  EXPECT_NEAR(CosineBinary(a, b), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(CosineBinary(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineBinary({}, a), 0.0);
}

TEST(CosineSparseTest, MatchesDenseEquivalent) {
  std::unordered_map<uint32_t, double> a = {{1, 1.0}, {2, 2.0}};
  std::unordered_map<uint32_t, double> b = {{2, 2.0}, {3, 1.0}};
  // dot = 4, |a| = sqrt(5), |b| = sqrt(5).
  EXPECT_NEAR(CosineSparse(a, b), 4.0 / 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(CosineSparse({}, b), 0.0);
}

TEST(CosineDenseTest, OrthogonalAndParallel) {
  EXPECT_DOUBLE_EQ(CosineDense({1, 0}, {0, 1}), 0.0);
  EXPECT_NEAR(CosineDense({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

}  // namespace
}  // namespace ltee::util
