// Remaining coverage: logging levels, clusterer option edges, schema
// matcher defaults, fusion date resolution, detector popularity handling.

#include <gtest/gtest.h>

#include "cluster/correlation_clusterer.h"
#include "fusion/entity_creator.h"
#include "matching/schema_matcher.h"
#include "pipeline/pipeline.h"
#include "test_dataset.h"
#include "util/logging.h"

namespace ltee {
namespace {

using ::ltee::testing::SharedDataset;

TEST(LoggingTest, LevelGate) {
  const auto previous = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kError);
  EXPECT_EQ(util::GetLogLevel(), util::LogLevel::kError);
  // Below-threshold logging must not crash and must be cheap.
  LTEE_LOG(kDebug) << "suppressed";
  LTEE_LOG(kInfo) << "suppressed";
  util::SetLogLevel(previous);
}

TEST(ClusteringOptionsTest, CandidateClusterCapHolds) {
  // 40 items, all mutually similar, all sharing one block, but the
  // candidate cap of 1 forces the greedy phase to consider only one
  // cluster per item; the KLj phase then merges what remains.
  cluster::ClusteringOptions options;
  options.max_candidate_clusters = 1;
  options.batch_size = 1;
  auto result = cluster::ClusterCorrelation(
      40, [](int, int) { return 1.0; },
      std::vector<std::vector<int32_t>>(40, {0}), options);
  EXPECT_EQ(result.num_clusters, 1);
}

TEST(SchemaMatcherTest, UnlearnedMatcherUsesUniformWeightsAndDefaults) {
  const auto& ds = SharedDataset();
  auto dict = std::make_shared<util::TokenDictionary>();
  auto index = pipeline::BuildKbLabelIndex(ds.kb, dict);
  webtable::PreparedCorpus prepared(ds.gs_corpus, dict);
  matching::SchemaMatcherOptions options;
  options.default_threshold = 0.99;  // practically unmatchable
  matching::SchemaMatcher matcher(ds.kb, index, options);
  auto mapping = matcher.MatchTable(prepared, ds.gold.front().tables[0]);
  // With a prohibitive default threshold and no learned per-property
  // thresholds, (almost) nothing may match.
  size_t matched = 0;
  for (const auto& col : mapping.columns) {
    matched += col.property != kb::kInvalidProperty &&
                       col.score < options.default_threshold
                   ? 1
                   : 0;
  }
  EXPECT_EQ(matched, 0u);
}

TEST(DateFusionTest, ResolvesToClosestMember) {
  kb::KnowledgeBase kb;
  auto cls = kb.AddClass("C");
  auto date_prop = kb.AddProperty(cls, "released", types::DataType::kDate);

  rowcluster::ClassRowSet rows;
  rows.cls = cls;
  rows.tables = {0};
  rows.table_implicit.resize(1);
  rows.table_phi.resize(1);
  for (int r = 0; r < 3; ++r) {
    rowcluster::RowFeature feature;
    feature.ref = {0, r};
    feature.table_index = 0;
    feature.raw_label = "Song";
    feature.normalized_label = "song";
    rows.rows.push_back(std::move(feature));
  }
  // Three dates in the same year (grouped equal at year granularity when
  // one side is year-granular): 1987-03-02, 1987-03-04, 1987 (year).
  rows.rows[0].values.push_back(
      {date_prop, 1, types::Value::DayDate(1987, 3, 2)});
  rows.rows[1].values.push_back(
      {date_prop, 1, types::Value::DayDate(1987, 3, 4)});
  rows.rows[2].values.push_back({date_prop, 1, types::Value::YearDate(1987)});

  webtable::TableCorpus corpus;
  webtable::WebTable table;
  table.headers = {"Title", "Released"};
  table.rows = {{"Song", "x"}, {"Song", "y"}, {"Song", "z"}};
  corpus.Add(std::move(table));
  matching::SchemaMapping mapping;
  mapping.tables.resize(1);
  mapping.tables[0].table = 0;
  mapping.tables[0].columns.resize(2);

  fusion::EntityCreator creator(kb);
  webtable::PreparedCorpus prepared(corpus);
  auto entities = creator.Create(rows, {0, 0, 0}, mapping, prepared);
  ASSERT_EQ(entities.size(), 1u);
  const types::Value* fused = entities[0].FactOf(date_prop);
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->date.year, 1987);
  // The fused value is one of the actual members, not an invented date.
  const bool is_member = (fused->date.granularity ==
                              types::DateGranularity::kYear) ||
                         (fused->date.month == 3 &&
                          (fused->date.day == 2 || fused->date.day == 4));
  EXPECT_TRUE(is_member);
}

TEST(PipelineOptionsTest, EntityCreatorFactoryAppliesScoringOverride) {
  const auto& ds = SharedDataset();
  pipeline::PipelineOptions options;
  options.fusion.scoring = fusion::ScoringApproach::kVoting;
  pipeline::LteePipeline pipe(ds.kb, options);
  // MakeEntityCreator(scoring) must not mutate the pipeline's defaults.
  auto kbt = pipe.MakeEntityCreator(fusion::ScoringApproach::kKbt);
  (void)kbt;
  EXPECT_EQ(pipe.options().fusion.scoring, fusion::ScoringApproach::kVoting);
}

}  // namespace
}  // namespace ltee
