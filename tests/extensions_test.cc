#include <gtest/gtest.h>

#include <sstream>

#include "pipeline/dedup.h"
#include "pipeline/kb_update.h"
#include "pipeline/slot_filling.h"

namespace ltee::pipeline {
namespace {

fusion::CreatedEntity MakeEntity(kb::ClassId cls, std::string label,
                                 std::vector<kb::Fact> facts) {
  fusion::CreatedEntity entity;
  entity.cls = cls;
  entity.labels = {std::move(label)};
  entity.facts = std::move(facts);
  entity.rows = {{0, 0}};
  return entity;
}

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cls_ = kb_.AddClass("C");
    team_ = kb_.AddProperty(cls_, "team", types::DataType::kInstanceReference);
    pop_ = kb_.AddProperty(cls_, "pop", types::DataType::kQuantity);
    existing_ = kb_.AddInstance(cls_, {"Springfield"});
    kb_.AddFact(existing_, team_, types::Value::InstanceRef("red team"));
    // pop slot of `existing_` is empty.
  }
  kb::KnowledgeBase kb_;
  kb::ClassId cls_;
  kb::PropertyId team_, pop_;
  kb::InstanceId existing_;
};

// ---------------------------------------------------------------------------
// AddNewEntitiesToKb / ExportNTriples
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, AddNewEntitiesCreatesInstancesWithFacts) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Newtown",
                 {{team_, types::Value::InstanceRef("blue team")},
                  {pop_, types::Value::OfQuantity(1234)}}),
      MakeEntity(cls_, "Springfield", {})};
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = true;
  detections[1].is_new = false;
  detections[1].instance = existing_;

  const size_t before = kb_.num_instances();
  auto result = AddNewEntitiesToKb(&kb_, entities, detections);
  EXPECT_EQ(result.instances_added, 1u);
  EXPECT_EQ(result.facts_added, 2u);
  EXPECT_EQ(kb_.num_instances(), before + 1);
  const auto& added = kb_.instance(result.new_instance_ids[0]);
  EXPECT_EQ(added.labels.front(), "Newtown");
  EXPECT_EQ(added.cls, cls_);
  ASSERT_NE(kb_.FactOf(added.id, pop_), nullptr);
  EXPECT_DOUBLE_EQ(kb_.FactOf(added.id, pop_)->number, 1234.0);
}

TEST_F(ExtensionsTest, MinFactsFilterSkipsThinEntities) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Thin",
                 {{pop_, types::Value::OfQuantity(5)}}),
      MakeEntity(cls_, "Rich",
                 {{team_, types::Value::InstanceRef("blue team")},
                  {pop_, types::Value::OfQuantity(1)}})};
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = detections[1].is_new = true;
  KbUpdateOptions options;
  options.min_facts = 2;
  auto result = AddNewEntitiesToKb(&kb_, entities, detections, options);
  EXPECT_EQ(result.instances_added, 1u);
  EXPECT_EQ(kb_.instance(result.new_instance_ids[0]).labels.front(), "Rich");
}

TEST_F(ExtensionsTest, NTriplesExportShapes) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "New Town",
                 {{team_, types::Value::InstanceRef("blue team")},
                  {pop_, types::Value::OfQuantity(1234)}})};
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = true;
  std::stringstream out;
  ExportNTriples(kb_, entities, detections, "http://example.org/", out);
  const std::string triples = out.str();
  EXPECT_NE(triples.find("<http://example.org/resource/new_town_0>"),
            std::string::npos);
  EXPECT_NE(triples.find("rdf-syntax-ns#type"), std::string::npos);
  EXPECT_NE(triples.find("<http://example.org/ontology/team> "
                         "<http://example.org/resource/blue_team>"),
            std::string::npos);
  EXPECT_NE(triples.find("XMLSchema#double"), std::string::npos);
  // Every line is a triple terminated by " .".
  std::istringstream lines(triples);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.substr(line.size() - 2), " .");
  }
}

// ---------------------------------------------------------------------------
// Slot filling
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, SlotFillingFillsOnlyEmptySlots) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Springfield",
                 {{team_, types::Value::InstanceRef("red team")},  // confirm
                  {pop_, types::Value::OfQuantity(777)}})};        // fill
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = false;
  detections[0].instance = existing_;

  auto result = FillSlots(kb_, entities, detections);
  EXPECT_EQ(result.confirmations, 1u);
  EXPECT_EQ(result.conflicts, 0u);
  ASSERT_EQ(result.new_facts.size(), 1u);
  EXPECT_EQ(result.new_facts[0].property, pop_);
  EXPECT_EQ(result.new_facts[0].instance, existing_);

  EXPECT_EQ(ApplySlotFills(&kb_, result.new_facts), 1u);
  ASSERT_NE(kb_.FactOf(existing_, pop_), nullptr);
  EXPECT_DOUBLE_EQ(kb_.FactOf(existing_, pop_)->number, 777.0);
  // Idempotent: applying again adds nothing.
  EXPECT_EQ(ApplySlotFills(&kb_, result.new_facts), 0u);
}

TEST_F(ExtensionsTest, SlotFillingCountsConflicts) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Springfield",
                 {{team_, types::Value::InstanceRef("blue team")}})};
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = false;
  detections[0].instance = existing_;
  auto result = FillSlots(kb_, entities, detections);
  EXPECT_EQ(result.conflicts, 1u);
  EXPECT_TRUE(result.new_facts.empty());
}

TEST_F(ExtensionsTest, SlotFillingIgnoresNewEntities) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Newtown", {{pop_, types::Value::OfQuantity(5)}})};
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = true;
  auto result = FillSlots(kb_, entities, detections);
  EXPECT_TRUE(result.new_facts.empty());
}

// ---------------------------------------------------------------------------
// Entity deduplication
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, DedupMergesAgreeingDuplicates) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Blue Moon",
                 {{team_, types::Value::InstanceRef("blue team")},
                  {pop_, types::Value::OfQuantity(100)}}),
      MakeEntity(cls_, "Blue Moon",
                 {{team_, types::Value::InstanceRef("blue team")}})};
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = true;
  detections[1].is_new = false;
  detections[1].instance = existing_;

  auto result = DeduplicateEntities(entities, detections);
  EXPECT_EQ(result.merges, 1u);
  ASSERT_EQ(result.entities.size(), 1u);
  // Rows and facts merged; the existing-match detection survives.
  EXPECT_EQ(result.entities[0].rows.size(), 2u);
  EXPECT_EQ(result.entities[0].facts.size(), 2u);
  EXPECT_FALSE(result.detections[0].is_new);
  EXPECT_EQ(result.detections[0].instance, existing_);
}

TEST_F(ExtensionsTest, DedupKeepsDisagreeingHomonymsApart) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Blue Moon",
                 {{team_, types::Value::InstanceRef("blue team")}}),
      MakeEntity(cls_, "Blue Moon",
                 {{team_, types::Value::InstanceRef("red team")}})};
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = detections[1].is_new = true;
  auto result = DeduplicateEntities(entities, detections);
  EXPECT_EQ(result.merges, 0u);
  EXPECT_EQ(result.entities.size(), 2u);
}

TEST_F(ExtensionsTest, DedupWithoutFactOverlapIsConservative) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Blue Moon",
                 {{team_, types::Value::InstanceRef("blue team")}}),
      MakeEntity(cls_, "Blue Moon", {{pop_, types::Value::OfQuantity(9)}})};
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = detections[1].is_new = true;
  auto result = DeduplicateEntities(entities, detections);
  EXPECT_EQ(result.merges, 0u);  // no overlapping facts -> no merge

  DedupOptions loose;
  loose.merge_without_fact_overlap = true;
  auto merged = DeduplicateEntities(entities, detections, loose);
  EXPECT_EQ(merged.merges, 1u);
}

TEST_F(ExtensionsTest, DedupDifferentLabelsNeverMerge) {
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity(cls_, "Blue Moon", {{pop_, types::Value::OfQuantity(9)}}),
      MakeEntity(cls_, "Red Sun", {{pop_, types::Value::OfQuantity(9)}})};
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = detections[1].is_new = true;
  auto result = DeduplicateEntities(entities, detections);
  EXPECT_EQ(result.merges, 0u);
}

}  // namespace
}  // namespace ltee::pipeline
