// Sampling CPU profiler: signal-safe stack capture and symbolization,
// collapsed-profile collection with span attribution, single-capture
// serialization, the /profile endpoint's validation and busy semantics,
// and the trace-vs-profile consistency gate (the two observability
// views of the same fixed-seed run must agree on where the CPU went).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obsv/http_client.h"
#include "obsv/profiler.h"
#include "obsv/span_analytics.h"
#include "obsv/status_server.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "test_dataset.h"
#include "util/json.h"
#include "util/stack_capture.h"
#include "util/trace.h"

namespace ltee {

/// External linkage + noinline so the frame survives optimization and
/// stays out of the anonymous namespace — dladdr (via the test binary's
/// exported symbols) can only name it then.
__attribute__((noinline)) int CaptureStackFromNamedFrame(void** frames,
                                                         int max_depth) {
  const int depth = util::CaptureStack(frames, max_depth);
  // Keep a side effect after the call so the tail call cannot replace
  // this frame on the stack.
  return depth > 0 ? depth : -1;
}

namespace {

/// Burns at least `seconds` of process CPU time (what ITIMER_PROF
/// meters), returning a value the optimizer cannot discard.
uint64_t BurnCpu(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  volatile uint64_t acc = 1;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < seconds) {
    for (int i = 0; i < 10000; ++i) acc = acc * 2862933555777941757ULL + 3037;
  }
  return acc;
}

TEST(StackCapture, CapturesAndSymbolizesTheCallingFrame) {
  if (!util::StackCaptureSupported()) {
    GTEST_SKIP() << "no backtrace/dladdr on this platform";
  }
  util::WarmUpStackCapture();
  void* frames[util::kMaxStackDepth] = {};
  const int depth = CaptureStackFromNamedFrame(frames, util::kMaxStackDepth);
  ASSERT_GT(depth, 1);

  // CaptureStack excludes its own frame, so the leaf is the named helper.
  const util::SymbolizedFrame leaf = util::SymbolizeAddress(frames[0]);
  EXPECT_TRUE(leaf.known) << leaf.name;
  EXPECT_NE(leaf.name.find("CaptureStackFromNamedFrame"), std::string::npos)
      << leaf.name;

  // Every captured address symbolizes to *something* (module+offset at
  // worst, never an empty string).
  for (int i = 0; i < depth; ++i) {
    EXPECT_FALSE(util::SymbolizeAddress(frames[i]).name.empty());
  }
}

TEST(StackCapture, DemangleHandlesMangledAndPlainNames) {
  EXPECT_EQ(util::DemangleSymbol("_Z3foov"), "foo()");
  // Non-mangled input passes through untouched.
  EXPECT_EQ(util::DemangleSymbol("main"), "main");
  EXPECT_EQ(util::DemangleSymbol(""), "");
}

TEST(Profiler, CaptureAttributesSamplesToOpenSpans) {
  if (!util::StackCaptureSupported()) {
    GTEST_SKIP() << "no backtrace/dladdr on this platform";
  }
  obsv::ProfilerOptions options;
  options.hz = 499;
  std::string error;
  ASSERT_TRUE(obsv::StartProfiler(options, &error)) << error;
  EXPECT_TRUE(obsv::ProfilerActive());
  EXPECT_TRUE(util::trace::IsSpanTrackingEnabled());
  {
    // Opened after StartProfiler so the span-name mirror is live.
    util::trace::ScopedSpan span("test.profiler_burn");
    BurnCpu(0.4);
  }
  obsv::StopProfiler();
  EXPECT_FALSE(obsv::ProfilerActive());

  const obsv::ProfileStats stats = obsv::CurrentProfileStats();
  EXPECT_GT(stats.samples, 0u);
  EXPECT_EQ(stats.hz, 499);

  const std::string collapsed = obsv::CollectCollapsedProfile();
  EXPECT_EQ(collapsed.rfind("# ltee-profile ", 0), 0u);
  EXPECT_NE(collapsed.find("span:test.profiler_burn;"), std::string::npos);

  obsv::ProfileAnalysis analysis;
  ASSERT_TRUE(obsv::ParseCollapsedProfile(collapsed, &analysis, &error))
      << error;
  EXPECT_EQ(analysis.hz, 499);
  EXPECT_GT(analysis.samples, 0u);
  uint64_t burn_samples = 0;
  for (const auto& span : analysis.spans) {
    if (span.name == "test.profiler_burn") burn_samples = span.samples;
  }
  // Nearly all CPU burned inside the span; leave slack for test-harness
  // frames sampled outside it.
  EXPECT_GT(burn_samples, analysis.samples / 2);

  obsv::ResetProfiler();
  EXPECT_EQ(obsv::CurrentProfileStats().samples, 0u);
  EXPECT_FALSE(util::trace::IsSpanTrackingEnabled());
}

TEST(Profiler, SecondConcurrentCaptureIsRefusedUntilReset) {
  if (!util::StackCaptureSupported()) {
    GTEST_SKIP() << "no backtrace/dladdr on this platform";
  }
  obsv::ProfilerOptions options;
  std::string error;
  ASSERT_TRUE(obsv::StartProfiler(options, &error)) << error;
  // The session is exclusive: no second start, no bounded capture.
  EXPECT_FALSE(obsv::StartProfiler(options, &error));
  EXPECT_FALSE(error.empty());
  std::string collapsed;
  EXPECT_FALSE(obsv::CaptureProfile(0.05, 99, &collapsed, &error));

  // The session stays owned through Stop and Collect — an exporter must
  // never race a new capture reusing the rings.
  obsv::StopProfiler();
  EXPECT_FALSE(obsv::CaptureProfile(0.05, 99, &collapsed, &error));
  (void)obsv::CollectCollapsedProfile();
  obsv::ResetProfiler();

  // Reset closes the session; the next bounded capture succeeds.
  ASSERT_TRUE(obsv::CaptureProfile(0.05, 99, &collapsed, &error)) << error;
  EXPECT_EQ(collapsed.rfind("# ltee-profile ", 0), 0u);
}

TEST(Profiler, ParseCollapsedComputesSelfTotalAndSpans) {
  const std::string text =
      "# ltee-profile hz=99 samples=10 dropped=2 duration_s=1.500 "
      "req_samples=3\n"
      "span:alpha;main;work;hot 6\n"
      "span:alpha;main;work 1\n"
      "span:(none);main;idle 3\n";
  obsv::ProfileAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::ParseCollapsedProfile(text, &analysis, &error)) << error;
  EXPECT_EQ(analysis.hz, 99);
  EXPECT_EQ(analysis.samples, 10u);
  EXPECT_EQ(analysis.dropped, 2u);
  EXPECT_DOUBLE_EQ(analysis.duration_s, 1.5);

  // Frames sorted by self descending: hot(6), idle(3), work(1), main(0).
  ASSERT_EQ(analysis.frames.size(), 4u);
  EXPECT_EQ(analysis.frames[0].name, "hot");
  EXPECT_EQ(analysis.frames[0].self, 6u);
  EXPECT_EQ(analysis.frames[0].total, 6u);
  EXPECT_EQ(analysis.frames[1].name, "idle");
  EXPECT_EQ(analysis.frames[1].self, 3u);
  EXPECT_EQ(analysis.frames[2].name, "work");
  EXPECT_EQ(analysis.frames[2].self, 1u);
  EXPECT_EQ(analysis.frames[2].total, 7u);
  EXPECT_EQ(analysis.frames[3].name, "main");
  EXPECT_EQ(analysis.frames[3].self, 0u);
  EXPECT_EQ(analysis.frames[3].total, 10u);

  ASSERT_EQ(analysis.spans.size(), 2u);
  EXPECT_EQ(analysis.spans[0].name, "alpha");
  EXPECT_EQ(analysis.spans[0].samples, 7u);
  EXPECT_DOUBLE_EQ(analysis.spans[0].pct, 70.0);
  EXPECT_EQ(analysis.spans[1].name, "(none)");
  EXPECT_EQ(analysis.spans[1].samples, 3u);

  // Headers-only profile parses as empty; malformed stack lines fail.
  obsv::ProfileAnalysis empty;
  ASSERT_TRUE(obsv::ParseCollapsedProfile("# ltee-profile hz=99 samples=0\n",
                                          &empty, &error));
  EXPECT_TRUE(empty.frames.empty());
  obsv::ProfileAnalysis bad;
  EXPECT_FALSE(obsv::ParseCollapsedProfile("no trailing count\n", &bad,
                                           &error));
  EXPECT_FALSE(error.empty());
}

TEST(Profiler, AnalysisRendersValidJsonAndText) {
  const std::string text =
      "# ltee-profile hz=99 samples=4 dropped=0 duration_s=0.500\n"
      "span:alpha;main;hot 3\n"
      "span:(none);main 1\n";
  obsv::ProfileAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::ParseCollapsedProfile(text, &analysis, &error)) << error;

  const std::string json = obsv::ProfileAnalysisToJson(analysis);
  ASSERT_TRUE(util::JsonIsValid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"top_functions\""), std::string::npos);
  EXPECT_NE(json.find("\"self_pct\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);

  const std::string report = obsv::ProfileAnalysisToText(analysis);
  EXPECT_NE(report.find("hot"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
}

TEST(ProfileEndpoint, ValidatesParametersAndSerializesCaptures) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  // Malformed or out-of-range parameters are client errors, not captures.
  int status = 0;
  std::string body;
  for (const char* path :
       {"/profile?seconds=abc", "/profile?seconds=0", "/profile?seconds=31",
        "/profile?seconds=1&hz=0", "/profile?seconds=1&hz=5000"}) {
    ASSERT_TRUE(obsv::HttpGet(server.port(), path, &status, &body, &error))
        << error;
    EXPECT_EQ(status, 400) << path;
  }

  if (util::StackCaptureSupported()) {
    // While a capture session is open elsewhere the endpoint answers 503
    // (busy), never queues.
    obsv::ProfilerOptions options;
    ASSERT_TRUE(obsv::StartProfiler(options, &error)) << error;
    ASSERT_TRUE(obsv::HttpGet(server.port(), "/profile?seconds=0.1",
                              &status, &body, &error))
        << error;
    EXPECT_EQ(status, 503);
    obsv::StopProfiler();
    (void)obsv::CollectCollapsedProfile();
    obsv::ResetProfiler();

    // Happy path: keep a worker burning CPU so the bounded capture has
    // something to sample, then round-trip the collapsed body.
    std::atomic<bool> stop{false};
    std::thread burner([&stop] {
      while (!stop.load()) BurnCpu(0.05);
    });
    ASSERT_TRUE(obsv::HttpGet(server.port(), "/profile?seconds=0.3&hz=199",
                              &status, &body, &error))
        << error;
    stop.store(true);
    burner.join();
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body.rfind("# ltee-profile ", 0), 0u);
    obsv::ProfileAnalysis analysis;
    EXPECT_TRUE(obsv::ParseCollapsedProfile(body, &analysis, &error))
        << error;
    EXPECT_EQ(analysis.hz, 199);
  }
  server.Stop();
}

/// The consistency gate between the two observability views: a fixed-seed
/// pipeline run captured by BOTH the span tracer and the sampling
/// profiler must tell one story. Every span the profiler charges >= 1% of
/// CPU to must exist in the Chrome trace, and the hottest profiled span
/// must sit near the top of the trace's self-time ranking. Assertions are
/// tolerant: sampling is statistical and self-time is wall-based while
/// samples are CPU-based, so only gross disagreement fails.
TEST(ProfilerTraceConsistency, SpanAttributionAgreesWithChromeTrace) {
  if (!util::StackCaptureSupported()) {
    GTEST_SKIP() << "no backtrace/dladdr on this platform";
  }
  const auto& ds = ltee::testing::SharedDataset();

  util::trace::Clear();
  util::trace::SetEnabled(true);
  obsv::ProfilerOptions options;
  options.hz = 499;
  std::string error;
  ASSERT_TRUE(obsv::StartProfiler(options, &error)) << error;

  pipeline::PipelineOptions pipe_options;
  pipeline::LteePipeline pipe(ds.kb, pipe_options);
  util::Rng rng(41);
  pipeline::TrainPipelineOnGold(&pipe, ds.gs_corpus, ds.gold, rng);
  std::vector<kb::ClassId> classes;
  for (const auto& gs : ds.gold) classes.push_back(gs.cls);
  (void)pipe.Run(ds.gs_corpus, classes);

  obsv::StopProfiler();
  util::trace::SetEnabled(false);
  const std::string trace_json = util::trace::ExportChromeTrace();
  const std::string collapsed = obsv::CollectCollapsedProfile();
  obsv::ResetProfiler();

  obsv::ProfileAnalysis profile;
  ASSERT_TRUE(obsv::ParseCollapsedProfile(collapsed, &profile, &error))
      << error;
  ASSERT_GT(profile.samples, 0u);

  obsv::TraceAnalysis trace;
  ASSERT_TRUE(obsv::AnalyzeChromeTrace(trace_json, &trace, &error)) << error;
  ASSERT_FALSE(trace.spans.empty());

  std::vector<std::string> traced_names;
  for (const auto& span : trace.spans) traced_names.push_back(span.name);
  const auto traced = [&traced_names](const std::string& name) {
    for (const auto& t : traced_names) {
      if (t == name) return true;
    }
    return false;
  };

  // Every materially-profiled span is a real traced span (the signal-safe
  // name mirror and the trace recorder saw the same ScopedSpans).
  std::vector<std::string> hot_spans;  // >= 1% of samples, "(none)" aside
  for (const auto& span : profile.spans) {
    if (span.name == "(none)" || span.pct < 1.0) continue;
    hot_spans.push_back(span.name);
    EXPECT_TRUE(traced(span.name))
        << "profiled span missing from trace: " << span.name;
  }

  // Ordering agreement, only when there is enough signal to rank: the
  // profiler's hottest span must rank in the trace's top self-time spans.
  if (profile.samples >= 50 && !hot_spans.empty()) {
    const size_t top_k = std::min<size_t>(5, traced_names.size());
    bool found = false;
    for (size_t i = 0; i < top_k; ++i) {
      if (traced_names[i] == hot_spans[0]) found = true;
    }
    EXPECT_TRUE(found) << "profiler top span " << hot_spans[0]
                       << " not in trace top-" << top_k << " self-time";
    // And of the profiler's top three spans, most appear in the trace's
    // top eight (tolerant set overlap, not strict order equality).
    size_t overlap = 0;
    const size_t trace_k = std::min<size_t>(8, traced_names.size());
    for (size_t i = 0; i < std::min<size_t>(3, hot_spans.size()); ++i) {
      for (size_t j = 0; j < trace_k; ++j) {
        if (traced_names[j] == hot_spans[i]) {
          ++overlap;
          break;
        }
      }
    }
    EXPECT_GE(2 * overlap, std::min<size_t>(3, hot_spans.size()))
        << "span rankings disagree between profiler and trace";
  }
}

}  // namespace
}  // namespace ltee
