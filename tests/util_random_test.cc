#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ltee::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, GaussianHasRoughlyUnitMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(ZipfSamplerTest, RankZeroMostProbable) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(50));
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler zipf(50, 0.8);
  double sum = 0.0;
  for (size_t r = 0; r < 50; ++r) sum += zipf.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalDistributionSkewsToHead) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)] += 1;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], 3 * counts[9]);
}

}  // namespace
}  // namespace ltee::util
