#include <gtest/gtest.h>

#include <algorithm>

#include "fusion/entity_creator.h"
#include "matching/schema_mapping.h"
#include "rowcluster/row_features.h"
#include "util/string_util.h"
#include "util/token_dictionary.h"
#include "webtable/prepared_corpus.h"

namespace ltee::fusion {
namespace {

/// Hand-built fixture: one class with three typed properties, two tables,
/// one cluster of three rows with conflicting values.
class EntityCreatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cls_ = kb_.AddClass("C");
    team_ = kb_.AddProperty(cls_, "team", types::DataType::kInstanceReference);
    pop_ = kb_.AddProperty(cls_, "pop", types::DataType::kQuantity);
    round_ =
        kb_.AddProperty(cls_, "round", types::DataType::kNominalInteger);
    instance_ = kb_.AddInstance(cls_, {"Springfield"});
    kb_.AddFact(instance_, team_, types::Value::InstanceRef("real value"));
    kb_.AddFact(instance_, pop_, types::Value::OfQuantity(1000));

    // Two tables; column 1 of each is matched to a property.
    webtable::WebTable t0;
    t0.headers = {"Name", "Team", "Pop"};
    t0.rows = {{"Springfield", "real value", "1000"},
               {"Oakton", "other value", "2000"}};
    webtable::WebTable t1;
    t1.headers = {"Name", "Team"};
    t1.rows = {{"Springfield", "wrong value"}};
    corpus_.Add(std::move(t0));
    corpus_.Add(std::move(t1));

    mapping_.tables.resize(2);
    for (int t = 0; t < 2; ++t) {
      mapping_.tables[t].table = t;
      mapping_.tables[t].cls = cls_;
      mapping_.tables[t].label_column = 0;
      mapping_.tables[t].columns.resize(corpus_.table(t).num_columns());
      mapping_.tables[t].columns[1].property = team_;
      mapping_.tables[t].columns[1].score = t == 0 ? 0.9 : 0.2;
      mapping_.tables[t].row_instance.assign(corpus_.table(t).num_rows(),
                                             kb::kInvalidInstance);
    }
    mapping_.tables[0].columns[2].property = pop_;
    mapping_.tables[0].columns[2].score = 0.8;
    mapping_.tables[0].row_instance[0] = instance_;

    rows_.cls = cls_;
    rows_.dict = std::make_shared<util::TokenDictionary>();
    prepared_ = std::make_unique<webtable::PreparedCorpus>(corpus_, rows_.dict);
    rows_.tables = {0, 1};
    rows_.table_implicit.resize(2);
    rows_.table_phi.resize(2);
    rows_.table_implicit[0].push_back(
        {pop_, types::Value::OfQuantity(1000), 0.8});

    auto add_row = [&](int table, int row, const std::string& label) {
      rowcluster::RowFeature feature;
      feature.ref = {table, row};
      feature.table_index = table;
      feature.raw_label = label;
      feature.normalized_label = util::NormalizeLabel(label);
      feature.label_tokens = rows_.dict->InternTokens(feature.normalized_label);
      feature.bow = util::SortedUnique(feature.label_tokens);
      rows_.rows.push_back(std::move(feature));
    };
    add_row(0, 0, "Springfield");
    add_row(1, 0, "Springfield");
    add_row(0, 1, "Oakton");
    // Row values mirror the matched columns.
    rows_.rows[0].values.push_back(
        {team_, 1, types::Value::InstanceRef("real value")});
    rows_.rows[0].values.push_back({pop_, 2, types::Value::OfQuantity(1000)});
    rows_.rows[1].values.push_back(
        {team_, 1, types::Value::InstanceRef("wrong value")});
    rows_.rows[2].values.push_back(
        {team_, 1, types::Value::InstanceRef("other value")});
    rows_.rows[2].values.push_back({pop_, 2, types::Value::OfQuantity(2000)});

    cluster_of_row_ = {0, 0, 1};  // Springfield rows together, Oakton alone
  }

  kb::KnowledgeBase kb_;
  kb::ClassId cls_;
  kb::PropertyId team_, pop_, round_;
  kb::InstanceId instance_;
  webtable::TableCorpus corpus_;
  std::unique_ptr<webtable::PreparedCorpus> prepared_;
  matching::SchemaMapping mapping_;
  rowcluster::ClassRowSet rows_;
  std::vector<int> cluster_of_row_;
};

TEST_F(EntityCreatorTest, CollectsLabelsRowsAndBow) {
  EntityCreator creator(kb_);
  auto entities = creator.Create(rows_, cluster_of_row_, mapping_, *prepared_);
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(entities[0].rows.size(), 2u);
  EXPECT_EQ(entities[0].labels,
            (std::vector<std::string>{"Springfield"}));
  const uint32_t springfield = rows_.dict->Find("springfield");
  ASSERT_NE(springfield, util::TokenDictionary::kNoToken);
  EXPECT_TRUE(std::binary_search(entities[0].bow.begin(),
                                 entities[0].bow.end(), springfield));
  EXPECT_EQ(entities[1].labels, (std::vector<std::string>{"Oakton"}));
}

TEST_F(EntityCreatorTest, VotingFusesByMajorityWithinSelectedGroup) {
  EntityCreator creator(kb_);
  auto entities = creator.Create(rows_, cluster_of_row_, mapping_, *prepared_);
  // Cluster 0 team candidates: "real value", "wrong value" — two groups of
  // one; VOTING ties, the first group wins. Both rows supply one value, so
  // check that exactly one was selected.
  const types::Value* team = entities[0].FactOf(team_);
  ASSERT_NE(team, nullptr);
  EXPECT_TRUE(team->text == "real value" || team->text == "wrong value");
  const types::Value* pop = entities[0].FactOf(pop_);
  ASSERT_NE(pop, nullptr);
  EXPECT_DOUBLE_EQ(pop->number, 1000.0);
}

TEST_F(EntityCreatorTest, MatchingScoringPrefersHighScoredColumn) {
  EntityCreatorOptions options;
  options.scoring = ScoringApproach::kMatching;
  EntityCreator creator(kb_, options);
  auto entities = creator.Create(rows_, cluster_of_row_, mapping_, *prepared_);
  // Table 0's team column has score 0.9 vs table 1's 0.2.
  const types::Value* team = entities[0].FactOf(team_);
  ASSERT_NE(team, nullptr);
  EXPECT_EQ(team->text, "real value");
}

TEST_F(EntityCreatorTest, KbtScoringTrustsVerifiedColumn) {
  EntityCreatorOptions options;
  options.scoring = ScoringApproach::kKbt;
  EntityCreator creator(kb_, options);
  // Column trust of table 0 / column 1: row 0 matched to instance whose
  // team fact equals the cell -> trust 1.0. Table 1 has no matched rows ->
  // default 0.5.
  EXPECT_DOUBLE_EQ(creator.ColumnTrust(*prepared_, mapping_.tables[0], 1), 1.0);
  EXPECT_DOUBLE_EQ(creator.ColumnTrust(*prepared_, mapping_.tables[1], 1), 0.5);
  auto entities = creator.Create(rows_, cluster_of_row_, mapping_, *prepared_);
  EXPECT_EQ(entities[0].FactOf(team_)->text, "real value");
}

TEST_F(EntityCreatorTest, QuantityGroupsFuseByWeightedMedian) {
  // Put three conflicting pops in one cluster: 1000, 1000, 2000.
  rows_.rows[1].values.push_back({pop_, 1, types::Value::OfQuantity(1010)});
  EntityCreator creator(kb_);
  auto entities = creator.Create(rows_, cluster_of_row_, mapping_, *prepared_);
  // 1000 and 1010 group together (within tolerance); median of the group.
  const types::Value* pop = entities[0].FactOf(pop_);
  ASSERT_NE(pop, nullptr);
  EXPECT_NEAR(pop->number, 1005.0, 5.0);
}

TEST_F(EntityCreatorTest, EntityImplicitAttributesAveragePerRow) {
  EntityCreator creator(kb_);
  auto entities = creator.Create(rows_, cluster_of_row_, mapping_, *prepared_);
  // Cluster 0 has two rows; only table 0 contributes the implicit attr with
  // table-level score 0.8 -> entity-level 0.8 / 2 = 0.4.
  ASSERT_EQ(entities[0].implicit_attrs.size(), 1u);
  EXPECT_EQ(entities[0].implicit_attrs[0].property, pop_);
  EXPECT_NEAR(entities[0].implicit_attrs[0].score, 0.4, 1e-9);
}

TEST_F(EntityCreatorTest, ScoringApproachNames) {
  EXPECT_STREQ(ScoringApproachName(ScoringApproach::kVoting), "VOTING");
  EXPECT_STREQ(ScoringApproachName(ScoringApproach::kKbt), "KBT");
  EXPECT_STREQ(ScoringApproachName(ScoringApproach::kMatching), "MATCHING");
}

}  // namespace
}  // namespace ltee::fusion
