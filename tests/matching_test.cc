#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "index/label_index.h"
#include "util/similarity.h"
#include "matching/attribute_matchers.h"
#include "matching/label_attribute.h"
#include "matching/property_value_profile.h"
#include "matching/schema_matcher.h"
#include "matching/table_to_class.h"
#include "pipeline/pipeline.h"
#include "test_dataset.h"

namespace ltee::matching {
namespace {

using ::ltee::testing::SharedDataset;

webtable::WebTable MakePlayerTable() {
  webtable::WebTable table;
  table.id = 0;
  table.headers = {"Player", "Team", "Height"};
  table.rows = {{"John Smith", "Dallas Cowboys", "190"},
                {"Jane Doe", "Chicago Bears", "185"},
                {"Jim Poe", "Miami Dolphins", "200"}};
  return table;
}

TEST(LabelAttributeTest, PicksTextColumnWithMostUniqueValues) {
  auto table = MakePlayerTable();
  const auto types = DetectColumnTypes(table);
  EXPECT_EQ(types[0], types::DetectedType::kText);
  EXPECT_EQ(types[2], types::DetectedType::kQuantity);
  EXPECT_EQ(DetectLabelColumn(table, types), 0);
}

TEST(LabelAttributeTest, TieBreaksLeftmost) {
  webtable::WebTable table;
  table.headers = {"A", "B"};
  table.rows = {{"x", "p"}, {"y", "q"}};
  const auto types = DetectColumnTypes(table);
  EXPECT_EQ(DetectLabelColumn(table, types), 0);
}

TEST(LabelAttributeTest, NoTextColumnYieldsMinusOne) {
  webtable::WebTable table;
  table.headers = {"A", "B"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  const auto types = DetectColumnTypes(table);
  EXPECT_EQ(DetectLabelColumn(table, types), -1);
}

// ---------------------------------------------------------------------------
// Property value profiles (KB-Overlap substrate)
// ---------------------------------------------------------------------------

TEST(PropertyValueProfileTest, CategoricalMembershipAndNumericRanges) {
  kb::KnowledgeBase kb;
  auto cls = kb.AddClass("C");
  auto team = kb.AddProperty(cls, "team", types::DataType::kInstanceReference);
  auto pop = kb.AddProperty(cls, "pop", types::DataType::kQuantity);
  auto i = kb.AddInstance(cls, {"a"});
  kb.AddFact(i, team, types::Value::InstanceRef("Dallas Cowboys"));
  kb.AddFact(i, pop, types::Value::OfQuantity(1000));
  auto j = kb.AddInstance(cls, {"b"});
  kb.AddFact(j, pop, types::Value::OfQuantity(5000));

  const auto profiles = BuildPropertyValueProfiles(kb);
  EXPECT_TRUE(profiles[team].Fits(types::Value::InstanceRef("dallas cowboys")));
  EXPECT_FALSE(profiles[team].Fits(types::Value::InstanceRef("unknown club")));
  EXPECT_TRUE(profiles[pop].Fits(types::Value::OfQuantity(3000)));
  EXPECT_TRUE(profiles[pop].Fits(types::Value::OfQuantity(600)));  // 0.5x slack
  EXPECT_FALSE(profiles[pop].Fits(types::Value::OfQuantity(1000000)));
}

TEST(ValueKeyTest, CanonicalForms) {
  EXPECT_EQ(ValueKey(types::Value::Text("The  Song")), "the song");
  EXPECT_EQ(ValueKey(types::Value::YearDate(1987)), "1987");
  EXPECT_EQ(ValueKey(types::Value::OfQuantity(12.4)), "12");
  EXPECT_EQ(ValueKey(types::Value::OfInteger(9)), "9");
}

TEST(ExactValueKeyTest, DayDatesKeepFullDate) {
  EXPECT_EQ(ExactValueKey(types::Value::DayDate(1987, 6, 5)), "1987|6|5");
  EXPECT_EQ(ExactValueKey(types::Value::YearDate(1987)), "1987");
}

// ---------------------------------------------------------------------------
// Table-to-class matching on the shared synthetic dataset
// ---------------------------------------------------------------------------

class TableToClassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_shared<util::TokenDictionary>();
    index_ = pipeline::BuildKbLabelIndex(SharedDataset().kb, dict_);
    prepared_ = std::make_unique<webtable::PreparedCorpus>(
        SharedDataset().gs_corpus, dict_);
  }
  std::shared_ptr<util::TokenDictionary> dict_;
  index::LabelIndex index_;
  std::unique_ptr<webtable::PreparedCorpus> prepared_;
};

TEST_F(TableToClassTest, MajorityOfGoldTablesMatchTheirClass) {
  const auto& ds = SharedDataset();
  int total = 0, correct = 0;
  for (size_t g = 0; g < ds.gold.size(); ++g) {
    const auto& gs = ds.gold[g];
    for (size_t k = 0; k < gs.tables.size() && k < 40; ++k) {
      const auto& table = prepared_->table(gs.tables[k]);
      if (table.label_column < 0) continue;
      auto result =
          MatchTableToClass(table, table.label_column, ds.kb, index_);
      ++total;
      if (result.cls == gs.cls) ++correct;
    }
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(static_cast<double>(correct) / total, 0.7);
}

TEST_F(TableToClassTest, RowInstancesPointToMatchingLabels) {
  const auto& ds = SharedDataset();
  const auto& gs = ds.gold.front();
  const auto& table = ds.gs_corpus.table(gs.tables.front());
  const auto& ptable = prepared_->table(gs.tables.front());
  const int label = ptable.label_column;
  ASSERT_GE(label, 0);
  auto result = MatchTableToClass(ptable, label, ds.kb, index_);
  ASSERT_EQ(result.row_instance.size(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (result.row_instance[r] == kb::kInvalidInstance) continue;
    const auto& instance = ds.kb.instance(result.row_instance[r]);
    double best = 0.0;
    for (const auto& lbl : instance.labels) {
      best = std::max(best, util::MongeElkanLevenshtein(
                                table.cell(r, label), lbl));
    }
    EXPECT_GE(best, 0.8);
  }
}

// ---------------------------------------------------------------------------
// Individual attribute matchers
// ---------------------------------------------------------------------------

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cls_ = kb_.AddClass("C");
    team_ = kb_.AddProperty(cls_, "team", types::DataType::kInstanceReference,
                            {"Club"});
    height_ = kb_.AddProperty(cls_, "height", types::DataType::kQuantity);
    auto a = kb_.AddInstance(cls_, {"John Smith"});
    kb_.AddFact(a, team_, types::Value::InstanceRef("dallas cowboys"));
    kb_.AddFact(a, height_, types::Value::OfQuantity(190));
    auto b = kb_.AddInstance(cls_, {"Jane Doe"});
    kb_.AddFact(b, team_, types::Value::InstanceRef("chicago bears"));
    kb_.AddFact(b, height_, types::Value::OfQuantity(185));
    profiles_ = BuildPropertyValueProfiles(kb_);
    corpus_.Add(MakePlayerTable());
    prepared_ = std::make_unique<webtable::PreparedCorpus>(corpus_);
    inputs_.kb = &kb_;
    inputs_.value_profiles = &profiles_;
    inputs_.prepared = prepared_.get();
  }

  /// Prepared view of MakePlayerTable() (table id 0).
  const webtable::PreparedTable& table() const { return prepared_->table(0); }

  kb::KnowledgeBase kb_;
  kb::ClassId cls_;
  kb::PropertyId team_, height_;
  std::vector<PropertyValueProfile> profiles_;
  webtable::TableCorpus corpus_;
  std::unique_ptr<webtable::PreparedCorpus> prepared_;
  MatcherInputs inputs_;
};

TEST_F(MatcherTest, KbOverlapPrefersFittingColumn) {
  const double team_col =
      RunMatcher(MatcherId::kKbOverlap, inputs_, table(), 1, team_);
  const double label_col =
      RunMatcher(MatcherId::kKbOverlap, inputs_, table(), 0, team_);
  EXPECT_GT(team_col, 0.5);   // two of three teams exist in the KB
  EXPECT_LT(label_col, team_col);
  const double height_col =
      RunMatcher(MatcherId::kKbOverlap, inputs_, table(), 2, height_);
  EXPECT_DOUBLE_EQ(height_col, 1.0);  // all heights inside the range
}

TEST_F(MatcherTest, KbLabelMatchesHeaderToPropertyLabels) {
  EXPECT_DOUBLE_EQ(RunMatcher(MatcherId::kKbLabel, inputs_, table(), 1, team_),
                   1.0);  // "Team" == label "team"
  EXPECT_LT(RunMatcher(MatcherId::kKbLabel, inputs_, table(), 2, team_), 0.6);
  EXPECT_DOUBLE_EQ(
      RunMatcher(MatcherId::kKbLabel, inputs_, table(), 2, height_), 1.0);
}

TEST_F(MatcherTest, KbDuplicateNeedsCorrespondences) {
  EXPECT_DOUBLE_EQ(
      RunMatcher(MatcherId::kKbDuplicate, inputs_, table(), 1, team_), -1.0);
  RowInstanceMap instances;
  instances[{0, 0}] = 0;  // John Smith
  instances[{0, 1}] = 1;  // Jane Doe
  inputs_.row_instances = &instances;
  EXPECT_DOUBLE_EQ(
      RunMatcher(MatcherId::kKbDuplicate, inputs_, table(), 1, team_), 1.0);
  EXPECT_DOUBLE_EQ(
      RunMatcher(MatcherId::kKbDuplicate, inputs_, table(), 2, team_), 0.0);
}

TEST_F(MatcherTest, WtMatchersNeedFeedback) {
  EXPECT_DOUBLE_EQ(RunMatcher(MatcherId::kWtLabel, inputs_, table(), 1, team_),
                   -1.0);
  EXPECT_DOUBLE_EQ(
      RunMatcher(MatcherId::kWtDuplicate, inputs_, table(), 1, team_), -1.0);
}

TEST_F(MatcherTest, WtLabelScoresFromPreliminaryMapping) {
  webtable::TableCorpus corpus;
  corpus.Add(MakePlayerTable());
  SchemaMapping preliminary;
  preliminary.tables.resize(1);
  preliminary.tables[0].table = 0;
  preliminary.tables[0].columns.resize(3);
  preliminary.tables[0].columns[1].property = team_;
  webtable::PreparedCorpus prepared(corpus);
  auto stats = WtLabelStats::Build(prepared, preliminary);
  EXPECT_DOUBLE_EQ(stats.Score("Team", team_), 1.0);
  EXPECT_DOUBLE_EQ(stats.Score("Team", height_), 0.0);
  EXPECT_DOUBLE_EQ(stats.Score("Unseen Header", team_), -1.0);
}

TEST_F(MatcherTest, WtDuplicateCountsClusterValues) {
  webtable::TableCorpus corpus;
  auto t0 = MakePlayerTable();
  auto t1 = MakePlayerTable();  // same content, second table
  corpus.Add(std::move(t0));
  corpus.Add(std::move(t1));
  SchemaMapping preliminary;
  preliminary.tables.resize(2);
  for (int t = 0; t < 2; ++t) {
    preliminary.tables[t].table = t;
    preliminary.tables[t].columns.resize(3);
    preliminary.tables[t].columns[1].property = team_;
  }
  RowClusterMap clusters;
  for (int t = 0; t < 2; ++t) {
    for (int r = 0; r < 3; ++r) clusters[{t, r}] = r;  // row r = cluster r
  }
  webtable::PreparedCorpus prepared(corpus);
  auto index = WtDuplicateIndex::Build(prepared, preliminary, clusters, kb_);
  EXPECT_EQ(index.Count(0, team_, "dallas cowboys"), 2);
  EXPECT_EQ(index.Count(1, team_, "dallas cowboys"), 0);

  inputs_.row_clusters = &clusters;
  inputs_.wt_duplicate = &index;
  inputs_.preliminary = &preliminary;
  const double score = RunMatcher(MatcherId::kWtDuplicate, inputs_,
                                  prepared.table(0), 1, team_);
  EXPECT_DOUBLE_EQ(score, 1.0);
}

// ---------------------------------------------------------------------------
// End-to-end schema matcher on the shared dataset
// ---------------------------------------------------------------------------

TEST(SchemaMatcherTest, LearnsAndMatchesGoldTables) {
  const auto& ds = SharedDataset();
  auto dict = std::make_shared<util::TokenDictionary>();
  auto kb_index = pipeline::BuildKbLabelIndex(ds.kb, dict);
  webtable::PreparedCorpus prepared(ds.gs_corpus, dict);
  SchemaMatcher matcher(ds.kb, kb_index);
  util::Rng rng(17);

  std::vector<webtable::TableId> tables;
  std::vector<AttributeAnnotation> annotations;
  for (const auto& gs : ds.gold) {
    for (auto t : gs.tables) tables.push_back(t);
    for (const auto& a : gs.attributes) {
      annotations.push_back({a.table, a.column, a.property});
    }
  }
  matcher.Learn(prepared, tables, annotations, {}, rng);
  auto mapping = matcher.Match(prepared);

  // In-sample attribute matching should reach a solid F1.
  int tp = 0, fp = 0, fn = 0;
  std::map<std::pair<webtable::TableId, int>, kb::PropertyId> annotated;
  for (const auto& a : annotations) annotated[{a.table, a.column}] = a.property;
  for (const auto& tm : mapping.tables) {
    if (tm.table < 0) continue;
    for (size_t c = 0; c < tm.columns.size(); ++c) {
      if (tm.columns[c].property == kb::kInvalidProperty) continue;
      auto it = annotated.find({tm.table, static_cast<int>(c)});
      if (it != annotated.end() && it->second == tm.columns[c].property) {
        ++tp;
      } else {
        ++fp;
      }
    }
  }
  for (const auto& [key, prop] : annotated) {
    const auto& tm = mapping.tables[key.first];
    if (key.second >= static_cast<int>(tm.columns.size()) ||
        tm.columns[key.second].property != prop) {
      ++fn;
    }
  }
  const double p = tp + fp == 0 ? 0 : static_cast<double>(tp) / (tp + fp);
  const double r = tp + fn == 0 ? 0 : static_cast<double>(tp) / (tp + fn);
  EXPECT_GT(p, 0.6);
  EXPECT_GT(r, 0.4);
}

}  // namespace
}  // namespace ltee::matching
