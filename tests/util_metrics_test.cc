// Tests of the metrics registry: exact cross-thread sums under concurrent
// hammering, histogram bucketing, snapshot JSON validity and reference
// stability across ResetAll.

#include "util/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace ltee::util {
namespace {

TEST(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, GaugeAddAndMaxConcurrent) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);

  Gauge high_water;
  std::vector<std::thread> maxers;
  for (int t = 0; t < kThreads; ++t) {
    maxers.emplace_back([&high_water, t] {
      for (int i = 0; i < kPerThread; ++i) {
        high_water.Max(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : maxers) t.join();
  EXPECT_DOUBLE_EQ(high_water.value(), kThreads * kPerThread - 1);
}

TEST(MetricsTest, HistogramConcurrentObservationsSumExactly) {
  Histogram hist({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(i % 4) * 50.0);  // 0, 50, 100, 150
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(hist.count(), total);
  // Values cycle 0,50,100,150: bucket <=1 gets 0s, <=100 gets 50s and
  // 100s, overflow gets 150s.
  EXPECT_EQ(hist.bucket_count(0), total / 4);
  EXPECT_EQ(hist.bucket_count(1), 0u);
  EXPECT_EQ(hist.bucket_count(2), total / 2);
  EXPECT_EQ(hist.bucket_count(3), total / 4);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(total) / 4.0 * 300.0);
}

TEST(MetricsTest, ExponentialBuckets) {
  const auto bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsTest, RegistryReturnsStableReferencesAndSnapshots) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("ltee.test.a");
  Counter& a_again = registry.GetCounter("ltee.test.a");
  EXPECT_EQ(&a, &a_again);
  a.Increment(3);
  registry.GetGauge("ltee.test.g").Set(1.5);
  registry.GetHistogram("ltee.test.h", {1.0, 2.0}).Observe(1.5);

  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "ltee.test.a");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);

  std::string error;
  EXPECT_TRUE(JsonIsValid(snapshot.ToJson(), &error)) << error;

  registry.ResetAll();
  EXPECT_EQ(a.value(), 0u);  // same object, zeroed
  a.Increment();             // held reference still valid
  EXPECT_EQ(registry.Snapshot().counters[0].second, 1u);
}

TEST(MetricsTest, RegistryConcurrentGetAndIncrement) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Get inside the loop: exercises concurrent registration + lookup.
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("ltee.test.shared").Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("ltee.test.shared").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ltee::util
