// Tests of the metrics registry: exact cross-thread sums under concurrent
// hammering, histogram bucketing, snapshot JSON validity and reference
// stability across ResetAll.

#include "util/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"

namespace ltee::util {
namespace {

TEST(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, GaugeAddAndMaxConcurrent) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);

  Gauge high_water;
  std::vector<std::thread> maxers;
  for (int t = 0; t < kThreads; ++t) {
    maxers.emplace_back([&high_water, t] {
      for (int i = 0; i < kPerThread; ++i) {
        high_water.Max(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : maxers) t.join();
  EXPECT_DOUBLE_EQ(high_water.value(), kThreads * kPerThread - 1);
}

TEST(MetricsTest, HistogramConcurrentObservationsSumExactly) {
  Histogram hist({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(i % 4) * 50.0);  // 0, 50, 100, 150
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(hist.count(), total);
  // Values cycle 0,50,100,150: bucket <=1 gets 0s, <=100 gets 50s and
  // 100s, overflow gets 150s.
  EXPECT_EQ(hist.bucket_count(0), total / 4);
  EXPECT_EQ(hist.bucket_count(1), 0u);
  EXPECT_EQ(hist.bucket_count(2), total / 2);
  EXPECT_EQ(hist.bucket_count(3), total / 4);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(total) / 4.0 * 300.0);
}

TEST(MetricsTest, ExponentialBuckets) {
  const auto bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsTest, RegistryReturnsStableReferencesAndSnapshots) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("ltee.test.a");
  Counter& a_again = registry.GetCounter("ltee.test.a");
  EXPECT_EQ(&a, &a_again);
  a.Increment(3);
  registry.GetGauge("ltee.test.g").Set(1.5);
  registry.GetHistogram("ltee.test.h", {1.0, 2.0}).Observe(1.5);

  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "ltee.test.a");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);

  std::string error;
  EXPECT_TRUE(JsonIsValid(snapshot.ToJson(), &error)) << error;

  registry.ResetAll();
  EXPECT_EQ(a.value(), 0u);  // same object, zeroed
  a.Increment();             // held reference still valid
  EXPECT_EQ(registry.Snapshot().counters[0].second, 1u);
}

TEST(MetricsTest, RegistryConcurrentGetAndIncrement) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Get inside the loop: exercises concurrent registration + lookup.
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("ltee.test.shared").Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("ltee.test.shared").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Rolling-window telemetry. The *At variants take an explicit `now_sec`,
// so the clock is fully under test control.

TEST(WindowedCounterTest, CountsOnlyTheLiveWindow) {
  WindowedCounter counter(10);
  counter.IncrementAt(100, 3);
  counter.IncrementAt(104, 2);
  EXPECT_EQ(counter.CountAt(104), 5u);
  // At t=109 the slot from t=100 is the window's oldest live second
  // (window covers [100, 109]); one tick later it expires.
  EXPECT_EQ(counter.CountAt(109), 5u);
  EXPECT_EQ(counter.CountAt(110), 2u);
  // Once everything ages out the count is zero.
  EXPECT_EQ(counter.CountAt(200), 0u);
}

TEST(WindowedCounterTest, SlotRecyclingDropsStaleCounts) {
  WindowedCounter counter(4);
  counter.IncrementAt(10, 7);
  // t=14 maps onto the same ring slot as t=10 (14 % 4 == 10 % 4 with a
  // 4-slot ring); the stale count must not leak into the new second.
  counter.IncrementAt(14, 1);
  EXPECT_EQ(counter.CountAt(14), 1u);
}

TEST(WindowedCounterTest, IdleGapLongerThanWindowRecyclesEverySlot) {
  WindowedCounter counter(4);
  for (uint64_t t = 100; t < 104; ++t) counter.IncrementAt(t, 5);
  EXPECT_EQ(counter.CountAt(103), 20u);
  // The clock jumps far past the window (idle process, suspended VM):
  // every slot's stamp is now stale. The landing second deliberately has
  // the same ring phase as t=100 (141 % 4 == 100 % 4), so a recycling
  // bug would leak the old 5 into the fresh slot.
  const uint64_t later = 141;
  EXPECT_EQ(counter.CountAt(later), 0u);
  counter.IncrementAt(later, 2);
  EXPECT_EQ(counter.CountAt(later), 2u);
  // Covered span is the single live second — the gap must not dilute it.
  EXPECT_DOUBLE_EQ(counter.RateAt(later), 2.0);
}

TEST(WindowedCounterTest, RateUsesCoveredSecondsNotFullWindow) {
  WindowedCounter counter(60);
  // A 2-second burst of 100: the rate is 50/s, not 100/60.
  counter.IncrementAt(1000, 60);
  counter.IncrementAt(1001, 40);
  EXPECT_DOUBLE_EQ(counter.RateAt(1001), 50.0);
  // Idle seconds after the burst dilute it.
  EXPECT_DOUBLE_EQ(counter.RateAt(1003), 25.0);
  EXPECT_DOUBLE_EQ(counter.RateAt(2000), 0.0);
}

TEST(TimeWindowedHistogramTest, PercentilesOverTheLiveWindowOnly) {
  TimeWindowedHistogram hist(10, ExponentialBuckets(1.0, 2.0, 10));
  // 100 observations of ~4ms at t=50, then 10 of ~600ms at t=55.
  for (int i = 0; i < 100; ++i) hist.ObserveAt(50, 4.0);
  for (int i = 0; i < 10; ++i) hist.ObserveAt(55, 600.0);

  auto stats = hist.StatsAt(55);
  EXPECT_EQ(stats.count, 110u);
  EXPECT_EQ(stats.covered_seconds, 2u);
  EXPECT_DOUBLE_EQ(stats.max, 600.0);
  // p50 sits in the 4ms bucket, p99 up in the slow tail.
  EXPECT_LE(stats.p50, 8.0);
  EXPECT_GE(stats.p99, 100.0);
  EXPECT_LE(stats.p99, 600.0);

  // Eleven seconds later the fast burst has aged out; only the slow
  // observations remain and every percentile reflects them.
  stats = hist.StatsAt(61);
  EXPECT_EQ(stats.count, 10u);
  EXPECT_GE(stats.p50, 100.0);

  // And a fully idle window reads as empty, not stale.
  stats = hist.StatsAt(1000);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.p95, 0.0);
}

TEST(TimeWindowedHistogramTest, IdleGapLongerThanWindowReadsFresh) {
  TimeWindowedHistogram hist(10, ExponentialBuckets(1.0, 2.0, 10));
  for (int i = 0; i < 50; ++i) hist.ObserveAt(200, 300.0);
  EXPECT_EQ(hist.StatsAt(200).count, 50u);
  // Mid-gap the window reads empty, not stale.
  EXPECT_EQ(hist.StatsAt(500).count, 0u);
  // The first observation after the gap lands on the same ring slot as
  // t=200 (500 % 10 == 200 % 10); its stats must stand alone — no count,
  // sum, max or bucket mass leaking from the pre-gap slot.
  hist.ObserveAt(500, 2.0);
  const auto stats = hist.StatsAt(500);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.covered_seconds, 1u);
  EXPECT_DOUBLE_EQ(stats.sum, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 2.0);
  EXPECT_LE(stats.p99, 2.0);
}

TEST(TimeWindowedHistogramTest, QpsReflectsBurstRate) {
  TimeWindowedHistogram hist(60, ExponentialBuckets(0.01, 2.0, 20));
  for (int i = 0; i < 200; ++i) hist.ObserveAt(10, 1.0);
  for (int i = 0; i < 200; ++i) hist.ObserveAt(11, 1.0);
  const auto stats = hist.StatsAt(11);
  EXPECT_EQ(stats.count, 400u);
  EXPECT_DOUBLE_EQ(stats.qps, 200.0);
}

TEST(TimeWindowedHistogramTest, ConcurrentObserversSumExactly) {
  TimeWindowedHistogram hist(60, ExponentialBuckets(0.01, 2.0, 20));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.ObserveAt(500, 1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.StatsAt(500).count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ltee::util
