// Unit tests for the live-introspection stack: metric-name validation and
// Prometheus exposition, the JSON parser behind the analysis tools, span
// analytics over synthetic Chrome traces (self-time invariant, critical
// paths, rejection of unbalanced B/E pairs), the status server's real
// socket round-trip, crash-flush artifacts, and RunReportToJson edge
// cases (zero classes, empty stage lists, histograms with no samples).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obsv/access_log.h"
#include "obsv/crash_flush.h"
#include "obsv/http_client.h"
#include "obsv/span_analytics.h"
#include "obsv/status_server.h"
#include "obsv/trace_context.h"
#include "pipeline/run_report.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/prometheus.h"
#include "util/trace.h"

namespace ltee {
namespace {

// ---------------------------------------------------------------------------
// Metric names

TEST(MetricNames, AcceptsConventionalNames) {
  EXPECT_TRUE(util::IsValidMetricName("ltee.pipeline.stage"));
  EXPECT_TRUE(util::IsValidMetricName("ltee.rowcluster.pair_cache.misses"));
  EXPECT_TRUE(util::IsValidMetricName("ltee.x9.y_0"));
}

TEST(MetricNames, RejectsMalformedNames) {
  EXPECT_FALSE(util::IsValidMetricName(""));
  EXPECT_FALSE(util::IsValidMetricName("ltee.pipeline"));  // two segments
  EXPECT_FALSE(util::IsValidMetricName("pipeline.foo.bar"));  // no ltee.
  EXPECT_FALSE(util::IsValidMetricName("ltee.Pipeline.stage"));  // uppercase
  EXPECT_FALSE(util::IsValidMetricName("ltee.pipe-line.stage"));  // hyphen
  EXPECT_FALSE(util::IsValidMetricName("ltee..stage"));  // empty segment
  EXPECT_FALSE(util::IsValidMetricName("ltee.pipeline.stage."));  // trailing
  EXPECT_FALSE(util::IsValidMetricName(".ltee.pipeline.stage"));  // leading
}

TEST(MetricNames, PrometheusManglingReplacesDots) {
  EXPECT_EQ(util::PrometheusMetricName("ltee.pipeline.stage"),
            "ltee_pipeline_stage");
  EXPECT_EQ(util::PrometheusMetricName("ltee.rowcluster.pair_cache.hits"),
            "ltee_rowcluster_pair_cache_hits");
  // A leading digit is illegal in the Prometheus data model.
  EXPECT_EQ(util::PrometheusMetricName("9x.y"), "_x_y");
}

TEST(MetricNames, SanitizeSegmentFoldsArbitraryStrings) {
  EXPECT_EQ(util::SanitizeMetricSegment("KB-Overlap"), "kb_overlap");
  EXPECT_EQ(util::SanitizeMetricSegment("WT-Label"), "wt_label");
  EXPECT_EQ(util::SanitizeMetricSegment("already_ok9"), "already_ok9");
  EXPECT_EQ(util::SanitizeMetricSegment(""), "_");
  EXPECT_TRUE(util::IsValidMetricName(
      "ltee.matching." + util::SanitizeMetricSegment("Spaced Name!")));
}

TEST(MetricsRegistry, RejectsMalformedNameAtRegistration) {
  EXPECT_THROW(util::Metrics().GetCounter("Not-A-Valid.Name"),
               std::invalid_argument);
  EXPECT_THROW(util::Metrics().GetGauge("ltee.short"), std::invalid_argument);
}

TEST(MetricsRegistry, RejectsCrossKindReRegistration) {
  util::Counter& counter = util::Metrics().GetCounter("ltee.test.kind_clash");
  counter.Increment();
  // Same name, same kind: fine, same instance.
  EXPECT_EQ(&util::Metrics().GetCounter("ltee.test.kind_clash"), &counter);
  // Same name, different kind: refused loudly.
  EXPECT_THROW(util::Metrics().GetGauge("ltee.test.kind_clash"),
               std::invalid_argument);
  EXPECT_THROW(util::Metrics().GetHistogram("ltee.test.kind_clash", {1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

util::MetricsSnapshot TestSnapshot() {
  util::MetricsSnapshot snap;
  snap.counters.emplace_back("ltee.test.events", 42);
  snap.gauges.emplace_back("ltee.test.progress", 2.5);
  util::MetricsSnapshot::HistogramData hist;
  hist.name = "ltee.test.latency";
  hist.bounds = {0.1, 1.0};
  hist.buckets = {3, 2, 1};  // per-bucket counts, overflow last
  hist.count = 6;
  hist.sum = 4.2;
  snap.histograms.push_back(hist);
  return snap;
}

TEST(Prometheus, CounterGetsTotalSuffixAndTypeLine) {
  const std::string text = util::RenderPrometheusText(TestSnapshot());
  EXPECT_NE(text.find("# TYPE ltee_test_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ltee_test_events_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ltee_test_progress gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("ltee_test_progress 2.5\n"), std::string::npos);
}

TEST(Prometheus, HistogramEmitsCumulativeBucketsSumAndCount) {
  const std::string text = util::RenderPrometheusText(TestSnapshot());
  EXPECT_NE(text.find("# TYPE ltee_test_latency histogram\n"),
            std::string::npos);
  // Buckets are cumulative: 3, 3+2, 3+2+1; +Inf equals _count.
  const size_t b1 = text.find("ltee_test_latency_bucket{le=\"0.1\"} 3\n");
  const size_t b2 = text.find("ltee_test_latency_bucket{le=\"1\"} 5\n");
  const size_t binf = text.find("ltee_test_latency_bucket{le=\"+Inf\"} 6\n");
  ASSERT_NE(b1, std::string::npos) << text;
  ASSERT_NE(b2, std::string::npos) << text;
  ASSERT_NE(binf, std::string::npos) << text;
  EXPECT_LT(b1, b2);
  EXPECT_LT(b2, binf);  // +Inf is last
  EXPECT_NE(text.find("ltee_test_latency_sum 4.2\n"), std::string::npos);
  EXPECT_NE(text.find("ltee_test_latency_count 6\n"), std::string::npos);
}

TEST(Prometheus, EmptyHistogramStillWellFormed) {
  util::MetricsSnapshot snap;
  util::MetricsSnapshot::HistogramData hist;
  hist.name = "ltee.test.empty";
  hist.bounds = {1.0};
  hist.buckets = {0, 0};
  snap.histograms.push_back(hist);
  const std::string text = util::RenderPrometheusText(snap);
  EXPECT_NE(text.find("ltee_test_empty_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("ltee_test_empty_count 0\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON parser

TEST(JsonParse, ParsesScalarsAndContainers) {
  util::JsonValue v;
  ASSERT_TRUE(util::ParseJson(" {\"a\":[1,2.5,-3e2], \"b\":\"x\\ny\", "
                              "\"c\":true, \"d\":null} ",
                              &v));
  ASSERT_TRUE(v.is_object());
  const util::JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->items()[2].as_number(), -300.0);
  EXPECT_EQ(v.StringOr("b", ""), "x\ny");
  EXPECT_TRUE(v.Find("c")->as_bool());
  EXPECT_TRUE(v.Find("d")->is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.NumberOr("missing", 7.0), 7.0);
}

TEST(JsonParse, DecodesUnicodeEscapes) {
  util::JsonValue v;
  ASSERT_TRUE(util::ParseJson("\"\\u00e9\\uD83D\\uDE00\"", &v));
  EXPECT_EQ(v.as_string(), "\xc3\xa9\xf0\x9f\x98\x80");  // é + 😀
}

TEST(JsonParse, RejectsMalformedInput) {
  util::JsonValue v;
  std::string error;
  EXPECT_FALSE(util::ParseJson("", &v, &error));
  EXPECT_FALSE(util::ParseJson("{\"a\":}", &v, &error));
  EXPECT_FALSE(util::ParseJson("[1,2", &v, &error));
  EXPECT_FALSE(util::ParseJson("{} trailing", &v, &error));
  EXPECT_FALSE(util::ParseJson("nul", &v, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Span analytics

/// Builds a trace document from (name, ts, dur, tid[, cls]) tuples as
/// complete ("X") events.
struct XEvent {
  const char* name;
  double ts;
  double dur;
  int tid;
  const char* cls = nullptr;
};

std::string TraceOf(const std::vector<XEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const XEvent& e = events[i];
    if (i > 0) out.push_back(',');
    out += "{\"ph\":\"X\",\"name\":\"" + std::string(e.name) +
           "\",\"ts\":" + std::to_string(e.ts) +
           ",\"dur\":" + std::to_string(e.dur) +
           ",\"tid\":" + std::to_string(e.tid);
    if (e.cls != nullptr) {
      out += ",\"args\":{\"cls\":\"" + std::string(e.cls) + "\"}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

TEST(SpanAnalytics, SelfTimeSubtractsDirectChildrenOnly) {
  // outer [0,100) contains mid [10,60) contains inner [20,30).
  const std::string trace = TraceOf({
      {"outer", 0, 100, 1},
      {"mid", 10, 50, 1},
      {"inner", 20, 10, 1},
  });
  obsv::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::AnalyzeChromeTrace(trace, &analysis, &error)) << error;
  ASSERT_EQ(analysis.spans.size(), 3u);
  double outer_self = -1, mid_self = -1, inner_self = -1;
  for (const auto& s : analysis.spans) {
    if (s.name == "outer") outer_self = s.self_ms;
    if (s.name == "mid") mid_self = s.self_ms;
    if (s.name == "inner") inner_self = s.self_ms;
  }
  // outer: 100 - 50 (direct child mid; inner is a grandchild).
  EXPECT_DOUBLE_EQ(outer_self, 0.050);
  EXPECT_DOUBLE_EQ(mid_self, 0.040);
  EXPECT_DOUBLE_EQ(inner_self, 0.010);
  // Self times sum to the root span's duration...
  EXPECT_DOUBLE_EQ(analysis.busy_ms, 0.100);
  // ...which here equals the wall time.
  EXPECT_DOUBLE_EQ(analysis.wall_ms, 0.100);
}

TEST(SpanAnalytics, BusyExceedsWallUnderParallelism) {
  // Two threads busy over the same wall-clock window.
  const std::string trace = TraceOf({
      {"work", 0, 100, 1},
      {"work", 0, 100, 2},
  });
  obsv::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::AnalyzeChromeTrace(trace, &analysis, &error)) << error;
  EXPECT_DOUBLE_EQ(analysis.wall_ms, 0.100);
  EXPECT_DOUBLE_EQ(analysis.busy_ms, 0.200);
}

TEST(SpanAnalytics, PercentilesFromSortedDurations) {
  std::vector<XEvent> events;
  for (int i = 1; i <= 100; ++i) {
    // Disjoint spans of 1..100 us on one thread.
    events.push_back({"op", i * 1000.0, static_cast<double>(i), 1});
  }
  obsv::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(
      obsv::AnalyzeChromeTrace(TraceOf(events), &analysis, &error))
      << error;
  ASSERT_EQ(analysis.spans.size(), 1u);
  const obsv::SpanStats& s = analysis.spans[0];
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50_ms, 0.050, 0.002);
  EXPECT_NEAR(s.p95_ms, 0.095, 0.002);
  EXPECT_DOUBLE_EQ(s.max_ms, 0.100);
}

TEST(SpanAnalytics, PerClassCriticalPathInExecutionOrder) {
  const std::string trace = TraceOf({
      {"pipeline.run_class", 0, 100, 1, "Song"},
      {"cluster", 5, 40, 1},
      {"fuse", 50, 20, 1},
      {"pipeline.run_class", 0, 60, 2, "City"},
      {"cluster", 10, 30, 2},
  });
  obsv::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::AnalyzeChromeTrace(trace, &analysis, &error)) << error;
  ASSERT_EQ(analysis.classes.size(), 2u);
  const obsv::ClassCriticalPath* song = nullptr;
  for (const auto& c : analysis.classes) {
    if (c.cls == "Song") song = &c;
  }
  ASSERT_NE(song, nullptr);
  EXPECT_DOUBLE_EQ(song->total_ms, 0.100);
  ASSERT_EQ(song->stages.size(), 2u);
  EXPECT_EQ(song->stages[0].name, "cluster");  // execution order
  EXPECT_EQ(song->stages[1].name, "fuse");
  EXPECT_DOUBLE_EQ(song->self_ms, 0.040);  // 100 - (40 + 20)
}

TEST(SpanAnalytics, AcceptsBalancedBeginEndPairs) {
  const std::string trace =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"name\":\"a\",\"ts\":0,\"tid\":1},"
      "{\"ph\":\"B\",\"name\":\"b\",\"ts\":10,\"tid\":1},"
      "{\"ph\":\"E\",\"name\":\"b\",\"ts\":20,\"tid\":1},"
      "{\"ph\":\"E\",\"name\":\"a\",\"ts\":50,\"tid\":1}]}";
  std::string error;
  EXPECT_TRUE(obsv::ValidateChromeTrace(trace, &error)) << error;
  obsv::TraceAnalysis analysis;
  ASSERT_TRUE(obsv::AnalyzeChromeTrace(trace, &analysis, &error)) << error;
  EXPECT_EQ(analysis.num_events, 2u);
  EXPECT_DOUBLE_EQ(analysis.busy_ms, 0.050);  // b nests inside a
}

TEST(SpanAnalytics, RejectsUnbalancedSpans) {
  std::string error;
  // E without a matching B.
  EXPECT_FALSE(obsv::ValidateChromeTrace(
      "{\"traceEvents\":[{\"ph\":\"E\",\"name\":\"a\",\"ts\":1,\"tid\":1}]}",
      &error));
  EXPECT_NE(error.find("'E' without matching 'B'"), std::string::npos);
  // B that never ends.
  EXPECT_FALSE(obsv::ValidateChromeTrace(
      "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"a\",\"ts\":1,\"tid\":1}]}",
      &error));
  EXPECT_NE(error.find("never ends"), std::string::npos);
  // E whose name does not match the open B.
  EXPECT_FALSE(obsv::ValidateChromeTrace(
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"name\":\"a\",\"ts\":1,\"tid\":1},"
      "{\"ph\":\"E\",\"name\":\"z\",\"ts\":2,\"tid\":1}]}",
      &error));
  EXPECT_NE(error.find("does not match"), std::string::npos);
}

TEST(SpanAnalytics, RejectsNonTraceDocuments) {
  std::string error;
  EXPECT_FALSE(obsv::ValidateChromeTrace("not json", &error));
  EXPECT_FALSE(obsv::ValidateChromeTrace("[]", &error));
  EXPECT_FALSE(obsv::ValidateChromeTrace("{\"traceEvents\":7}", &error));
  EXPECT_FALSE(obsv::ValidateChromeTrace(
      "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"tid\":1}]}",
      &error));  // missing ts
}

TEST(SpanAnalytics, OutputsAreValidJsonAndText) {
  obsv::TraceAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::AnalyzeChromeTrace(
      TraceOf({{"pipeline.run_class", 0, 50, 1, "Song"},
               {"cluster", 10, 20, 1}}),
      &analysis, &error))
      << error;
  const std::string json = obsv::AnalysisToJson(analysis);
  util::JsonValue doc;
  ASSERT_TRUE(util::ParseJson(json, &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.NumberOr("num_events", -1), 2.0);
  const std::string text = obsv::AnalysisToText(analysis);
  EXPECT_NE(text.find("pipeline.run_class"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Status server round-trip (real sockets)

TEST(StatusServer, ServesHealthMetricsTraceAndReport) {
  util::Metrics().GetCounter("ltee.test.server_roundtrip").Increment(3);
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  ASSERT_NE(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/healthz", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(obsv::HttpGet(server.port(), "/metrics", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("ltee_test_server_roundtrip_total"), std::string::npos);

  // /trace must always be a structurally valid Chrome trace, even when
  // no spans were recorded.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/trace", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(obsv::ValidateChromeTrace(body, &error)) << error;

  // /report 404s until a report is published, then serves it verbatim.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/report", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 404);
  server.PublishReport("{\"total_seconds\":1.5}");
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/report", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"total_seconds\":1.5}");

  // Unknown paths 404; queries are stripped before dispatch.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/nope", &status, &body, &error))
      << error;
  EXPECT_EQ(status, 404);
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/healthz?verbose=1", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 200);

  server.Stop();
  EXPECT_FALSE(server.running());
}

/// Raw HTTP exchange over a fresh socket. obsv::HttpGet both forces the
/// method to GET and strips the response head, so tests asserting on the
/// status line or response headers must speak to the socket directly.
std::string RawHttpExchange(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[2048];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StatusServer, RejectsNonGetWith405AndAllowHeader) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  const std::string response = RawHttpExchange(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  // RFC 9110 section 15.5.6: the 405 response must carry an Allow header
  // naming the supported methods.
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("\r\nAllow: GET\r\n"), std::string::npos)
      << response;

  // DELETE on an unknown path is still a 405: method gating comes first.
  const std::string deleted = RawHttpExchange(
      server.port(), "DELETE /nope HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(deleted.find(" 405 "), std::string::npos) << deleted;

  // And GET on a known path over the same raw-socket plumbing stays 200,
  // so the assertion above is about the method, not the transport.
  const std::string ok = RawHttpExchange(
      server.port(), "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;

  server.Stop();
}

TEST(StatusServer, RespondsWith400ToMalformedRequestLines) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  // RFC 9112: the request line is `method SP target SP HTTP-version`.
  // Serving real traffic makes malformed lines routine; each shape gets
  // an explicit 400 instead of a silently closed connection.
  const std::vector<std::string> malformed = {
      "GARBAGE\r\n\r\n",                         // no spaces at all
      "GET /healthz\r\n\r\n",                    // missing HTTP version
      "GET /healthz FTP/1.0\r\n\r\n",            // non-HTTP version token
      "GET healthz HTTP/1.1\r\n\r\n",            // target not origin-form
      " / HTTP/1.1\r\n\r\n",                     // empty method
      "\r\n\r\n",                                // empty request line
  };
  for (const std::string& request : malformed) {
    const std::string response = RawHttpExchange(server.port(), request);
    EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos)
        << "request " << testing::PrintToString(request) << " got:\n"
        << response;
    EXPECT_NE(response.find("Connection: close"), std::string::npos)
        << response;
  }

  // The same socket plumbing with a well-formed line still works.
  const std::string ok = RawHttpExchange(
      server.port(), "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;

  server.Stop();
}

TEST(StatusServer, ServesProvenanceLedgerAndExplainQueries) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  int status = 0;
  std::string body;
  // 404 until a ledger is published.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/provenance", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 404);

  // A minimal complete lineage: one fused fact on cluster 3 of class 0.
  const std::string ledger =
      R"({"kind":"schema_map","iter":1,"cls":0,"table":0,"column":2,"property":5,"property_name":"genre","score":0.8,"threshold":0.4,"accepted":true}
{"kind":"cluster","iter":1,"cls":0,"table":0,"row":9,"cluster_id":3,"cluster_size":1,"support":0.7,"threshold":0.2}
{"kind":"fusion","iter":1,"cls":0,"cluster_id":3,"property":5,"property_name":"genre","value":"Jazz","rule":"majority","score":0.7,"candidates":1,"sources":[{"table":0,"row":9,"column":2}]}
{"kind":"kb_update","iter":1,"cls":0,"cluster_id":3,"subject":"Blue Train","property":5,"property_name":"genre","value":"Jazz","accepted":true,"reason":"new_entity"}
)";
  server.PublishProvenance(ledger);

  // No query: the raw JSON-lines ledger, verbatim.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/provenance", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, ledger);

  // ?entity= runs the explain walker and returns its JSON rendering
  // (percent-encoded values must decode before matching).
  ASSERT_TRUE(obsv::HttpGet(server.port(),
                            "/provenance?entity=blue%20train&property=genre",
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  util::JsonValue doc;
  ASSERT_TRUE(util::ParseJson(body, &doc, &error)) << error << "\n" << body;
  const util::JsonValue* facts = doc.Find("facts");
  ASSERT_NE(facts, nullptr);
  ASSERT_EQ(facts->items().size(), 1u);
  const util::JsonValue* complete = facts->items().front().Find("complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_TRUE(complete->as_bool());

  // An entity with no facts still answers 200 with an empty fact list.
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/provenance?entity=nobody",
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"facts\":[]}");

  server.Stop();
}

// ---------------------------------------------------------------------------
// Query-string parsing

TEST(QueryParam, ExtractsAndDecodesValues) {
  EXPECT_EQ(obsv::QueryParam("entity=Jane%20Doe&property=college", "entity"),
            "Jane Doe");
  EXPECT_EQ(obsv::QueryParam("entity=Jane%20Doe&property=college",
                             "property"),
            "college");
  EXPECT_EQ(obsv::QueryParam("entity=a+b", "entity"), "a b");
  EXPECT_EQ(obsv::QueryParam("a=1&b=2&c=3", "b"), "2");
}

TEST(QueryParam, MissingOrMalformedKeys) {
  EXPECT_EQ(obsv::QueryParam("", "a"), "");
  EXPECT_EQ(obsv::QueryParam("a=1", "missing"), "");
  EXPECT_EQ(obsv::QueryParam("flag", "flag"), "");  // no '=' -> no value
  EXPECT_EQ(obsv::QueryParam("ab=1", "a"), "");  // prefix is not a match
  // An invalid percent escape passes through undecoded.
  EXPECT_EQ(obsv::QueryParam("a=x%zzy", "a"), "x%zzy");
}

// ---------------------------------------------------------------------------
// Trace context

TEST(TraceContext, RootContextsAreWellFormedAndDistinct) {
  const obsv::TraceContext a = obsv::MakeRootContext();
  const obsv::TraceContext b = obsv::MakeRootContext();
  EXPECT_EQ(a.trace_id.size(), 32u);
  EXPECT_EQ(a.span_id.size(), 16u);
  EXPECT_TRUE(a.parent_span_id.empty());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
  EXPECT_TRUE(obsv::IsValidTraceparent(a.ToTraceparent()))
      << a.ToTraceparent();
}

TEST(TraceContext, ChildContinuesTraceWithFreshSpan) {
  const std::string header =
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01";
  const auto child = obsv::ChildFromTraceparent(header);
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->trace_id, "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(child->parent_span_id, "00f067aa0ba902b7");
  EXPECT_EQ(child->span_id.size(), 16u);
  EXPECT_NE(child->span_id, child->parent_span_id);
  EXPECT_TRUE(obsv::IsValidTraceparent(child->ToTraceparent()));
}

TEST(TraceContext, RejectsMalformedTraceparents) {
  const std::vector<std::string> malformed = {
      "",
      "garbage",
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7",       // 3 parts
      "00-0123456789abcdef0123456789abcde-00f067aa0ba902b7-01",     // short
      "00-0123456789ABCDEF0123456789ABCDEF-00f067aa0ba902b7-01",    // upper
      "00-0123456789abcdqf0123456789abcdef-00f067aa0ba902b7-01",    // non-hex
      "ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",    // ver ff
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero id
      "00-0123456789abcdef0123456789abcdef-0000000000000000-01",    // zero sp
      "00_0123456789abcdef0123456789abcdef_00f067aa0ba902b7_01",    // dashes
  };
  for (const std::string& value : malformed) {
    EXPECT_FALSE(obsv::IsValidTraceparent(value)) << value;
    EXPECT_FALSE(obsv::ChildFromTraceparent(value).has_value()) << value;
  }
}

TEST(TraceContext, ScopeInstallsAndRestoresThreadContext) {
  util::trace::ClearCurrentContext();
  EXPECT_FALSE(util::trace::HasCurrentContext());
  obsv::TraceContext outer = obsv::MakeRootContext();
  {
    obsv::TraceContextScope outer_scope(outer);
    EXPECT_EQ(util::trace::CurrentTraceId(), outer.trace_id);
    obsv::TraceContext inner = obsv::MakeRootContext();
    {
      obsv::TraceContextScope inner_scope(inner);
      EXPECT_EQ(util::trace::CurrentTraceId(), inner.trace_id);
    }
    EXPECT_EQ(util::trace::CurrentTraceId(), outer.trace_id);
  }
  EXPECT_FALSE(util::trace::HasCurrentContext());
}

// ---------------------------------------------------------------------------
// Request tracing through the HTTP server

/// Trace id of a `00-<trace>-<span>-<flags>` traceparent, "" otherwise.
std::string TraceIdOf(const std::string& traceparent) {
  return obsv::IsValidTraceparent(traceparent) ? traceparent.substr(3, 32)
                                               : std::string();
}

TEST(StatusServer, MalformedTraceparentGetsFreshTraceIdAndNeverCrashes) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  const std::vector<std::string> malformed = {
      "garbage",
      "00-zzzz-zzzz-01",
      "00-00000000000000000000000000000000-0000000000000000-01",
      "ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
      std::string(4096, 'a'),  // oversized junk
  };
  for (const std::string& header : malformed) {
    const std::string response = RawHttpExchange(
        server.port(), "GET /healthz HTTP/1.1\r\nHost: localhost\r\n"
                       "traceparent: " + header + "\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
        << response;
    // The response still carries a traceparent — a fresh, valid one that
    // did not reuse any part of the garbage.
    const size_t pos = response.find("\r\ntraceparent: ");
    ASSERT_NE(pos, std::string::npos) << response;
    const size_t value_start = pos + 15;
    const std::string value =
        response.substr(value_start, response.find("\r\n", value_start) -
                                         value_start);
    EXPECT_TRUE(obsv::IsValidTraceparent(value)) << value;
    EXPECT_NE(value, header);
  }

  // The server survived all of it.
  int status = 0;
  std::string body;
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/healthz", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  server.Stop();
}

TEST(StatusServer, LoopbackRoundTripPreservesTraceIdIntoExportedTrace) {
  util::trace::SetEnabled(true);
  util::trace::Clear();

  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  obsv::HttpGetOptions options;
  options.traceparent =
      "00-feedfacefeedfacefeedfacefeedface-00f067aa0ba902b7-01";
  int status = 0;
  std::string body, response_traceparent;
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/healthz", options, &status,
                            &body, &response_traceparent, &error))
      << error;
  EXPECT_EQ(status, 200);
  // Same trace id comes back; the span id is the server's own hop.
  EXPECT_EQ(TraceIdOf(response_traceparent),
            "feedfacefeedfacefeedfacefeedface")
      << response_traceparent;
  EXPECT_EQ(response_traceparent.find("00f067aa0ba902b7"),
            std::string::npos)
      << "server must mint its own span id, not echo the caller's";
  server.Stop();

  // The id flowed into the exported Chrome trace via the http.request
  // span's args.
  const std::string trace = util::trace::ExportChromeTrace();
  EXPECT_NE(trace.find("\"http.request\""), std::string::npos);
  EXPECT_NE(trace.find("feedfacefeedfacefeedfacefeedface"),
            std::string::npos);
  util::trace::SetEnabled(false);
  util::trace::Clear();
}

TEST(StatusServer, StatsEndpointServesWindowedTelemetry) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  // Drive a little traffic so the window has something to aggregate.
  int status = 0;
  std::string body;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(obsv::HttpGet(server.port(), "/healthz", &status, &body,
                              &error))
        << error;
  }
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/stats", &status, &body,
                            &error))
      << error;
  EXPECT_EQ(status, 200);
  server.Stop();

  util::JsonValue stats;
  ASSERT_TRUE(util::ParseJson(body, &stats, &error)) << error << "\n" << body;
  const util::JsonValue* window = stats.Find("window");
  ASSERT_NE(window, nullptr) << body;
  EXPECT_GE(window->NumberOr("requests", -1), 5.0);
  EXPECT_GT(window->NumberOr("qps", 0), 0.0);
  const util::JsonValue* latency = window->Find("latency_ms");
  ASSERT_NE(latency, nullptr) << body;
  for (const char* key : {"p50", "p95", "p99", "max"}) {
    EXPECT_NE(latency->Find(key), nullptr) << key;
  }
  EXPECT_GE(stats.NumberOr("in_flight", -1), 0.0);
  ASSERT_NE(stats.Find("cache"), nullptr);
  ASSERT_NE(stats.Find("access_log"), nullptr);
}

// ---------------------------------------------------------------------------
// Access log

TEST(AccessLog, RingKeepsNewestAndCountsSlowRequests) {
  obsv::AccessLog log(4);
  log.SetSlowThresholdMs(100.0);
  for (int i = 0; i < 10; ++i) {
    obsv::AccessEntry entry;
    entry.method = "GET";
    entry.target = "/kb/entity?id=" + std::to_string(i);
    entry.status = 200;
    entry.total_ms = i == 9 ? 150.0 : 1.0;  // one slow request
    entry.trace_id = "trace" + std::to_string(i);
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.slow_count(), 1u);

  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);
  // Oldest-first: entries 6..9 survived.
  EXPECT_EQ(entries.front().target, "/kb/entity?id=6");
  EXPECT_EQ(entries.back().target, "/kb/entity?id=9");

  // Each JSON line parses and carries its trace id.
  std::istringstream lines(log.ToJsonLines());
  std::string line, error;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    util::JsonValue doc;
    ASSERT_TRUE(util::ParseJson(line, &doc, &error)) << error << "\n" << line;
    EXPECT_FALSE(doc.StringOr("trace_id", "").empty());
    ++parsed;
  }
  EXPECT_EQ(parsed, 4);
}

// ---------------------------------------------------------------------------
// Crash flush

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CrashFlush, WritesValidArtifactsExactlyOnce) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/crash_trace.json";
  const std::string metrics_path = dir + "/crash_metrics.json";
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  obsv::ArmCrashFlush(trace_path, metrics_path);
  EXPECT_TRUE(obsv::CrashFlushNow());
  EXPECT_FALSE(obsv::CrashFlushNow());  // write-once

  std::string error;
  const std::string trace = ReadFileOrEmpty(trace_path);
  EXPECT_TRUE(obsv::ValidateChromeTrace(trace, &error)) << error;

  util::JsonValue metrics;
  ASSERT_TRUE(util::ParseJson(ReadFileOrEmpty(metrics_path), &metrics, &error))
      << error;
  const util::JsonValue* aborted = metrics.Find("aborted");
  ASSERT_NE(aborted, nullptr);
  EXPECT_TRUE(aborted->is_bool() && aborted->as_bool());
  EXPECT_NE(metrics.Find("metrics"), nullptr);

  obsv::DisarmCrashFlush();
  EXPECT_FALSE(obsv::CrashFlushNow());  // disarmed
}

TEST(CrashFlush, FlushesAccessLogRingOnAbnormalExit) {
  const std::string dir = ::testing::TempDir();
  const std::string access_path = dir + "/crash_access.jsonl";
  std::remove(access_path.c_str());

  // Put a recognizable request into the global ring (the same one the
  // HTTP server records into).
  obsv::AccessEntry entry;
  entry.method = "GET";
  entry.target = "/kb/entity?id=42";
  entry.status = 200;
  entry.total_ms = 1.5;
  entry.trace_id = "cafecafecafecafecafecafecafecafe";
  obsv::GlobalAccessLog().Record(std::move(entry));

  obsv::ArmCrashFlush("", "", access_path);
  EXPECT_TRUE(obsv::CrashFlushNow());

  const std::string contents = ReadFileOrEmpty(access_path);
  EXPECT_NE(contents.find("cafecafecafecafecafecafecafecafe"),
            std::string::npos)
      << contents;
  EXPECT_NE(contents.find("/kb/entity?id=42"), std::string::npos);
  obsv::DisarmCrashFlush();
}

// ---------------------------------------------------------------------------
// RunReport edge cases

TEST(RunReport, ZeroClassesSerializesToValidJson) {
  pipeline::RunReport report;
  report.total_seconds = 0.25;
  report.stages.push_back({"prepare_corpus", 0.25});
  const std::string json = pipeline::RunReportToJson(report);
  std::string error;
  util::JsonValue doc;
  ASSERT_TRUE(util::ParseJson(json, &doc, &error)) << error << "\n" << json;
  const util::JsonValue* classes = doc.Find("classes");
  ASSERT_NE(classes, nullptr);
  EXPECT_TRUE(classes->is_array());
  EXPECT_TRUE(classes->items().empty());
}

TEST(RunReport, ClassWithEmptyStageListSerializesToValidJson) {
  pipeline::RunReport report;
  pipeline::ClassStageReport cls;
  cls.cls = 7;
  cls.iteration = 2;
  report.classes.push_back(cls);  // no stages at all
  const std::string json = pipeline::RunReportToJson(report);
  std::string error;
  util::JsonValue doc;
  ASSERT_TRUE(util::ParseJson(json, &doc, &error)) << error << "\n" << json;
  const util::JsonValue& parsed = doc.Find("classes")->items()[0];
  EXPECT_DOUBLE_EQ(parsed.NumberOr("cls", -1), 7.0);
  EXPECT_TRUE(parsed.Find("stages")->items().empty());
}

TEST(RunReport, HistogramWithNoSamplesSerializesToValidJson) {
  pipeline::RunReport report;
  util::MetricsSnapshot::HistogramData hist;
  hist.name = "ltee.test.never_observed";
  hist.bounds = {1.0, 2.0};
  hist.buckets = {0, 0, 0};
  report.metrics.histograms.push_back(hist);
  const std::string json = pipeline::RunReportToJson(report);
  std::string error;
  EXPECT_TRUE(util::JsonIsValid(json, &error)) << error << "\n" << json;
  util::JsonValue doc;
  ASSERT_TRUE(util::ParseJson(json, &doc, &error)) << error;
  // The empty histogram round-trips through the Prometheus path too.
  const std::string text = util::RenderPrometheusText(report.metrics);
  EXPECT_NE(text.find("ltee_test_never_observed_count 0"), std::string::npos);
}

}  // namespace
}  // namespace ltee
