#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/aggregator.h"
#include "ml/cross_validation.h"
#include "ml/dataset.h"
#include "ml/genetic.h"
#include "ml/random_forest.h"
#include "ml/weighted_average.h"

namespace ltee::ml {
namespace {

// ---------------------------------------------------------------------------
// Dataset helpers
// ---------------------------------------------------------------------------

TEST(DatasetTest, FlattenImputesMissingSimilarities) {
  ScoredFeatures f;
  f.sims = {0.5, -1.0, 0.9};
  f.confs = {0.0, 2.0, 1.0};
  EXPECT_EQ(FlattenForForest(f),
            (std::vector<double>{0.5, 0.0, 0.9, 0.0, 2.0, 1.0}));
  EXPECT_EQ(SimsOnly(f), (std::vector<double>{0.5, 0.0, 0.9}));
}

TEST(DatasetTest, UpsamplingBalancesClasses) {
  std::vector<Example> examples;
  for (int i = 0; i < 3; ++i) {
    examples.push_back({{{1.0}, {0.0}}, 1.0});
  }
  for (int i = 0; i < 9; ++i) {
    examples.push_back({{{0.0}, {0.0}}, -1.0});
  }
  util::Rng rng(1);
  auto balanced = BalanceByUpsampling(std::move(examples), rng);
  int pos = 0, neg = 0;
  for (const auto& ex : balanced) (ex.target > 0 ? pos : neg) += 1;
  EXPECT_EQ(pos, neg);
  EXPECT_EQ(pos, 9);
}

TEST(DatasetTest, UpsamplingNoopWhenOneClassMissing) {
  std::vector<Example> examples = {{{{1.0}, {}}, 1.0}, {{{0.9}, {}}, 1.0}};
  util::Rng rng(1);
  EXPECT_EQ(BalanceByUpsampling(examples, rng).size(), 2u);
}

// ---------------------------------------------------------------------------
// Genetic optimizer
// ---------------------------------------------------------------------------

TEST(GeneticTest, FindsMaximumOfConcaveFunction) {
  util::Rng rng(3);
  // Maximum at (0.3, 0.7).
  auto fitness = [](const std::vector<double>& g) {
    return -(g[0] - 0.3) * (g[0] - 0.3) - (g[1] - 0.7) * (g[1] - 0.7);
  };
  auto best = GeneticMaximize(2, fitness, rng);
  EXPECT_NEAR(best[0], 0.3, 0.08);
  EXPECT_NEAR(best[1], 0.7, 0.08);
}

TEST(GeneticTest, RespectsUnitBox) {
  util::Rng rng(4);
  auto fitness = [](const std::vector<double>& g) { return g[0]; };
  auto best = GeneticMaximize(1, fitness, rng);
  EXPECT_GE(best[0], 0.0);
  EXPECT_LE(best[0], 1.0);
  EXPECT_GT(best[0], 0.9);  // should push to the boundary
}

// ---------------------------------------------------------------------------
// Weighted average model
// ---------------------------------------------------------------------------

TEST(WeightedAverageTest, RawScoreSkipsMissingMetrics) {
  WeightedAverageModel model({1.0, 1.0}, 0.5);
  ScoredFeatures f;
  f.sims = {0.8, -1.0};
  EXPECT_DOUBLE_EQ(model.RawScore(f), 0.8);
  f.sims = {0.8, 0.4};
  EXPECT_DOUBLE_EQ(model.RawScore(f), 0.6);
}

TEST(WeightedAverageTest, ThresholdNormalizesToSignedUnit) {
  WeightedAverageModel model({1.0}, 0.5);
  ScoredFeatures high;
  high.sims = {1.0};
  EXPECT_DOUBLE_EQ(model.Score(high), 1.0);
  ScoredFeatures low;
  low.sims = {0.0};
  EXPECT_DOUBLE_EQ(model.Score(low), -1.0);
  ScoredFeatures mid;
  mid.sims = {0.5};
  EXPECT_DOUBLE_EQ(model.Score(mid), 0.0);
}

TEST(WeightedAverageTest, LearnsToSeparateByInformativeMetric) {
  // Metric 0 is informative, metric 1 is noise.
  std::vector<Example> examples;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    Example ex;
    ex.features.sims = {positive ? 0.9 : 0.1, rng.NextDouble()};
    ex.features.confs = {0.0, 0.0};
    ex.target = positive ? 1.0 : -1.0;
    examples.push_back(std::move(ex));
  }
  WeightedAverageModel model;
  model.Train(examples, rng);
  int correct = 0;
  for (const auto& ex : examples) {
    const bool predicted = model.Score(ex.features) > 0.0;
    if (predicted == (ex.target > 0)) ++correct;
  }
  EXPECT_GT(correct, 190);
  const auto weights = model.NormalizedWeights();
  EXPECT_GT(weights[0], weights[1]);
}

// ---------------------------------------------------------------------------
// Random forest
// ---------------------------------------------------------------------------

TEST(RandomForestTest, FitsNonlinearFunction) {
  // XOR-like target that a linear model cannot fit.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDouble(), b = rng.NextDouble();
    x.push_back({a, b});
    y.push_back(((a > 0.5) != (b > 0.5)) ? 1.0 : -1.0);
  }
  RandomForestOptions options;
  options.num_trees = 40;
  RandomForestRegressor forest(options);
  forest.Train(x, y, rng);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if ((forest.Predict(x[i]) > 0) == (y[i] > 0)) ++correct;
  }
  EXPECT_GT(correct, 380);
  EXPECT_LT(forest.OobError(), 1.0);
}

TEST(RandomForestTest, ImportancesIdentifyInformativeFeature) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.NextDouble(), noise = rng.NextDouble();
    x.push_back({a, noise});
    y.push_back(a > 0.5 ? 1.0 : -1.0);
  }
  RandomForestOptions options;
  options.num_trees = 30;
  options.feature_fraction = 1.0;
  RandomForestRegressor forest(options);
  forest.Train(x, y, rng);
  const auto& importances = forest.FeatureImportances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.8);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(RandomForestTest, TuneBagFractionPicksACandidate) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.NextDouble();
    x.push_back({a});
    y.push_back(a);
  }
  RandomForestRegressor forest;
  const double chosen = forest.TuneBagFraction(x, y, rng, {0.6, 1.0});
  EXPECT_TRUE(chosen == 0.6 || chosen == 1.0);
  EXPECT_TRUE(forest.trained());
}

TEST(RandomForestTest, EmptyTrainingIsHarmless) {
  RandomForestRegressor forest;
  util::Rng rng(1);
  forest.Train({}, {}, rng);
  EXPECT_FALSE(forest.trained());
  EXPECT_DOUBLE_EQ(forest.Predict({1.0}), 0.0);
}

// ---------------------------------------------------------------------------
// Combined aggregator
// ---------------------------------------------------------------------------

class AggregatorKindTest
    : public ::testing::TestWithParam<AggregationKind> {};

TEST_P(AggregatorKindTest, LearnsSeparableData) {
  std::vector<Example> examples;
  util::Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    const bool positive = i % 3 == 0;  // imbalanced on purpose
    Example ex;
    ex.features.sims = {positive ? 0.8 + 0.2 * rng.NextDouble()
                                 : 0.2 * rng.NextDouble(),
                        rng.NextDouble()};
    ex.features.confs = {1.0, 0.0};
    ex.target = positive ? 1.0 : -1.0;
    examples.push_back(std::move(ex));
  }
  ScoreAggregator aggregator;
  aggregator.Train(examples, GetParam(), rng);
  int correct = 0;
  for (const auto& ex : examples) {
    const double s = aggregator.Score(ex.features);
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
    if ((s > 0) == (ex.target > 0)) ++correct;
  }
  EXPECT_GT(correct, 280);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregatorKindTest,
                         ::testing::Values(AggregationKind::kWeightedAverage,
                                           AggregationKind::kRandomForest,
                                           AggregationKind::kCombined));

TEST(AggregatorTest, MetricImportancesSumToOne) {
  std::vector<Example> examples;
  util::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Example ex;
    ex.features.sims = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    ex.features.confs = {0.0, 0.0, 0.0};
    ex.target = ex.features.sims[1] > 0.5 ? 1.0 : -1.0;
    examples.push_back(std::move(ex));
  }
  ScoreAggregator aggregator;
  aggregator.Train(examples, AggregationKind::kCombined, rng);
  const auto importances = aggregator.MetricImportances();
  ASSERT_EQ(importances.size(), 3u);
  double sum = 0.0;
  for (double imp : importances) sum += imp;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // The informative metric should dominate.
  EXPECT_GT(importances[1], importances[0]);
  EXPECT_GT(importances[1], importances[2]);
}

// ---------------------------------------------------------------------------
// Cross-validation fold assignment
// ---------------------------------------------------------------------------

TEST(CrossValidationTest, GroupsStayTogether) {
  const size_t n = 30;
  std::vector<int64_t> group(n, -1);
  group[0] = group[5] = group[17] = 100;
  group[2] = group[3] = 200;
  std::vector<int> stratum(n, 0);
  util::Rng rng(12);
  const auto folds = AssignFolds(n, group, stratum, 3, rng);
  EXPECT_EQ(folds[0], folds[5]);
  EXPECT_EQ(folds[0], folds[17]);
  EXPECT_EQ(folds[2], folds[3]);
}

TEST(CrossValidationTest, StrataBalancedAcrossFolds) {
  const size_t n = 90;
  std::vector<int64_t> group(n, -1);
  std::vector<int> stratum(n);
  for (size_t i = 0; i < n; ++i) stratum[i] = i % 2;  // two strata
  util::Rng rng(13);
  const auto folds = AssignFolds(n, group, stratum, 3, rng);
  int count[3][2] = {};
  for (size_t i = 0; i < n; ++i) count[folds[i]][stratum[i]] += 1;
  for (int f = 0; f < 3; ++f) {
    EXPECT_NEAR(count[f][0], 15, 2);
    EXPECT_NEAR(count[f][1], 15, 2);
  }
}

TEST(CrossValidationTest, AllFoldsInRange) {
  std::vector<int64_t> group(10, -1);
  std::vector<int> stratum(10, 0);
  util::Rng rng(14);
  const auto folds = AssignFolds(10, group, stratum, 4, rng);
  std::set<int> seen(folds.begin(), folds.end());
  for (int f : seen) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 4);
  }
}

}  // namespace
}  // namespace ltee::ml
