#include <gtest/gtest.h>

#include "baselines/row_matching.h"
#include "baselines/set_expansion.h"
#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "test_dataset.h"

namespace ltee::baselines {
namespace {

using ::ltee::testing::SharedDataset;

// ---------------------------------------------------------------------------
// Set expansion
// ---------------------------------------------------------------------------

TEST(SetExpansionTest, RanksCoOccurringLabelsFirst) {
  webtable::TableCorpus corpus;
  // Table 0: seed + a, b.  Table 1: seed + a.  Table 2: b + c (no seed).
  webtable::WebTable t0;
  t0.headers = {"Name"};
  t0.rows = {{"Seed"}, {"Alpha"}, {"Beta"}};
  webtable::WebTable t1;
  t1.headers = {"Name"};
  t1.rows = {{"Seed"}, {"Alpha"}};
  webtable::WebTable t2;
  t2.headers = {"Name"};
  t2.rows = {{"Beta"}, {"Gamma"}};
  corpus.Add(std::move(t0));
  corpus.Add(std::move(t1));
  corpus.Add(std::move(t2));

  SetExpander expander(corpus, {0, 0, 0});
  auto result = expander.Expand({"Seed"});
  ASSERT_GE(result.size(), 2u);
  EXPECT_EQ(result[0].label, "alpha");  // co-occurs twice
  EXPECT_EQ(result[1].label, "beta");   // co-occurs once
  // Gamma never co-occurs with a seed.
  for (const auto& candidate : result) {
    EXPECT_NE(candidate.label, "gamma");
    EXPECT_NE(candidate.label, "seed");  // seeds excluded
  }
}

TEST(SetExpansionTest, CutoffLimitsResults) {
  webtable::TableCorpus corpus;
  webtable::WebTable t;
  t.headers = {"Name"};
  t.rows.push_back({"Seed"});
  for (int i = 0; i < 50; ++i) {
    t.rows.push_back({"Label " + std::to_string(i)});
  }
  corpus.Add(std::move(t));
  SetExpansionOptions options;
  options.cutoff = 10;
  SetExpander expander(corpus, {0}, options);
  EXPECT_EQ(expander.Expand({"Seed"}).size(), 10u);
}

TEST(SetExpansionTest, FindsLongTailEntitiesOnSyntheticData) {
  const auto& ds = SharedDataset();
  std::vector<int> label_columns(ds.corpus.size(), -1);
  for (size_t t = 0; t < ds.table_truth.size(); ++t) {
    label_columns[t] = ds.table_truth[t].label_column;
  }
  SetExpander expander(ds.corpus, label_columns);
  // Seeds: popular Song-class KB entities.
  const int pi = ds.gold_profile[1];
  std::vector<std::string> seeds;
  for (int eid : ds.world.EntitiesOfProfile(pi)) {
    if (ds.world.entity(eid).in_kb && seeds.size() < 5) {
      seeds.push_back(ds.world.entity(eid).label);
    }
  }
  auto result = expander.Expand(seeds);
  EXPECT_FALSE(result.empty());
  // Scores are sorted descending.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].score, result[i].score);
  }
}

// ---------------------------------------------------------------------------
// Direct row-to-instance matching
// ---------------------------------------------------------------------------

TEST(RowMatchingTest, ResolvesCleanRowsAndSkipsUnknowns) {
  kb::KnowledgeBase kb;
  auto cls = kb.AddClass("C");
  auto team = kb.AddProperty(cls, "team", types::DataType::kInstanceReference);
  auto a = kb.AddInstance(cls, {"John Smith"});
  kb.AddFact(a, team, types::Value::InstanceRef("dallas cowboys"));
  auto b = kb.AddInstance(cls, {"Jane Doe"});
  kb.AddFact(b, team, types::Value::InstanceRef("chicago bears"));
  auto index = pipeline::BuildKbLabelIndex(kb);

  webtable::WebTable table;
  table.id = 0;
  table.headers = {"Name", "Team"};
  table.rows = {{"John Smith", "Dallas Cowboys"},
                {"Jane Doe", "Chicago Bears"},
                {"Nobody Known", "Dallas Cowboys"}};
  matching::TableMapping mapping;
  mapping.table = 0;
  mapping.label_column = 0;
  mapping.columns.resize(2);
  mapping.columns[1].property = team;

  RowInstanceMatcher matcher(kb, index);
  auto matches = matcher.MatchTable(table, mapping);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].instance, a);
  EXPECT_EQ(matches[1].instance, b);
  EXPECT_EQ(matches[2].instance, kb::kInvalidInstance);
}

TEST(RowMatchingTest, ConflictingValuesLowerTheScore) {
  kb::KnowledgeBase kb;
  auto cls = kb.AddClass("C");
  auto team = kb.AddProperty(cls, "team", types::DataType::kInstanceReference);
  auto a = kb.AddInstance(cls, {"John Smith"});
  kb.AddFact(a, team, types::Value::InstanceRef("dallas cowboys"));
  auto index = pipeline::BuildKbLabelIndex(kb);

  webtable::WebTable table;
  table.id = 0;
  table.headers = {"Name", "Team"};
  table.rows = {{"John Smith", "Dallas Cowboys"},
                {"John Smith", "Green Bay Packers"}};
  matching::TableMapping mapping;
  mapping.table = 0;
  mapping.label_column = 0;
  mapping.columns.resize(2);
  mapping.columns[1].property = team;

  RowInstanceMatcher matcher(kb, index);
  auto matches = matcher.MatchTable(table, mapping);
  // The agreeing row matches; the conflicting row's combined score falls
  // below the threshold.
  EXPECT_EQ(matches[0].instance, a);
  EXPECT_GT(matches[0].score, matches[1].score);
  EXPECT_EQ(matches[1].instance, kb::kInvalidInstance);
}

TEST(RowMatchingTest, MostExistingGoldRowsResolve) {
  const auto& ds = SharedDataset();
  auto index = pipeline::BuildKbLabelIndex(ds.kb);
  RowInstanceMatcher matcher(ds.kb, index);
  const auto& gs = ds.gold.front();
  auto mapping = pipeline::GoldSchemaMapping(ds.gs_corpus, gs, ds.kb);
  auto truth = pipeline::GoldRowInstances(gs);
  size_t correct = 0;
  for (webtable::TableId tid : gs.tables) {
    auto matches = matcher.MatchTable(ds.gs_corpus.table(tid),
                                      mapping.of(tid));
    for (const auto& match : matches) {
      auto it = truth.find(match.row);
      if (it != truth.end() && match.instance == it->second) ++correct;
    }
  }
  ASSERT_FALSE(truth.empty());
  EXPECT_GT(static_cast<double>(correct) / truth.size(), 0.5);
}

}  // namespace
}  // namespace ltee::baselines
