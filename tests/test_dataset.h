#ifndef LTEE_TESTS_TEST_DATASET_H_
#define LTEE_TESTS_TEST_DATASET_H_

#include "synth/dataset.h"

namespace ltee::testing {

/// Shared small synthetic dataset, built once per test binary. Tests must
/// treat it as read-only.
inline const synth::SyntheticDataset& SharedDataset() {
  static const synth::SyntheticDataset* dataset = [] {
    synth::DatasetOptions options;
    options.scale = 0.002;
    options.seed = 20190326;  // EDBT 2019 :-)
    return new synth::SyntheticDataset(synth::BuildDataset(options));
  }();
  return *dataset;
}

}  // namespace ltee::testing

#endif  // LTEE_TESTS_TEST_DATASET_H_
