#include <gtest/gtest.h>

#include <set>

#include "eval/clustering_eval.h"
#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "rowcluster/row_clusterer.h"
#include "rowcluster/row_features.h"
#include "rowcluster/row_metrics.h"
#include "test_dataset.h"

namespace ltee::rowcluster {
namespace {

using ::ltee::testing::SharedDataset;

/// Shared per-binary fixture: the gold-mapping row set of the first gold
/// class (GF-Player) with its gold cluster assignment.
struct GoldRows {
  std::shared_ptr<util::TokenDictionary> dict;
  index::LabelIndex kb_index;
  std::unique_ptr<webtable::PreparedCorpus> prepared;
  matching::SchemaMapping mapping;
  ClassRowSet rows;
  std::vector<int> gold_cluster;
};

const GoldRows& SharedGoldRows() {
  static const GoldRows* state = [] {
    const auto& ds = SharedDataset();
    auto* s = new GoldRows;
    s->dict = std::make_shared<util::TokenDictionary>();
    s->kb_index = pipeline::BuildKbLabelIndex(ds.kb, s->dict);
    s->prepared =
        std::make_unique<webtable::PreparedCorpus>(ds.gs_corpus, s->dict);
    s->mapping.tables.resize(ds.gs_corpus.size());
    for (const auto& gs : ds.gold) {
      auto m = pipeline::GoldSchemaMapping(ds.gs_corpus, gs, ds.kb);
      pipeline::MergeGoldMappings(m, &s->mapping);
    }
    const auto& gs = ds.gold.front();
    s->rows = BuildClassRowSet(*s->prepared, s->mapping, gs.cls, ds.kb,
                               s->kb_index);
    s->gold_cluster.resize(s->rows.rows.size());
    for (size_t i = 0; i < s->rows.rows.size(); ++i) {
      s->gold_cluster[i] = gs.ClusterOfRow(s->rows.rows[i].ref);
    }
    return s;
  }();
  return *state;
}

TEST(RowFeaturesTest, EveryGoldRowIsExtracted) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldRows();
  size_t expected = 0;
  for (auto tid : ds.gold.front().tables) {
    expected += ds.gs_corpus.table(tid).num_rows();
  }
  EXPECT_EQ(state.rows.rows.size(), expected);
  for (const auto& row : state.rows.rows) {
    EXPECT_FALSE(row.normalized_label.empty());
    EXPECT_FALSE(row.bow.empty());
    EXPECT_GE(row.table_index, 0);
  }
}

TEST(RowFeaturesTest, ValuesComeFromMatchedColumns) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldRows();
  size_t with_values = 0;
  for (const auto& row : state.rows.rows) {
    for (const auto& rv : row.values) {
      EXPECT_EQ(rv.value.type, ds.kb.property(rv.property).type);
      EXPECT_GE(rv.column, 0);
    }
    if (!row.values.empty()) ++with_values;
  }
  EXPECT_GT(with_values, state.rows.rows.size() / 2);
}

TEST(RowFeaturesTest, SomeTablesDeriveImplicitAttributes) {
  const auto& state = SharedGoldRows();
  size_t tables_with_implicit = 0;
  for (const auto& implicit : state.rows.table_implicit) {
    for (const auto& attr : implicit) {
      EXPECT_GE(attr.score, 0.5);
      EXPECT_LE(attr.score, 1.0);
    }
    if (!implicit.empty()) ++tables_with_implicit;
  }
  EXPECT_GT(tables_with_implicit, 0u);
}

TEST(RowFeaturesTest, FilterRowsKeepsSubset) {
  const auto& state = SharedGoldRows();
  std::vector<bool> keep(state.rows.rows.size(), false);
  for (size_t i = 0; i < keep.size(); i += 2) keep[i] = true;
  auto filtered = FilterRows(state.rows, keep);
  EXPECT_EQ(filtered.rows.size(), (state.rows.rows.size() + 1) / 2);
  EXPECT_EQ(filtered.tables.size(), state.rows.tables.size());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(RowMetricsTest, FeatureVectorMatchesEnabledMask) {
  const auto& state = SharedGoldRows();
  RowMetricBank all(state.rows, FirstKMetrics(6));
  EXPECT_EQ(all.num_enabled(), 6);
  auto f = all.Compare(0, 1);
  EXPECT_EQ(f.sims.size(), 6u);
  EXPECT_EQ(f.confs.size(), 6u);

  RowMetricBank only_label(state.rows, FirstKMetrics(1));
  EXPECT_EQ(only_label.Compare(0, 1).sims.size(), 1u);
  EXPECT_EQ(only_label.EnabledNames(),
            (std::vector<std::string>{"LABEL"}));
}

TEST(RowMetricsTest, LabelMetricReflectsLabelEquality) {
  const auto& state = SharedGoldRows();
  RowMetricBank bank(state.rows, FirstKMetrics(1));
  // Find two rows with identical normalized labels (same gold cluster).
  int a = -1, b = -1;
  for (size_t i = 0; i < state.rows.rows.size() && a < 0; ++i) {
    for (size_t j = i + 1; j < state.rows.rows.size(); ++j) {
      if (state.rows.rows[i].normalized_label ==
          state.rows.rows[j].normalized_label) {
        a = static_cast<int>(i);
        b = static_cast<int>(j);
        break;
      }
    }
  }
  ASSERT_GE(a, 0) << "no duplicate labels in gold rows";
  EXPECT_DOUBLE_EQ(bank.Compare(a, b).sims[0], 1.0);
}

TEST(RowMetricsTest, SameTableMetricIsZeroWithinTable) {
  const auto& state = SharedGoldRows();
  RowMetricBank bank(state.rows, FirstKMetrics(6));
  int a = -1, b = -1, c = -1;
  for (size_t i = 0; i + 1 < state.rows.rows.size(); ++i) {
    if (state.rows.rows[i].table_index == state.rows.rows[i + 1].table_index) {
      a = static_cast<int>(i);
      b = static_cast<int>(i + 1);
    } else {
      c = static_cast<int>(i + 1);
    }
    if (a >= 0 && c >= 0) break;
  }
  ASSERT_GE(a, 0);
  const int same_table_slot = 5;
  EXPECT_DOUBLE_EQ(bank.Compare(a, b).sims[same_table_slot], 0.0);
  if (c >= 0 && state.rows.rows[a].table_index !=
                    state.rows.rows[c].table_index) {
    EXPECT_DOUBLE_EQ(bank.Compare(a, c).sims[same_table_slot], 1.0);
  }
}

TEST(RowMetricsTest, AttributeMetricNotApplicableWithoutOverlap) {
  ClassRowSet rows;
  rows.cls = 0;
  rows.dict = std::make_shared<util::TokenDictionary>();
  rows.tables = {0, 1};
  rows.table_implicit.resize(2);
  rows.table_phi.resize(2);
  RowFeature a;
  a.table_index = 0;
  a.normalized_label = "x";
  a.label_tokens = rows.dict->InternTokens(a.normalized_label);
  RowFeature b = a;
  b.table_index = 1;
  a.values.push_back({0, 1, types::Value::OfQuantity(5)});
  b.values.push_back({1, 1, types::Value::OfQuantity(5)});  // other property
  rows.rows = {a, b};
  RowMetricBank bank(rows, FirstKMetrics(6));
  auto f = bank.Compare(0, 1);
  EXPECT_DOUBLE_EQ(f.sims[3], -1.0);  // ATTRIBUTE n/a
  EXPECT_DOUBLE_EQ(f.confs[3], 0.0);
}

// ---------------------------------------------------------------------------
// Clustering driver
// ---------------------------------------------------------------------------

TEST(RowClustererTest, BlocksGroupSimilarLabels) {
  const auto& state = SharedGoldRows();
  RowClusterer clusterer;
  auto blocks = clusterer.BuildBlocks(state.rows);
  ASSERT_EQ(blocks.size(), state.rows.rows.size());
  // Rows with identical labels must share their primary block.
  for (size_t i = 0; i < state.rows.rows.size(); ++i) {
    for (size_t j = i + 1; j < state.rows.rows.size(); ++j) {
      if (state.rows.rows[i].normalized_label ==
          state.rows.rows[j].normalized_label) {
        EXPECT_EQ(blocks[i][0], blocks[j][0]);
      }
    }
  }
}

TEST(RowClustererTest, DisabledBlockingYieldsSingleBlock) {
  const auto& state = SharedGoldRows();
  RowClustererOptions options;
  options.enable_blocking = false;
  RowClusterer clusterer(options);
  auto blocks = clusterer.BuildBlocks(state.rows);
  for (const auto& b : blocks) {
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0], 0);
  }
}

TEST(RowClustererTest, TrainedClustererRecoversGoldClustersReasonably) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldRows();
  RowClusterer clusterer;
  util::Rng rng(23);
  clusterer.Train(state.rows, state.gold_cluster, rng);
  auto result = clusterer.Cluster(state.rows);
  EXPECT_GT(result.num_clusters, 10);

  std::vector<webtable::RowRef> refs;
  for (const auto& row : state.rows.rows) refs.push_back(row.ref);
  auto grouped = eval::GroupRows(refs, result.cluster_of);
  auto metrics = eval::EvaluateClustering(grouped, ds.gold.front());
  // In-sample clustering should be clearly better than chance.
  EXPECT_GT(metrics.f1, 0.5);

  auto importances = clusterer.MetricImportances();
  ASSERT_EQ(importances.size(), 6u);
  double sum = 0;
  for (double imp : importances) sum += imp;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

}  // namespace
}  // namespace ltee::rowcluster
