// Property-style invariant sweeps: randomized inputs, structural
// invariants checked, parameterized over seeds.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/correlation_clusterer.h"
#include "eval/clustering_eval.h"
#include "eval/gold_standard.h"
#include "ml/cross_validation.h"
#include "types/type_similarity.h"
#include "types/value_parser.h"
#include "util/random.h"
#include "util/similarity.h"

namespace ltee {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------------------------
// Correlation clustering invariants
// ---------------------------------------------------------------------------

TEST_P(SeededTest, ClusteringProducesDenseIdsAndRespectsBlocks) {
  util::Rng rng(GetParam());
  const int n = 40 + static_cast<int>(rng.NextBounded(60));
  // Random ground truth and noisy similarity.
  std::vector<int> truth(n);
  for (auto& t : truth) t = static_cast<int>(rng.NextBounded(12));
  std::vector<std::vector<int32_t>> blocks(n);
  for (int i = 0; i < n; ++i) {
    blocks[i] = {truth[i] % 5, static_cast<int32_t>(5 + rng.NextBounded(3))};
  }
  util::Rng noise(GetParam() ^ 0xabcdef);
  std::map<std::pair<int, int>, double> pair_noise;
  auto sim = [&](int i, int j) {
    auto key = std::minmax(i, j);
    auto [it, inserted] = pair_noise.emplace(
        std::make_pair(key.first, key.second),
        (noise.NextDouble() - 0.5) * 0.6);
    return (truth[i] == truth[j] ? 0.7 : -0.7) + it->second;
  };
  auto result = cluster::ClusterCorrelation(n, sim, blocks);

  // (1) Every item assigned; ids dense 0..k-1.
  std::set<int> used(result.cluster_of.begin(), result.cluster_of.end());
  EXPECT_EQ(static_cast<int>(used.size()), result.num_clusters);
  EXPECT_EQ(*used.begin(), 0);
  EXPECT_EQ(*used.rbegin(), result.num_clusters - 1);

  // (2) No cluster spans items that share no block with any other member
  // chain — weaker but checkable form: every pair in a cluster is
  // connected through the block graph.
  std::map<int, std::vector<int>> members;
  for (int i = 0; i < n; ++i) members[result.cluster_of[i]].push_back(i);
  for (const auto& [c, items] : members) {
    // BFS over block-sharing within the cluster.
    std::set<int> visited = {items[0]};
    std::vector<int> queue = {items[0]};
    while (!queue.empty()) {
      int cur = queue.back();
      queue.pop_back();
      for (int other : items) {
        if (visited.count(other)) continue;
        bool share = false;
        for (int32_t b : blocks[cur]) {
          for (int32_t ob : blocks[other]) {
            if (b == ob) share = true;
          }
        }
        if (share) {
          visited.insert(other);
          queue.push_back(other);
        }
      }
    }
    EXPECT_EQ(visited.size(), items.size()) << "cluster not block-connected";
  }
}

TEST_P(SeededTest, KljNeverDecreasesFitness) {
  util::Rng rng(GetParam() * 31 + 7);
  const int n = 30 + static_cast<int>(rng.NextBounded(40));
  std::vector<int> truth(n);
  for (auto& t : truth) t = static_cast<int>(rng.NextBounded(8));
  std::vector<std::vector<int32_t>> blocks(n, {0});
  util::Rng noise(GetParam());
  std::map<std::pair<int, int>, double> cache;
  auto sim = [&](int i, int j) {
    auto key = std::minmax(i, j);
    auto [it, inserted] = cache.emplace(
        std::make_pair(key.first, key.second),
        (noise.NextDouble() - 0.5) * 1.2);
    return (truth[i] == truth[j] ? 0.5 : -0.5) + it->second;
  };
  cluster::ClusteringOptions with;
  cluster::ClusteringOptions without;
  without.enable_klj = false;
  auto refined = cluster::ClusterCorrelation(n, sim, blocks, with);
  auto greedy_only = cluster::ClusterCorrelation(n, sim, blocks, without);
  EXPECT_GE(refined.fitness, greedy_only.fitness - 1e-9);
}

// ---------------------------------------------------------------------------
// Type system invariants
// ---------------------------------------------------------------------------

TEST_P(SeededTest, ValueSimilarityIsSymmetricAndBounded) {
  util::Rng rng(GetParam() * 17 + 3);
  auto random_value = [&rng]() {
    switch (rng.NextBounded(6)) {
      case 0: return types::Value::Text("tok" + std::to_string(rng.NextBounded(20)) + " x" + std::to_string(rng.NextBounded(9)));
      case 1: return types::Value::Nominal(std::to_string(rng.NextBounded(50)));
      case 2: return types::Value::InstanceRef("label " + std::to_string(rng.NextBounded(30)));
      case 3: return rng.NextBool(0.5)
                   ? types::Value::YearDate(1950 + static_cast<int>(rng.NextBounded(70)))
                   : types::Value::DayDate(1950 + static_cast<int>(rng.NextBounded(70)),
                                           1 + static_cast<int>(rng.NextBounded(12)),
                                           1 + static_cast<int>(rng.NextBounded(28)));
      case 4: return types::Value::OfQuantity(static_cast<double>(rng.NextBounded(100000)));
      default: return types::Value::OfInteger(static_cast<int64_t>(rng.NextBounded(300)));
    }
  };
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_value();
    const auto b = random_value();
    const double sab = types::ValueSimilarity(a, b);
    const double sba = types::ValueSimilarity(b, a);
    EXPECT_DOUBLE_EQ(sab, sba);
    EXPECT_GE(sab, 0.0);
    EXPECT_LE(sab, 1.0);
    EXPECT_EQ(types::ValuesEqual(a, b), types::ValuesEqual(b, a));
    // Reflexivity.
    EXPECT_TRUE(types::ValuesEqual(a, a));
    EXPECT_DOUBLE_EQ(types::ValueSimilarity(a, a), 1.0);
  }
}

TEST_P(SeededTest, MongeElkanBoundedAndReflexive) {
  util::Rng rng(GetParam() + 5);
  const char* words[] = {"spring", "field", "north", "lake", "john", "doe"};
  auto random_label = [&]() {
    std::string s;
    const int n = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < n; ++i) {
      if (i) s += " ";
      s += words[rng.NextBounded(6)];
    }
    return s;
  };
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = random_label(), b = random_label();
    const double s = util::MongeElkanLevenshtein(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_DOUBLE_EQ(util::MongeElkanLevenshtein(a, a), 1.0);
    EXPECT_DOUBLE_EQ(s, util::MongeElkanLevenshtein(b, a));
  }
}

// ---------------------------------------------------------------------------
// Evaluation invariants
// ---------------------------------------------------------------------------

TEST_P(SeededTest, ClusteringEvalPerfectIsOneAndBounded) {
  util::Rng rng(GetParam() * 11 + 1);
  // Random gold standard over synthetic row refs.
  eval::GoldStandard gold;
  gold.cls = 0;
  int table = 0, row = 0;
  const int num_clusters = 3 + static_cast<int>(rng.NextBounded(10));
  for (int c = 0; c < num_clusters; ++c) {
    eval::GsCluster cluster;
    const int size = 1 + static_cast<int>(rng.NextBounded(5));
    for (int r = 0; r < size; ++r) {
      cluster.rows.push_back({table, row++});
      if (row > 3) {
        ++table;
        row = 0;
      }
    }
    cluster.is_new = rng.NextBool(0.4);
    gold.clusters.push_back(std::move(cluster));
  }
  gold.BuildLookups();

  // Perfect clustering scores exactly 1.
  std::vector<std::vector<webtable::RowRef>> perfect;
  for (const auto& c : gold.clusters) perfect.push_back(c.rows);
  auto result = eval::EvaluateClustering(perfect, gold);
  EXPECT_DOUBLE_EQ(result.f1, 1.0);

  // Random clusterings stay bounded in [0, 1].
  std::vector<webtable::RowRef> all_rows;
  for (const auto& c : gold.clusters) {
    for (const auto& r : c.rows) all_rows.push_back(r);
  }
  for (int trial = 0; trial < 10; ++trial) {
    const int k = 1 + static_cast<int>(rng.NextBounded(all_rows.size()));
    std::vector<std::vector<webtable::RowRef>> random_clusters(k);
    for (const auto& r : all_rows) {
      random_clusters[rng.NextBounded(k)].push_back(r);
    }
    auto rr = eval::EvaluateClustering(random_clusters, gold);
    EXPECT_GE(rr.penalized_precision, 0.0);
    EXPECT_LE(rr.penalized_precision, 1.0);
    EXPECT_GE(rr.average_recall, 0.0);
    EXPECT_LE(rr.average_recall, 1.0);
    EXPECT_LE(rr.f1, 1.0);
  }
}

TEST_P(SeededTest, FoldAssignmentPartitionsEverything) {
  util::Rng rng(GetParam() * 3 + 11);
  const size_t n = 20 + rng.NextBounded(100);
  std::vector<int64_t> group(n, -1);
  std::vector<int> stratum(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) group[i] = static_cast<int64_t>(rng.NextBounded(8));
    stratum[i] = static_cast<int>(rng.NextBounded(2));
  }
  const int k = 2 + static_cast<int>(rng.NextBounded(4));
  auto folds = ml::AssignFolds(n, group, stratum, k, rng);
  ASSERT_EQ(folds.size(), n);
  std::map<int64_t, std::set<int>> folds_per_group;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(folds[i], 0);
    EXPECT_LT(folds[i], k);
    if (group[i] >= 0) folds_per_group[group[i]].insert(folds[i]);
  }
  for (const auto& [g, fold_set] : folds_per_group) {
    EXPECT_EQ(fold_set.size(), 1u) << "group " << g << " split across folds";
  }
}

// ---------------------------------------------------------------------------
// Parser fuzz: no crashes, classified output always self-consistent
// ---------------------------------------------------------------------------

TEST_P(SeededTest, CellClassifierNeverMisbehavesOnRandomBytes) {
  util::Rng rng(GetParam() * 131 + 17);
  for (int trial = 0; trial < 300; ++trial) {
    std::string cell;
    const size_t len = rng.NextBounded(24);
    for (size_t i = 0; i < len; ++i) {
      cell.push_back(static_cast<char>(32 + rng.NextBounded(95)));
    }
    const auto result = types::ClassifyCell(cell);
    switch (result.type) {
      case types::DetectedType::kDate:
        EXPECT_EQ(result.value.type, types::DataType::kDate);
        EXPECT_GE(result.value.date.year, 1000);
        EXPECT_LE(result.value.date.year, 2999);
        break;
      case types::DetectedType::kQuantity:
        EXPECT_EQ(result.value.type, types::DataType::kQuantity);
        break;
      case types::DetectedType::kText:
        EXPECT_EQ(result.value.type, types::DataType::kText);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace ltee
