// Memory observability (obsv/memtrack): allocator interposition on/off,
// span-attributed byte accounting, sampled heap-profile collect/reset
// round trips, peak-RSS monotonicity, /memory endpoint semantics, and
// the reconciliation gates between memtrack accounting and the two
// existing footprint estimates (the row-clusterer dense-pair-cache gauge
// and ShardedLruCache::ApproxFootprintBytes).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obsv/http_client.h"
#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "obsv/status_server.h"
#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "rowcluster/row_clusterer.h"
#include "rowcluster/row_features.h"
#include "serve/result_cache.h"
#include "test_dataset.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/stack_capture.h"
#include "util/trace.h"

namespace ltee {
namespace {

using ::ltee::testing::SharedDataset;

/// Allocates `count` blocks of `block_bytes` through operator new[] and
/// touches them so the allocation cannot be elided. The caller keeps the
/// result alive to hold the bytes live.
std::vector<std::unique_ptr<char[]>> AllocateBlocks(size_t count,
                                                    size_t block_bytes) {
  std::vector<std::unique_ptr<char[]>> blocks;
  blocks.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    blocks.emplace_back(new char[block_bytes]);
    blocks.back()[0] = static_cast<char>(i);
    blocks.back()[block_bytes - 1] = 1;
  }
  return blocks;
}

/// The span table entry for `name`, or a default-constructed one.
obsv::SpanBytes SpanEntry(const std::string& name) {
  for (const auto& span : obsv::MemtrackSpanBytes()) {
    if (span.span == name) return span;
  }
  return {};
}

double GaugeValue(const char* name) {
  const auto snap = util::Metrics().Snapshot();
  for (const auto& [gauge_name, value] : snap.gauges) {
    if (gauge_name == name) return value;
  }
  return 0.0;
}

TEST(Memtrack, CountersTrackLiveAndCumulativeDeltas) {
  if (!obsv::MemTrackingSupported()) {
    GTEST_SKIP() << "allocator interposition compiled out";
  }
  obsv::SetMemTrackingEnabled(true);
  EXPECT_TRUE(obsv::MemTrackingEnabled());

  constexpr size_t kBlocks = 16;
  constexpr size_t kBlockBytes = 64 * 1024;
  const obsv::MemtrackTotals before = obsv::GetMemtrackTotals();
  {
    auto blocks = AllocateBlocks(kBlocks, kBlockBytes);
    const obsv::MemtrackTotals during = obsv::GetMemtrackTotals();
    EXPECT_GE(during.live_bytes - before.live_bytes, kBlocks * kBlockBytes);
    EXPECT_GE(during.live_allocs - before.live_allocs, kBlocks);
    EXPECT_GE(during.cum_bytes - before.cum_bytes, kBlocks * kBlockBytes);
    EXPECT_GE(during.cum_allocs - before.cum_allocs, kBlocks);
    // Peak tracks the high-water mark of live bytes.
    EXPECT_GE(during.peak_live_bytes, during.live_bytes);
  }
  // Everything freed: live returns to within test-harness noise of the
  // starting point; cumulative counters stay monotone.
  const obsv::MemtrackTotals after = obsv::GetMemtrackTotals();
  EXPECT_LT(after.live_bytes - before.live_bytes, 16u * 1024u);
  EXPECT_GE(after.cum_bytes, before.cum_bytes);

  // With tracking off the counters freeze (the header still makes the
  // eventual frees interpretable).
  obsv::SetMemTrackingEnabled(false);
  EXPECT_FALSE(obsv::MemTrackingEnabled());
  const obsv::MemtrackTotals off_before = obsv::GetMemtrackTotals();
  {
    auto blocks = AllocateBlocks(kBlocks, kBlockBytes);
    const obsv::MemtrackTotals off_during = obsv::GetMemtrackTotals();
    EXPECT_LT(off_during.cum_bytes - off_before.cum_bytes,
              kBlocks * kBlockBytes);
    EXPECT_LT(off_during.live_bytes - off_before.live_bytes,
              kBlocks * kBlockBytes);
  }
}

TEST(Memtrack, AttributesLiveBytesToTheOpenSpan) {
  if (!obsv::MemTrackingSupported()) {
    GTEST_SKIP() << "allocator interposition compiled out";
  }
  obsv::SetMemTrackingEnabled(true);
  // Attribution is its own switch on top of the counters (heap-profiler
  // sessions flip it automatically; here we drive it directly).
  obsv::SetSpanAccountingEnabled(true);
  EXPECT_TRUE(obsv::SpanAccountingEnabled());

  constexpr size_t kBlocks = 8;
  constexpr size_t kBlockBytes = 64 * 1024;
  const obsv::SpanBytes before = SpanEntry("memtest.span_attr");
  {
    // Opened after enable so the span mirror is live for this thread.
    util::trace::ScopedSpan span("memtest.span_attr");
    auto blocks = AllocateBlocks(kBlocks, kBlockBytes);
    const obsv::SpanBytes during = SpanEntry("memtest.span_attr");
    EXPECT_GE(during.cum_bytes - before.cum_bytes, kBlocks * kBlockBytes);
    EXPECT_GE(during.allocs - before.allocs, kBlocks);
    EXPECT_GE(during.live_bytes, kBlocks * kBlockBytes);
  }
  // The frees decrement the same span's live bytes even though the span
  // is closed now (attribution rides the allocation header).
  const obsv::SpanBytes after = SpanEntry("memtest.span_attr");
  EXPECT_LT(after.live_bytes, 16u * 1024u);
  EXPECT_GE(after.cum_bytes - before.cum_bytes, kBlocks * kBlockBytes);

  obsv::SetSpanAccountingEnabled(false);
  obsv::SetMemTrackingEnabled(false);
}

TEST(Memtrack, PeakRssIsPositiveAndMonotonic) {
  // ReadPeakRssBytes works regardless of interposition support.
  const uint64_t first = obsv::ReadPeakRssBytes();
  EXPECT_GT(first, 0u);
  {
    auto blocks = AllocateBlocks(128, 64 * 1024);
    const uint64_t grown = obsv::ReadPeakRssBytes();
    EXPECT_GE(grown, first);
  }
  // VmHWM is a high-water mark: freeing must never lower it.
  EXPECT_GE(obsv::ReadPeakRssBytes(), first);
}

TEST(HeapProfiler, SampledCollectRoundTripAndReset) {
  if (!obsv::MemTrackingSupported()) {
    GTEST_SKIP() << "allocator interposition compiled out";
  }
  if (!util::StackCaptureSupported()) {
    GTEST_SKIP() << "no backtrace/dladdr on this platform";
  }
  obsv::HeapProfilerOptions options;
  options.sample_bytes = 1024;  // sample every allocation in the test
  std::string error;
  ASSERT_TRUE(obsv::StartHeapProfiler(options, &error)) << error;
  EXPECT_TRUE(obsv::HeapProfilerActive());
  EXPECT_TRUE(obsv::MemTrackingEnabled());

  std::vector<std::unique_ptr<char[]>> blocks;
  {
    util::trace::ScopedSpan span("memtest.heap_span");
    blocks = AllocateBlocks(32, 16 * 1024);
  }
  obsv::StopHeapProfiler();
  EXPECT_FALSE(obsv::HeapProfilerActive());

  const obsv::HeapProfileStats stats = obsv::CurrentHeapProfileStats();
  EXPECT_GT(stats.samples, 0u);
  EXPECT_EQ(stats.sample_kb, 1u);

  // The session stays owned through Stop and Collect; no second start.
  const std::string collapsed = obsv::CollectCollapsedHeapProfile();
  EXPECT_FALSE(obsv::StartHeapProfiler(options, &error));
  EXPECT_FALSE(error.empty());

  EXPECT_EQ(collapsed.rfind("# ltee-profile ", 0), 0u);
  EXPECT_NE(collapsed.find(" heap=1"), std::string::npos);
  EXPECT_NE(collapsed.find("span:memtest.heap_span;"), std::string::npos);
  EXPECT_NE(collapsed.find("# ltee-memtrack-span memtest.heap_span "),
            std::string::npos);

  // Round trip: stack lines parse with the CPU parser (live bytes as
  // counts), the heap header with its own.
  obsv::ProfileAnalysis analysis;
  ASSERT_TRUE(obsv::ParseCollapsedProfile(collapsed, &analysis, &error))
      << error;
  obsv::HeapProfileHeader header;
  ASSERT_TRUE(obsv::ParseHeapProfileHeader(collapsed, &header));
  EXPECT_TRUE(header.is_heap);
  EXPECT_EQ(header.sample_kb, 1u);
  EXPECT_GT(header.live_bytes, 0u);
  EXPECT_GT(header.peak_rss_kb, 0u);
  EXPECT_FALSE(header.spans.empty());
  uint64_t span_bytes = 0;
  for (const auto& span : analysis.spans) {
    if (span.name == "memtest.heap_span") span_bytes = span.samples;
  }
  // All 32 * 16KB blocks were alive at collect time and sampled densely.
  EXPECT_GE(span_bytes, 32u * 16u * 1024u);

  // Reset closes the session: stats clear and a new capture can start.
  obsv::ResetHeapProfiler();
  EXPECT_EQ(obsv::CurrentHeapProfileStats().samples, 0u);
  ASSERT_TRUE(obsv::StartHeapProfiler(options, &error)) << error;
  obsv::StopHeapProfiler();
  obsv::ResetHeapProfiler();
  EXPECT_FALSE(obsv::MemTrackingEnabled());
}

TEST(HeapProfiler, BoundedCaptureIsExclusiveWhileSessionOpen) {
  if (!obsv::MemTrackingSupported()) {
    GTEST_SKIP() << "allocator interposition compiled out";
  }
  if (!util::StackCaptureSupported()) {
    GTEST_SKIP() << "no backtrace/dladdr on this platform";
  }
  obsv::HeapProfilerOptions options;
  std::string error;
  ASSERT_TRUE(obsv::StartHeapProfiler(options, &error)) << error;
  std::string collapsed;
  EXPECT_FALSE(obsv::CaptureHeapProfile(0.05, 64, &collapsed, &error));
  obsv::StopHeapProfiler();
  EXPECT_FALSE(obsv::CaptureHeapProfile(0.05, 64, &collapsed, &error));
  (void)obsv::CollectCollapsedHeapProfile();
  obsv::ResetHeapProfiler();

  ASSERT_TRUE(obsv::CaptureHeapProfile(0.05, 64, &collapsed, &error))
      << error;
  EXPECT_EQ(collapsed.rfind("# ltee-profile ", 0), 0u);
  EXPECT_NE(collapsed.find(" heap=1"), std::string::npos);
}

TEST(MemoryEndpoint, ValidatesParametersAndServesCaptures) {
  obsv::StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  // Malformed or out-of-range parameters are client errors, not captures.
  int status = 0;
  std::string body;
  for (const char* path :
       {"/memory?seconds=abc", "/memory?seconds=0", "/memory?seconds=31",
        "/memory?seconds=1&sample_kb=0", "/memory?seconds=1&sample_kb=abc",
        "/memory?seconds=1&sample_kb=70000"}) {
    ASSERT_TRUE(obsv::HttpGet(server.port(), path, &status, &body, &error))
        << error;
    EXPECT_EQ(status, 400) << path;
  }

  if (!obsv::MemTrackingSupported() || !util::StackCaptureSupported()) {
    // Without interposition the endpoint always refuses with 503 — it
    // can never capture, but it must not crash or hang.
    ASSERT_TRUE(obsv::HttpGet(server.port(), "/memory?seconds=0.1", &status,
                              &body, &error))
        << error;
    EXPECT_EQ(status, 503);
    server.Stop();
    return;
  }

  // While a heap session is open elsewhere the endpoint answers 503
  // (busy), never queues.
  obsv::HeapProfilerOptions options;
  ASSERT_TRUE(obsv::StartHeapProfiler(options, &error)) << error;
  ASSERT_TRUE(obsv::HttpGet(server.port(), "/memory?seconds=0.1", &status,
                            &body, &error))
      << error;
  EXPECT_EQ(status, 503);
  obsv::StopHeapProfiler();
  (void)obsv::CollectCollapsedHeapProfile();
  obsv::ResetHeapProfiler();

  // Happy path: keep a worker allocating so the capture window sees live
  // bytes, then round-trip the collapsed heap body.
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<char[]>> held;
  std::thread allocator([&stop, &held] {
    while (!stop.load() && held.size() < 512) {
      auto blocks = AllocateBlocks(1, 64 * 1024);
      held.push_back(std::move(blocks.front()));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  ASSERT_TRUE(obsv::HttpGet(server.port(),
                            "/memory?seconds=0.3&sample_kb=1", &status,
                            &body, &error))
      << error;
  stop.store(true);
  allocator.join();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.rfind("# ltee-profile ", 0), 0u);
  obsv::HeapProfileHeader header;
  ASSERT_TRUE(obsv::ParseHeapProfileHeader(body, &header));
  EXPECT_TRUE(header.is_heap);
  EXPECT_EQ(header.sample_kb, 1u);
  held.clear();
  server.Stop();
}

TEST(HeapAnalysis, ParsesHeaderAndRendersTextAndJson) {
  const std::string text =
      "# ltee-profile heap=1 sample_kb=64 samples=3 dropped=1 "
      "duration_s=0.200 live_bytes=3145728 live_allocs=3 "
      "peak_rss_kb=102400\n"
      "# ltee-memtrack-span alpha live=2097152 cum=4194304 allocs=10\n"
      "# ltee-memtrack-span beta live=1048576 cum=1048576 allocs=2\n"
      "span:alpha;main;hot 2097152\n"
      "span:(none);main 1048576\n";

  obsv::ProfileAnalysis analysis;
  std::string error;
  ASSERT_TRUE(obsv::ParseCollapsedProfile(text, &analysis, &error)) << error;
  EXPECT_EQ(analysis.samples, 3u);

  obsv::HeapProfileHeader header;
  ASSERT_TRUE(obsv::ParseHeapProfileHeader(text, &header));
  EXPECT_TRUE(header.is_heap);
  EXPECT_EQ(header.sample_kb, 64u);
  EXPECT_EQ(header.live_bytes, 3145728u);
  EXPECT_EQ(header.live_allocs, 3u);
  EXPECT_EQ(header.peak_rss_kb, 102400u);
  ASSERT_EQ(header.spans.size(), 2u);
  EXPECT_EQ(header.spans[0].span, "alpha");
  EXPECT_EQ(header.spans[0].live_bytes, 2097152u);
  EXPECT_EQ(header.spans[0].cum_bytes, 4194304u);
  EXPECT_EQ(header.spans[0].allocs, 10u);

  const std::string report = obsv::HeapAnalysisToText(analysis, header);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("hot"), std::string::npos);
  EXPECT_NE(report.find("peak RSS"), std::string::npos);

  const std::string json = obsv::HeapAnalysisToJson(analysis, header);
  ASSERT_TRUE(util::JsonIsValid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"live_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"top_sites\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);

  // A CPU profile has no heap header.
  obsv::HeapProfileHeader cpu_header;
  EXPECT_FALSE(obsv::ParseHeapProfileHeader(
      "# ltee-profile hz=99 samples=10\nspan:a;main 10\n", &cpu_header));
}

// ---------------------------------------------------------------------------
// Reconciliation: the independent footprint estimates must agree with
// memtrack accounting, or one of the two is lying.

TEST(MemtrackReconciliation, RowClustererDenseCacheBytesAppearUnderItsSpan) {
  if (!obsv::MemTrackingSupported()) {
    GTEST_SKIP() << "allocator interposition compiled out";
  }
  const auto& ds = SharedDataset();
  auto dict = std::make_shared<util::TokenDictionary>();
  auto kb_index = pipeline::BuildKbLabelIndex(ds.kb, dict);
  webtable::PreparedCorpus prepared(ds.gs_corpus, dict);
  matching::SchemaMapping mapping;
  mapping.tables.resize(ds.gs_corpus.size());
  for (const auto& gs : ds.gold) {
    auto m = pipeline::GoldSchemaMapping(ds.gs_corpus, gs, ds.kb);
    pipeline::MergeGoldMappings(m, &mapping);
  }
  const auto& gs = ds.gold.front();
  rowcluster::ClassRowSet rows = rowcluster::BuildClassRowSet(
      prepared, mapping, gs.cls, ds.kb, kb_index);
  ASSERT_GE(rows.rows.size(), 2u);
  std::vector<int> gold_cluster(rows.rows.size());
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    gold_cluster[i] = gs.ClusterOfRow(rows.rows[i].ref);
  }

  rowcluster::RowClusterer clusterer;
  util::Rng rng(23);
  clusterer.Train(rows, gold_cluster, rng);

  obsv::SetMemTrackingEnabled(true);
  obsv::SetSpanAccountingEnabled(true);
  const obsv::SpanBytes before = SpanEntry("rowcluster.cluster");
  auto result = clusterer.Cluster(rows);
  EXPECT_GT(result.num_clusters, 0);
  const obsv::SpanBytes after = SpanEntry("rowcluster.cluster");
  obsv::SetSpanAccountingEnabled(false);
  obsv::SetMemTrackingEnabled(false);

  // The gauge is the clusterer's own estimate of its dense pair cache;
  // memtrack attributes that allocation (plus the clustering's working
  // memory) to the same span. One Cluster() call, so the span's
  // cumulative delta must cover the gauge at least once and stay within
  // a generous working-memory multiple of it.
  const double dense_bytes =
      GaugeValue("ltee.rowcluster.pair_cache.dense_bytes");
  ASSERT_GT(dense_bytes, 0.0);
  const uint64_t span_delta = after.cum_bytes - before.cum_bytes;
  EXPECT_GE(static_cast<double>(span_delta), dense_bytes);
  EXPECT_LE(static_cast<double>(span_delta), dense_bytes * 100.0)
      << "span charged far more than the dense cache estimate";
}

TEST(MemtrackReconciliation, LruCacheFootprintEstimateMatchesLiveDelta) {
  if (!obsv::MemTrackingSupported()) {
    GTEST_SKIP() << "allocator interposition compiled out";
  }
  obsv::SetMemTrackingEnabled(true);

  const obsv::MemtrackTotals before = obsv::GetMemtrackTotals();
  uint64_t live_with_cache = 0;
  size_t footprint = 0;
  {
    // Per-shard capacity 256 so no shard can evict regardless of how the
    // 256 keys hash across the 4 shards.
    serve::ShardedLruCache<std::string> cache(4, 256);
    // Values dominated by their 4 KB heap buffers — the footprint
    // estimate and the allocator's live delta must agree closely.
    for (int i = 0; i < 256; ++i) {
      cache.Put("entity:" + std::to_string(i) + ":v1",
                std::string(4096, 'x'));
    }
    EXPECT_EQ(cache.size(), 256u);
    footprint = cache.ApproxFootprintBytes();
    EXPECT_GE(footprint, 256u * 4096u);
    live_with_cache = obsv::GetMemtrackTotals().live_bytes;
  }
  const obsv::MemtrackTotals after = obsv::GetMemtrackTotals();
  obsv::SetMemTrackingEnabled(false);

  const uint64_t live_delta = live_with_cache - before.live_bytes;
  // Two independent estimates of the same bytes: within 2x both ways.
  EXPECT_GE(static_cast<double>(live_delta),
            static_cast<double>(footprint) * 0.5);
  EXPECT_LE(static_cast<double>(live_delta),
            static_cast<double>(footprint) * 2.0);
  // Destroying the cache returns live bytes to near the baseline.
  EXPECT_LT(after.live_bytes - before.live_bytes, 64u * 1024u);
}

}  // namespace
}  // namespace ltee
