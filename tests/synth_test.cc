#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "util/string_util.h"

#include "synth/corpus_builder.h"
#include "synth/dataset.h"
#include "synth/world.h"
#include "test_dataset.h"
#include "types/type_similarity.h"
#include "types/value_parser.h"

namespace ltee::synth {
namespace {

using ::ltee::testing::SharedDataset;

// ---------------------------------------------------------------------------
// World generation
// ---------------------------------------------------------------------------

TEST(WorldTest, SizesScaleWithProfiles) {
  util::Rng rng(1);
  auto world = BuildWorld(DefaultProfiles(), 0.002, rng);
  ASSERT_EQ(world.profiles().size(), 6u);
  for (size_t pi = 0; pi < world.profiles().size(); ++pi) {
    const auto& profile = world.profiles()[pi];
    size_t in_kb = 0;
    for (int eid : world.EntitiesOfProfile(static_cast<int>(pi))) {
      in_kb += world.entity(eid).in_kb ? 1 : 0;
    }
    // At least the floor of 30 head entities.
    EXPECT_GE(in_kb, 30u) << profile.name;
    EXPECT_GT(world.EntitiesOfProfile(static_cast<int>(pi)).size(), in_kb);
  }
}

TEST(WorldTest, DeterministicForSameSeed) {
  util::Rng rng_a(5), rng_b(5);
  auto a = BuildWorld(DefaultProfiles(), 0.001, rng_a);
  auto b = BuildWorld(DefaultProfiles(), 0.001, rng_b);
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entity(i).label, b.entity(i).label);
  }
}

TEST(WorldTest, HomonymGroupsShareLabels) {
  util::Rng rng(2);
  auto world = BuildWorld(DefaultProfiles(), 0.003, rng);
  std::map<int64_t, std::set<std::string>> labels_by_group;
  size_t grouped = 0;
  for (const auto& entity : world.entities()) {
    if (entity.homonym_group >= 0) {
      labels_by_group[entity.homonym_group].insert(entity.label);
      ++grouped;
    }
  }
  EXPECT_GT(grouped, 0u);  // the Song profile guarantees homonyms
  for (const auto& [group, labels] : labels_by_group) {
    EXPECT_EQ(labels.size(), 1u) << "group " << group;
  }
}

TEST(WorldTest, TruthValuesMatchPropertyTypes) {
  util::Rng rng(3);
  auto world = BuildWorld(DefaultProfiles(), 0.001, rng);
  for (const auto& entity : world.entities()) {
    const auto& profile = world.profiles()[entity.profile_index];
    ASSERT_EQ(entity.truth.size(), profile.properties.size());
    for (size_t k = 0; k < entity.truth.size(); ++k) {
      EXPECT_EQ(entity.truth[k].type, profile.properties[k].type);
    }
  }
}

TEST(GenerateValueTest, RangesRespected) {
  NamePools pools;
  util::Rng rng(4);
  PropertyProfile prop;
  prop.type = types::DataType::kNominalInteger;
  prop.gen = ValueGen::kSmallInt;
  prop.qmin = 1;
  prop.qmax = 7;
  for (int i = 0; i < 200; ++i) {
    const auto v = GenerateValue(prop, pools, rng);
    EXPECT_GE(v.integer, 1);
    EXPECT_LE(v.integer, 7);
  }
  prop.type = types::DataType::kDate;
  prop.gen = ValueGen::kYear;
  prop.qmin = 1970;
  prop.qmax = 2012;
  for (int i = 0; i < 50; ++i) {
    const auto v = GenerateValue(prop, pools, rng);
    EXPECT_GE(v.date.year, 1970);
    EXPECT_LE(v.date.year, 2012);
    EXPECT_EQ(v.date.granularity, types::DateGranularity::kYear);
  }
}

// ---------------------------------------------------------------------------
// Value rendering round-trips
// ---------------------------------------------------------------------------

TEST(RenderValueTest, QuantityRoundTripsThroughParser) {
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double q = std::floor(rng.NextDouble() * 2000000);
    const std::string cell = RenderValue(types::Value::OfQuantity(q), rng);
    auto parsed = types::NormalizeCell(cell, types::DataType::kQuantity);
    ASSERT_TRUE(parsed.has_value()) << cell;
    EXPECT_DOUBLE_EQ(parsed->number, q) << cell;
  }
}

TEST(RenderValueTest, DayDateRoundTripsThroughParser) {
  util::Rng rng(7);
  const auto value = types::Value::DayDate(1987, 6, 5);
  for (int i = 0; i < 50; ++i) {
    const std::string cell = RenderValue(value, rng);
    auto parsed = types::NormalizeCell(cell, types::DataType::kDate);
    ASSERT_TRUE(parsed.has_value()) << cell;
    EXPECT_EQ(parsed->date.year, 1987) << cell;
    // Year-only renderings legitimately lose the day.
    if (parsed->date.granularity == types::DateGranularity::kDay) {
      EXPECT_EQ(parsed->date.month, 6);
      EXPECT_EQ(parsed->date.day, 5);
    }
  }
}

// ---------------------------------------------------------------------------
// Knowledge base construction
// ---------------------------------------------------------------------------

TEST(KbBuilderTest, KbContainsOnlyHeadEntities) {
  const auto& ds = SharedDataset();
  for (const auto& entity : ds.world.entities()) {
    if (entity.in_kb) {
      EXPECT_NE(entity.kb_id, kb::kInvalidInstance);
    } else {
      EXPECT_EQ(entity.kb_id, kb::kInvalidInstance);
    }
  }
}

TEST(KbBuilderTest, DensitiesApproximateProfiles) {
  const auto& ds = SharedDataset();
  for (size_t pi = 0; pi < ds.world.profiles().size(); ++pi) {
    const auto& profile = ds.world.profiles()[pi];
    if (!profile.is_target) continue;
    const size_t n = std::max<size_t>(
        1, ds.kb.InstancesOfClass(ds.class_of_profile[pi]).size());
    double total_abs_diff = 0.0;
    for (size_t k = 0; k < profile.properties.size(); ++k) {
      const auto stats = ds.kb.StatsOfProperty(ds.property_ids[pi][k]);
      const double p = profile.properties[k].kb_density;
      // Binomial sampling noise band: 4 standard deviations.
      const double tolerance =
          std::max(0.1, 4.0 * std::sqrt(p * (1.0 - p) /
                                        static_cast<double>(n)));
      EXPECT_NEAR(stats.density, p, tolerance)
          << profile.name << "/" << profile.properties[k].name;
      total_abs_diff += std::abs(stats.density - p);
    }
    // Densities track the profile on average even at tiny scales.
    EXPECT_LT(total_abs_diff / profile.properties.size(), 0.12)
        << profile.name;
  }
}

TEST(KbBuilderTest, OntologyHasSharedRoots) {
  const auto& ds = SharedDataset();
  const auto player = ds.kb.FindClass("GridironFootballPlayer");
  const auto basketball = ds.kb.FindClass("BasketballPlayer");
  ASSERT_NE(player, kb::kInvalidClass);
  ASSERT_NE(basketball, kb::kInvalidClass);
  EXPECT_TRUE(ds.kb.ClassesCompatible(player, basketball));  // siblings
  const auto song = ds.kb.FindClass("Song");
  EXPECT_FALSE(ds.kb.ClassesCompatible(player, song));
}

// ---------------------------------------------------------------------------
// Corpus construction
// ---------------------------------------------------------------------------

TEST(CorpusBuilderTest, TruthAlignsWithTables) {
  const auto& ds = SharedDataset();
  ASSERT_EQ(ds.table_truth.size(), ds.corpus.size());
  for (size_t t = 0; t < ds.corpus.size(); ++t) {
    const auto& table = ds.corpus.table(static_cast<int>(t));
    const auto& truth = ds.table_truth[t];
    EXPECT_EQ(truth.row_entity.size(), table.num_rows());
    EXPECT_EQ(truth.column_property.size(), table.num_columns());
    ASSERT_GE(truth.label_column, 0);
    EXPECT_LT(truth.label_column, static_cast<int>(table.num_columns()));
    EXPECT_EQ(truth.column_property[truth.label_column],
              TableTruth::kLabelColumn);
  }
}

TEST(CorpusBuilderTest, LabelCellsUsuallyMatchEntityLabels) {
  const auto& ds = SharedDataset();
  size_t checked = 0, exact = 0;
  for (size_t t = 0; t < ds.corpus.size() && checked < 2000; ++t) {
    const auto& table = ds.corpus.table(static_cast<int>(t));
    const auto& truth = ds.table_truth[t];
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const auto& entity = ds.world.entity(truth.row_entity[r]);
      ++checked;
      if (util::NormalizeLabel(
              table.cell(r, static_cast<size_t>(truth.label_column))) ==
          util::NormalizeLabel(entity.label)) {
        ++exact;
      }
    }
  }
  // Typos exist but must be rare.
  EXPECT_GT(static_cast<double>(exact) / checked, 0.9);
}

TEST(CorpusBuilderTest, MostCellsOfMatchedColumnsHoldTrueValues) {
  const auto& ds = SharedDataset();
  const types::TypeSimilarityOptions sim;
  size_t comparable = 0, correct = 0;
  for (size_t t = 0; t < ds.corpus.size(); ++t) {
    const auto& table = ds.corpus.table(static_cast<int>(t));
    const auto& truth = ds.table_truth[t];
    const auto& profile = ds.world.profiles()[truth.profile_index];
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const int cp = truth.column_property[c];
      if (cp < 0) continue;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        auto value = types::NormalizeCell(table.cell(r, c),
                                          profile.properties[cp].type);
        if (!value) continue;
        ++comparable;
        const auto& entity = ds.world.entity(truth.row_entity[r]);
        if (types::ValuesEqual(*value, entity.truth[cp], sim)) ++correct;
      }
    }
  }
  ASSERT_GT(comparable, 1000u);
  const double accuracy = static_cast<double>(correct) / comparable;
  EXPECT_GT(accuracy, 0.6);   // noise exists...
  EXPECT_LT(accuracy, 0.995); // ...but is not overwhelming
}

// ---------------------------------------------------------------------------
// Gold standard construction
// ---------------------------------------------------------------------------

TEST(GoldStandardBuilderTest, OnePerTargetClass) {
  const auto& ds = SharedDataset();
  EXPECT_EQ(ds.gold.size(), 3u);
  std::set<kb::ClassId> classes;
  for (const auto& gs : ds.gold) classes.insert(gs.cls);
  EXPECT_EQ(classes.size(), 3u);
}

TEST(GoldStandardBuilderTest, ClustersAreConsistent) {
  const auto& ds = SharedDataset();
  for (const auto& gs : ds.gold) {
    EXPECT_GT(gs.clusters.size(), 10u);
    for (const auto& cluster : gs.clusters) {
      EXPECT_FALSE(cluster.rows.empty());
      if (!cluster.is_new) {
        EXPECT_NE(cluster.kb_instance, kb::kInvalidInstance);
      } else {
        EXPECT_EQ(cluster.kb_instance, kb::kInvalidInstance);
      }
      for (const auto& row : cluster.rows) {
        ASSERT_GE(row.table, 0);
        ASSERT_LT(row.table, static_cast<int>(ds.gs_corpus.size()));
        ASSERT_GE(row.row, 0);
        ASSERT_LT(row.row,
                  static_cast<int>(ds.gs_corpus.table(row.table).num_rows()));
      }
    }
  }
}

TEST(GoldStandardBuilderTest, EveryGsRowBelongsToExactlyOneCluster) {
  const auto& ds = SharedDataset();
  for (const auto& gs : ds.gold) {
    std::map<webtable::RowRef, int> seen;
    for (size_t c = 0; c < gs.clusters.size(); ++c) {
      for (const auto& row : gs.clusters[c].rows) {
        EXPECT_EQ(seen.count(row), 0u);
        seen[row] = static_cast<int>(c);
      }
    }
    // All rows of the class's gold tables are annotated.
    for (webtable::TableId tid : gs.tables) {
      for (size_t r = 0; r < ds.gs_corpus.table(tid).num_rows(); ++r) {
        EXPECT_TRUE(seen.count({tid, static_cast<int32_t>(r)}));
      }
    }
  }
}

TEST(GoldStandardBuilderTest, FactsReferenceValidClustersAndProperties) {
  const auto& ds = SharedDataset();
  for (const auto& gs : ds.gold) {
    EXPECT_FALSE(gs.facts.empty());
    for (const auto& fact : gs.facts) {
      ASSERT_GE(fact.cluster, 0);
      ASSERT_LT(fact.cluster, static_cast<int>(gs.clusters.size()));
      ASSERT_GE(fact.property, 0);
      ASSERT_LT(fact.property, static_cast<int>(ds.kb.num_properties()));
      EXPECT_EQ(fact.correct_value.type,
                ds.kb.property(fact.property).type);
    }
  }
}

TEST(GoldStandardBuilderTest, NewFractionTracksProfile) {
  const auto& ds = SharedDataset();
  for (size_t g = 0; g < ds.gold.size(); ++g) {
    const auto& gs = ds.gold[g];
    const auto& profile = ds.world.profiles()[ds.gold_profile[g]];
    size_t new_count = 0;
    for (const auto& cluster : gs.clusters) new_count += cluster.is_new;
    const double fraction =
        static_cast<double>(new_count) / gs.clusters.size();
    EXPECT_NEAR(fraction, profile.gs_new_fraction, 0.25) << profile.name;
  }
}

TEST(GoldStandardBuilderTest, OverviewCountsAreCoherent) {
  const auto& ds = SharedDataset();
  for (const auto& gs : ds.gold) {
    const auto overview = gs.Overview(ds.gs_corpus);
    EXPECT_EQ(overview.tables, gs.tables.size());
    EXPECT_EQ(overview.existing_clusters + overview.new_clusters,
              gs.clusters.size());
    EXPECT_EQ(overview.value_groups, gs.facts.size());
    EXPECT_LE(overview.correct_value_present, overview.value_groups);
    EXPECT_GT(overview.rows, 0u);
  }
}

TEST(DatasetTest, ProfileOfClassRoundTrips) {
  const auto& ds = SharedDataset();
  for (size_t pi = 0; pi < ds.class_of_profile.size(); ++pi) {
    EXPECT_EQ(ds.ProfileOfClass(ds.class_of_profile[pi]),
              static_cast<int>(pi));
  }
  EXPECT_EQ(ds.ProfileOfClass(kb::kInvalidClass), -1);
}

}  // namespace
}  // namespace ltee::synth
