// Tests of the incremental delta pipeline: scoped stage execution,
// changeset application through kb::Applier, delta state round trips, and
// the two acceptance gates of the subsystem — fixed-seed equivalence
// (full(A+B) must equal full(A)+delta(B), content hash included) and
// ingest-while-serving (readers never block or see torn state while a
// new snapshot version is promoted).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kb/applier.h"
#include "kb/diff.h"
#include "kb/serialization.h"
#include "pipeline/delta.h"
#include "pipeline/pipeline.h"
#include "pipeline/stage_context.h"
#include "pipeline/training.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "test_dataset.h"
#include "util/random.h"
#include "util/token_dictionary.h"
#include "webtable/prepared_corpus.h"
#include "webtable/serialization.h"

namespace ltee::pipeline {
namespace {

using ::ltee::testing::SharedDataset;

constexpr size_t kDeltaTables = 50;

/// Clone of a KnowledgeBase via its TSV round trip (the class is
/// move-only by design; tests need independent applyable copies).
kb::KnowledgeBase CloneKb(const kb::KnowledgeBase& kb) {
  std::stringstream buffer;
  kb::SaveKnowledgeBase(kb, buffer);
  auto loaded = kb::LoadKnowledgeBase(buffer);
  EXPECT_TRUE(loaded.has_value());
  return std::move(*loaded);
}

uint64_t ContentHash(const kb::KnowledgeBase& kb, uint64_t version) {
  serve::SnapshotOptions options;
  options.version = version;
  return serve::Snapshot::Build(kb, options)->content_hash();
}

/// Everything the equivalence and serving tests share, computed once:
/// one trained pipeline, a full run over corpus A+B, a base run over
/// corpus A with its delta state, and the incremental ingest of B.
struct DeltaHarness {
  std::unique_ptr<LteePipeline> pipe;
  std::vector<kb::ClassId> classes;
  std::vector<webtable::WebTable> batch;  // the B tables
  size_t num_base_tables = 0;

  DeltaState base_state;   // state after the base run, before the ingest
  DeltaState state;        // state after the ingest
  DeltaIngestResult ingest;

  kb::KnowledgeBase kb_full;   // base KB + full-run changeset
  kb::KnowledgeBase kb_base;   // base KB + base-run changeset
  kb::KnowledgeBase kb_delta;  // base KB + merged post-ingest changeset
};

DeltaState MakeState(const std::vector<kb::ClassId>& classes,
                     const PipelineRunResult& run,
                     kb::ChangeSet changes) {
  DeltaState state;
  state.seed = 41;
  state.classes = classes;
  state.mappings = run.mappings;
  state.feedback = run.feedback;
  state.changes = std::move(changes);
  return state;
}

kb::ChangeSet StageRun(const kb::KnowledgeBase& kb,
                       const PipelineRunResult& run) {
  kb::Applier applier(nullptr);
  for (const auto& class_run : run.classes) {
    applier.Stage(StageClassRun(kb, class_run).change);
  }
  return applier.TakeStaged();
}

const DeltaHarness& Harness() {
  static const DeltaHarness* harness = [] {
    const auto& ds = SharedDataset();
    auto* h = new DeltaHarness;

    // Split the corpus: A = all but the last kDeltaTables tables, B = the
    // tail. Both paths see the tables in identical order, so table ids,
    // RowRefs and everything keyed on them line up.
    h->num_base_tables = ds.corpus.size() - kDeltaTables;
    static webtable::TableCorpus corpus_full;  // outlives the pipeline
    static webtable::TableCorpus corpus_base;
    for (size_t t = 0; t < ds.corpus.size(); ++t) {
      webtable::WebTable copy =
          ds.corpus.table(static_cast<webtable::TableId>(t));
      if (t < h->num_base_tables) {
        corpus_base.Add(copy);
      } else {
        h->batch.push_back(copy);
      }
      corpus_full.Add(std::move(copy));
    }

    PipelineOptions options;
    h->pipe = std::make_unique<LteePipeline>(ds.kb, options);
    util::Rng rng(41);
    TrainPipelineOnGold(h->pipe.get(), ds.gs_corpus, ds.gold, rng);
    for (const auto& gs : ds.gold) h->classes.push_back(gs.cls);

    // Full path: one run over A+B, staged and applied.
    auto run_full = h->pipe->Run(corpus_full, h->classes);
    kb::ChangeSet full_changes = StageRun(ds.kb, run_full);
    h->kb_full = CloneKb(ds.kb);
    kb::ApplyChangeSet(&h->kb_full, full_changes);

    // Incremental path: base run over A, then ingest of B.
    auto run_base = h->pipe->Run(corpus_base, h->classes);
    h->base_state =
        MakeState(h->classes, run_base, StageRun(ds.kb, run_base));
    h->kb_base = CloneKb(ds.kb);
    kb::ApplyChangeSet(&h->kb_base, h->base_state.changes);

    h->state = h->base_state;
    h->ingest =
        DeltaIngest(*h->pipe, &corpus_base, h->batch, &h->state);
    h->kb_delta = CloneKb(ds.kb);
    kb::ApplyChangeSet(&h->kb_delta, h->state.changes);
    return h;
  }();
  return *harness;
}

// ---------------------------------------------------------------------
// The equivalence gate: full(A+B) == full(A) + delta(B), bit for bit.

TEST(DeltaEquivalence, IncrementalIngestMatchesFullRunContentHash) {
  const auto& h = Harness();
  EXPECT_EQ(ContentHash(h.kb_full, 7), ContentHash(h.kb_delta, 8))
      << "content hash is version-independent: the enriched KBs differ";
}

TEST(DeltaEquivalence, IncrementalIngestMatchesFullRunStructurally) {
  const auto& h = Harness();
  const kb::KbDiff diff = kb::DiffKnowledgeBases(h.kb_full, h.kb_delta);
  EXPECT_TRUE(diff.identical())
      << "instances +" << diff.instances_added << " -"
      << diff.instances_removed << " ~" << diff.instances_changed
      << "; facts +" << diff.facts_added << " -" << diff.facts_removed
      << " ~" << diff.facts_changed
      << (diff.samples.empty() ? "" : "; first: " + diff.samples.front());
}

TEST(DeltaEquivalence, BaseRunDiffersFromFullRun) {
  // Guards the gate above against vacuity: if the delta tables changed
  // nothing, hash equality would hold trivially.
  const auto& h = Harness();
  EXPECT_NE(ContentHash(h.kb_base, 1), ContentHash(h.kb_full, 1));
}

TEST(DeltaEquivalence, IngestReportsRecomputedClasses) {
  const auto& h = Harness();
  EXPECT_EQ(h.ingest.new_tables, kDeltaTables);
  ASSERT_FALSE(h.ingest.recomputed.empty());
  for (kb::ClassId cls : h.ingest.recomputed) {
    EXPECT_NE(std::find(h.classes.begin(), h.classes.end(), cls),
              h.classes.end());
  }
  EXPECT_EQ(h.ingest.run.classes.size(), h.ingest.recomputed.size());
}

TEST(DeltaEquivalence, ScopedRunWithFullScopeMatchesRun) {
  const auto& h = Harness();
  // Run() is documented as RunScoped with a full scope; double-check on a
  // live context so the two entry points cannot drift apart.
  StageContext ctx;
  static webtable::TableCorpus small;
  if (small.size() == 0) {
    const auto& ds = SharedDataset();
    for (size_t t = 0; t < 40 && t < ds.gs_corpus.size(); ++t) {
      small.Add(ds.gs_corpus.table(static_cast<webtable::TableId>(t)));
    }
  }
  ctx.corpus = &small;
  ctx.classes = h.classes;
  auto scoped = h.pipe->RunScoped(ctx);
  auto direct = h.pipe->Run(small, h.classes);
  ASSERT_EQ(scoped.mappings.size(), direct.mappings.size());
  for (size_t i = 0; i < scoped.mappings.size(); ++i) {
    EXPECT_EQ(scoped.mappings[i].tables, direct.mappings[i].tables);
  }
  EXPECT_EQ(scoped.recomputed, direct.recomputed);
}

// ---------------------------------------------------------------------
// Delta state persistence.

TEST(DeltaStateIo, RoundTripsByteIdentically) {
  const auto& h = Harness();
  std::stringstream first;
  SaveDeltaState(h.state, first);
  auto loaded = LoadDeltaState(first);
  ASSERT_TRUE(loaded.has_value());
  std::stringstream second;
  SaveDeltaState(*loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(DeltaStateIo, ReloadedMappingsCompareExactlyEqual) {
  // The mapping diff uses exact operator== (scores included); a reloaded
  // baseline must therefore survive the text round trip bit-exactly.
  const auto& h = Harness();
  std::stringstream buffer;
  SaveDeltaState(h.state, buffer);
  auto loaded = LoadDeltaState(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->mappings.size(), h.state.mappings.size());
  for (size_t i = 0; i < h.state.mappings.size(); ++i) {
    EXPECT_EQ(loaded->mappings[i].tables, h.state.mappings[i].tables)
        << "iteration " << i;
  }
  EXPECT_EQ(loaded->classes, h.state.classes);
  EXPECT_EQ(loaded->seed, h.state.seed);
}

TEST(DeltaStateIo, RejectsTruncatedAndMalformedInput) {
  const auto& h = Harness();
  std::stringstream buffer;
  SaveDeltaState(h.state, buffer);
  const std::string full = buffer.str();
  for (size_t cut : {size_t{0}, size_t{3}, full.size() / 2}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(LoadDeltaState(truncated).has_value())
        << "accepted a state truncated to " << cut << " bytes";
  }
  std::stringstream wrong_magic("NOSTATE\t1\t0\t0\t1\n");
  EXPECT_FALSE(LoadDeltaState(wrong_magic).has_value());
}

// ---------------------------------------------------------------------
// Ingest while serving: snapshot promotion must never stall readers.

TEST(IngestWhileServing, ReadersSeeOnlyCompleteVersions) {
  const auto& h = Harness();
  const auto& ds = SharedDataset();

  serve::QueryEngine engine;
  {
    serve::SnapshotOptions options;
    options.version = 1;
    engine.Publish(serve::Snapshot::Build(h.kb_base, options));
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> errors{0};
  std::atomic<size_t> queries{0};
  std::atomic<uint64_t> max_version{0};
  auto reader = [&] {
    uint64_t last_seen = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      serve::QueryResult info = engine.SnapshotInfo();
      if (info.status != 200) {
        errors.fetch_add(1);
        continue;
      }
      // Extract "snapshot_version":N from the JSON body.
      const std::string key = "\"snapshot_version\":";
      size_t pos = info.body.find(key);
      if (pos == std::string::npos) {
        errors.fetch_add(1);
        continue;
      }
      const uint64_t version = std::strtoull(
          info.body.c_str() + pos + key.size(), nullptr, 10);
      if (version != 1 && version != 2) errors.fetch_add(1);
      if (version < last_seen) errors.fetch_add(1);  // went backwards
      last_seen = version;
      uint64_t prev = max_version.load();
      while (version > prev &&
             !max_version.compare_exchange_weak(prev, version)) {
      }
      if (engine.Search("the", 3).status != 200) errors.fetch_add(1);
      queries.fetch_add(1);
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  // The actual ingest runs while the readers hammer the engine: scoped
  // pipeline over the delta batch, changeset merge, apply, promote.
  {
    webtable::TableCorpus corpus;
    for (size_t t = 0; t < h.num_base_tables; ++t) {
      corpus.Add(ds.corpus.table(static_cast<webtable::TableId>(t)));
    }
    DeltaState state = h.base_state;
    DeltaIngest(*h.pipe, &corpus, h.batch, &state);
    kb::KnowledgeBase next = CloneKb(ds.kb);
    kb::ApplyChangeSet(&next, state.changes);
    serve::SnapshotOptions options;
    options.version = 2;
    engine.Publish(serve::Snapshot::Build(next, options));
  }
  // Let the readers observe the promotion, then stop them.
  while (max_version.load() < 2 && errors.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(max_version.load(), 2u);
  EXPECT_GT(queries.load(), 0u);
}

// ---------------------------------------------------------------------
// PreparedCorpus append: token-id stability (satellite).

TEST(PreparedCorpusAppend, ExistingTablesAndTokenIdsAreUntouched) {
  const auto& ds = SharedDataset();
  webtable::TableCorpus corpus;
  const size_t initial = 60;
  for (size_t t = 0; t < initial; ++t) {
    corpus.Add(ds.corpus.table(static_cast<webtable::TableId>(t)));
  }
  webtable::PreparedCorpus prepared(corpus);
  ASSERT_EQ(prepared.size(), initial);

  // Snapshot the prepared state of a sample of tables plus the string of
  // every interned id we will compare later.
  std::vector<webtable::PreparedTable> before;
  for (webtable::TableId id : {0, 17, 42, 59}) {
    before.push_back(prepared.table(id));
  }
  std::vector<std::string> tokens_before(prepared.dict().size());
  for (uint32_t id = 0; id < tokens_before.size(); ++id) {
    tokens_before[id] = std::string(prepared.dict().token(id));
  }

  const size_t appended = 25;
  for (size_t t = initial; t < initial + appended; ++t) {
    corpus.Add(ds.corpus.table(static_cast<webtable::TableId>(t)));
  }
  const std::vector<webtable::TableId> new_ids = prepared.Append();
  ASSERT_EQ(new_ids.size(), appended);
  for (size_t i = 0; i < appended; ++i) {
    EXPECT_EQ(new_ids[i], static_cast<webtable::TableId>(initial + i));
  }
  EXPECT_EQ(prepared.size(), initial + appended);

  // Old ids resolve to the same strings and old prepared cells carry the
  // same token ids — nothing was re-interned or shifted.
  EXPECT_GE(prepared.dict().size(), tokens_before.size());
  for (uint32_t id = 0; id < tokens_before.size(); ++id) {
    EXPECT_EQ(prepared.dict().token(id), tokens_before[id]);
  }
  for (const auto& snapshot : before) {
    const auto& current = prepared.table(snapshot.id);
    ASSERT_EQ(current.cells.size(), snapshot.cells.size());
    EXPECT_EQ(current.label_column, snapshot.label_column);
    for (size_t c = 0; c < snapshot.cells.size(); ++c) {
      EXPECT_EQ(current.cells[c].tokens, snapshot.cells[c].tokens);
      EXPECT_EQ(current.cells[c].normalized, snapshot.cells[c].normalized);
    }
  }
  // Appended tables are fully prepared.
  for (webtable::TableId id : new_ids) {
    const auto& table = prepared.table(id);
    EXPECT_EQ(table.id, id);
    EXPECT_EQ(table.cells.size(), table.num_rows * table.num_columns);
  }
}

TEST(PreparedCorpusAppend, NoNewTablesIsANoOp) {
  const auto& ds = SharedDataset();
  webtable::TableCorpus corpus;
  corpus.Add(ds.corpus.table(0));
  webtable::PreparedCorpus prepared(corpus);
  EXPECT_TRUE(prepared.Append().empty());
  EXPECT_EQ(prepared.size(), 1u);
}

// ---------------------------------------------------------------------
// TokenDictionary growth (satellite): property test over random append
// sequences — interning later never moves or re-maps earlier tokens.

TEST(TokenDictionaryGrowth, RandomAppendSequencesPreserveIds) {
  for (uint64_t seed : {1ull, 7ull, 20190326ull}) {
    util::Rng rng(seed);
    util::TokenDictionary dict;
    std::vector<std::pair<std::string, uint32_t>> interned;
    for (int wave = 0; wave < 8; ++wave) {
      const size_t wave_size = 1 + rng.NextBounded(40);
      for (size_t i = 0; i < wave_size; ++i) {
        std::string token;
        const size_t len = 1 + rng.NextBounded(10);
        for (size_t c = 0; c < len; ++c) {
          token.push_back(
              static_cast<char>('a' + rng.NextBounded(26)));
        }
        const uint32_t id = dict.Intern(token);
        interned.emplace_back(std::move(token), id);
      }
      // Every earlier (token, id) pair must still hold after this wave.
      for (const auto& [token, id] : interned) {
        EXPECT_EQ(dict.Find(token), id) << "seed " << seed;
        EXPECT_EQ(dict.token(id), token) << "seed " << seed;
      }
    }
    // Re-interning is idempotent.
    for (const auto& [token, id] : interned) {
      EXPECT_EQ(dict.Intern(token), id);
    }
  }
}

// ---------------------------------------------------------------------
// ClassScope / DiffMappings units.

TEST(ClassScopeTest, FullScopeContainsEverythingAndIgnoresAdds) {
  ClassScope scope = ClassScope::All();
  EXPECT_TRUE(scope.full());
  EXPECT_TRUE(scope.contains(0));
  EXPECT_TRUE(scope.contains(12345));
  scope.Add(3);
  EXPECT_TRUE(scope.full());
  EXPECT_TRUE(scope.classes().empty());
}

TEST(ClassScopeTest, ExplicitScopeDeduplicatesAndSkipsInvalid) {
  ClassScope scope = ClassScope::Of({2, 5, 2});
  EXPECT_FALSE(scope.full());
  EXPECT_EQ(scope.size(), 2u);
  EXPECT_TRUE(scope.contains(2));
  EXPECT_TRUE(scope.contains(5));
  EXPECT_FALSE(scope.contains(3));
  scope.Add(kb::kInvalidClass);
  scope.Add(5);
  EXPECT_EQ(scope.size(), 2u);
  scope.Add(9);
  EXPECT_TRUE(scope.contains(9));
}

matching::SchemaMapping TwoTableMapping() {
  matching::SchemaMapping mapping;
  mapping.tables.resize(2);
  mapping.tables[0].table = 0;
  mapping.tables[0].cls = 4;
  mapping.tables[0].class_score = 0.5;
  mapping.tables[0].columns.resize(2);
  mapping.tables[0].columns[1].property = 7;
  mapping.tables[0].columns[1].score = 0.25;
  mapping.tables[1].table = 1;
  mapping.tables[1].cls = 9;
  mapping.tables[1].class_score = 0.75;
  return mapping;
}

TEST(DiffMappingsTest, IdenticalMappingsProduceEmptyDiff) {
  const auto before = TwoTableMapping();
  const auto after = TwoTableMapping();
  const MappingDiff diff = DiffMappings(before, after);
  EXPECT_TRUE(diff.changed_tables.empty());
  EXPECT_TRUE(diff.classes.empty());
}

TEST(DiffMappingsTest, ScoreDriftCountsAsChange) {
  const auto before = TwoTableMapping();
  auto after = TwoTableMapping();
  after.tables[0].columns[1].score += 1e-12;
  const MappingDiff diff = DiffMappings(before, after);
  ASSERT_EQ(diff.changed_tables.size(), 1u);
  EXPECT_EQ(diff.changed_tables[0], 0);
  EXPECT_EQ(diff.classes, std::vector<kb::ClassId>{4});
}

TEST(DiffMappingsTest, ReassignedTableContributesBothClasses) {
  const auto before = TwoTableMapping();
  auto after = TwoTableMapping();
  after.tables[1].cls = 2;
  const MappingDiff diff = DiffMappings(before, after);
  ASSERT_EQ(diff.changed_tables.size(), 1u);
  EXPECT_EQ(diff.changed_tables[0], 1);
  EXPECT_EQ(diff.classes, (std::vector<kb::ClassId>{2, 9}));
}

TEST(DiffMappingsTest, AppendedTablesAlwaysCountAsChanged) {
  const auto before = TwoTableMapping();
  auto after = TwoTableMapping();
  matching::TableMapping appended;
  appended.table = 2;
  appended.cls = 4;
  after.tables.push_back(appended);
  const MappingDiff diff = DiffMappings(before, after);
  ASSERT_EQ(diff.changed_tables.size(), 1u);
  EXPECT_EQ(diff.changed_tables[0], 2);
  EXPECT_EQ(diff.classes, std::vector<kb::ClassId>{4});
}

// ---------------------------------------------------------------------
// Applier / ChangeSet.

kb::KnowledgeBase TinyKb(kb::PropertyId* prop_out) {
  kb::KnowledgeBase kb;
  const kb::ClassId cls = kb.AddClass("Thing");
  *prop_out = kb.AddProperty(cls, "mass", types::DataType::kQuantity);
  const kb::InstanceId a = kb.AddInstance(cls, {"alpha"});
  kb.AddInstance(cls, {"beta"});
  kb.AddFact(a, *prop_out, types::Value::OfQuantity(10.0));
  return kb;
}

TEST(ApplierTest, FactAddSkipsOccupiedSlots) {
  kb::PropertyId prop;
  kb::KnowledgeBase kb = TinyKb(&prop);
  kb::ChangeSet changes;
  kb::ClassChange change;
  change.cls = 0;
  change.fact_adds.push_back({0, prop, types::Value::OfQuantity(99.0)});
  change.fact_adds.push_back({1, prop, types::Value::OfQuantity(5.0)});
  changes.classes.push_back(change);

  const kb::ApplyOutcome outcome = kb::ApplyChangeSet(&kb, changes);
  EXPECT_EQ(outcome.slot_fills, 1u);  // instance 0's slot was occupied
  EXPECT_DOUBLE_EQ(kb.FactOf(0, prop)->number, 10.0);
  EXPECT_DOUBLE_EQ(kb.FactOf(1, prop)->number, 5.0);

  // Replaying the same changeset is a no-op: both slots now occupied.
  const kb::ApplyOutcome replay = kb::ApplyChangeSet(&kb, changes);
  EXPECT_EQ(replay.slot_fills, 0u);
  EXPECT_EQ(replay.instances_added, 0u);
}

TEST(ApplierTest, ValueChangeOnlyOverwritesExistingFacts) {
  kb::PropertyId prop;
  kb::KnowledgeBase kb = TinyKb(&prop);
  kb::ChangeSet changes;
  kb::ClassChange change;
  change.cls = 0;
  change.value_changes.push_back({0, prop, types::Value::OfQuantity(77.0)});
  change.value_changes.push_back({1, prop, types::Value::OfQuantity(77.0)});
  changes.classes.push_back(change);
  const kb::ApplyOutcome outcome = kb::ApplyChangeSet(&kb, changes);
  EXPECT_EQ(outcome.value_changes, 1u);
  EXPECT_DOUBLE_EQ(kb.FactOf(0, prop)->number, 77.0);
  EXPECT_EQ(kb.FactOf(1, prop), nullptr);
}

TEST(ApplierTest, EntityAddsCreateInstancesWithFacts) {
  kb::PropertyId prop;
  kb::KnowledgeBase kb = TinyKb(&prop);
  kb::Applier applier(&kb);
  kb::ClassChange change;
  change.cls = 0;
  kb::EntityAdd add;
  add.cls = 0;
  add.cluster_id = 3;
  add.labels = {"gamma", "γ"};
  add.facts.push_back({prop, types::Value::OfQuantity(2.5)});
  change.entities.push_back(add);
  applier.Stage(std::move(change));
  const kb::ApplyOutcome outcome = applier.Apply();
  EXPECT_EQ(outcome.instances_added, 1u);
  EXPECT_EQ(outcome.facts_added, 1u);
  ASSERT_EQ(outcome.classes.size(), 1u);
  ASSERT_EQ(outcome.classes[0].new_instance_ids.size(), 1u);
  const kb::InstanceId added = outcome.classes[0].new_instance_ids[0];
  EXPECT_EQ(kb.instance(added).labels.front(), "gamma");
  EXPECT_DOUBLE_EQ(kb.FactOf(added, prop)->number, 2.5);
  // Apply() clears the staging area.
  EXPECT_TRUE(applier.staged().empty());
}

TEST(ApplierTest, ReplaceKeepsRunOrder) {
  kb::Applier applier(nullptr);
  kb::ClassChange second;
  second.cls = 2;
  applier.Stage(second);
  kb::ClassChange first;
  first.cls = 1;
  applier.Stage(first);
  kb::ClassChange replacement;
  replacement.cls = 2;
  replacement.fact_adds.push_back({0, 0, types::Value::OfQuantity(1.0)});
  applier.Stage(replacement);
  const kb::ChangeSet& staged = applier.staged();
  ASSERT_EQ(staged.classes.size(), 2u);
  EXPECT_EQ(staged.classes[0].cls, 2);
  EXPECT_EQ(staged.classes[1].cls, 1);
  EXPECT_EQ(staged.classes[0].fact_adds.size(), 1u);
}

TEST(ChangeSetIo, RoundTripsAllRecordTypesAndEscaping) {
  kb::ChangeSet changes;
  kb::ClassChange change;
  change.cls = 5;
  change.fact_adds.push_back({3, 2, types::Value::Text("tab\there")});
  change.value_changes.push_back({4, 2, types::Value::YearDate(1999)});
  kb::EntityAdd add;
  add.cls = 5;
  add.cluster_id = 12;
  add.labels = {"line\nbreak", "back\\slash"};
  add.facts.push_back({2, types::Value::OfQuantity(3.25)});
  add.facts.push_back({3, types::Value::InstanceRef("target", 9)});
  change.entities.push_back(add);
  changes.classes.push_back(change);
  kb::ClassChange empty_class;
  empty_class.cls = 7;
  changes.classes.push_back(empty_class);

  std::stringstream first;
  kb::SaveChangeSet(changes, first);
  auto loaded = kb::LoadChangeSet(first);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->classes.size(), 2u);
  EXPECT_EQ(loaded->classes[0].entities[0].labels[0], "line\nbreak");
  EXPECT_EQ(loaded->classes[0].fact_adds[0].value.text, "tab\there");
  std::stringstream second;
  kb::SaveChangeSet(*loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ChangeSetIo, RejectsMalformedRecords) {
  for (const char* bad :
       {"Z\tunknown\n", "G\tnotanumber\n", "G\t1\nS\t1\t2\n",
        "S\t1\t2\tq:3\n",              // S before any G
        "G\t1\nE\t0\t1\t2\tonlylabel\n",  // claims 2 labels, has 1
        "X\t1\tq:3\n"}) {              // X before any E
    std::stringstream in(bad);
    EXPECT_FALSE(kb::LoadChangeSet(in).has_value()) << bad;
  }
}

}  // namespace
}  // namespace ltee::pipeline
