#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ltee::util {
namespace {

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12xY"), "abc-12xy");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(SplitTest, SplitsAndDropsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a b-c", " -"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TokenizeTest, LowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("New York City!"),
            (std::vector<std::string>{"new", "york", "city"}));
  EXPECT_EQ(Tokenize("AC/DC - T.N.T."),
            (std::vector<std::string>{"ac", "dc", "t", "n", "t"}));
  EXPECT_TRUE(Tokenize("...").empty());
}

TEST(NormalizeLabelTest, CollapsesToCanonicalForm) {
  EXPECT_EQ(NormalizeLabel("  St. Louis  Rams "), "st louis rams");
  EXPECT_EQ(NormalizeLabel("SPRINGFIELD"), "springfield");
  EXPECT_EQ(NormalizeLabel(""), "");
}

TEST(IsDigitsTest, AcceptsOnlyNonEmptyDigitStrings) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits("-12"));
}

TEST(ParseNumberLenientTest, ParsesPlainNumbers) {
  double v = 0;
  ASSERT_TRUE(ParseNumberLenient("42", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  ASSERT_TRUE(ParseNumberLenient("-3.5", &v));
  EXPECT_DOUBLE_EQ(v, -3.5);
}

TEST(ParseNumberLenientTest, HandlesThousandsSeparators) {
  double v = 0;
  ASSERT_TRUE(ParseNumberLenient("1,234,567", &v));
  EXPECT_DOUBLE_EQ(v, 1234567.0);
}

TEST(ParseNumberLenientTest, HandlesUnitSuffix) {
  double v = 0;
  ASSERT_TRUE(ParseNumberLenient("1,234 m", &v));
  EXPECT_DOUBLE_EQ(v, 1234.0);
  ASSERT_TRUE(ParseNumberLenient(" 95 kg", &v));
  EXPECT_DOUBLE_EQ(v, 95.0);
}

TEST(ParseNumberLenientTest, RejectsLeadingJunkAndNonNumbers) {
  double v = 0;
  EXPECT_FALSE(ParseNumberLenient("abc", &v));
  EXPECT_FALSE(ParseNumberLenient("ca. 1200", &v));
  EXPECT_FALSE(ParseNumberLenient("", &v));
}

}  // namespace
}  // namespace ltee::util
