#include <gtest/gtest.h>

#include "eval/clustering_eval.h"
#include "eval/gold_standard.h"
#include "eval/pipeline_eval.h"

namespace ltee::eval {
namespace {

/// Gold standard with three clusters over synthetic row refs:
///   cluster 0 (existing, instance 7): rows (0,0) (0,1) (1,0)
///   cluster 1 (new):                  rows (1,1) (2,0)
///   cluster 2 (new):                  rows (2,1)
GoldStandard MakeGold() {
  GoldStandard gold;
  gold.cls = 0;
  gold.tables = {0, 1, 2};
  GsCluster c0;
  c0.rows = {{0, 0}, {0, 1}, {1, 0}};
  c0.is_new = false;
  c0.kb_instance = 7;
  GsCluster c1;
  c1.rows = {{1, 1}, {2, 0}};
  c1.is_new = true;
  GsCluster c2;
  c2.rows = {{2, 1}};
  c2.is_new = true;
  gold.clusters = {c0, c1, c2};
  GsFact f0;
  f0.cluster = 1;
  f0.property = 3;
  f0.correct_value = types::Value::OfQuantity(100);
  f0.correct_value_present = true;
  GsFact f1;
  f1.cluster = 2;
  f1.property = 3;
  f1.correct_value = types::Value::OfQuantity(500);
  f1.correct_value_present = false;
  gold.facts = {f0, f1};
  gold.BuildLookups();
  return gold;
}

TEST(GoldStandardTest, LookupsAndFilter) {
  auto gold = MakeGold();
  EXPECT_EQ(gold.ClusterOfRow({0, 1}), 0);
  EXPECT_EQ(gold.ClusterOfRow({2, 1}), 2);
  EXPECT_EQ(gold.ClusterOfRow({9, 9}), -1);

  auto filtered = FilterClusters(gold, {1, 2});
  EXPECT_EQ(filtered.clusters.size(), 2u);
  EXPECT_EQ(filtered.ClusterOfRow({0, 0}), -1);  // cluster 0 dropped
  EXPECT_EQ(filtered.ClusterOfRow({1, 1}), 0);   // re-indexed
  ASSERT_EQ(filtered.facts.size(), 2u);
  EXPECT_EQ(filtered.facts[0].cluster, 0);
  EXPECT_EQ(filtered.facts[1].cluster, 1);
}

// ---------------------------------------------------------------------------
// Clustering evaluation
// ---------------------------------------------------------------------------

TEST(ClusteringEvalTest, PerfectClusteringScoresOne) {
  auto gold = MakeGold();
  std::vector<std::vector<webtable::RowRef>> returned = {
      {{0, 0}, {0, 1}, {1, 0}}, {{1, 1}, {2, 0}}, {{2, 1}}};
  auto result = EvaluateClustering(returned, gold);
  EXPECT_DOUBLE_EQ(result.penalized_precision, 1.0);
  EXPECT_DOUBLE_EQ(result.average_recall, 1.0);
  EXPECT_DOUBLE_EQ(result.f1, 1.0);
}

TEST(ClusteringEvalTest, OverMergingHurtsPrecisionAndCount) {
  auto gold = MakeGold();
  // Everything in one big cluster.
  std::vector<std::vector<webtable::RowRef>> returned = {
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}};
  auto result = EvaluateClustering(returned, gold);
  // Pairs: C(6,2)=15; correct: C(3,2)+C(2,2)=3+1=4 -> precision 4/15.
  // Penalty: |C|=1, |G|=3, |M|=1 -> 1/3.
  EXPECT_NEAR(result.unpenalized_precision, 4.0 / 15.0, 1e-9);
  EXPECT_NEAR(result.penalized_precision, 4.0 / 45.0, 1e-9);
  // Only one gold cluster is mapped; its recall is 1 -> AR = 1/3.
  EXPECT_NEAR(result.average_recall, 1.0 / 3.0, 1e-9);
}

TEST(ClusteringEvalTest, AllSingletonsPenalizedByCount) {
  auto gold = MakeGold();
  std::vector<std::vector<webtable::RowRef>> returned = {
      {{0, 0}}, {{0, 1}}, {{1, 0}}, {{1, 1}}, {{2, 0}}, {{2, 1}}};
  auto result = EvaluateClustering(returned, gold);
  EXPECT_DOUBLE_EQ(result.unpenalized_precision, 1.0);  // no wrong pairs
  // Penalty: min(6,3,3)/max(6,3,3) = 0.5.
  EXPECT_DOUBLE_EQ(result.penalized_precision, 0.5);
  // Mapped clusters contribute partial recalls: 1/3 + 1/2 + 1 over 3.
  EXPECT_NEAR(result.average_recall, (1.0 / 3 + 0.5 + 1.0) / 3, 1e-9);
}

TEST(ClusteringEvalTest, UnannotatedRowsIgnored) {
  auto gold = MakeGold();
  std::vector<std::vector<webtable::RowRef>> returned = {
      {{0, 0}, {0, 1}, {1, 0}, {8, 8}},  // one unannotated row mixed in
      {{1, 1}, {2, 0}},
      {{2, 1}},
      {{9, 9}}};  // fully unannotated cluster
  auto result = EvaluateClustering(returned, gold);
  EXPECT_DOUBLE_EQ(result.f1, 1.0);
}

TEST(ClusteringEvalTest, MappingIsOneToOne) {
  auto gold = MakeGold();
  // Two returned clusters both overlap gold cluster 0.
  std::vector<std::vector<webtable::RowRef>> returned = {
      {{0, 0}, {0, 1}}, {{1, 0}}, {{1, 1}, {2, 0}}, {{2, 1}}};
  auto mapping = MapClustersToGold(returned, gold);
  int to_zero = 0;
  for (int g : mapping) to_zero += g == 0 ? 1 : 0;
  EXPECT_EQ(to_zero, 1);  // only one may claim gold cluster 0
}

// ---------------------------------------------------------------------------
// New detection evaluation
// ---------------------------------------------------------------------------

TEST(NewDetectionEvalTest, AccuracyAndF1s) {
  auto gold = MakeGold();
  std::vector<const GsCluster*> clusters = {&gold.clusters[0],
                                            &gold.clusters[1],
                                            &gold.clusters[2]};
  std::vector<newdetect::Detection> detections(3);
  detections[0].is_new = false;
  detections[0].instance = 7;   // correct match
  detections[1].is_new = true;  // correct new
  detections[2].is_new = false;
  detections[2].instance = 9;   // wrong: should be new
  auto result = EvaluateNewDetection(detections, clusters);
  EXPECT_NEAR(result.accuracy, 2.0 / 3.0, 1e-9);
  // New: tp=1, fp=0, fn=1 -> P=1, R=0.5, F1=2/3.
  EXPECT_NEAR(result.f1_new, 2.0 / 3.0, 1e-9);
  // Existing: tp=1, fp=1, fn=0 -> P=0.5, R=1 -> F1=2/3.
  EXPECT_NEAR(result.f1_existing, 2.0 / 3.0, 1e-9);
}

TEST(NewDetectionEvalTest, WrongInstanceMatchIsIncorrect) {
  auto gold = MakeGold();
  std::vector<const GsCluster*> clusters = {&gold.clusters[0]};
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = false;
  detections[0].instance = 99;  // exists but wrong instance
  auto result = EvaluateNewDetection(detections, clusters);
  EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

// ---------------------------------------------------------------------------
// New instances found / facts found
// ---------------------------------------------------------------------------

fusion::CreatedEntity MakeEntity(std::vector<webtable::RowRef> rows) {
  fusion::CreatedEntity entity;
  entity.rows = std::move(rows);
  return entity;
}

TEST(InstancesFoundTest, PerfectSystem) {
  auto gold = MakeGold();
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity({{0, 0}, {0, 1}, {1, 0}}), MakeEntity({{1, 1}, {2, 0}}),
      MakeEntity({{2, 1}})};
  std::vector<newdetect::Detection> detections(3);
  detections[0].is_new = false;
  detections[0].instance = 7;
  detections[1].is_new = true;
  detections[2].is_new = true;
  auto result = EvaluateNewInstancesFound(entities, detections, gold);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
}

TEST(InstancesFoundTest, MajorityConditionsEnforced) {
  auto gold = MakeGold();
  // Entity holds only a minority of gold cluster 1's rows plus junk.
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity({{1, 1}, {5, 5}, {6, 6}})};
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = true;
  auto result = EvaluateNewInstancesFound(entities, detections, gold);
  // Majority of entity rows are unannotated -> no mapping -> precision 0.
  EXPECT_DOUBLE_EQ(result.precision, 0.0);
  EXPECT_DOUBLE_EQ(result.recall, 0.0);
}

TEST(InstancesFoundTest, ExistingClusterClassifiedNewHurtsPrecision) {
  auto gold = MakeGold();
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity({{0, 0}, {0, 1}, {1, 0}}),  // existing cluster
      MakeEntity({{1, 1}, {2, 0}})};         // new cluster
  std::vector<newdetect::Detection> detections(2);
  detections[0].is_new = true;  // wrong
  detections[1].is_new = true;  // right
  auto result = EvaluateNewInstancesFound(entities, detections, gold);
  EXPECT_DOUBLE_EQ(result.precision, 0.5);
  EXPECT_DOUBLE_EQ(result.recall, 0.5);  // cluster 2 not found
}

TEST(FactsFoundTest, CorrectAndWrongFacts) {
  auto gold = MakeGold();
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity({{1, 1}, {2, 0}})};
  entities[0].facts.push_back(
      kb::Fact{3, types::Value::OfQuantity(101)});  // within tolerance
  entities[0].facts.push_back(
      kb::Fact{4, types::Value::OfQuantity(5)});  // no gold fact -> wrong
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = true;
  auto result = EvaluateFactsFound(entities, detections, gold);
  EXPECT_DOUBLE_EQ(result.precision, 0.5);
  // Recallable facts: cluster 1's fact (present). Cluster 2's is absent.
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_NEAR(result.f1, 2.0 / 3.0, 1e-9);
}

TEST(FactsFoundTest, FactsOfWronglyNewEntitiesAreWrong) {
  auto gold = MakeGold();
  std::vector<fusion::CreatedEntity> entities = {
      MakeEntity({{0, 0}, {0, 1}, {1, 0}})};  // existing cluster
  entities[0].facts.push_back(kb::Fact{3, types::Value::OfQuantity(100)});
  std::vector<newdetect::Detection> detections(1);
  detections[0].is_new = true;  // wrongly classified as new
  auto result = EvaluateFactsFound(entities, detections, gold);
  EXPECT_DOUBLE_EQ(result.precision, 0.0);
}

// ---------------------------------------------------------------------------
// Ranked evaluation
// ---------------------------------------------------------------------------

TEST(RankedEvalTest, PerfectRanking) {
  std::vector<bool> correct(30, true);
  auto result = EvaluateRanked(correct);
  EXPECT_DOUBLE_EQ(result.map, 1.0);
  EXPECT_DOUBLE_EQ(result.p_at_5, 1.0);
  EXPECT_DOUBLE_EQ(result.p_at_20, 1.0);
}

TEST(RankedEvalTest, KnownAveragePrecision) {
  // Correct at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<bool> correct = {true, false, true, false};
  auto result = EvaluateRanked(correct);
  EXPECT_NEAR(result.map, 5.0 / 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.p_at_5, 0.5);  // fewer than 5 results
}

TEST(RankedEvalTest, CutoffTruncates) {
  std::vector<bool> correct(300, false);
  correct[0] = true;
  correct[299] = true;  // beyond the 256 cutoff
  auto result = EvaluateRanked(correct, 256);
  EXPECT_DOUBLE_EQ(result.map, 1.0);  // only the rank-1 hit counts
}

TEST(RankedEvalTest, EmptyInput) {
  auto result = EvaluateRanked({});
  EXPECT_DOUBLE_EQ(result.map, 0.0);
  EXPECT_DOUBLE_EQ(result.p_at_5, 0.0);
}

}  // namespace
}  // namespace ltee::eval
