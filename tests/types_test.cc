#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/type_similarity.h"
#include "types/value.h"
#include "types/value_parser.h"

namespace ltee::types {
namespace {

// ---------------------------------------------------------------------------
// Value factories and rendering
// ---------------------------------------------------------------------------

TEST(ValueTest, FactoriesSetTypeAndPayload) {
  EXPECT_EQ(Value::Text("x").type, DataType::kText);
  EXPECT_EQ(Value::Nominal("x").type, DataType::kNominalString);
  EXPECT_EQ(Value::InstanceRef("x", 5).ref, 5);
  EXPECT_DOUBLE_EQ(Value::OfQuantity(2.5).number, 2.5);
  EXPECT_EQ(Value::OfInteger(7).integer, 7);
  EXPECT_EQ(Value::YearDate(1999).date.granularity, DateGranularity::kYear);
  EXPECT_EQ(Value::DayDate(1999, 3, 4).date.month, 3);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Text("abc").ToString(), "abc");
  EXPECT_EQ(Value::InstanceRef("team").ToString(), "@team");
  EXPECT_EQ(Value::YearDate(1987).ToString(), "1987");
  EXPECT_EQ(Value::DayDate(1987, 6, 5).ToString(), "1987-06-05");
  EXPECT_EQ(Value::OfQuantity(42).ToString(), "42");
  EXPECT_EQ(Value::OfInteger(-3).ToString(), "-3");
}

// ---------------------------------------------------------------------------
// Date parsing (parameterized over surface forms)
// ---------------------------------------------------------------------------

struct DateCase {
  const char* input;
  int year, month, day;
  DateGranularity granularity;
};

class DateParseTest : public ::testing::TestWithParam<DateCase> {};

TEST_P(DateParseTest, ParsesSurfaceForm) {
  const DateCase& c = GetParam();
  auto d = ParseDate(c.input);
  ASSERT_TRUE(d.has_value()) << c.input;
  EXPECT_EQ(d->year, c.year);
  EXPECT_EQ(d->granularity, c.granularity);
  if (c.granularity == DateGranularity::kDay) {
    EXPECT_EQ(d->month, c.month);
    EXPECT_EQ(d->day, c.day);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, DateParseTest,
    ::testing::Values(
        DateCase{"1987", 1987, 0, 0, DateGranularity::kYear},
        DateCase{"1987-06-05", 1987, 6, 5, DateGranularity::kDay},
        DateCase{"6/5/1987", 1987, 6, 5, DateGranularity::kDay},
        DateCase{"June 5, 1987", 1987, 6, 5, DateGranularity::kDay},
        DateCase{"5 June 1987", 1987, 6, 5, DateGranularity::kDay},
        DateCase{"Sep 1, 2001", 2001, 9, 1, DateGranularity::kDay},
        DateCase{"  2004 ", 2004, 0, 0, DateGranularity::kYear}));

TEST(DateParseTest, RejectsNonDates) {
  EXPECT_FALSE(ParseDate("hello").has_value());
  EXPECT_FALSE(ParseDate("123").has_value());      // 3-digit number
  EXPECT_FALSE(ParseDate("9999").has_value());     // outside year range
  EXPECT_FALSE(ParseDate("13/45/1987").has_value());  // invalid month/day
  EXPECT_FALSE(ParseDate("").has_value());
}

// ---------------------------------------------------------------------------
// Cell classification and column type detection
// ---------------------------------------------------------------------------

TEST(ClassifyCellTest, RoutesToDetectedTypes) {
  EXPECT_EQ(ClassifyCell("1987-06-05").type, DetectedType::kDate);
  EXPECT_EQ(ClassifyCell("1,234").type, DetectedType::kQuantity);
  EXPECT_EQ(ClassifyCell("Springfield").type, DetectedType::kText);
  // A bare plausible year counts as a date, not a quantity.
  EXPECT_EQ(ClassifyCell("1987").type, DetectedType::kDate);
}

TEST(DetectColumnTypeTest, MajorityVoteIgnoringEmptyCells) {
  EXPECT_EQ(DetectColumnType({"12", "34", "abc", ""}), DetectedType::kQuantity);
  EXPECT_EQ(DetectColumnType({"June 5, 1987", "1990", "x"}),
            DetectedType::kDate);
  EXPECT_EQ(DetectColumnType({"", "", ""}), DetectedType::kText);
}

TEST(DetectColumnTypeTest, TieBreaksTowardText) {
  EXPECT_EQ(DetectColumnType({"abc", "123"}), DetectedType::kText);
}

// ---------------------------------------------------------------------------
// Normalization to semantic types
// ---------------------------------------------------------------------------

TEST(NormalizeCellTest, TextAndNominalNormalizeLabels) {
  EXPECT_EQ(NormalizeCell("  The Song! ", DataType::kText)->text, "the song");
  EXPECT_EQ(NormalizeCell("QB", DataType::kNominalString)->text, "qb");
  EXPECT_EQ(NormalizeCell("Dallas Cowboys", DataType::kInstanceReference)->text,
            "dallas cowboys");
}

TEST(NormalizeCellTest, QuantityAndIntegerParsing) {
  EXPECT_DOUBLE_EQ(NormalizeCell("1,234 m", DataType::kQuantity)->number,
                   1234.0);
  EXPECT_EQ(NormalizeCell("42", DataType::kNominalInteger)->integer, 42);
  EXPECT_FALSE(NormalizeCell("4.5", DataType::kNominalInteger).has_value());
  EXPECT_FALSE(NormalizeCell("abc", DataType::kQuantity).has_value());
}

TEST(NormalizeCellTest, DateParsingAndFailures) {
  EXPECT_EQ(NormalizeCell("6/5/1987", DataType::kDate)->date.year, 1987);
  EXPECT_FALSE(NormalizeCell("not a date", DataType::kDate).has_value());
  EXPECT_FALSE(NormalizeCell("", DataType::kDate).has_value());
}

// ---------------------------------------------------------------------------
// Type-specific similarity and equality thresholds
// ---------------------------------------------------------------------------

TEST(ValueSimilarityTest, MismatchedTypesScoreZero) {
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::Text("1987"), Value::YearDate(1987)), 0.0);
}

TEST(ValueSimilarityTest, TextUsesMongeElkan) {
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::Text("john smith"), Value::Text("john smith")),
      1.0);
  EXPECT_GT(
      ValueSimilarity(Value::Text("jon smith"), Value::Text("john smith")),
      0.8);
}

TEST(ValueSimilarityTest, NominalIsExact) {
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::Nominal("qb"), Value::Nominal("qb")), 1.0);
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::Nominal("qb"), Value::Nominal("rb")), 0.0);
}

TEST(ValueSimilarityTest, ResolvedReferencesCompareByIds) {
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::InstanceRef("a", 1),
                                   Value::InstanceRef("b", 1)),
                   1.0);
  EXPECT_DOUBLE_EQ(ValueSimilarity(Value::InstanceRef("same", 1),
                                   Value::InstanceRef("same", 2)),
                   0.0);
}

TEST(ValueSimilarityTest, DateGranularityAware) {
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::YearDate(1987), Value::YearDate(1987)), 1.0);
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::YearDate(1987), Value::DayDate(1987, 1, 2)), 0.5);
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::DayDate(1987, 1, 2), Value::DayDate(1987, 1, 2)),
      1.0);
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::YearDate(1987), Value::YearDate(1990)), 0.0);
}

TEST(ValueSimilarityTest, QuantityRelativeCloseness) {
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::OfQuantity(100), Value::OfQuantity(100)), 1.0);
  EXPECT_NEAR(ValueSimilarity(Value::OfQuantity(90), Value::OfQuantity(100)),
              0.9, 1e-9);
  EXPECT_DOUBLE_EQ(
      ValueSimilarity(Value::OfQuantity(0), Value::OfQuantity(0)), 1.0);
}

struct EqualityCase {
  Value a, b;
  bool equal;
};

class ValuesEqualTest : public ::testing::TestWithParam<EqualityCase> {};

TEST_P(ValuesEqualTest, AppliesEquivalenceThreshold) {
  const EqualityCase& c = GetParam();
  EXPECT_EQ(ValuesEqual(c.a, c.b), c.equal);
  EXPECT_EQ(ValuesEqual(c.b, c.a), c.equal);  // symmetry
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ValuesEqualTest,
    ::testing::Values(
        EqualityCase{Value::Text("john smith"), Value::Text("john smith"),
                     true},
        EqualityCase{Value::Text("jon smith"), Value::Text("john smith"),
                     true},  // above the 0.85 threshold
        EqualityCase{Value::Text("springfield"), Value::Text("tokyo"), false},
        EqualityCase{Value::Nominal("12345"), Value::Nominal("12345"), true},
        EqualityCase{Value::Nominal("12345"), Value::Nominal("12346"), false},
        EqualityCase{Value::OfQuantity(1000), Value::OfQuantity(1020),
                     true},  // within 2.5 % tolerance
        EqualityCase{Value::OfQuantity(1000), Value::OfQuantity(1100), false},
        EqualityCase{Value::OfInteger(7), Value::OfInteger(7), true},
        EqualityCase{Value::OfInteger(7), Value::OfInteger(8), false},
        EqualityCase{Value::YearDate(1987), Value::DayDate(1987, 5, 5), true},
        EqualityCase{Value::DayDate(1987, 5, 5), Value::DayDate(1987, 5, 6),
                     false},
        EqualityCase{Value::YearDate(1987), Value::YearDate(1988), false}));

TEST(ValuesEqualTest, QuantityToleranceIsConfigurable) {
  TypeSimilarityOptions strict;
  strict.quantity_tolerance = 0.0;
  EXPECT_FALSE(
      ValuesEqual(Value::OfQuantity(1000), Value::OfQuantity(1001), strict));
  TypeSimilarityOptions loose;
  loose.quantity_tolerance = 0.5;
  EXPECT_TRUE(
      ValuesEqual(Value::OfQuantity(1000), Value::OfQuantity(1400), loose));
}

// ---------------------------------------------------------------------------
// Detected-type -> candidate-property admission rule
// ---------------------------------------------------------------------------

TEST(DetectedTypeAdmitsPropertyTest, MatchesPaperRules) {
  // Text attributes: instance reference, nominal string, text.
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kText,
                                         DataType::kInstanceReference));
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kText,
                                         DataType::kNominalString));
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kText, DataType::kText));
  EXPECT_FALSE(
      DetectedTypeAdmitsProperty(DetectedType::kText, DataType::kQuantity));
  // Quantity attributes: quantity, nominal integer.
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kQuantity,
                                         DataType::kQuantity));
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kQuantity,
                                         DataType::kNominalInteger));
  EXPECT_FALSE(
      DetectedTypeAdmitsProperty(DetectedType::kQuantity, DataType::kDate));
  // Date attributes: date, quantity, nominal integer.
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kDate, DataType::kDate));
  EXPECT_TRUE(
      DetectedTypeAdmitsProperty(DetectedType::kDate, DataType::kQuantity));
  EXPECT_TRUE(DetectedTypeAdmitsProperty(DetectedType::kDate,
                                         DataType::kNominalInteger));
  EXPECT_FALSE(
      DetectedTypeAdmitsProperty(DetectedType::kDate, DataType::kText));
}

}  // namespace
}  // namespace ltee::types
