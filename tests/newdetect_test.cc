#include <gtest/gtest.h>

#include "newdetect/new_detector.h"
#include "pipeline/gold_artifacts.h"
#include "pipeline/pipeline.h"
#include "rowcluster/row_features.h"
#include "test_dataset.h"

namespace ltee::newdetect {
namespace {

using ::ltee::testing::SharedDataset;

/// Entities created 1:1 from the gold clusters of one class, plus labels.
struct GoldEntities {
  index::LabelIndex kb_index;
  std::vector<fusion::CreatedEntity> entities;
  std::vector<DetectionLabel> labels;
};

const GoldEntities& SharedGoldEntities() {
  static const GoldEntities* state = [] {
    const auto& ds = SharedDataset();
    auto* s = new GoldEntities;
    auto dict = std::make_shared<util::TokenDictionary>();
    s->kb_index = pipeline::BuildKbLabelIndex(ds.kb, dict);
    webtable::PreparedCorpus prepared(ds.gs_corpus, dict);
    matching::SchemaMapping mapping;
    mapping.tables.resize(ds.gs_corpus.size());
    for (const auto& gs : ds.gold) {
      auto m = pipeline::GoldSchemaMapping(ds.gs_corpus, gs, ds.kb);
      pipeline::MergeGoldMappings(m, &mapping);
    }
    const auto& gs = ds.gold.front();
    auto rows = rowcluster::BuildClassRowSet(prepared, mapping, gs.cls,
                                             ds.kb, s->kb_index);
    std::vector<int> assignment(rows.rows.size(), -1);
    for (size_t i = 0; i < rows.rows.size(); ++i) {
      assignment[i] = gs.ClusterOfRow(rows.rows[i].ref);
    }
    fusion::EntityCreator creator(ds.kb);
    auto entities = creator.Create(rows, assignment, mapping, prepared);
    for (size_t k = 0; k < entities.size() && k < gs.clusters.size(); ++k) {
      if (entities[k].rows.empty()) continue;
      s->entities.push_back(std::move(entities[k]));
      s->labels.push_back(
          {gs.clusters[k].is_new, gs.clusters[k].kb_instance});
    }
    return s;
  }();
  return *state;
}

TEST(NewDetectorTest, CandidatesAreClassCompatibleAndLabelSimilar) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldEntities();
  NewDetector detector(ds.kb, state.kb_index);
  size_t with_candidates = 0;
  for (const auto& entity : state.entities) {
    auto candidates = detector.Candidates(entity);
    for (kb::InstanceId id : candidates) {
      EXPECT_TRUE(
          ds.kb.ClassesCompatible(entity.cls, ds.kb.instance(id).cls));
    }
    if (!candidates.empty()) ++with_candidates;
  }
  // Existing entities must essentially always have candidates.
  size_t existing = 0, existing_with = 0;
  for (size_t e = 0; e < state.entities.size(); ++e) {
    if (state.labels[e].is_new) continue;
    ++existing;
    if (!detector.Candidates(state.entities[e]).empty()) ++existing_with;
  }
  ASSERT_GT(existing, 0u);
  EXPECT_GT(static_cast<double>(existing_with) / existing, 0.9);
}

TEST(NewDetectorTest, CompareProducesEnabledFeatureVector) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldEntities();
  NewDetectorOptions options;
  options.enabled_metrics = FirstKEntityMetrics(3);  // LABEL, TYPE, BOW
  NewDetector detector(ds.kb, state.kb_index, options);
  // Find an entity with a candidate.
  for (const auto& entity : state.entities) {
    auto candidates = detector.Candidates(entity);
    if (candidates.empty()) continue;
    auto f = detector.Compare(entity, candidates.front(), 1.0);
    ASSERT_EQ(f.sims.size(), 3u);
    EXPECT_GE(f.sims[0], 0.0);  // LABEL
    EXPECT_LE(f.sims[0], 1.0);
    EXPECT_GE(f.sims[1], 0.0);  // TYPE overlap
    return;
  }
  FAIL() << "no entity had candidates";
}

TEST(NewDetectorTest, SelfComparisonOfExistingEntityScoresHigh) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldEntities();
  NewDetector detector(ds.kb, state.kb_index);
  for (size_t e = 0; e < state.entities.size(); ++e) {
    if (state.labels[e].is_new) continue;
    auto f = detector.Compare(state.entities[e], state.labels[e].instance, 1.0);
    // LABEL similarity against the true instance should be near-perfect.
    EXPECT_GT(f.sims[0], 0.8);
    return;
  }
}

TEST(NewDetectorTest, TrainedDetectorBeatsChance) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldEntities();
  NewDetector detector(ds.kb, state.kb_index);
  util::Rng rng(31);
  detector.Train(state.entities, state.labels, rng);
  auto detections = detector.Detect(state.entities);
  ASSERT_EQ(detections.size(), state.entities.size());
  int correct = 0;
  for (size_t e = 0; e < detections.size(); ++e) {
    if (detections[e].is_new == state.labels[e].is_new) ++correct;
  }
  // In-sample accuracy should be clearly above the majority baseline.
  EXPECT_GT(static_cast<double>(correct) / detections.size(), 0.7);
  EXPECT_GE(detector.match_threshold(), detector.new_threshold());
}

TEST(NewDetectorTest, MatchedInstancesAreCorrectMostOfTheTime) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldEntities();
  NewDetector detector(ds.kb, state.kb_index);
  util::Rng rng(32);
  detector.Train(state.entities, state.labels, rng);
  auto detections = detector.Detect(state.entities);
  int matched = 0, correct = 0;
  for (size_t e = 0; e < detections.size(); ++e) {
    if (detections[e].is_new ||
        detections[e].instance == kb::kInvalidInstance) {
      continue;
    }
    ++matched;
    if (!state.labels[e].is_new &&
        detections[e].instance == state.labels[e].instance) {
      ++correct;
    }
  }
  ASSERT_GT(matched, 0);
  EXPECT_GT(static_cast<double>(correct) / matched, 0.6);
}

TEST(NewDetectorTest, EntityWithoutCandidatesIsNew) {
  const auto& ds = SharedDataset();
  const auto& state = SharedGoldEntities();
  NewDetector detector(ds.kb, state.kb_index);
  fusion::CreatedEntity entity;
  entity.cls = ds.gold.front().cls;
  entity.labels = {"zxqwv nonexistent zzz"};
  auto detections = detector.Detect({entity});
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_TRUE(detections[0].is_new);
  EXPECT_EQ(detections[0].instance, kb::kInvalidInstance);
  EXPECT_DOUBLE_EQ(detections[0].best_score, -1.0);
}

TEST(NewDetectorTest, MetricNamesAndMasks) {
  EXPECT_STREQ(EntityMetricName(EntityMetric::kPopularity), "POPULARITY");
  auto mask = FirstKEntityMetrics(2);
  EXPECT_EQ(mask, (std::vector<bool>{true, true, false, false, false, false}));
}

}  // namespace
}  // namespace ltee::newdetect
