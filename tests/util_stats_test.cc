#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

#include <atomic>

namespace ltee::util {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VarianceTest, Basic) {
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(WeightedMedianTest, EqualWeightsMatchMedian) {
  EXPECT_DOUBLE_EQ(WeightedMedian({{1, 1}, {2, 1}, {3, 1}}), 2.0);
}

TEST(WeightedMedianTest, HeavyWeightDominates) {
  EXPECT_DOUBLE_EQ(WeightedMedian({{1, 10}, {2, 1}, {3, 1}}), 1.0);
  EXPECT_DOUBLE_EQ(WeightedMedian({{1, 1}, {2, 1}, {100, 5}}), 100.0);
}

TEST(WeightedMedianTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(WeightedMedian({}), 0.0);
}

TEST(F1Test, HarmonicMean) {
  EXPECT_DOUBLE_EQ(F1(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(F1(0.0, 0.0), 0.0);
  EXPECT_NEAR(F1(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(SummarizeTest, ComputesAllFourStatistics) {
  Summary s = Summarize({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(s.average, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i] += 1; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitDrainsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&counter] { counter += 1; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

}  // namespace
}  // namespace ltee::util
