// Reproduces Table 4: number of matched tables and value correspondences
// per class (paper: GF-Player 10,432 tables / 206,847 matched / 35,968
// unmatched; Song 58,594 / 1.3M / 443k; Settlement 11,757 / 82,816 /
// 13,735). A table counts when at least one attribute column matched; a
// value is "matched" when its row was matched to an existing KB instance.

#include <array>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table04_value_correspondences");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  // Train the schema matchers on the gold standard, then match the corpus
  // with the first-iteration matcher (Table 4 describes the preliminary
  // row-to-instance matching of earlier work).
  pipeline::PipelineOptions options;
  pipeline::LteePipeline ltee_pipeline(dataset.kb, options);
  util::Rng rng(7);
  pipeline::TrainPipelineOnGold(&ltee_pipeline, dataset.gs_corpus,
                                dataset.gold, rng);
  util::WallTimer timer;
  auto mapping = ltee_pipeline.schema_matcher_first().Match(
      ltee_pipeline.Prepared(dataset.corpus));
  std::printf("# schema matching over the corpus took %.1fs\n\n",
              timer.ElapsedSeconds());

  bench::PrintTitle("Table 4: Number of tables and value correspondences "
                    "(synthetic)");
  std::printf("%-14s %10s %12s %12s\n", "Class", "Tables", "VMatched",
              "VUnmatched");
  for (size_t g = 0; g < dataset.gold.size(); ++g) {
    const kb::ClassId cls = dataset.gold[g].cls;
    size_t tables = 0, matched = 0, unmatched = 0;
    for (const auto& tm : mapping.tables) {
      if (tm.cls != cls) continue;
      bool has_matched_column = false;
      const auto& table = dataset.corpus.table(tm.table);
      for (size_t c = 0; c < tm.columns.size(); ++c) {
        if (tm.columns[c].property == kb::kInvalidProperty) continue;
        has_matched_column = true;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (util::Trim(table.cell(r, c)).empty()) continue;
          const bool row_matched =
              !tm.row_instance.empty() &&
              tm.row_instance[r] != kb::kInvalidInstance;
          (row_matched ? matched : unmatched) += 1;
        }
      }
      if (has_matched_column) ++tables;
    }
    const std::string name = bench::ShortClassName(dataset.kb.cls(cls).name);
    std::printf("%-14s %10zu %12zu %12zu\n", name.c_str(), tables, matched,
                unmatched);
    bench::EmitResult("table04." + name, "matched_values", static_cast<double>(matched), "count");
    bench::EmitResult("table04." + name, "unmatched_values", static_cast<double>(unmatched), "count");
  }
  std::printf("\npaper: GF-Player 10432/206847/35968, "
              "Song 58594/1315381/443194, Settlement 11757/82816/13735\n");
  return 0;
}
