// Reproduces Figure 1: the overall pipeline. Runs the complete
// two-iteration system and prints, per iteration and stage, the artifact
// counts flowing between components — web tables in, schema mapping, row
// clusters, created entities, new/existing detections, and the feedback
// correspondences that refine the schema mapping in the second iteration.

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("fig1_pipeline_stages");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline ltee_pipeline(dataset.kb, options);
  util::Rng rng(7);
  pipeline::TrainPipelineOnGold(&ltee_pipeline, dataset.gs_corpus,
                                dataset.gold, rng);

  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  util::WallTimer timer;
  auto run = ltee_pipeline.Run(dataset.gs_corpus, classes);
  const double elapsed = timer.ElapsedSeconds();

  bench::PrintTitle("Figure 1: Overview of the overall pipeline "
                    "(two iterations over the gold-standard corpus)");
  std::printf("input: %zu web tables, %zu rows, KB with %zu instances\n\n",
              dataset.gs_corpus.size(), dataset.gs_corpus.TotalRows(),
              dataset.kb.num_instances());

  for (size_t it = 0; it < run.mappings.size(); ++it) {
    size_t mapped_tables = 0, matched_columns = 0;
    for (const auto& tm : run.mappings[it].tables) {
      if (tm.cls == kb::kInvalidClass) continue;
      bool any = false;
      for (const auto& col : tm.columns) {
        if (col.property != kb::kInvalidProperty) {
          ++matched_columns;
          any = true;
        }
      }
      if (any) ++mapped_tables;
    }
    std::printf("iteration %zu / schema matching: %zu tables mapped, "
                "%zu attribute columns matched\n",
                it + 1, mapped_tables, matched_columns);
  }
  std::printf("\nfinal iteration, per class:\n");
  for (const auto& class_run : run.classes) {
    size_t new_count = 0, existing = 0, corresponded = 0, facts = 0;
    for (size_t e = 0; e < class_run.entities.size(); ++e) {
      facts += class_run.entities[e].facts.size();
      if (class_run.detections[e].is_new) {
        ++new_count;
      } else {
        ++existing;
        if (class_run.detections[e].instance != kb::kInvalidInstance) {
          ++corresponded;
        }
      }
    }
    std::printf("  %-24s rows=%zu -> clusters=%d -> entities=%zu "
                "(facts=%zu) -> new=%zu existing=%zu (correspondences=%zu)\n",
                bench::ShortClassName(
                    dataset.kb.cls(class_run.cls).name).c_str(),
                class_run.rows.rows.size(), class_run.num_clusters,
                class_run.entities.size(), facts, new_count, existing,
                corresponded);
  }

  matching::RowInstanceMap instances;
  matching::RowClusterMap clusters;
  pipeline::LteePipeline::CollectFeedback(run.classes, &instances, &clusters);
  std::printf("\nfeedback into schema refinement: %zu row-instance "
              "correspondences, %zu row-cluster assignments\n",
              instances.size(), clusters.size());
  std::printf("total pipeline wall time: %.1fs\n", elapsed);

  bench::EmitResult("fig1", "pipeline_seconds", elapsed, "seconds");
  for (const auto& stage : run.report.stages) {
    bench::EmitResult("fig1", "stage_seconds." + stage.stage, stage.seconds, "seconds");
  }
  return 0;
}
