// Extension bench (Section 6, slot-filling comparison): the pipeline's
// entities that matched *existing* instances carry fused facts; slots the
// KB leaves empty can be filled from them. The paper's predecessor work
// [27] found 378,892 facts (64,237 new for existing instances) at F1 0.71
// on the same corpus; this bench measures how many empty slots the LTEE
// pipeline fills as a byproduct, and their accuracy against ground truth.

#include "bench_common.h"
#include "pipeline/slot_filling.h"
#include "types/type_similarity.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("ext_slot_filling");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline ltee_pipeline(dataset.kb, options);
  util::Rng rng(7);
  pipeline::TrainPipelineOnGold(&ltee_pipeline, dataset.gs_corpus,
                                dataset.gold, rng);
  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  auto run = ltee_pipeline.Run(dataset.corpus, classes);

  bench::PrintTitle("Extension: slot filling for existing instances "
                    "(byproduct of the matched entities)");
  std::printf("%-12s %10s %14s %10s %10s %10s\n", "Class", "NewFacts",
              "Confirmations", "Conflicts", "Applied", "Accuracy");

  const types::TypeSimilarityOptions sim;
  for (size_t ci = 0; ci < run.classes.size(); ++ci) {
    const auto& class_run = run.classes[ci];
    auto result = pipeline::FillSlots(dataset.kb, class_run.entities,
                                      class_run.detections);
    // Accuracy of proposed fills against the synthetic ground truth.
    const int pi = dataset.ProfileOfClass(class_run.cls);
    size_t checked = 0, correct = 0;
    for (const auto& fill : result.new_facts) {
      // The instance's world entity: find by kb_id.
      for (int eid : dataset.world.EntitiesOfProfile(pi)) {
        const auto& world_entity = dataset.world.entity(eid);
        if (world_entity.kb_id != fill.instance) continue;
        for (size_t k = 0; k < dataset.property_ids[pi].size(); ++k) {
          if (dataset.property_ids[pi][k] != fill.property) continue;
          ++checked;
          if (types::ValuesEqual(fill.value, world_entity.truth[k], sim)) {
            ++correct;
          }
        }
        break;
      }
    }
    const size_t applied =
        pipeline::ApplySlotFills(&dataset.kb, result.new_facts);
    const double accuracy = checked == 0 ? 0.0
                                         : static_cast<double>(correct) /
                                               static_cast<double>(checked);
    const std::string cls =
        bench::ShortClassName(dataset.kb.cls(class_run.cls).name);
    std::printf("%-12s %10zu %14zu %10zu %10zu %10.2f\n", cls.c_str(),
                result.new_facts.size(), result.confirmations,
                result.conflicts, applied, accuracy);
    bench::EmitResult("ext_slot_filling." + cls, "facts_applied", static_cast<double>(applied), "count");
    bench::EmitResult("ext_slot_filling." + cls, "fact_accuracy", accuracy, "score");
  }
  std::printf("\npaper's predecessor slot-filling work [27]: F1 0.71; "
              "fact accuracy here should be comparable or better\n");
  return 0;
}
