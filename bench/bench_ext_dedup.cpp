// Extension bench (Section 5 future work): "we need to implement more
// sophisticated row clustering methods or, alternatively, perform
// deduplication after clustering" — for the Song class the paper measured
// a matching ratio of 1.39 (existing entities per matched KB instance;
// ideal is 1.0). This bench runs the post-clustering entity deduplication
// and reports the ratio and new-entity counts before and after.

#include <set>

#include "bench_common.h"
#include "pipeline/dedup.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("ext_dedup");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline ltee_pipeline(dataset.kb, options);
  util::Rng rng(7);
  pipeline::TrainPipelineOnGold(&ltee_pipeline, dataset.gs_corpus,
                                dataset.gold, rng);
  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  auto run = ltee_pipeline.Run(dataset.corpus, classes);

  bench::PrintTitle("Extension: post-clustering entity deduplication "
                    "(Section 5 proposal)");
  std::printf("%-12s %12s %10s %10s %10s %10s %8s\n", "Class", "Entities",
              "Existing", "Matched", "Ratio", "New", "Merges");

  auto report = [&](const char* suffix, const auto& entities,
                    const auto& detections, kb::ClassId cls, size_t merges) {
    size_t existing = 0, new_count = 0;
    std::set<kb::InstanceId> matched;
    for (size_t e = 0; e < entities.size(); ++e) {
      if (detections[e].is_new) {
        ++new_count;
      } else {
        ++existing;
        if (detections[e].instance != kb::kInvalidInstance) {
          matched.insert(detections[e].instance);
        }
      }
    }
    const double ratio =
        matched.empty() ? 0.0
                        : static_cast<double>(existing) /
                              static_cast<double>(matched.size());
    std::printf("%-12s %12zu %10zu %10zu %10.2f %10zu %8zu\n",
                (bench::ShortClassName(dataset.kb.cls(cls).name) + suffix)
                    .c_str(),
                entities.size(), existing, matched.size(), ratio, new_count,
                merges);
    return ratio;
  };

  for (const auto& class_run : run.classes) {
    const std::string cls =
        bench::ShortClassName(dataset.kb.cls(class_run.cls).name);
    const double before =
        report("", class_run.entities, class_run.detections, class_run.cls, 0);
    auto deduped = pipeline::DeduplicateEntities(class_run.entities,
                                                 class_run.detections);
    const double after = report("*", deduped.entities, deduped.detections,
                                class_run.cls, deduped.merges);
    bench::EmitResult("ext_dedup." + cls, "ratio_before", before, "ratio");
    bench::EmitResult("ext_dedup." + cls, "ratio_after", after, "ratio");
    bench::EmitResult("ext_dedup." + cls, "merges", static_cast<double>(deduped.merges), "count");
  }
  std::printf("\n(* = after deduplication; paper Song matching ratio 1.39, "
              "ideal 1.0 — dedup should move each ratio toward 1)\n");
  return 0;
}
