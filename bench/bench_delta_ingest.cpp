// Delta-pipeline ingest bench: trains the pipeline, runs the full
// pipeline over a base corpus A, then measures the incremental path — a
// DeltaIngest of the held-out tail B (scoped stage execution + changeset
// fuse through kb::Applier) followed by an atomic snapshot promotion
// into a live QueryEngine — and finally samples query latency against
// the freshly published snapshot.
//
// Gateable units: "ms" metrics (ingest_ms, apply_publish_ms, wall_ms)
// regress upward, the post-publish "ms_p50"/"ms_p95" percentiles regress
// upward above the latency noise floor. Counts (tables ingested, classes
// recomputed, facts staged) ride along to catch silent scope drift —
// a delta ingest that suddenly recomputes every class would show up here
// before it shows up as wall time.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "kb/applier.h"
#include "kb/serialization.h"
#include "pipeline/delta.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/random.h"
#include "util/timer.h"
#include "webtable/web_table.h"

namespace {

using namespace ltee;

constexpr size_t kDeltaTables = 50;
constexpr size_t kQueryOps = 2000;

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[rank];
}

}  // namespace

int main() {
  bench::ScopedWallClock wall_clock("delta_ingest");
  auto dataset = bench::MakeDataset(0.002);
  if (dataset.corpus.size() <= kDeltaTables) {
    std::fprintf(stderr, "corpus too small for a %zu-table delta\n",
                 kDeltaTables);
    return 1;
  }

  // Split the corpus: A = everything but the tail, B = the last
  // kDeltaTables tables arriving later as a prepared batch.
  const size_t num_base_tables = dataset.corpus.size() - kDeltaTables;
  webtable::TableCorpus base_corpus;
  std::vector<webtable::WebTable> batch;
  for (size_t t = 0; t < dataset.corpus.size(); ++t) {
    webtable::WebTable copy =
        dataset.corpus.table(static_cast<webtable::TableId>(t));
    if (t < num_base_tables) {
      base_corpus.Add(std::move(copy));
    } else {
      batch.push_back(std::move(copy));
    }
  }

  pipeline::LteePipeline pipe(dataset.kb, {});
  util::Rng rng(bench::kSeed);
  pipeline::TrainPipelineOnGold(&pipe, dataset.gs_corpus, dataset.gold, rng);
  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);

  // Base run over A — the state an always-on deployment would already
  // hold when the delta batch arrives. Setup, but reported: the ratio of
  // ingest_ms to base_run_ms is the whole point of the incremental path.
  util::WallTimer base_timer;
  auto base_run = pipe.Run(base_corpus, classes);
  kb::Applier applier(nullptr);
  for (const auto& class_run : base_run.classes) {
    applier.Stage(pipeline::StageClassRun(dataset.kb, class_run).change);
  }
  pipeline::DeltaState state;
  state.seed = bench::kSeed;
  state.classes = classes;
  state.mappings = base_run.mappings;
  state.feedback = base_run.feedback;
  state.changes = applier.TakeStaged();
  const double base_run_ms = base_timer.ElapsedMillis();

  // Serve the base snapshot, as `ltee_cli serve` would. The KB is
  // move-only; clone it through its TSV round trip so the pipeline's
  // immutable base copy survives for the apply below.
  serve::QueryEngine engine;
  {
    std::stringstream buffer;
    kb::SaveKnowledgeBase(dataset.kb, buffer);
    auto kb_base = kb::LoadKnowledgeBase(buffer);
    if (!kb_base.has_value()) {
      std::fprintf(stderr, "base KB round trip failed\n");
      return 1;
    }
    kb::ApplyChangeSet(&*kb_base, state.changes);
    engine.Publish(serve::Snapshot::Build(*kb_base, {.version = 1}));
  }

  // -- the measured section: scoped ingest of B -------------------------
  util::WallTimer ingest_timer;
  const pipeline::DeltaIngestResult ingest =
      pipeline::DeltaIngest(pipe, &base_corpus, std::move(batch), &state);
  const double ingest_ms = ingest_timer.ElapsedMillis();

  util::WallTimer publish_timer;
  kb::KnowledgeBase enriched = std::move(dataset.kb);
  const kb::ApplyOutcome outcome =
      kb::ApplyChangeSet(&enriched, state.changes);
  engine.Publish(serve::Snapshot::Build(enriched, {.version = 2}));
  const double apply_publish_ms = publish_timer.ElapsedMillis();

  std::printf("# base run %.0fms over %zu tables; ingest %.0fms over %zu "
              "tables (%zu of %zu classes recomputed)\n",
              base_run_ms, num_base_tables, ingest_ms, ingest.new_tables,
              ingest.recomputed.size(), classes.size());

  // Post-publish read path: latency against the just-promoted snapshot.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kQueryOps);
  const size_t num_entities = std::max<size_t>(1, enriched.num_instances());
  uint64_t z_state = 0x9e3779b97f4a7c15ull;
  for (size_t op = 0; op < kQueryOps; ++op) {
    z_state += 0x9e3779b97f4a7c15ull;
    uint64_t z = z_state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const auto begin = std::chrono::steady_clock::now();
    if (z % 10 < 7) {
      engine.EntityById(static_cast<int64_t>((z >> 8) % num_entities));
    } else {
      engine.SnapshotInfo();
    }
    latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - begin)
                               .count());
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());

  bench::EmitResult("delta_ingest", "base_run_ms", base_run_ms, "ms");
  bench::EmitResult("delta_ingest", "ingest_ms", ingest_ms, "ms");
  bench::EmitResult("delta_ingest", "apply_publish_ms", apply_publish_ms,
                    "ms");
  bench::EmitResult("delta_ingest", "tables_ingested",
                    static_cast<double>(ingest.new_tables), "count");
  bench::EmitResult("delta_ingest", "classes_recomputed",
                    static_cast<double>(ingest.recomputed.size()), "count");
  bench::EmitResult("delta_ingest", "facts_applied",
                    static_cast<double>(outcome.facts_added), "count");
  bench::EmitResult("delta_ingest", "post_publish_p50",
                    Percentile(latencies_ms, 0.50), "ms_p50",
                    static_cast<long long>(kQueryOps));
  bench::EmitResult("delta_ingest", "post_publish_p95",
                    Percentile(latencies_ms, 0.95), "ms_p95",
                    static_cast<long long>(kQueryOps));
  return 0;
}
