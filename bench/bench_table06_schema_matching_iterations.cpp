// Reproduces Table 6: attribute-to-property matching performance by
// pipeline iteration (paper: P/R/F1 = 0.929/0.608/0.735 after the first
// iteration, 0.924/0.916/0.920 after the second, 0.929/0.916/0.922 after
// a third — the second iteration's duplicate-based matchers close the
// recall gap; a third iteration is marginal).

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table06_schema_matching_iterations");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);
  util::WallTimer timer;
  auto by_iteration = experiment.SchemaMatchingByIteration(3);
  std::printf("# experiment took %.1fs\n\n", timer.ElapsedSeconds());

  bench::PrintTitle("Table 6: Attribute-to-property matching performance by "
                    "iteration");
  std::printf("%-10s %8s %8s %8s\n", "Iteration", "P", "R", "F1");
  const char* names[] = {"First", "Second", "Third"};
  for (size_t it = 0; it < by_iteration.size(); ++it) {
    std::printf("%-10s %8.3f %8.3f %8.3f\n", names[it],
                by_iteration[it].precision, by_iteration[it].recall,
                by_iteration[it].f1);
    bench::EmitResult("table06.iter" + std::to_string(it + 1), "f1", by_iteration[it].f1, "score");
  }
  std::printf("\npaper: 0.929/0.608/0.735, 0.924/0.916/0.920, "
              "0.929/0.916/0.922\n");

  // Section 3.1 weight discussion: average learned matcher weights.
  auto weights = experiment.AverageSchemaWeights();
  std::printf("\naverage learned matcher weights (iteration >= 2):\n");
  for (int m = 0; m < matching::kNumMatchers; ++m) {
    std::printf("  %-13s %.3f\n",
                matching::MatcherName(static_cast<matching::MatcherId>(m)),
                weights[m]);
  }
  std::printf("paper: KB-Overlap 0.10, label-based combined 0.46 "
              "(WT-Label 0.25), duplicate-based combined 0.43 "
              "(KB-Duplicate 0.25)\n");
  return 0;
}
