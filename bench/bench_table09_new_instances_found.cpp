// Reproduces Table 9: results of the new-instances-found evaluation per
// class, once with gold-standard clustering (GS) and once with the full
// system clustering (ALL); new detection is always the full aggregated
// method (paper: GF-Player 0.89/0.95/0.91 GS and 0.82/0.95/0.87 ALL;
// Song 0.92/0.88/0.90 and 0.72/0.72/0.72; Settlement 0.84/0.90/0.87 and
// 0.74/0.87/0.80; average ALL 0.76/0.85/0.80).

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table09_new_instances_found");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Table 9: Results of new instances found evaluation");
  std::printf("%-12s %-8s %-8s %8s %8s %8s\n", "Class", "Clust.", "NewDet.",
              "P", "R", "F1");
  double avg_p = 0, avg_r = 0, avg_f1 = 0;
  for (int c = 0; c < experiment.num_classes(); ++c) {
    const std::string name = bench::ShortClassName(
        dataset.kb.cls(experiment.gold(c).cls).name);
    for (bool gold_clustering : {true, false}) {
      util::WallTimer timer;
      auto result = experiment.NewInstancesFound(c, gold_clustering);
      std::printf("%-12s %-8s %-8s %8.2f %8.2f %8.2f   (%.0fs)\n",
                  name.c_str(), gold_clustering ? "GS" : "ALL", "ALL",
                  result.precision, result.recall, result.f1,
                  timer.ElapsedSeconds());
      if (!gold_clustering) {
        avg_p += result.precision;
        avg_r += result.recall;
        avg_f1 += result.f1;
      }
    }
  }
  const int n = experiment.num_classes();
  std::printf("%-12s %-8s %-8s %8.2f %8.2f %8.2f\n", "Average", "ALL", "ALL",
              avg_p / n, avg_r / n, avg_f1 / n);
  bench::EmitResult("table09", "avg_precision", avg_p / n, "score");
  bench::EmitResult("table09", "avg_recall", avg_r / n, "score");
  bench::EmitResult("table09", "avg_f1", avg_f1 / n, "score");
  std::printf("\npaper average (ALL/ALL): 0.76/0.85/0.80\n");
  return 0;
}
