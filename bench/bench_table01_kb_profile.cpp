// Reproduces Table 1: number of instances and facts for the selected KB
// classes (paper: GF-Player 20,751 / 137,319; Song 52,533 / 315,414;
// Settlement 468,986 / 1,444,316 — here at synthetic scale, same ordering
// and facts-per-instance shape).

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table01_kb_profile");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  bench::PrintTitle("Table 1: Number of instances and facts for selected "
                    "DBpedia classes (synthetic)");
  std::printf("%-14s %12s %12s %18s\n", "Class", "Instances", "Facts",
              "Facts/Instance");
  for (size_t g = 0; g < dataset.gold.size(); ++g) {
    const kb::ClassId cls = dataset.gold[g].cls;
    const auto stats = dataset.kb.StatsOfClass(cls);
    const std::string name = bench::ShortClassName(dataset.kb.cls(cls).name);
    std::printf("%-14s %12zu %12zu %18.2f\n", name.c_str(), stats.instances,
                stats.facts,
                stats.instances == 0
                    ? 0.0
                    : static_cast<double>(stats.facts) / stats.instances);
    bench::EmitResult("table01." + name, "instances", static_cast<double>(stats.instances), "count");
    bench::EmitResult("table01." + name, "facts", static_cast<double>(stats.facts), "count");
  }
  std::printf("\npaper (full scale): GF-Player 20751/137319, "
              "Song 52533/315414, Settlement 468986/1444316\n");
  return 0;
}
