// Micro-benchmarks (google-benchmark) of the hot primitives behind the
// pipeline's scalability story: string similarities, value parsing, label
// index retrieval, row-pair metric computation, correlation clustering,
// and random forest prediction. Not a paper table — these document the
// cost model behind the Section 3.2 scalability design (parallel greedy +
// KLj + blocking).

#include <benchmark/benchmark.h>

#include "cluster/correlation_clusterer.h"
#include "index/label_index.h"
#include "ml/random_forest.h"
#include "types/value_parser.h"
#include "util/random.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace {

using namespace ltee;

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "gridiron football player";
  const std::string b = "gridiron foot ball players";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_MongeElkan(benchmark::State& state) {
  const std::string a = "John Ronald Smith";
  const std::string b = "Jon R. Smith";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::MongeElkanLevenshtein(a, b));
  }
}
BENCHMARK(BM_MongeElkan);

void BM_Tokenize(benchmark::State& state) {
  const std::string s = "The Quick Brown Fox; Jumps over 42 lazy-dogs!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Tokenize(s));
  }
}
BENCHMARK(BM_Tokenize);

void BM_ParseDate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(types::ParseDate("September 21, 1987"));
  }
}
BENCHMARK(BM_ParseDate);

void BM_ClassifyCell(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(types::ClassifyCell("1,234,567"));
  }
}
BENCHMARK(BM_ClassifyCell);

void BM_LabelIndexSearch(benchmark::State& state) {
  index::LabelIndex index;
  util::Rng rng(1);
  const char* first[] = {"spring", "oak", "maple", "cedar", "river", "lake"};
  const char* second[] = {"field", "ton", "ville", "burg", "port", "dale"};
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    std::string label = std::string(first[rng.NextBounded(6)]) +
                        second[rng.NextBounded(6)] + " " +
                        std::to_string(i % 97);
    index.Add(i, label);
  }
  index.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search("springfield 42", 10));
  }
}
BENCHMARK(BM_LabelIndexSearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CorrelationClustering(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> truth(n);
  for (int i = 0; i < n; ++i) truth[i] = i / 8;  // clusters of 8
  auto sim = [&truth](int i, int j) {
    return truth[i] == truth[j] ? 1.0 : -1.0;
  };
  // Blocks mirror the clusters plus a noise block, as label blocking does.
  std::vector<std::vector<int32_t>> blocks(n);
  for (int i = 0; i < n; ++i) {
    blocks[i] = {truth[i], static_cast<int32_t>(10000 + i % 13)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::ClusterCorrelation(n, sim, blocks));
  }
}
BENCHMARK(BM_CorrelationClustering)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RandomForestPredict(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    x.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
                 rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    y.push_back(x.back()[0] > 0.5 ? 1.0 : -1.0);
  }
  ml::RandomForestRegressor forest;
  forest.Train(x, y, rng);
  const std::vector<double> probe = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(probe));
  }
}
BENCHMARK(BM_RandomForestPredict);

}  // namespace

BENCHMARK_MAIN();
