// Micro-benchmarks (google-benchmark) of the hot primitives behind the
// pipeline's scalability story: string similarities (raw-string and
// interned-token-id variants), tokenize/intern, value parsing, label index
// retrieval, correlation clustering, and random forest prediction — plus
// an end-to-end prepared-vs-raw pipeline timing. Not a paper table — these
// document the cost model behind the Section 3.2 scalability design
// (prepared corpus + parallel greedy + KLj + blocking).
//
// Output: one JSON line per benchmark on stdout via bench::EmitResult
// (the `BENCH_*.json` perf trajectory format shared by every bench), e.g.
//   {"bench":"BM_MongeElkanIds","metric":"ns_per_iter","value":132.4,"iters":5000000}
// Human-readable console output goes to stderr.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "cluster/correlation_clusterer.h"
#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "index/label_index.h"
#include "ml/random_forest.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "prov/ledger.h"
#include "synth/dataset.h"
#include "types/value_parser.h"
#include "util/random.h"
#include "util/similarity.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/token_dictionary.h"
#include "webtable/prepared_corpus.h"

namespace {

using namespace ltee;

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "gridiron football player";
  const std::string b = "gridiron foot ball players";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_MongeElkan(benchmark::State& state) {
  const std::string a = "John Ronald Smith";
  const std::string b = "Jon R. Smith";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::MongeElkanLevenshtein(a, b));
  }
}
BENCHMARK(BM_MongeElkan);

void BM_Tokenize(benchmark::State& state) {
  const std::string s = "The Quick Brown Fox; Jumps over 42 lazy-dogs!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Tokenize(s));
  }
}
BENCHMARK(BM_Tokenize);

void BM_TokenizeAndIntern(benchmark::State& state) {
  util::TokenDictionary dict;
  const std::string s = "the quick brown fox jumps over 42 lazy dogs";
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.InternTokens(s));
  }
}
BENCHMARK(BM_TokenizeAndIntern);

void BM_InternHotToken(benchmark::State& state) {
  util::TokenDictionary dict;
  dict.Intern("springfield");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Intern("springfield"));
  }
}
BENCHMARK(BM_InternHotToken);

/// The raw-string kernels re-tokenize and hash per call; the token-id
/// overloads below are what the prepared corpus feeds the hot paths.
void BM_JaccardStrings(benchmark::State& state) {
  const std::vector<std::string> a = {"john", "ronald", "smith"};
  const std::vector<std::string> b = {"jon", "r", "smith"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardStrings);

void BM_JaccardIds(benchmark::State& state) {
  util::TokenDictionary dict;
  const auto a = util::SortedUnique(dict.InternTokens("john ronald smith"));
  const auto b = util::SortedUnique(dict.InternTokens("jon r smith"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardIds);

void BM_MongeElkanIds(benchmark::State& state) {
  util::TokenDictionary dict;
  const auto a = dict.InternTokens("john ronald smith");
  const auto b = dict.InternTokens("jon r smith");
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::MongeElkanLevenshtein(a, b, dict));
  }
}
BENCHMARK(BM_MongeElkanIds);

void BM_CosineBinaryIds(benchmark::State& state) {
  util::TokenDictionary dict;
  const auto a =
      util::SortedUnique(dict.InternTokens("gridiron football player usa"));
  const auto b =
      util::SortedUnique(dict.InternTokens("american football players"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::CosineBinary(a, b));
  }
}
BENCHMARK(BM_CosineBinaryIds);

void BM_ParseDate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(types::ParseDate("September 21, 1987"));
  }
}
BENCHMARK(BM_ParseDate);

void BM_ClassifyCell(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(types::ClassifyCell("1,234,567"));
  }
}
BENCHMARK(BM_ClassifyCell);

void BM_LabelIndexSearch(benchmark::State& state) {
  index::LabelIndex index;
  util::Rng rng(1);
  const char* first[] = {"spring", "oak", "maple", "cedar", "river", "lake"};
  const char* second[] = {"field", "ton", "ville", "burg", "port", "dale"};
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    std::string label = std::string(first[rng.NextBounded(6)]) +
                        second[rng.NextBounded(6)] + " " +
                        std::to_string(i % 97);
    index.Add(i, label);
  }
  index.Build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search("springfield 42", 10));
  }
}
BENCHMARK(BM_LabelIndexSearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CorrelationClustering(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> truth(n);
  for (int i = 0; i < n; ++i) truth[i] = i / 8;  // clusters of 8
  auto sim = [&truth](int i, int j) {
    return truth[i] == truth[j] ? 1.0 : -1.0;
  };
  // Blocks mirror the clusters plus a noise block, as label blocking does.
  std::vector<std::vector<int32_t>> blocks(n);
  for (int i = 0; i < n; ++i) {
    blocks[i] = {truth[i], static_cast<int32_t>(10000 + i % 13)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::ClusterCorrelation(n, sim, blocks));
  }
}
BENCHMARK(BM_CorrelationClustering)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RandomForestPredict(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    x.push_back({rng.NextDouble(), rng.NextDouble(), rng.NextDouble(),
                 rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    y.push_back(x.back()[0] > 0.5 ? 1.0 : -1.0);
  }
  ml::RandomForestRegressor forest;
  forest.Train(x, y, rng);
  const std::vector<double> probe = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(probe));
  }
}
BENCHMARK(BM_RandomForestPredict);

/// Emits one JSON line per benchmark run on stdout (the machine-readable
/// perf trajectory) and a short human-readable line on stderr.
class JsonLineReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::fprintf(stderr, "# %d CPU(s), %.1f MHz\n", context.cpu_info.num_cpus,
                 context.cpu_info.cycles_per_second / 1e6);
    return true;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        std::fprintf(stderr, "# ERROR %s\n", run.benchmark_name().c_str());
        continue;
      }
      bench::EmitResult(run.benchmark_name(), "ns_per_iter", run.GetAdjustedRealTime(), "ns", static_cast<long long>(run.iterations));
      std::fprintf(stderr, "%-40s %12.1f ns\n", run.benchmark_name().c_str(),
                   run.GetAdjustedRealTime());
    }
    std::fflush(stdout);
  }
};

void EmitSeconds(const char* name, double seconds) {
  bench::EmitResult(name, "seconds", seconds, "seconds");
  std::fprintf(stderr, "%-40s %12.3f s\n", name, seconds);
}

/// End-to-end prepared-vs-raw timing. "Raw" means the pipeline receives a
/// corpus it has never seen: Run pays the full PreparedCorpus build
/// (tokenize + intern + typed parses) inside the timed region, which is
/// exactly the work the pre-refactor pipeline re-derived on the fly.
/// "Prepared" reruns on the now-memoized corpus and times the pipeline
/// proper. The standalone PreparedCorpus build is reported separately so
/// the trajectory can watch the one-time pass in isolation.
void RunEndToEndTimings() {
  using namespace ltee;
  synth::DatasetOptions dopt;
  dopt.scale = bench::ScaleOrDefault(0.002);
  dopt.seed = bench::kSeed;
  const auto ds = synth::BuildDataset(dopt);
  std::fprintf(stderr, "# e2e dataset: scale=%g, %zu gold tables\n",
               dopt.scale, ds.gs_corpus.size());

  {
    util::WallTimer timer;
    webtable::PreparedCorpus prepared(ds.gs_corpus);
    EmitSeconds("E2E_PrepareCorpus", timer.ElapsedSeconds());
  }

  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(ds.kb, options);
  util::Rng rng(41);
  pipeline::TrainPipelineOnGold(&pipe, ds.gs_corpus, ds.gold, rng);
  std::vector<kb::ClassId> classes;
  for (const auto& gs : ds.gold) classes.push_back(gs.cls);

  // A fresh copy of the gold corpus: same tables, different identity, so
  // the pipeline's per-corpus memo misses and Run prepares from raw.
  webtable::TableCorpus raw_corpus;
  for (const auto& table : ds.gs_corpus.tables()) raw_corpus.Add(table);

  {
    util::WallTimer timer;
    auto run = pipe.Run(raw_corpus, classes);
    benchmark::DoNotOptimize(run);
    EmitSeconds("E2E_PipelineRunRaw", timer.ElapsedSeconds());
  }
  {
    util::WallTimer timer;
    auto run = pipe.Run(raw_corpus, classes);
    benchmark::DoNotOptimize(run);
    EmitSeconds("E2E_PipelineRunPrepared", timer.ElapsedSeconds());
  }
  {
    // Ledger-enabled rerun on the memoized corpus: the decision-provenance
    // overhead is the delta to E2E_PipelineRunPrepared (the prov design
    // target is < 5% end to end, ~0 when disabled).
    prov::SetEnabled(true);
    prov::Clear();
    util::WallTimer timer;
    auto run = pipe.Run(raw_corpus, classes);
    benchmark::DoNotOptimize(run);
    EmitSeconds("E2E_PipelineRunProvenance", timer.ElapsedSeconds());
    std::fprintf(stderr, "# provenance events recorded: %zu\n",
                 prov::EventCount());
    prov::SetEnabled(false);
    prov::Clear();
  }
  {
    // Sampling-profiler overhead: the same prepared-corpus run with and
    // without 99 Hz SIGPROF sampling. Min-of-3 per mode so machine-load
    // noise doesn't masquerade as overhead, clamped at zero (the
    // sampled run beating the unsampled one is noise, not a speedup).
    // The "pct" unit gates this upward in report_diff against the
    // absolute --min-pct floor: sampling must stay under 3%.
    const double off_seconds = bench::MinWallSeconds(3, [&] {
      auto run = pipe.Run(raw_corpus, classes);
      benchmark::DoNotOptimize(run);
    });
    double on_seconds = off_seconds;
    obsv::ProfilerOptions profiler_options;
    profiler_options.hz = 99;
    std::string error;
    if (obsv::StartProfiler(profiler_options, &error)) {
      on_seconds = bench::MinWallSeconds(3, [&] {
        auto run = pipe.Run(raw_corpus, classes);
        benchmark::DoNotOptimize(run);
      });
      obsv::StopProfiler();
      const obsv::ProfileStats stats = obsv::CurrentProfileStats();
      std::fprintf(stderr, "# profiler: %llu samples, %llu dropped\n",
                   static_cast<unsigned long long>(stats.samples),
                   static_cast<unsigned long long>(stats.dropped));
      obsv::ResetProfiler();
    } else {
      std::fprintf(stderr, "# profiler unavailable: %s\n", error.c_str());
    }
    const double overhead_pct =
        off_seconds > 0.0
            ? std::max(0.0, (on_seconds - off_seconds) / off_seconds * 100.0)
            : 0.0;
    bench::EmitResult("E2E_ProfilerOverhead", "profiler_overhead_pct",
                      overhead_pct, "pct");
    std::fprintf(stderr, "%-40s %12.2f %%\n", "E2E_ProfilerOverhead",
                 overhead_pct);
  }
  {
    // Memory-tracking overhead: the corpus-prepare pass (tokenize +
    // intern + typed parses — the most allocation-dense deterministic
    // work in the pipeline, so a conservative stand-in) with and
    // without the operator-new interposition counters. Counters-only
    // mode: no span attribution and no heap-profiler sampling — exactly
    // the always-on --memtrack cost (span attribution is session-scoped
    // and costs ~3x the bare counters). Gated like the
    // profiler: "pct" unit, <3% budget via the --min-pct floor. On
    // builds without interposition (sanitizer) the enable is a no-op
    // and this measures noise ≈ 0. Deliberately single-threaded and
    // measured in interleaved paired rounds: the tracked delta is ~1 ns
    // per allocation, small enough that thread-pool scheduling noise or
    // clock drift across two back-to-back timing blocks would swamp it.
    const auto one_run = [&] {
      // 5 reps per timed region: one prepare is ~10 ms, too close to
      // scheduler granularity for a percent-level comparison.
      for (int rep = 0; rep < 5; ++rep) {
        webtable::PreparedCorpus prepared(ds.gs_corpus);
        benchmark::DoNotOptimize(prepared);
      }
    };
    // One warm-up in each mode so arena layout (tracked blocks carry a
    // 16-byte header) settles before anything is timed.
    one_run();
    obsv::SetMemTrackingEnabled(true);
    one_run();
    obsv::SetMemTrackingEnabled(false);
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int round = 0; round < 12; ++round) {
      // Alternate which mode runs first: whichever run follows the
      // other inherits a warmer cache/arena, and a fixed order would
      // fold that into the delta. The estimator is the minimum over
      // rounds of the PER-ROUND on/off ratio, not a ratio of two
      // independent global minima: the two modes of a round run
      // adjacently inside the same machine phase (frequency state,
      // page-cache pressure), so a real hook cost inflates every
      // round's ratio and survives the min, while a noise spike — which
      // only ever lands on one side of one round — is filtered out.
      double off_round;
      double on_round;
      if ((round & 1) == 0) {
        off_round = bench::MinWallSeconds(3, one_run);
        obsv::SetMemTrackingEnabled(true);
        on_round = bench::MinWallSeconds(3, one_run);
        obsv::SetMemTrackingEnabled(false);
      } else {
        obsv::SetMemTrackingEnabled(true);
        on_round = bench::MinWallSeconds(3, one_run);
        obsv::SetMemTrackingEnabled(false);
        off_round = bench::MinWallSeconds(3, one_run);
      }
      if (off_round > 0.0) {
        best_ratio = std::min(best_ratio, on_round / off_round);
      }
      std::fprintf(stderr, "# memtrack round %d: off=%.4fs on=%.4fs\n",
                   round, off_round, on_round);
    }
    const obsv::MemtrackTotals totals = obsv::GetMemtrackTotals();
    std::fprintf(stderr,
                 "# memtrack: %llu allocations, %.1f MB cumulative\n",
                 static_cast<unsigned long long>(totals.cum_allocs),
                 static_cast<double>(totals.cum_bytes) / (1024.0 * 1024.0));
    const double overhead_pct =
        std::isfinite(best_ratio)
            ? std::max(0.0, (best_ratio - 1.0) * 100.0)
            : 0.0;
    bench::EmitResult("E2E_MemtrackOverhead", "memtrack_overhead_pct",
                      overhead_pct, "pct");
    std::fprintf(stderr, "%-40s %12.2f %%\n", "E2E_MemtrackOverhead",
                 overhead_pct);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("micro_perf");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  RunEndToEndTimings();
  benchmark::Shutdown();
  return 0;
}
