// Reproduces Table 11: results and evaluation of a system run on all
// tables matched to a class (paper: GF-Player 648,741 rows, 30,074
// existing entities over 24,889 instances (ratio 1.21), 13,983 new
// entities (+67 %) with accuracy 0.60 and fact accuracy 0.95; Song +356 %
// new entities at ratio 1.39; Settlement only +1 % at ratio 1.05 and
// accuracy 0.26). Shape targets: Song >> GF-Player >> Settlement in new
// entities; Song has the worst matching ratio; fact accuracy is high
// (~0.9) everywhere; GF-Player accuracy improves when requiring >= 2 or 3
// facts per entity (paper: 0.60 -> 0.72 -> 0.85).

#include "bench_common.h"
#include "pipeline/profiling.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table11_large_scale_profiling");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  pipeline::ProfilingOptions options;
  util::WallTimer timer;
  auto result = pipeline::RunLargeScaleProfiling(dataset, options);
  const double elapsed = timer.ElapsedSeconds();
  std::printf("# full-corpus run took %.1fs\n\n", elapsed);
  bench::EmitResult("table11", "run_seconds", elapsed, "seconds");

  bench::PrintTitle("Table 11: Results of a system run on all tables "
                    "matched to a class (synthetic)");
  std::printf("%-12s %8s %9s %9s %6s %14s %10s %8s %8s\n", "Class", "Rows",
              "Existing", "Matched", "Ratio", "New Entities", "New Facts",
              "E-Acc", "F-Acc");
  for (const auto& row : result.classes) {
    std::printf("%-12s %8zu %9zu %9zu %6.2f %7zu (%+3.0f%%) %4zu (%+3.0f%%) "
                "%8.2f %8.2f\n",
                bench::ShortClassName(row.class_name).c_str(), row.total_rows,
                row.existing_entities, row.matched_kb_instances,
                row.matching_ratio, row.new_entities,
                100.0 * row.instance_increase, row.new_facts,
                100.0 * row.fact_increase, row.new_entity_accuracy,
                row.new_fact_accuracy);
  }

  std::printf("\naccuracy when requiring a minimum number of facts per new "
              "entity (Section 5):\n");
  for (const auto& row : result.classes) {
    std::printf("  %-12s all=%.2f", bench::ShortClassName(row.class_name).c_str(),
                row.new_entity_accuracy);
    for (const auto& [k, acc] : row.accuracy_with_min_facts) {
      std::printf("  >=%d facts: %.2f", k, acc);
    }
    std::printf("\n");
  }
  std::printf("\npaper: GF-Player 648741/30074/24889/1.21/+67%%/+32%%/"
              "0.60/0.95 (>=2: 0.72, >=3: 0.85); Song ratio 1.39, +356%%, "
              "0.70/0.85; Settlement ratio 1.05, +1%%, 0.26/0.94\n");
  for (const auto& row : result.classes) {
    const std::string cls = bench::ShortClassName(row.class_name);
    bench::EmitResult("table11." + cls, "new_entities", static_cast<double>(row.new_entities), "count");
    bench::EmitResult("table11." + cls, "new_entity_accuracy", row.new_entity_accuracy, "score");
    bench::EmitResult("table11." + cls, "new_fact_accuracy", row.new_fact_accuracy, "score");
  }
  return 0;
}
