// Reproduces Table 7: average clustering performance and metric importance
// for alternative row clustering methods — one additional similarity
// metric per row (paper: LABEL alone PCP/AR/F1 = 0.71/0.83/0.76 rising to
// 0.79/0.87/0.83 with all six metrics; LABEL has the highest importance).

#include "bench_common.h"
#include "rowcluster/row_metrics.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table07_row_clustering_ablation");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Table 7: Average clustering performance and metric "
                    "importance (metrics added one at a time)");
  std::printf("%-16s %8s %8s %8s   %s\n", "Run", "PCP", "AR", "F1",
              "MI (per enabled metric)");
  for (int k = 1; k <= rowcluster::kNumRowMetrics; ++k) {
    util::WallTimer timer;
    auto metrics = experiment.RowClustering(
        rowcluster::FirstKMetrics(k), ml::AggregationKind::kCombined);
    std::string name =
        k == 1 ? std::string(rowcluster::RowMetricName(
                     static_cast<rowcluster::RowMetric>(0)))
               : std::string("+ ") + rowcluster::RowMetricName(
                                         static_cast<rowcluster::RowMetric>(
                                             k - 1));
    std::printf("%-16s %8.2f %8.2f %8.2f  ", name.c_str(),
                metrics.penalized_precision, metrics.average_recall,
                metrics.f1);
    for (double imp : metrics.importances) std::printf(" %.2f", imp);
    std::printf("   (%.0fs)\n", timer.ElapsedSeconds());
    bench::EmitResult("table07.first" + std::to_string(k) + "_metrics", "f1", metrics.f1, "score");
  }
  std::printf("\npaper: 0.71/0.83/0.76 (LABEL) ... 0.79/0.87/0.83 (all six); "
              "MI of full method: 0.33/0.18/0.05/0.21/0.17/0.07\n");
  return 0;
}
