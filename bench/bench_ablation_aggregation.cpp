// Reproduces the Section 3.2 aggregation ablation: the full six-metric
// row clustering with (a) the GA-learned weighted average alone, (b) the
// random forest alone, and (c) the combined approach (paper: F1 = 0.81 /
// 0.82 / 0.83 — the combination wins). Also reports the same ablation for
// new detection (paper Section 3.4: accuracy 0.85 / 0.86 / 0.89).

#include "bench_common.h"
#include "rowcluster/row_metrics.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("ablation_aggregation");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Section 3.2 ablation: score aggregation approaches "
                    "(row clustering, all six metrics)");
  std::printf("%-18s %8s %8s %8s\n", "Aggregation", "PCP", "AR", "F1");
  struct Config {
    ml::AggregationKind kind;
    const char* name;
  };
  const Config configs[] = {
      {ml::AggregationKind::kWeightedAverage, "weighted average"},
      {ml::AggregationKind::kRandomForest, "random forest"},
      {ml::AggregationKind::kCombined, "combined"}};
  for (const auto& config : configs) {
    auto metrics = experiment.RowClustering(
        rowcluster::FirstKMetrics(rowcluster::kNumRowMetrics), config.kind);
    std::printf("%-18s %8.2f %8.2f %8.2f\n", config.name,
                metrics.penalized_precision, metrics.average_recall,
                metrics.f1);
    bench::EmitResult(std::string("ablation_aggregation.") + config.name, "f1", metrics.f1, "score");
  }
  std::printf("\npaper: weighted average F1 0.81, random forest 0.82, "
              "combined 0.83\n");
  return 0;
}
