// Reproduces the Section 6 baseline comparisons head-to-head:
//  (a) set expansion [31-33]: co-occurrence ranking from seed labels,
//      evaluated by precision@k against ground truth (is the returned
//      label a real not-in-KB entity of the class?) — the related work
//      reports P@5 up to 0.94 and MAP 0.63-0.95 while returning a fixed
//      number of names with no descriptions;
//  (b) direct row-to-instance matching [25-27, 4, 21, 34]: rows matched
//      to KB instances without clustering (paper: related work F1
//      0.80-0.87, accuracy 0.83-0.93; the paper's entity-level matching
//      achieves F1 0.83 / accuracy 0.78).

#include <set>
#include <unordered_map>

#include "baselines/row_matching.h"
#include "baselines/set_expansion.h"
#include "bench_common.h"
#include "eval/pipeline_eval.h"
#include "pipeline/gold_artifacts.h"
#include "util/string_util.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("sec6_baselines");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);
  util::Rng rng(17);

  // ---- (a) Set expansion over the full corpus. --------------------------
  bench::PrintTitle("Section 6 baseline: co-occurrence set expansion");
  std::printf("%-14s %8s %8s %8s %10s\n", "Class", "P@5", "P@20", "P@50",
              "returned");
  // Ground-truth label columns (the baseline literature assumes known
  // subject columns).
  std::vector<int> label_columns(dataset.corpus.size(), -1);
  for (size_t t = 0; t < dataset.table_truth.size(); ++t) {
    label_columns[t] = dataset.table_truth[t].label_column;
  }
  baselines::SetExpander expander(dataset.corpus, label_columns);

  for (size_t g = 0; g < dataset.gold.size(); ++g) {
    const int pi = dataset.gold_profile[g];
    // Seeds: five popular KB instances of the class.
    std::vector<std::string> seeds;
    std::unordered_map<std::string, const synth::WorldEntity*> by_label;
    for (int eid : dataset.world.EntitiesOfProfile(pi)) {
      const auto& entity = dataset.world.entity(eid);
      by_label[util::NormalizeLabel(entity.label)] = &entity;
      if (entity.in_kb && seeds.size() < 5) seeds.push_back(entity.label);
    }
    auto expansion = expander.Expand(seeds);
    // A returned label is correct if it names a not-in-KB entity of this
    // class (the set-expansion notion of a "new" set member).
    std::vector<bool> correct;
    for (const auto& candidate : expansion) {
      auto it = by_label.find(candidate.label);
      correct.push_back(it != by_label.end() && !it->second->in_kb);
    }
    auto p_at = [&correct](size_t k) {
      size_t hits = 0, n = std::min(k, correct.size());
      for (size_t i = 0; i < n; ++i) hits += correct[i] ? 1 : 0;
      return n == 0 ? 0.0 : static_cast<double>(hits) / n;
    };
    std::printf("%-14s %8.2f %8.2f %8.2f %10zu\n",
                bench::ShortClassName(
                    dataset.world.profiles()[pi].name).c_str(),
                p_at(5), p_at(20), p_at(50), expansion.size());
  }
  std::printf("\nnote: names only, fixed cut-off, no descriptions — the "
              "limitations Section 6 contrasts with the full pipeline "
              "(see bench_sec6_ranked_eval for the pipeline's MAP/P@k)\n\n");

  // ---- (b) Direct row-to-instance matching on the gold standard. --------
  bench::PrintTitle("Section 6 baseline: direct row-to-instance matching "
                    "(no clustering)");
  auto kb_index = pipeline::BuildKbLabelIndex(dataset.kb);
  baselines::RowInstanceMatcher matcher(dataset.kb, kb_index);
  std::printf("%-14s %8s %8s %8s %10s\n", "Class", "P", "R", "F1",
              "Accuracy");
  double avg_f1 = 0.0, avg_acc = 0.0;
  for (const auto& gs : dataset.gold) {
    auto mapping = pipeline::GoldSchemaMapping(dataset.gs_corpus, gs,
                                               dataset.kb);
    // Gold row -> instance truth (existing clusters only).
    auto truth = pipeline::GoldRowInstances(gs);
    size_t predicted = 0, correct = 0, total_existing = truth.size();
    for (webtable::TableId tid : gs.tables) {
      auto matches =
          matcher.MatchTable(dataset.gs_corpus.table(tid), mapping.of(tid));
      for (const auto& match : matches) {
        if (match.instance == kb::kInvalidInstance) continue;
        ++predicted;
        auto it = truth.find(match.row);
        if (it != truth.end() && it->second == match.instance) ++correct;
      }
    }
    const double p = predicted == 0
                         ? 0.0
                         : static_cast<double>(correct) / predicted;
    const double r = total_existing == 0
                         ? 0.0
                         : static_cast<double>(correct) / total_existing;
    const double f1 = p + r == 0 ? 0.0 : 2 * p * r / (p + r);
    const double acc = r;  // fraction of existing rows correctly resolved
    std::printf("%-14s %8.2f %8.2f %8.2f %10.2f\n",
                bench::ShortClassName(
                    dataset.kb.cls(gs.cls).name).c_str(),
                p, r, f1, acc);
    avg_f1 += f1;
    avg_acc += acc;
  }
  std::printf("%-14s %26.2f %10.2f\n", "Average",
              avg_f1 / dataset.gold.size(), avg_acc / dataset.gold.size());
  bench::EmitResult("sec6_baselines", "avg_f1", avg_f1 / dataset.gold.size(), "score");
  bench::EmitResult("sec6_baselines", "avg_accuracy", avg_acc / dataset.gold.size(), "score");
  std::printf("\npaper: entity-level matching F1 0.83 / accuracy 0.78; "
              "row-level related work F1 0.80-0.87 — entity-level wins "
              "when rows are sparse because clusters pool evidence\n");
  return 0;
}
