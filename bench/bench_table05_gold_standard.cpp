// Reproduces Table 5: overview of the gold standard — tables, attributes,
// rows, existing/new clusters, matched values, value groups, and groups
// where the correct value is present (paper: e.g. GF-Player 192 tables /
// 572 attributes / 358 rows / 81 existing / 19 new / 1207 values / 475
// groups / 444 present).

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table05_gold_standard");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  bench::PrintTitle("Table 5: Overview of the gold standard (synthetic)");
  std::printf("%-12s %7s %6s %5s %9s %5s %8s %7s %9s\n", "Class", "Tables",
              "Attrs", "Rows", "Existing", "New", "Matched", "Groups",
              "Present");
  size_t total_clusters = 0, total_rows = 0, total_groups = 0,
         total_present = 0;
  double total_values = 0;
  for (const auto& gs : dataset.gold) {
    const auto o = gs.Overview(dataset.gs_corpus);
    std::printf("%-12s %7zu %6zu %5zu %9zu %5zu %8zu %7zu %9zu\n",
                bench::ShortClassName(dataset.kb.cls(gs.cls).name).c_str(),
                o.tables, o.attributes, o.rows, o.existing_clusters,
                o.new_clusters, o.matched_values, o.value_groups,
                o.correct_value_present);
    total_clusters += o.existing_clusters + o.new_clusters;
    total_rows += o.rows;
    total_groups += o.value_groups;
    total_present += o.correct_value_present;
    total_values += static_cast<double>(o.matched_values);
  }
  std::printf("\n# per-cluster averages: %.2f rows, %.2f values, "
              "%.2f value groups, %.2f groups with correct value present\n",
              static_cast<double>(total_rows) / total_clusters,
              total_values / total_clusters,
              static_cast<double>(total_groups) / total_clusters,
              static_cast<double>(total_present) / total_clusters);
  bench::EmitResult("table05", "clusters", static_cast<double>(total_clusters), "count");
  bench::EmitResult("table05", "rows_per_cluster", static_cast<double>(total_rows) / total_clusters, "ratio");
  bench::EmitResult("table05", "values_per_cluster", total_values / total_clusters, "count");
  std::printf("paper: 271 clusters, 39%% new; averages 3.42 rows, 7.69 "
              "values, 3.17 groups, 2.88 present\n");
  return 0;
}
