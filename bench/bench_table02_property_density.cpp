// Reproduces Table 2: number of facts and property densities for the
// selected DBpedia properties. The reproduction target is the per-class
// density ordering (e.g. GF-Player birthDate ~0.97 down to draftPick ~0.38)
// and the density levels, which the synthetic KB builder enforces.

#include <algorithm>
#include <vector>

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table02_property_density");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  bench::PrintTitle(
      "Table 2: Number of facts and property densities (synthetic)");
  std::printf("%-14s %-18s %10s %10s %14s\n", "Class", "Property", "Facts",
              "Density", "Paper density");
  for (size_t g = 0; g < dataset.gold.size(); ++g) {
    const int pi = dataset.ProfileOfClass(dataset.gold[g].cls);
    const auto& profile = dataset.world.profiles()[pi];
    // Sort properties by measured fact count, as the paper's table does.
    std::vector<size_t> order(profile.properties.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::vector<kb::PropertyStats> stats(profile.properties.size());
    for (size_t k = 0; k < order.size(); ++k) {
      stats[k] = dataset.kb.StatsOfProperty(dataset.property_ids[pi][k]);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return stats[a].facts > stats[b].facts;
    });
    for (size_t k : order) {
      std::printf("%-14s %-18s %10zu %9.2f%% %13.2f%%\n",
                  bench::ShortClassName(profile.name).c_str(),
                  profile.properties[k].name.c_str(), stats[k].facts,
                  100.0 * stats[k].density,
                  100.0 * profile.properties[k].kb_density);
      bench::EmitResult("table02." + bench::ShortClassName(profile.name) +
                            "." + profile.properties[k].name, "density", stats[k].density, "ratio");
    }
  }
  return 0;
}
