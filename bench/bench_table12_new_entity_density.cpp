// Reproduces Table 12: property densities for new entities returned by the
// full run. Shape targets (paper): densities of new entities are lower
// than the KB densities of Table 2, and the *ordering* changes — for
// GF-Player, table-frequent properties like position/team lead while
// birthDate/birthPlace collapse (0.97 -> 0.18, 0.86 -> 0.009); for Song,
// musicalArtist and runtime lead while writer nearly vanishes.

#include "bench_common.h"
#include "pipeline/profiling.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table12_new_entity_density");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  pipeline::ProfilingOptions options;
  auto result = pipeline::RunLargeScaleProfiling(dataset, options);

  bench::PrintTitle("Table 12: Property densities for new entities returned "
                    "by the full run (synthetic)");
  std::printf("%-12s %-18s %8s %9s %12s\n", "Class", "Property", "Facts",
              "Density", "KB density");
  for (const auto& class_row : result.classes) {
    const int pi = -1;
    (void)pi;
    for (const auto& density : class_row.property_densities) {
      // Find the paper/KB density for comparison.
      double kb_density = 0.0;
      for (const auto& profile : dataset.world.profiles()) {
        if (profile.name != class_row.class_name) continue;
        for (const auto& prop : profile.properties) {
          if (prop.name == density.property) kb_density = prop.kb_density;
        }
      }
      std::printf("%-12s %-18s %8zu %8.2f%% %11.2f%%\n",
                  bench::ShortClassName(class_row.class_name).c_str(),
                  density.property.c_str(), density.facts,
                  100.0 * density.density, 100.0 * kb_density);
      bench::EmitResult("table12." +
                            bench::ShortClassName(class_row.class_name) + "." +
                            density.property, "density", density.density, "ratio");
    }
  }
  std::printf("\npaper (GF-Player): position 65.8%%, team 54.6%%, college "
              "49.0%% lead; birthDate 18.1%%, birthPlace 0.9%% collapse\n");
  return 0;
}
