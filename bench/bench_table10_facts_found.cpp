// Reproduces Table 10: results of the facts-found evaluation per class
// under three component configurations (gold clustering + gold detection,
// gold clustering + system detection, full system) and the three fusion
// scoring approaches VOTING / KBT / MATCHING (paper: e.g. Settlement
// 0.98 -> 0.93 -> 0.91; average ALL/ALL 0.80 for every scoring approach —
// the choice of scoring approach is of low relevance).

#include "bench_common.h"
#include "fusion/entity_creator.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table10_facts_found");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Table 10: Results of the facts found evaluation");
  std::printf("%-12s %-7s %-7s %10s %10s %10s\n", "Class", "Clust.",
              "NewDet.", "F1 VOTING", "F1 KBT", "F1 MATCH");
  const std::array<fusion::ScoringApproach, 3> approaches = {
      fusion::ScoringApproach::kVoting, fusion::ScoringApproach::kKbt,
      fusion::ScoringApproach::kMatching};
  double avg[3] = {0, 0, 0};
  for (int c = 0; c < experiment.num_classes(); ++c) {
    const std::string name = bench::ShortClassName(
        dataset.kb.cls(experiment.gold(c).cls).name);
    struct Config {
      bool gold_clustering, gold_detection;
      const char* label_c;
      const char* label_d;
    };
    const Config configs[] = {{true, true, "GS", "GS"},
                              {true, false, "GS", "ALL"},
                              {false, false, "ALL", "ALL"}};
    for (const auto& config : configs) {
      std::printf("%-12s %-7s %-7s", name.c_str(), config.label_c,
                  config.label_d);
      for (size_t a = 0; a < approaches.size(); ++a) {
        auto result =
            experiment.FactsFound(c, config.gold_clustering,
                                  config.gold_detection, approaches[a]);
        std::printf(" %10.2f", result.f1);
        if (!config.gold_clustering && !config.gold_detection) {
          avg[a] += result.f1;
        }
      }
      std::printf("\n");
    }
  }
  const int n = experiment.num_classes();
  std::printf("%-12s %-7s %-7s %10.2f %10.2f %10.2f\n", "Average", "ALL",
              "ALL", avg[0] / n, avg[1] / n, avg[2] / n);
  for (size_t a = 0; a < approaches.size(); ++a) {
    bench::EmitResult("table10", "avg_f1_approach" + std::to_string(a), avg[a] / n, "score");
  }
  std::printf("\npaper average (ALL/ALL): 0.80/0.80/0.80\n");
  return 0;
}
