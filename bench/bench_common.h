#ifndef LTEE_BENCH_BENCH_COMMON_H_
#define LTEE_BENCH_BENCH_COMMON_H_

// Shared helpers for the per-table reproduction benches. Each bench binary
// regenerates one table or figure of the paper. Absolute numbers depend on
// the synthetic-world scale (LTEE_SCALE env var; defaults below); the
// *shape* of each table — orderings, relative deltas, crossovers — is the
// reproduction target (see EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "obsv/memtrack.h"
#include "pipeline/experiment.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "synth/dataset.h"
#include "util/json.h"
#include "util/timer.h"

namespace ltee::bench {

/// Scale used by gold-standard experiments (Tables 5-10, Section 6).
inline constexpr double kGoldScale = 0.004;
/// Scale used by corpus-wide profiling (Tables 1-4, 11, 12).
inline constexpr double kCorpusScale = 0.01;
inline constexpr uint64_t kSeed = 20190326;

inline double ScaleOrDefault(double fallback) {
  const char* env = std::getenv("LTEE_SCALE");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

inline synth::SyntheticDataset MakeDataset(double default_scale) {
  synth::DatasetOptions options;
  options.scale = ScaleOrDefault(default_scale);
  options.seed = kSeed;
  std::printf("# synthetic dataset: scale=%g seed=%llu\n", options.scale,
              static_cast<unsigned long long>(options.seed));
  util::WallTimer timer;
  auto dataset = synth::BuildDataset(options);
  std::printf("# built in %.1fs: %zu KB instances, %zu corpus tables "
              "(%zu rows), %zu gold tables\n\n",
              timer.ElapsedSeconds(), dataset.kb.num_instances(),
              dataset.corpus.size(), dataset.corpus.TotalRows(),
              dataset.gs_corpus.size());
  return dataset;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

/// Paper's short class names for display.
inline std::string ShortClassName(const std::string& name) {
  if (name == "GridironFootballPlayer") return "GF-Player";
  return name;
}

/// Machine-readable result line shared by every bench binary (the
/// `BENCH_*.json` perf/metric trajectory format):
///   {"bench":"<name>","metric":"<metric>","value":<v>,"unit":"<unit>"}
/// with an optional trailing "iters" field for iteration-normalized
/// metrics. The unit is mandatory so downstream thresholding
/// (tools/bench_history + tools/report_diff) knows whether higher is a
/// regression ("seconds", "ms", "ns") or an improvement ("f1", "ratio",
/// "count", ...). Lines go to stdout; keep human-readable tables around
/// them — trajectory consumers select lines starting with `{"bench"`.
inline void EmitResult(const std::string& bench, const std::string& metric,
                       double value, const std::string& unit,
                       long long iters = -1) {
  std::string line = "{\"bench\":";
  line += util::JsonQuote(bench);
  line += ",\"metric\":";
  line += util::JsonQuote(metric);
  line += ",\"value\":";
  util::AppendJsonNumber(&line, value);
  line += ",\"unit\":";
  line += util::JsonQuote(unit);
  if (iters >= 0) {
    line += ",\"iters\":";
    line += std::to_string(iters);
  }
  line += "}";
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

/// Runs `fn` `runs` times and returns the minimum wall-clock seconds.
/// The minimum is the standard noise-resistant estimator for comparing
/// two variants of the same work on a loaded machine: external load only
/// ever inflates a run, so the fastest observation is the closest to the
/// true cost of each variant.
template <typename Fn>
double MinWallSeconds(int runs, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < runs; ++i) {
    util::WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// Emits one `{"bench":<name>,"metric":"wall_ms",...}` line when it goes
/// out of scope, timed on the steady (monotonic) clock. Every bench
/// binary declares one at the top of main so the whole-binary wall time
/// lands in the trajectory with a consistent name and unit. Also emits
/// the binary's peak RSS (`peak_rss_mb`, unit "mb") so the bench history
/// tracks a memory trajectory alongside the time one — report_diff gates
/// "mb" upward once past its --min-mb floor.
class ScopedWallClock {
 public:
  explicit ScopedWallClock(std::string bench) : bench_(std::move(bench)) {}
  ~ScopedWallClock() {
    EmitResult(bench_, "wall_ms", timer_.ElapsedMillis(), "ms");
    const uint64_t peak_rss = obsv::ReadPeakRssBytes();
    if (peak_rss > 0) {
      EmitResult(bench_, "peak_rss_mb",
                 static_cast<double>(peak_rss) / (1024.0 * 1024.0), "mb");
    }
  }
  ScopedWallClock(const ScopedWallClock&) = delete;
  ScopedWallClock& operator=(const ScopedWallClock&) = delete;

 private:
  std::string bench_;
  util::WallTimer timer_;
};

}  // namespace ltee::bench

#endif  // LTEE_BENCH_BENCH_COMMON_H_
