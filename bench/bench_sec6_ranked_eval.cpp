// Reproduces the Section 6 comparisons:
//  - set expansion: ranked evaluation of new entities, ranked by distance
//    to the closest existing instance (paper: MAP@256 = 0.88, P@5 = 0.84,
//    P@20 = 0.78);
//  - identity resolution: matching gold clusters of *existing* instances
//    to the KB (paper: F1 = 0.83, accuracy = 0.78).

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("sec6_ranked_eval");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Section 6: ranked evaluation vs. set expansion");
  util::WallTimer timer;
  auto ranked = experiment.RankedNewEntities(256);
  std::printf("MAP@256 = %.2f   P@5 = %.2f   P@20 = %.2f   (%.0fs)\n",
              ranked.map, ranked.p_at_5, ranked.p_at_20,
              timer.ElapsedSeconds());
  bench::EmitResult("sec6_ranked_eval", "map_at_256", ranked.map, "score");
  bench::EmitResult("sec6_ranked_eval", "p_at_5", ranked.p_at_5, "score");
  bench::EmitResult("sec6_ranked_eval", "p_at_20", ranked.p_at_20, "score");
  std::printf("paper: MAP@256 = 0.88, P@5 = 0.84, P@20 = 0.78 "
              "(related work: MAP 0.63-0.95)\n\n");

  bench::PrintTitle("Section 6: matching rows to existing KB instances");
  auto matching = experiment.ExistingInstanceMatching();
  std::printf("F1 = %.2f   accuracy = %.2f\n", matching.f1, matching.accuracy);
  bench::EmitResult("sec6_ranked_eval", "matching_f1", matching.f1, "score");
  bench::EmitResult("sec6_ranked_eval", "matching_accuracy", matching.accuracy, "score");
  std::printf("paper: F1 = 0.83 (related work 0.80-0.87), accuracy = 0.78 "
              "(related work 0.83-0.93)\n");
  return 0;
}
