// Reproduces Table 8: average performance and metric importance for
// alternative new detection methods, adding one entity-to-instance metric
// at a time (paper: LABEL alone ACC/F1Existing/F1New = 0.69/0.66/0.67,
// rising to 0.89/0.88/0.88 with all six metrics).

#include "bench_common.h"
#include "newdetect/new_detector.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table08_new_detection_ablation");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Table 8: Average performance and metric importance for "
                    "alternative new detection methods");
  std::printf("%-16s %8s %12s %8s   %s\n", "Run", "ACC", "F1Existing",
              "F1New", "MI (per enabled metric)");
  for (int k = 1; k <= newdetect::kNumEntityMetrics; ++k) {
    util::WallTimer timer;
    auto metrics =
        experiment.NewDetection(newdetect::FirstKEntityMetrics(k));
    std::string name =
        k == 1 ? std::string(newdetect::EntityMetricName(
                     static_cast<newdetect::EntityMetric>(0)))
               : std::string("+ ") +
                     newdetect::EntityMetricName(
                         static_cast<newdetect::EntityMetric>(k - 1));
    std::printf("%-16s %8.2f %12.2f %8.2f  ", name.c_str(), metrics.accuracy,
                metrics.f1_existing, metrics.f1_new);
    for (double imp : metrics.importances) std::printf(" %.2f", imp);
    std::printf("   (%.0fs)\n", timer.ElapsedSeconds());
    bench::EmitResult("table08.first" + std::to_string(k) + "_metrics", "accuracy", metrics.accuracy, "score");
  }
  std::printf("\npaper: 0.69/0.66/0.67 (LABEL) ... 0.89/0.88/0.88 (all six); "
              "MI of full method: 0.20/0.26/0.17/0.20/0.11/0.06\n");
  return 0;
}
