// Quality-drift trajectory bench: runs the fixed-seed pipeline (with the
// decision-provenance ledger enabled and the post-run stages applied, the
// same shape as `ltee_cli run --dedup`) and emits the derived ltee.prov.*
// quality signals as trajectory lines. The `_rate` gauges carry unit
// "rate", which tools/report_diff gates upward against
// --quality-threshold — so a change that silently degrades decision
// quality (more single-source facts, more fusion conflicts, more
// near-threshold cluster memberships) fails the bench_regression gate
// even when every wall time improved. Counts and the per-class
// NEW/EXISTING ratios ride along informationally.

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pipeline/dedup.h"
#include "pipeline/kb_update.h"
#include "pipeline/slot_filling.h"
#include "prov/ledger.h"
#include "util/metrics.h"

namespace {

using namespace ltee;

bool StartsWith(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& name, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

}  // namespace

int main() {
  bench::ScopedWallClock wall_clock("prov_quality");
  auto dataset = bench::MakeDataset(0.002);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(dataset.kb, options);
  util::Rng rng(41);
  pipeline::TrainPipelineOnGold(&pipe, dataset.gs_corpus, dataset.gold, rng);

  // Ledger on only for the measured run — training probes would pollute
  // the decision counts.
  prov::SetEnabled(true);
  prov::Clear();

  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  auto run = pipe.Run(dataset.corpus, classes);

  // Post-run stages, matching the CLI: dedup, slot filling, KB update.
  for (auto& class_run : run.classes) {
    auto deduped = pipeline::DeduplicateEntities(
        std::move(class_run.entities), std::move(class_run.detections));
    auto fills = pipeline::FillSlots(dataset.kb, deduped.entities,
                                     deduped.detections);
    pipeline::ApplySlotFills(&dataset.kb, fills.new_facts);
    pipeline::AddNewEntitiesToKb(&dataset.kb, deduped.entities,
                                 deduped.detections, {});
  }
  prov::RefreshQualityGauges();

  const auto snapshot = util::Metrics().Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (!StartsWith(name, "ltee.prov.")) continue;
    bench::EmitResult("prov_quality", name, static_cast<double>(value),
                      "count");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (!StartsWith(name, "ltee.prov.")) continue;
    const char* unit = EndsWith(name, "_rate")
                           ? "rate"
                           : (name.find("ratio") != std::string::npos
                                  ? "ratio"
                                  : "gauge");
    bench::EmitResult("prov_quality", name, value, unit);
  }
  bench::EmitResult("prov_quality", "ledger_events",
                    static_cast<double>(prov::EventCount()), "count");
  return 0;
}
