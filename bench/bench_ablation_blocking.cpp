// Reproduces the Section 3.2 blocking claim: the label-based blocking
// yields no decrease in clustering F1 while drastically reducing the
// number of comparisons ("the blocking yields no decrease in F1, which
// shows that it is an effective approach with minimal loss in recall").

#include "bench_common.h"
#include "rowcluster/row_metrics.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("ablation_blocking");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kGoldScale);

  pipeline::GoldExperiment experiment(dataset.kb, dataset.gs_corpus,
                                      dataset.gold);

  bench::PrintTitle("Section 3.2 ablation: blocking on/off "
                    "(row clustering, all six metrics, combined aggregation)");
  std::printf("%-14s %8s %8s %8s %10s\n", "Blocking", "PCP", "AR", "F1",
              "Time");
  for (bool blocking : {true, false}) {
    util::WallTimer timer;
    auto metrics = experiment.RowClustering(
        rowcluster::FirstKMetrics(rowcluster::kNumRowMetrics),
        ml::AggregationKind::kCombined, blocking);
    std::printf("%-14s %8.2f %8.2f %8.2f %9.1fs\n",
                blocking ? "enabled" : "disabled",
                metrics.penalized_precision, metrics.average_recall,
                metrics.f1, timer.ElapsedSeconds());
    const std::string name =
        std::string("ablation_blocking.") + (blocking ? "enabled" : "disabled");
    bench::EmitResult(name, "f1", metrics.f1, "score");
    bench::EmitResult(name, "seconds", timer.ElapsedSeconds(), "seconds");
  }
  std::printf("\npaper: blocking yields no decrease in F1\n");
  return 0;
}
