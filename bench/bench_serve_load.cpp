// Serving-layer load bench: builds a snapshot of the synthetic KB, then
// drives serve::QueryEngine with a multi-threaded closed-loop workload
// (60% entity-by-id, 30% label search, 10% class listing — roughly the
// read mix of an entity-lookup service) and emits throughput plus
// latency percentiles as trajectory lines.
//
// The units are what make this a gate: "ops_s" regresses downward and
// the "ms_p50"/"ms_p95"/"ms_p99" percentiles regress upward in
// tools/report_diff (above the --min-latency-ms noise floor), so a
// change that tanks serving latency fails `bench_regression` like a
// pipeline slowdown would. The cache hit ratio rides along
// informationally.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/metrics.h"

namespace {

using namespace ltee;

constexpr size_t kThreads = 4;
constexpr size_t kOpsPerThread = 2000;

/// Percentile of a sorted latency vector (nearest-rank).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[rank];
}

}  // namespace

int main() {
  bench::ScopedWallClock wall_clock("serve_load");
  auto dataset = bench::MakeDataset(0.002);

  auto snapshot = serve::Snapshot::Build(dataset.kb,
                                         {.version = 1, .num_shards = 4});
  serve::QueryEngine engine;
  engine.Publish(snapshot);
  std::printf("# serving %zu entities, %zu classes, %zu facts\n",
              snapshot->num_entities(), snapshot->num_classes(),
              snapshot->num_facts());

  // A fixed pool of search queries drawn from entity labels, so search
  // traffic hits real postings (deterministic: entity order is fixed).
  std::vector<std::string> queries;
  for (size_t i = 0; i < snapshot->num_entities() && queries.size() < 64;
       i += 7) {
    const auto* entity = snapshot->entity(static_cast<kb::InstanceId>(i));
    if (entity != nullptr && !entity->labels.empty()) {
      queries.push_back(entity->labels[0]);
    }
  }
  if (queries.empty()) queries.push_back("entity");
  const size_t num_entities = std::max<size_t>(1, snapshot->num_entities());

  const auto& hits = util::Metrics().GetCounter("ltee.serve.cache.hits");
  const auto& misses = util::Metrics().GetCounter("ltee.serve.cache.misses");
  const uint64_t hits_before = hits.value();
  const uint64_t misses_before = misses.value();

  std::vector<std::vector<double>> latencies_ms(kThreads);
  const auto load_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &engine, &queries, &latencies_ms,
                          num_entities] {
      auto& out = latencies_ms[t];
      out.reserve(kOpsPerThread);
      // Cheap deterministic per-thread op stream (splitmix-style hash).
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        state += 0x9e3779b97f4a7c15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const auto begin = std::chrono::steady_clock::now();
        const uint64_t kind = z % 10;
        if (kind < 6) {
          engine.EntityById(static_cast<int64_t>((z >> 8) % num_entities));
        } else if (kind < 9) {
          engine.Search(queries[(z >> 8) % queries.size()], 10);
        } else {
          engine.Classes();
        }
        out.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_start)
          .count();

  std::vector<double> all;
  all.reserve(kThreads * kOpsPerThread);
  for (const auto& per_thread : latencies_ms) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  const auto total_ops = static_cast<long long>(all.size());
  const double ops_s =
      load_seconds > 0.0 ? static_cast<double>(total_ops) / load_seconds
                         : 0.0;
  const uint64_t hit_delta = hits.value() - hits_before;
  const uint64_t miss_delta = misses.value() - misses_before;
  const double hit_ratio =
      hit_delta + miss_delta > 0
          ? static_cast<double>(hit_delta) /
                static_cast<double>(hit_delta + miss_delta)
          : 0.0;

  std::printf("# %lld ops over %zu threads in %.3fs\n", total_ops, kThreads,
              load_seconds);
  bench::EmitResult("serve_load", "throughput", ops_s, "ops_s", total_ops);
  bench::EmitResult("serve_load", "latency_p50", Percentile(all, 0.50),
                    "ms_p50", total_ops);
  bench::EmitResult("serve_load", "latency_p95", Percentile(all, 0.95),
                    "ms_p95", total_ops);
  bench::EmitResult("serve_load", "latency_p99", Percentile(all, 0.99),
                    "ms_p99", total_ops);
  bench::EmitResult("serve_load", "cache_hit_ratio", hit_ratio, "ratio");
  return 0;
}
