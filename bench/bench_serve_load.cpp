// Serving-layer load bench: builds a snapshot of the synthetic KB, then
// drives serve::QueryEngine with a multi-threaded closed-loop workload
// (60% entity-by-id, 30% label search, 10% class listing — roughly the
// read mix of an entity-lookup service) and emits throughput plus
// latency percentiles as trajectory lines.
//
// The units are what make this a gate: "ops_s" regresses downward and
// the "ms_p50"/"ms_p95"/"ms_p99" percentiles regress upward in
// tools/report_diff (above the --min-latency-ms noise floor), so a
// change that tanks serving latency fails `bench_regression` like a
// pipeline slowdown would. The cache hit ratio rides along
// informationally.
//
// A second, ungated phase then serves the same engine over HTTP and
// verifies the request-observability contract end to end: every /kb/*
// response carries a traceparent whose trace id shows up in the access
// log and the exported request trace, and GET /stats reports a rolling
// window consistent with the traffic just driven (exact request count,
// plausible QPS and percentiles). A broken contract exits non-zero; the
// emitted numbers use informational units so report_diff never gates
// them.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obsv/access_log.h"
#include "obsv/http_client.h"
#include "obsv/status_server.h"
#include "serve/kb_endpoints.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/json_parse.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

using namespace ltee;

constexpr size_t kThreads = 4;
constexpr size_t kOpsPerThread = 2000;

/// Percentile of a sorted latency vector (nearest-rank).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[rank];
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "bench_serve_load: FAIL: %s\n", message.c_str());
  return 1;
}

/// Trace id of a `00-<trace>-<span>-<flags>` traceparent, "" when the
/// header does not have that shape.
std::string TraceIdOf(const std::string& traceparent) {
  if (traceparent.size() < 35 || traceparent[2] != '-' ||
      traceparent[35] != '-') {
    return "";
  }
  return traceparent.substr(3, 32);
}

/// HTTP phase: drives /kb/* through a live server and checks the
/// observability contract. Returns 0 on success.
int VerifyHttpObservability(serve::QueryEngine* engine, size_t num_entities) {
  util::trace::SetEnabled(true);
  util::trace::Clear();

  obsv::StatusServer server(4);
  serve::RegisterKbEndpoints(&server.http(), engine);
  std::string error;
  if (!server.Start(0, &error)) {
    return Fail("status server did not start: " + error);
  }

  constexpr size_t kHttpOps = 200;
  const size_t log_baseline = obsv::GlobalAccessLog().total_recorded();
  std::vector<std::string> trace_ids;
  trace_ids.reserve(kHttpOps);
  std::vector<double> http_ms;
  http_ms.reserve(kHttpOps);
  const auto http_start = std::chrono::steady_clock::now();
  for (size_t op = 0; op < kHttpOps; ++op) {
    const std::string path =
        "/kb/entity?id=" + std::to_string(op % num_entities);
    int status = 0;
    std::string body, response_traceparent;
    const auto begin = std::chrono::steady_clock::now();
    if (!obsv::HttpGet(server.port(), path, obsv::HttpGetOptions{}, &status,
                       &body, &response_traceparent, &error)) {
      return Fail("GET " + path + " failed: " + error);
    }
    http_ms.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count());
    const std::string trace_id = TraceIdOf(response_traceparent);
    if (trace_id.empty()) {
      return Fail("GET " + path + " response carries no traceparent (got '" +
                  response_traceparent + "')");
    }
    trace_ids.push_back(trace_id);
  }
  const double http_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    http_start)
          .count();

  // The server records a request's access entry after the response has
  // been written, so the client can observe the body before the entry
  // lands. Bounded wait for the worker pool to drain the tail.
  for (int spins = 0;
       obsv::GlobalAccessLog().total_recorded() - log_baseline < kHttpOps &&
       spins < 2000;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Every response's trace id must be in the access log...
  const auto entries = obsv::GlobalAccessLog().Entries();
  for (const std::string& trace_id : trace_ids) {
    bool found = false;
    for (const auto& entry : entries) {
      if (entry.trace_id == trace_id) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Fail("trace id " + trace_id + " missing from access log");
    }
  }
  if (obsv::GlobalAccessLog().total_recorded() - log_baseline < kHttpOps) {
    return Fail("access log recorded fewer entries than requests sent");
  }

  // ...and in the exported request trace (http.request span args).
  const std::string trace = util::trace::ExportChromeTrace();
  if (trace.find("\"http.request\"") == std::string::npos) {
    return Fail("exported trace contains no http.request span");
  }
  for (const std::string& trace_id : trace_ids) {
    if (trace.find(trace_id) == std::string::npos) {
      return Fail("trace id " + trace_id + " missing from exported trace");
    }
  }

  // /stats must reflect exactly the traffic just driven: the count is
  // precise (nothing else speaks HTTP in this process and the /stats
  // request itself is only recorded after its response is rendered);
  // QPS and the percentiles are bounded rather than matched exactly.
  int status = 0;
  std::string body;
  if (!obsv::HttpGet(server.port(), "/stats", &status, &body, &error) ||
      status != 200) {
    return Fail("GET /stats failed: " + error);
  }
  server.Stop();

  util::JsonValue stats;
  if (!util::ParseJson(body, &stats, &error)) {
    return Fail("/stats body is not JSON: " + error);
  }
  const util::JsonValue* window = stats.Find("window");
  const util::JsonValue* latency =
      window != nullptr ? window->Find("latency_ms") : nullptr;
  if (window == nullptr || latency == nullptr) {
    return Fail("/stats missing window.latency_ms: " + body);
  }
  const double stats_requests = window->NumberOr("requests", -1);
  if (stats_requests != static_cast<double>(kHttpOps)) {
    return Fail("/stats window.requests = " +
                std::to_string(stats_requests) + ", expected " +
                std::to_string(kHttpOps));
  }
  const double qps = window->NumberOr("qps", 0);
  // The window covers whole seconds, so the reported rate can sit below
  // the burst rate but never below count/window and never above count.
  if (qps <= 0 || qps > static_cast<double>(kHttpOps)) {
    return Fail("/stats qps implausible: " + std::to_string(qps));
  }
  std::sort(http_ms.begin(), http_ms.end());
  const double client_max = http_ms.back();
  const double p50 = latency->NumberOr("p50", -1);
  const double p95 = latency->NumberOr("p95", -1);
  const double p99 = latency->NumberOr("p99", -1);
  if (p50 < 0 || p95 < p50 || p99 < p95) {
    return Fail("/stats percentiles not ordered: p50=" +
                std::to_string(p50) + " p95=" + std::to_string(p95) +
                " p99=" + std::to_string(p99));
  }
  // Server-side time is a subset of client-observed time; 2x + 5ms of
  // slack absorbs bucket-boundary interpolation on a near-idle box.
  if (p99 > client_max * 2.0 + 5.0) {
    return Fail("/stats p99 " + std::to_string(p99) +
                " ms exceeds client-observed max " +
                std::to_string(client_max) + " ms");
  }

  std::printf("# http phase: %zu traced requests in %.3fs, "
              "stats qps %.1f, p95 %.3f ms (client p95 %.3f ms)\n",
              kHttpOps, http_seconds, qps, p95,
              Percentile(http_ms, 0.95));
  bench::EmitResult("serve_load", "http_traced_requests",
                    static_cast<double>(kHttpOps), "count",
                    static_cast<long long>(kHttpOps));
  bench::EmitResult("serve_load", "http_stats_p95", p95, "info_ms",
                    static_cast<long long>(kHttpOps));
  return 0;
}

}  // namespace

int main() {
  bench::ScopedWallClock wall_clock("serve_load");
  auto dataset = bench::MakeDataset(0.002);

  auto snapshot = serve::Snapshot::Build(dataset.kb,
                                         {.version = 1, .num_shards = 4});
  serve::QueryEngine engine;
  engine.Publish(snapshot);
  std::printf("# serving %zu entities, %zu classes, %zu facts\n",
              snapshot->num_entities(), snapshot->num_classes(),
              snapshot->num_facts());

  // A fixed pool of search queries drawn from entity labels, so search
  // traffic hits real postings (deterministic: entity order is fixed).
  std::vector<std::string> queries;
  for (size_t i = 0; i < snapshot->num_entities() && queries.size() < 64;
       i += 7) {
    const auto* entity = snapshot->entity(static_cast<kb::InstanceId>(i));
    if (entity != nullptr && !entity->labels.empty()) {
      queries.push_back(entity->labels[0]);
    }
  }
  if (queries.empty()) queries.push_back("entity");
  const size_t num_entities = std::max<size_t>(1, snapshot->num_entities());

  const auto& hits = util::Metrics().GetCounter("ltee.serve.cache.hits");
  const auto& misses = util::Metrics().GetCounter("ltee.serve.cache.misses");
  const uint64_t hits_before = hits.value();
  const uint64_t misses_before = misses.value();

  std::vector<std::vector<double>> latencies_ms(kThreads);
  const auto load_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &engine, &queries, &latencies_ms,
                          num_entities] {
      auto& out = latencies_ms[t];
      out.reserve(kOpsPerThread);
      // Cheap deterministic per-thread op stream (splitmix-style hash).
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        state += 0x9e3779b97f4a7c15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const auto begin = std::chrono::steady_clock::now();
        const uint64_t kind = z % 10;
        if (kind < 6) {
          engine.EntityById(static_cast<int64_t>((z >> 8) % num_entities));
        } else if (kind < 9) {
          engine.Search(queries[(z >> 8) % queries.size()], 10);
        } else {
          engine.Classes();
        }
        out.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begin)
                          .count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_start)
          .count();

  std::vector<double> all;
  all.reserve(kThreads * kOpsPerThread);
  for (const auto& per_thread : latencies_ms) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  const auto total_ops = static_cast<long long>(all.size());
  const double ops_s =
      load_seconds > 0.0 ? static_cast<double>(total_ops) / load_seconds
                         : 0.0;
  const uint64_t hit_delta = hits.value() - hits_before;
  const uint64_t miss_delta = misses.value() - misses_before;
  const double hit_ratio =
      hit_delta + miss_delta > 0
          ? static_cast<double>(hit_delta) /
                static_cast<double>(hit_delta + miss_delta)
          : 0.0;

  std::printf("# %lld ops over %zu threads in %.3fs\n", total_ops, kThreads,
              load_seconds);
  bench::EmitResult("serve_load", "throughput", ops_s, "ops_s", total_ops);
  bench::EmitResult("serve_load", "latency_p50", Percentile(all, 0.50),
                    "ms_p50", total_ops);
  bench::EmitResult("serve_load", "latency_p95", Percentile(all, 0.95),
                    "ms_p95", total_ops);
  bench::EmitResult("serve_load", "latency_p99", Percentile(all, 0.99),
                    "ms_p99", total_ops);
  bench::EmitResult("serve_load", "cache_hit_ratio", hit_ratio, "ratio");

  // The observability contract is part of what this bench certifies:
  // run the HTTP phase after the measured load so it cannot perturb the
  // gated numbers above.
  return VerifyHttpObservability(&engine, num_entities);
}
