// Reproduces Table 3: characteristics of the web table corpus (paper:
// rows avg 10.37 / median 2 / min 1 / max 35,640; columns avg 3.48 /
// median 3 / min 2 / max 713). The synthetic corpus reproduces the shape:
// heavy-tailed row counts with a low median, narrow column counts.

#include "bench_common.h"

int main() {
  // Whole-binary wall time for the perf trajectory (steady clock).
  ltee::bench::ScopedWallClock wall_clock("table03_corpus_stats");
  using namespace ltee;
  auto dataset = bench::MakeDataset(bench::kCorpusScale);

  bench::PrintTitle("Table 3: Characteristics of the web table corpus "
                    "(synthetic)");
  const auto stats = dataset.corpus.Stats();
  std::printf("%-10s %10s %10s %8s %8s\n", "", "Average", "Median", "Min",
              "Max");
  std::printf("%-10s %10.2f %10.1f %8.0f %8.0f\n", "Rows", stats.rows.average,
              stats.rows.median, stats.rows.min, stats.rows.max);
  std::printf("%-10s %10.2f %10.1f %8.0f %8.0f\n", "Columns",
              stats.columns.average, stats.columns.median, stats.columns.min,
              stats.columns.max);
  std::printf("\n# %zu tables, %zu rows total\n", stats.num_tables,
              dataset.corpus.TotalRows());
  bench::EmitResult("table03", "rows_average", stats.rows.average, "ratio");
  bench::EmitResult("table03", "rows_median", stats.rows.median, "ratio");
  bench::EmitResult("table03", "columns_average", stats.columns.average, "ratio");
  bench::EmitResult("table03", "columns_median", stats.columns.median, "ratio");
  std::printf("paper: rows 10.37/2/1/35640, columns 3.48/3/2/713\n");
  return 0;
}
