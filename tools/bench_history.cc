// Perf-trajectory runner: executes bench binaries (the ones emitting
// bench::EmitResult JSON lines on stdout), collects every result line and
// appends one commit-stamped entry to a history file — the `BENCH_history
// .json` perf/metric trajectory that tools/report_diff gates on.
//
// Usage:
//   bench_history [--bench-dir DIR] [--out FILE] [--commit SHA]
//                 [--benches a,b,c] [--quick] [--scale S] [--label L]
//
// --bench-dir  directory holding the bench_* binaries (default: bench)
// --out        history file, one JSON object per line
//              (default: BENCH_history.json)
// --commit     commit stamp (default: `git rev-parse --short HEAD`,
//              "unknown" when not in a git checkout); the entry also
//              records whether the work tree was dirty at run time, so a
//              trajectory point taken from uncommitted code is never
//              mistaken for the commit it names
// --benches    comma-separated bench names without the bench_ prefix
//              (default: a fast representative set; see kQuickSet)
// --quick      small synthetic scale (LTEE_SCALE=0.002) + the quick set —
//              cheap enough for a CI gate
// --scale      explicit LTEE_SCALE for the child processes
// --label      free-form label recorded in the entry (e.g. "quick")
//
// Entry schema (one line):
//   {"commit":"<sha>","dirty":<bool>,"unix_time":<s>,"label":"..",
//    "results":[
//     {"bench":"..","metric":"..","value":..,"unit":"..",("iters":..)},..]}
//
// Exit: 0 when every bench ran and produced at least one result line,
// 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/json_parse.h"

namespace {

using ltee::util::JsonValue;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = std::string("1");
    }
  }
  return flags;
}

/// Fast benches covering counts, shape statistics and wall time — the CI
/// quick gate. Pipeline-heavy benches (fig1, table11) are deliberately
/// not in it; run them explicitly via --benches for deeper trajectories.
/// The micro_perf entry filters out the google-benchmark kernels (they
/// take ~20s and their ns_per_iter numbers are too jittery to gate) and
/// keeps only the end-to-end phase, whose profiler_overhead_pct this set
/// exists to watch.
const char* const kQuickSet[] = {"table03_corpus_stats",
                                 "table05_gold_standard",
                                 "prov_quality",
                                 "serve_load",
                                 "delta_ingest",
                                 "micro_perf --benchmark_filter=NONE"};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Runs `command`, captures stdout. Returns false when the process could
/// not be started or exited non-zero.
bool RunAndCapture(const std::string& command, std::string* output) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output->append(buf, n);
  }
  return pclose(pipe) == 0;
}

std::string DetectCommit() {
  std::string out;
  if (RunAndCapture("git rev-parse --short HEAD 2>/dev/null", &out)) {
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    if (!out.empty()) return out;
  }
  return "unknown";
}

/// True when the work tree has uncommitted changes (any `git status
/// --porcelain` output). A failing git (not a checkout) counts as clean —
/// the commit stamp is "unknown" then anyway.
bool DetectDirty() {
  std::string out;
  if (!RunAndCapture("git status --porcelain 2>/dev/null", &out)) {
    return false;
  }
  return out.find_first_not_of(" \t\r\n") != std::string::npos;
}

/// Re-serializes one parsed result line canonically so the history file
/// never inherits formatting quirks from a bench binary.
bool AppendResult(const JsonValue& line, std::string* out) {
  const JsonValue* bench = line.Find("bench");
  const JsonValue* metric = line.Find("metric");
  const JsonValue* value = line.Find("value");
  if (bench == nullptr || !bench->is_string() || metric == nullptr ||
      !metric->is_string() || value == nullptr || !value->is_number()) {
    return false;
  }
  out->append("{\"bench\":");
  out->append(ltee::util::JsonQuote(bench->as_string()));
  out->append(",\"metric\":");
  out->append(ltee::util::JsonQuote(metric->as_string()));
  out->append(",\"value\":");
  ltee::util::AppendJsonNumber(out, value->as_number());
  out->append(",\"unit\":");
  out->append(ltee::util::JsonQuote(line.StringOr("unit", "unknown")));
  if (const JsonValue* iters = line.Find("iters");
      iters != nullptr && iters->is_number()) {
    out->append(",\"iters\":");
    out->append(
        std::to_string(static_cast<long long>(iters->as_number())));
  }
  out->push_back('}');
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  const bool quick = flags.count("quick") > 0;
  const std::string bench_dir =
      flags.count("bench-dir") ? flags.at("bench-dir") : "bench";
  const std::string out_path =
      flags.count("out") ? flags.at("out") : "BENCH_history.json";
  const std::string commit =
      flags.count("commit") ? flags.at("commit") : DetectCommit();
  const bool dirty = DetectDirty();
  const std::string label =
      flags.count("label") ? flags.at("label") : (quick ? "quick" : "");

  std::vector<std::string> benches;
  if (flags.count("benches")) {
    benches = SplitCommas(flags.at("benches"));
  } else {
    for (const char* name : kQuickSet) benches.emplace_back(name);
  }

  std::string scale;
  if (flags.count("scale")) {
    scale = flags.at("scale");
  } else if (quick) {
    scale = "0.002";
  }

  std::string results;
  size_t num_results = 0;
  bool ok = true;
  for (const std::string& bench : benches) {
    std::string command;
    if (!scale.empty()) command += "LTEE_SCALE=" + scale + " ";
    command += bench_dir + "/bench_" + bench + " 2>/dev/null";
    std::fprintf(stderr, "bench_history: running %s\n", command.c_str());
    std::string output;
    if (!RunAndCapture(command, &output)) {
      std::fprintf(stderr, "bench_history: FAILED: %s\n", command.c_str());
      ok = false;
      continue;
    }
    size_t parsed_here = 0;
    size_t start = 0;
    while (start < output.size()) {
      size_t end = output.find('\n', start);
      if (end == std::string::npos) end = output.size();
      const std::string line = output.substr(start, end - start);
      start = end + 1;
      if (line.rfind("{\"bench\"", 0) != 0) continue;
      JsonValue parsed;
      std::string error;
      if (!ltee::util::ParseJson(line, &parsed, &error)) {
        std::fprintf(stderr, "bench_history: bad result line (%s): %s\n",
                     error.c_str(), line.c_str());
        ok = false;
        continue;
      }
      if (num_results > 0) results.push_back(',');
      if (AppendResult(parsed, &results)) {
        ++num_results;
        ++parsed_here;
      } else {
        std::fprintf(stderr, "bench_history: incomplete result line: %s\n",
                     line.c_str());
        ok = false;
      }
    }
    if (parsed_here == 0) {
      std::fprintf(stderr, "bench_history: no result lines from %s\n",
                   bench.c_str());
      ok = false;
    }
  }

  if (num_results == 0) {
    std::fprintf(stderr, "bench_history: nothing to record\n");
    return 1;
  }

  std::string entry = "{\"commit\":";
  entry += ltee::util::JsonQuote(commit);
  entry += ",\"dirty\":";
  entry += dirty ? "true" : "false";
  entry += ",\"unix_time\":";
  entry += std::to_string(static_cast<long long>(std::time(nullptr)));
  if (!label.empty()) {
    entry += ",\"label\":";
    entry += ltee::util::JsonQuote(label);
  }
  entry += ",\"results\":[";
  entry += results;
  entry += "]}";

  std::ofstream out(out_path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "bench_history: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  out << entry << "\n";
  std::printf(
      "bench_history: appended %zu results for commit %s%s to %s\n",
      num_results, commit.c_str(), dirty ? " (dirty work tree)" : "",
      out_path.c_str());
  return ok ? 0 : 1;
}
