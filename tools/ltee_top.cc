// ltee_top: a polling terminal dashboard over a serving process's
// GET /stats endpoint — `top` for the KB service. Each tick fetches the
// rolling-window telemetry JSON and renders live QPS, latency
// p50/p95/p99, cache hit rate, in-flight requests and the published
// snapshot version.
//
// Usage:
//   ltee_top --port PORT [--interval-ms MS] [--iterations N] [--no-clear]
//            [--profile N] [--memory N]
//
// --profile N additionally runs a live N-second CPU capture per frame
// (GET /profile?seconds=N against the same process) and renders a top-10
// hotspot panel — self-CPU% per function plus the per-span breakdown —
// beside the /stats view. A 503 (another capture in flight) is shown in
// the panel without failing the frame.
//
// --memory N does the same for the heap: a live N-second sampled heap
// capture per frame (GET /memory?seconds=N) rendered as live tracked
// bytes, per-span byte attribution and the top allocation sites by live
// sampled bytes. Requires the server to run with memory tracking
// compiled in (no sanitizer); 503-while-busy is likewise a note.
//
// --interval-ms defaults to 1000. --iterations 0 (the default) polls
// until interrupted; a positive N renders N frames then exits — that is
// what scripted smoke tests use. When stdout is a terminal the screen is
// cleared between frames (ANSI home+clear); --no-clear (or a non-tty
// stdout) appends frames instead, so output stays greppable in a pipe.
//
// Exit status: 0 when the final poll succeeded, 1 when the endpoint
// could not be reached or returned malformed JSON.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obsv/http_client.h"
#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "util/json_parse.h"

namespace {

using ltee::util::JsonValue;

struct Options {
  int port = -1;
  int interval_ms = 1000;
  int iterations = 0;  // 0 = until interrupted
  int profile_seconds = 0;  // 0 = no hotspot panel
  int memory_seconds = 0;   // 0 = no memory panel
  bool clear = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage: ltee_top --port PORT [--interval-ms MS] "
               "[--iterations N] [--no-clear] [--profile N] [--memory N]\n"
               "polls GET /stats of a `ltee_cli serve` (or `run "
               "--status-port`) process and renders live QPS, latency "
               "percentiles, cache hit rate, in-flight requests and the "
               "snapshot version; --profile N adds a top-10 CPU hotspot "
               "panel from a live N-second /profile capture per frame; "
               "--memory N adds a live-bytes / span-attribution / top "
               "allocation-site panel from an N-second /memory capture\n");
  return 2;
}

double NumAt(const JsonValue& root, const char* outer, const char* key,
             double fallback) {
  const JsonValue* section = root.Find(outer);
  return section != nullptr ? section->NumberOr(key, fallback) : fallback;
}

/// One rendered frame. Returns false when the poll or parse failed (the
/// frame then shows the error instead of numbers).
bool RenderFrame(const Options& options, int frame) {
  int status = 0;
  std::string body, error;
  if (!ltee::obsv::HttpGet(static_cast<uint16_t>(options.port), "/stats",
                           &status, &body, &error)) {
    std::printf("ltee_top: cannot reach :%d/stats: %s\n", options.port,
                error.c_str());
    return false;
  }
  if (status != 200) {
    std::printf("ltee_top: GET /stats returned HTTP %d\n", status);
    return false;
  }
  JsonValue stats;
  if (!ltee::util::ParseJson(body, &stats, &error)) {
    std::printf("ltee_top: /stats body is not JSON: %s\n", error.c_str());
    return false;
  }

  const double covered = NumAt(stats, "window", "covered_seconds", 0);
  const double requests = NumAt(stats, "window", "requests", 0);
  const double qps = NumAt(stats, "window", "qps", 0);
  const JsonValue* window = stats.Find("window");
  const JsonValue* latency =
      window != nullptr ? window->Find("latency_ms") : nullptr;
  const double p50 = latency != nullptr ? latency->NumberOr("p50", 0) : 0;
  const double p95 = latency != nullptr ? latency->NumberOr("p95", 0) : 0;
  const double p99 = latency != nullptr ? latency->NumberOr("p99", 0) : 0;
  const double lat_max = latency != nullptr ? latency->NumberOr("max", 0) : 0;
  const double hits = NumAt(stats, "cache", "hits", 0);
  const double misses = NumAt(stats, "cache", "misses", 0);
  const double evictions = NumAt(stats, "cache", "evictions", 0);
  const double hit_ratio = NumAt(stats, "cache", "hit_ratio", 0);
  const double in_flight = stats.NumberOr("in_flight", 0);
  const double version = stats.NumberOr("snapshot_version", 0);
  const double slow = NumAt(stats, "access_log", "slow", 0);
  const double slow_ms = NumAt(stats, "access_log", "slow_threshold_ms", 0);

  std::printf("ltee :%d  snapshot v%.0f  in-flight %.0f  frame %d\n",
              options.port, version, in_flight, frame);
  std::printf("window  %4.0fs covered  %8.0f requests  %10.1f qps\n",
              covered, requests, qps);
  std::printf(
      "latency p50 %8.3f ms   p95 %8.3f ms   p99 %8.3f ms   max %8.3f ms\n",
      p50, p95, p99, lat_max);
  std::printf("cache   hits %.0f  misses %.0f  evictions %.0f  "
              "hit-rate %5.1f%%\n",
              hits, misses, evictions, hit_ratio * 100.0);
  std::printf("slow    %.0f requests over %.0f ms\n", slow, slow_ms);
  return true;
}

/// The hotspot panel of one frame: a live capture via GET /profile, then
/// the top functions by self CPU and the per-span attribution. A busy
/// profiler (503) renders as a note, not a failure — another client or a
/// --profile-out run owns the only capture slot.
bool RenderProfilePanel(const Options& options) {
  int status = 0;
  std::string body, error;
  const std::string path =
      "/profile?seconds=" + std::to_string(options.profile_seconds);
  if (!ltee::obsv::HttpGet(static_cast<uint16_t>(options.port), path,
                           &status, &body, &error)) {
    std::printf("profile: cannot reach :%d%s: %s\n", options.port,
                path.c_str(), error.c_str());
    return false;
  }
  if (status == 503) {
    std::printf("profile: capture busy, retrying next frame\n");
    return true;
  }
  if (status != 200) {
    std::printf("profile: GET %s returned HTTP %d\n", path.c_str(), status);
    return false;
  }
  ltee::obsv::ProfileAnalysis analysis;
  if (!ltee::obsv::ParseCollapsedProfile(body, &analysis, &error)) {
    std::printf("profile: malformed collapsed stacks: %s\n", error.c_str());
    return false;
  }
  std::printf("hotspots %llu samples @ %d Hz over %.1fs (%llu dropped)\n",
              static_cast<unsigned long long>(analysis.samples), analysis.hz,
              analysis.duration_s,
              static_cast<unsigned long long>(analysis.dropped));
  if (analysis.samples == 0) {
    std::printf("  (idle: no CPU burned during the capture window)\n");
    return true;
  }
  const double denom = static_cast<double>(analysis.samples);
  size_t shown = 0;
  for (const auto& frame : analysis.frames) {
    if (frame.self == 0 || shown >= 10) break;
    // Keep the panel narrow: long demangled names truncate on the right.
    std::string name = frame.name;
    if (name.size() > 56) name = name.substr(0, 53) + "...";
    std::printf("  %5.1f%% %6llu  %s\n",
                100.0 * static_cast<double>(frame.self) / denom,
                static_cast<unsigned long long>(frame.self), name.c_str());
    ++shown;
  }
  std::string spans = "spans  ";
  size_t span_count = 0;
  for (const auto& span : analysis.spans) {
    if (span_count++ >= 4) break;
    char item[96];
    std::snprintf(item, sizeof(item), " %s %.1f%%", span.name.c_str(),
                  span.pct);
    spans += item;
  }
  std::printf("%s\n", spans.c_str());
  return true;
}

/// The memory panel: a live sampled heap capture via GET /memory, then
/// live tracked bytes, span byte attribution and the top allocation
/// sites by live sampled bytes. Busy (503) renders as a note, mirroring
/// the profile panel.
bool RenderMemoryPanel(const Options& options) {
  int status = 0;
  std::string body, error;
  const std::string path =
      "/memory?seconds=" + std::to_string(options.memory_seconds);
  if (!ltee::obsv::HttpGet(static_cast<uint16_t>(options.port), path,
                           &status, &body, &error)) {
    std::printf("memory: cannot reach :%d%s: %s\n", options.port,
                path.c_str(), error.c_str());
    return false;
  }
  if (status == 503) {
    std::printf("memory: capture busy, retrying next frame\n");
    return true;
  }
  if (status != 200) {
    std::printf("memory: GET %s returned HTTP %d\n", path.c_str(), status);
    return false;
  }
  ltee::obsv::ProfileAnalysis analysis;
  ltee::obsv::HeapProfileHeader header;
  if (!ltee::obsv::ParseCollapsedProfile(body, &analysis, &error) ||
      !ltee::obsv::ParseHeapProfileHeader(body, &header)) {
    std::printf("memory: malformed heap profile: %s\n", error.c_str());
    return false;
  }
  const double mb = 1024.0 * 1024.0;
  std::printf(
      "memory  live %.1f MB in %llu allocations  peak-rss %.1f MB  "
      "(%llu sampled, ~1 per %zu KB)\n",
      static_cast<double>(header.live_bytes) / mb,
      static_cast<unsigned long long>(header.live_allocs),
      static_cast<double>(header.peak_rss_kb) / 1024.0,
      static_cast<unsigned long long>(analysis.samples), header.sample_kb);
  std::string spans = "spans  ";
  size_t span_count = 0;
  for (const auto& span : header.spans) {
    if (span_count++ >= 4) break;
    char item[112];
    std::snprintf(item, sizeof(item), " %s %.1f/%.1f MB", span.span.c_str(),
                  static_cast<double>(span.live_bytes) / mb,
                  static_cast<double>(span.cum_bytes) / mb);
    spans += item;
  }
  std::printf("%s\n", spans.c_str());
  // Stack-line counts are live bytes; frame.self sums a site's own share.
  size_t shown = 0;
  for (const auto& frame : analysis.frames) {
    if (frame.self == 0 || shown >= 10) break;
    std::string name = frame.name;
    if (name.size() > 56) name = name.substr(0, 53) + "...";
    std::printf("  %8.1f KB  %s\n",
                static_cast<double>(frame.self) / 1024.0, name.c_str());
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (no live sampled allocations during the window)\n");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      options.interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--iterations" && i + 1 < argc) {
      options.iterations = std::atoi(argv[++i]);
    } else if (arg == "--profile" && i + 1 < argc) {
      options.profile_seconds = std::atoi(argv[++i]);
      if (options.profile_seconds < 1) return Usage();
    } else if (arg == "--memory" && i + 1 < argc) {
      options.memory_seconds = std::atoi(argv[++i]);
      if (options.memory_seconds < 1) return Usage();
    } else if (arg == "--no-clear") {
      options.clear = false;
    } else {
      return Usage();
    }
  }
  if (options.port <= 0) return Usage();
  if (options.interval_ms < 1) options.interval_ms = 1;
  const bool clear = options.clear && ::isatty(STDOUT_FILENO) != 0;

  bool ok = false;
  for (int frame = 1;
       options.iterations == 0 || frame <= options.iterations; ++frame) {
    if (clear) std::printf("\x1b[H\x1b[2J");
    ok = RenderFrame(options, frame);
    if (options.profile_seconds > 0) {
      ok = RenderProfilePanel(options) && ok;
    }
    if (options.memory_seconds > 0) {
      ok = RenderMemoryPanel(options) && ok;
    }
    std::fflush(stdout);
    if (options.iterations != 0 && frame == options.iterations) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.interval_ms));
  }
  return ok ? 0 : 1;
}
