// Observability smoke check, run as a ctest: executes the pipeline (plus
// the dedup / slot-filling / KB-update post-stages) over a tiny synthetic
// dataset with tracing force-enabled, then fails unless
//   - the Chrome trace export is valid JSON and structurally sound
//     (shared obsv::ValidateChromeTrace checks),
//   - every instrumented pipeline stage produced at least one span,
//   - the metrics snapshot serializes to valid JSON and the thread-pool
//     and pair-cache counters are non-zero,
//   - a live StatusServer serves the same trace over GET /trace (the
//     endpoint round-trip), a 200 /healthz and a /metrics exposition
//     containing the pipeline progress gauges,
//   - span analytics over the trace account for the root spans: the
//     summed self times equal the summed top-level span durations.
//
// With `--file TRACE.json` it skips the pipeline run and instead
// validates an already-exported trace file — valid JSON, structurally
// sound, analyzable — which is how scripts check the request traces
// written by `ltee_cli serve --trace-out`.
//
// Exit code 0 on success; prints the first failure to stderr otherwise.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obsv/http_client.h"
#include "obsv/span_analytics.h"
#include "obsv/status_server.h"
#include "pipeline/dedup.h"
#include "pipeline/kb_update.h"
#include "pipeline/pipeline.h"
#include "pipeline/slot_filling.h"
#include "pipeline/training.h"
#include "synth/dataset.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

using namespace ltee;

int Fail(const std::string& message) {
  std::fprintf(stderr, "validate_trace: FAIL: %s\n", message.c_str());
  return 1;
}

/// `--file` mode: validate an exported trace file instead of running the
/// pipeline.
int ValidateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();

  std::string error;
  if (!util::JsonIsValid(trace, &error)) {
    return Fail(path + ": trace JSON invalid: " + error);
  }
  if (!obsv::ValidateChromeTrace(trace, &error)) {
    return Fail(path + ": trace failed structural validation: " + error);
  }
  obsv::TraceAnalysis analysis;
  if (!obsv::AnalyzeChromeTrace(trace, &analysis, &error)) {
    return Fail(path + ": trace analytics failed: " + error);
  }
  if (analysis.num_events == 0) {
    return Fail(path + ": trace contains no span events");
  }
  std::printf("validate_trace: OK (%s: %zu events, %zu bytes, "
              "busy %.1f ms over wall %.1f ms)\n",
              path.c_str(), analysis.num_events, trace.size(),
              analysis.busy_ms, analysis.wall_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--file") == 0) {
    return ValidateFile(argv[2]);
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: validate_trace [--file TRACE.json]\n");
    return 2;
  }
  util::trace::SetEnabled(true);
  util::trace::Clear();
  util::trace::SetCurrentThreadName("validate-trace-main");

  synth::DatasetOptions dataset_options;
  dataset_options.scale = 0.004;
  dataset_options.seed = 20190326;
  auto dataset = synth::BuildDataset(dataset_options);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(dataset.kb, options);
  util::Rng rng(7);
  pipeline::TrainPipelineOnGold(&pipe, dataset.gs_corpus, dataset.gold, rng);

  std::vector<kb::ClassId> classes;
  for (const auto& gs : dataset.gold) classes.push_back(gs.cls);
  auto run = pipe.Run(dataset.corpus, classes);

  // Post-pipeline stages so their spans are part of the validated trace.
  // The dataset KB is mutated in place; the pipeline is not used after
  // this point.
  kb::KnowledgeBase& kb = dataset.kb;
  for (const auto& class_run : run.classes) {
    auto deduped = pipeline::DeduplicateEntities(class_run.entities,
                                                 class_run.detections);
    auto fills = pipeline::FillSlots(kb, deduped.entities, deduped.detections);
    pipeline::ApplySlotFills(&kb, fills.new_facts);
    pipeline::AddNewEntitiesToKb(&kb, deduped.entities, deduped.detections);
  }

  if (util::trace::EventCount() == 0) return Fail("no trace events recorded");

  const std::string trace = util::trace::ExportChromeTrace();
  std::string error;
  if (!util::JsonIsValid(trace, &error)) {
    return Fail("trace JSON invalid: " + error);
  }

  const char* required_spans[] = {
      "webtable.prepare_corpus", "matching.schema_match",
      "pipeline.schema_match",   "pipeline.class_sweep",
      "pipeline.run_class",      "rowcluster.metric_bank",
      "rowcluster.cluster",      "fusion.create",
      "newdetect.detect",        "pipeline.dedup",
      "pipeline.slot_filling",   "pipeline.kb_update",
      "pipeline.run",
  };
  for (const char* span : required_spans) {
    if (trace.find(std::string("\"") + span + "\"") == std::string::npos) {
      return Fail(std::string("missing span: ") + span);
    }
  }

  const auto snapshot = util::Metrics().Snapshot();
  const std::string metrics_json = snapshot.ToJson();
  if (!util::JsonIsValid(metrics_json, &error)) {
    return Fail("metrics JSON invalid: " + error);
  }
  for (const char* counter :
       {"ltee.threadpool.tasks_completed", "ltee.rowcluster.pair_cache.misses",
        "ltee.prepared.tables", "ltee.fusion.entities_created"}) {
    bool found = false;
    for (const auto& [name, value] : snapshot.counters) {
      if (name == counter && value > 0) {
        found = true;
        break;
      }
    }
    if (!found) return Fail(std::string("counter missing or zero: ") + counter);
  }

  // Structural validation (balanced spans, numeric ts/dur) through the
  // shared checker the analyze-trace path uses.
  if (!ltee::obsv::ValidateChromeTrace(trace, &error)) {
    return Fail("trace failed structural validation: " + error);
  }

  // Endpoint round-trip: a live status server must serve this exact
  // trace, a healthy /healthz and the pipeline progress gauges.
  ltee::obsv::StatusServer server;
  if (!server.Start(0, &error)) {
    return Fail("status server did not start: " + error);
  }
  int status = 0;
  std::string body;
  if (!ltee::obsv::HttpGet(server.port(), "/healthz", &status, &body,
                           &error) ||
      status != 200) {
    return Fail("GET /healthz failed: " + error);
  }
  if (!ltee::obsv::HttpGet(server.port(), "/trace", &status, &body,
                           &error) ||
      status != 200) {
    return Fail("GET /trace failed: " + error);
  }
  if (!ltee::obsv::ValidateChromeTrace(body, &error)) {
    return Fail("/trace output failed validation: " + error);
  }
  if (!ltee::obsv::HttpGet(server.port(), "/metrics", &status, &body,
                           &error) ||
      status != 200) {
    return Fail("GET /metrics failed: " + error);
  }
  for (const char* series :
       {"ltee_pipeline_stage", "ltee_pipeline_classes_done",
        "ltee_threadpool_tasks_completed_total"}) {
    if (body.find(series) == std::string::npos) {
      return Fail(std::string("/metrics missing series: ") + series);
    }
  }
  server.Stop();

  // Self-time invariant of the analytics: per thread, the self times of
  // all spans sum to the durations of the top-level spans, so the two
  // totals must agree (within floating-point slack) across the trace.
  ltee::obsv::TraceAnalysis analysis;
  if (!ltee::obsv::AnalyzeChromeTrace(trace, &analysis, &error)) {
    return Fail("trace analytics failed: " + error);
  }
  if (analysis.num_events == 0 || analysis.busy_ms <= 0.0) {
    return Fail("trace analytics produced no span statistics");
  }

  std::printf("validate_trace: OK (%zu events, %zu bytes of trace JSON, "
              "busy %.1f ms over wall %.1f ms)\n",
              util::trace::EventCount(), trace.size(), analysis.busy_ms,
              analysis.wall_ms);
  return 0;
}
