// Regenerates the golden pipeline summary used by the golden regression
// test, and reports the end-to-end Run wall-clock on the synthetic
// multi-class dataset.
//
// Usage: golden_pipeline [output-path]
//
// The dataset configuration must stay in lockstep with tests/test_dataset.h
// and the SharedRun() fixture of tests/pipeline_test.cc (scale 0.002, seed
// 20190326, default PipelineOptions, Rng(41)); the golden test replays
// exactly this run.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "pipeline/pipeline.h"
#include "pipeline/run_summary.h"
#include "pipeline/training.h"
#include "synth/dataset.h"
#include "util/random.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ltee;

  synth::DatasetOptions dataset_options;
  dataset_options.scale = 0.002;
  dataset_options.seed = 20190326;
  const char* env = std::getenv("LTEE_SCALE");
  if (env != nullptr && std::atof(env) > 0.0) {
    dataset_options.scale = std::atof(env);
  }
  std::printf("dataset scale=%g seed=%llu\n", dataset_options.scale,
              static_cast<unsigned long long>(dataset_options.seed));
  auto ds = synth::BuildDataset(dataset_options);

  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(ds.kb, options);
  util::Rng rng(41);
  util::WallTimer train_timer;
  pipeline::TrainPipelineOnGold(&pipe, ds.gs_corpus, ds.gold, rng);
  std::printf("train_seconds %.3f\n", train_timer.ElapsedSeconds());

  std::vector<kb::ClassId> classes;
  for (const auto& gs : ds.gold) classes.push_back(gs.cls);

  util::WallTimer run_timer;
  auto run = pipe.Run(ds.gs_corpus, classes);
  std::printf("run_seconds %.3f\n", run_timer.ElapsedSeconds());

  const std::string summary = pipeline::SummarizeRun(run);
  std::printf("summary_bytes %zu\n", summary.size());
  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary);
    out << summary;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", argv[1]);
      return 1;
    }
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
