// Provenance-ledger validator, used by scripts/check_observability.sh on
// the output of `ltee_cli run --provenance-out`: every JSON-lines entry
// must parse (util/json_parse), carry the envelope fields (known "kind",
// "iter" >= 1, "cls" >= 0) and the kind-specific fields the explain
// walker links through (fusion sources, kb_update reason, ...). Exits
// non-zero naming the first offending line; on success prints per-kind
// counts. With no event of a core kind the ledger cannot explain a full
// lineage, so an empty or partial ledger also fails.
//
// Usage: validate_ledger LEDGER.jsonl

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "util/json_parse.h"

namespace {

using ltee::util::JsonValue;
using ltee::util::ParseJson;

int Fail(size_t line_no, const std::string& message) {
  std::fprintf(stderr, "validate_ledger: FAIL: line %zu: %s\n", line_no,
               message.c_str());
  return 1;
}

bool HasNumber(const JsonValue& v, const char* key) {
  const JsonValue* member = v.Find(key);
  return member != nullptr && member->is_number();
}

bool HasString(const JsonValue& v, const char* key) {
  const JsonValue* member = v.Find(key);
  return member != nullptr && member->is_string();
}

bool HasBool(const JsonValue& v, const char* key) {
  const JsonValue* member = v.Find(key);
  return member != nullptr && member->is_bool();
}

/// Kind-specific link fields; returns the first missing field's name or
/// nullptr when the event is sound.
const char* CheckEvent(const std::string& kind, const JsonValue& v) {
  if (kind == "schema_map") {
    for (const char* key : {"table", "column", "property", "score",
                            "threshold"}) {
      if (!HasNumber(v, key)) return key;
    }
    if (!HasBool(v, "accepted")) return "accepted";
  } else if (kind == "cluster") {
    for (const char* key : {"table", "row", "cluster_id", "support"}) {
      if (!HasNumber(v, key)) return key;
    }
  } else if (kind == "fusion") {
    for (const char* key : {"cluster_id", "property"}) {
      if (!HasNumber(v, key)) return key;
    }
    for (const char* key : {"value", "rule"}) {
      if (!HasString(v, key)) return key;
    }
    const JsonValue* sources = v.Find("sources");
    if (sources == nullptr || !sources->is_array() ||
        sources->items().empty()) {
      return "sources";
    }
    for (const JsonValue& cell : sources->items()) {
      for (const char* key : {"table", "row", "column"}) {
        if (!HasNumber(cell, key)) return "sources[].cell";
      }
    }
  } else if (kind == "new_detect") {
    if (!HasNumber(v, "cluster_id")) return "cluster_id";
    if (!HasBool(v, "is_new")) return "is_new";
    if (!HasNumber(v, "best_score")) return "best_score";
  } else if (kind == "dedup") {
    for (const char* key : {"cluster_id", "absorbed_cluster"}) {
      if (!HasNumber(v, key)) return key;
    }
  } else if (kind == "kb_update") {
    if (!HasNumber(v, "cluster_id")) return "cluster_id";
    if (!HasBool(v, "accepted")) return "accepted";
    if (!HasString(v, "reason")) return "reason";
  } else {
    return "kind";  // unknown kind value
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: validate_ledger LEDGER.jsonl\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "validate_ledger: FAIL: cannot open %s\n", argv[1]);
    return 1;
  }

  std::map<std::string, size_t> kind_counts;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    std::string error;
    if (!ParseJson(line, &value, &error)) {
      return Fail(line_no, "invalid JSON: " + error);
    }
    if (!value.is_object()) return Fail(line_no, "not a JSON object");
    const std::string kind = value.StringOr("kind", "");
    if (kind.empty()) return Fail(line_no, "missing \"kind\"");
    if (value.NumberOr("iter", 0) < 1) {
      return Fail(line_no, "missing or non-positive \"iter\"");
    }
    if (!HasNumber(value, "cls") || value.NumberOr("cls", -1) < 0) {
      return Fail(line_no, "missing or negative \"cls\"");
    }
    if (const char* field = CheckEvent(kind, value); field != nullptr) {
      return Fail(line_no, "\"" + kind + "\" event missing field \"" +
                               field + "\"");
    }
    ++kind_counts[kind];
  }

  // A lineage-capable ledger needs every stage represented (dedup is
  // legitimately absent when no clusters merged).
  for (const char* kind :
       {"schema_map", "cluster", "fusion", "new_detect", "kb_update"}) {
    if (kind_counts[kind] == 0) {
      std::fprintf(stderr,
                   "validate_ledger: FAIL: no \"%s\" events in ledger\n",
                   kind);
      return 1;
    }
  }

  std::ostringstream summary;
  size_t total = 0;
  for (const auto& [kind, count] : kind_counts) {
    summary << " " << kind << "=" << count;
    total += count;
  }
  std::printf("validate_ledger: OK (%zu events:%s)\n", total,
              summary.str().c_str());
  return 0;
}
