// Compares two LTEESNP1 snapshot files at the logical-content level.
//
// Usage:
//   snapshot_diff A.snapshot B.snapshot [--max-samples N]
//
// Both files are decoded back into knowledge bases (the loader verifies
// magic, format version and checksum first), their version-independent
// FNV-1a content hashes are printed, and entity/fact-level differences —
// schema drift, instances added/removed/changed, facts added/removed/
// changed — are reported with samples.
//
// Exit codes: 0 = identical content, 1 = content differs, 2 = a file
// could not be read or decoded. The delta smoke test relies on these:
// full(A+B) vs full(A)+delta(B) must exit 0; base vs delta must exit 1.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kb/diff.h"
#include "kb/knowledge_base.h"
#include "serve/snapshot.h"
#include "serve/snapshot_io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: snapshot_diff A.snapshot B.snapshot "
               "[--max-samples N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string paths[2];
  size_t num_paths = 0;
  size_t max_samples = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-samples") == 0 && i + 1 < argc) {
      max_samples = static_cast<size_t>(std::atoll(argv[++i]));
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) return Usage();
    if (num_paths == 2) return Usage();
    paths[num_paths++] = argv[i];
  }
  if (num_paths != 2) return Usage();

  ltee::kb::KnowledgeBase kbs[2];
  uint64_t versions[2] = {0, 0};
  for (size_t i = 0; i < 2; ++i) {
    std::string error;
    if (!ltee::serve::LoadSnapshotFile(paths[i], &kbs[i], &versions[i],
                                       &error)) {
      std::fprintf(stderr, "%s: %s\n", paths[i].c_str(), error.c_str());
      return 2;
    }
  }

  // content_hash() ignores the stamped publish version, so two snapshots
  // of equal KBs hash equal even when published as different versions.
  uint64_t hashes[2];
  for (size_t i = 0; i < 2; ++i) {
    ltee::serve::SnapshotOptions options;
    options.version = versions[i];
    hashes[i] = ltee::serve::Snapshot::Build(kbs[i], options)->content_hash();
    std::printf("%s: v%llu, %zu instances, content hash %016llx\n",
                paths[i].c_str(), static_cast<unsigned long long>(versions[i]),
                kbs[i].num_instances(),
                static_cast<unsigned long long>(hashes[i]));
  }

  const ltee::kb::KbDiff diff =
      ltee::kb::DiffKnowledgeBases(kbs[0], kbs[1], max_samples);
  if (diff.identical() && hashes[0] == hashes[1]) {
    std::printf("snapshots are identical\n");
    return 0;
  }
  if (diff.schema_differs) std::printf("schema differs\n");
  std::printf(
      "instances: +%zu -%zu ~%zu; facts: +%zu -%zu ~%zu\n",
      diff.instances_added, diff.instances_removed, diff.instances_changed,
      diff.facts_added, diff.facts_removed, diff.facts_changed);
  for (const std::string& sample : diff.samples) {
    std::printf("  %s\n", sample.c_str());
  }
  if (diff.identical() && hashes[0] != hashes[1]) {
    // Should be impossible — the hash covers exactly the diffed content.
    std::printf("content hashes differ but no structural diff was found\n");
  }
  return 1;
}
