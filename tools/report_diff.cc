// Perf-regression differ: compares two observability snapshots — run
// reports (ltee_cli --metrics-out), bench-history entries, or the last
// two lines of BENCH_history.json — against per-metric relative
// thresholds and exits non-zero when anything regressed. This is the
// gate wired into ctest as `bench_regression`. The comparison semantics
// live in obsv/regression_gate (unit-tested there); this binary only
// parses flags, loads files and renders the report.
//
// Usage:
//   report_diff BEFORE.json AFTER.json [options]
//   report_diff --history FILE [--against-seed] [options]
//
// Inputs may be RunReport JSON ({"total_seconds":..,"stages":..,
// "metrics":..}) or a bench_history entry ({"commit":..,"results":..});
// the kind is auto-detected. --history compares the newest entry of the
// trajectory file against the previous one, or against the very first
// (the seed data point) with --against-seed.
//
// Options:
//   --threshold PCT          allowed relative time/latency increase
//                            (default 25)
//   --score-threshold PCT    allowed relative score drop (default 5)
//   --quality-threshold PCT  allowed relative increase of a quality-drift
//                            rate (default 10)
//   --min-seconds S          time pairs where both sides are below this
//                            are noise and never gate (default 0.05)
//   --min-latency-ms MS      same floor for the ms_p50/ms_p95/ms_p99
//                            latency-percentile units (default 1.0)
//   --min-pct PCT            floor for the "pct" overhead unit, in
//                            absolute percent: pairs where both sides
//                            stay below never gate (default 3.0, the
//                            sampling profiler's overhead budget)
//   --min-mb MB              floor for the "mb" memory unit (peak RSS,
//                            heap footprints): pairs where both sides
//                            stay below never gate (default 50.0)
//
// Direction comes from the unit recorded with each metric: "seconds",
// "ms", "ns", the "ms_p*" latency percentiles, "pct" overheads and
// "mb" memory footprints regress upward; "score"/"f1" regress
// downward; "ops_s" throughput
// regresses downward against --threshold; "rate" (quality-drift gauges)
// regresses upward against --quality-threshold; "count", "ratio" and
// "gauge" changes are reported but never gate.
//
// Exit: 0 when no metric regressed beyond its threshold (including the
// trivial one-entry history), 1 on regression, 2 on usage/parse errors.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obsv/regression_gate.h"
#include "util/json_parse.h"

namespace {

using ltee::obsv::CompareGateMetrics;
using ltee::obsv::FlattenGateSnapshot;
using ltee::obsv::GateDirection;
using ltee::obsv::GateMetricMap;
using ltee::obsv::GateReport;
using ltee::obsv::GateThresholds;
using ltee::util::JsonValue;
using ltee::util::ParseJson;

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              std::vector<std::string>* args) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args->push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0 &&
        (key == "threshold" || key == "score-threshold" ||
         key == "quality-threshold" || key == "min-seconds" ||
         key == "min-latency-ms" || key == "min-pct" ||
         key == "min-mb" || key == "history")) {
      flags[key] = argv[++i];
    } else {
      flags[key] = std::string("1");
    }
  }
  return flags;
}

double FlagOr(const std::map<std::string, std::string>& flags,
              const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it != flags.end() ? std::atof(it->second.c_str()) : fallback;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  report_diff BEFORE.json AFTER.json [options]\n"
               "  report_diff --history FILE [--against-seed] [options]\n"
               "options: --threshold PCT (time/latency, default 25) "
               "--score-threshold PCT (default 5) --quality-threshold PCT "
               "(drift rates, default 10) --min-seconds S (default 0.05) "
               "--min-latency-ms MS (default 1.0) --min-pct PCT "
               "(default 3.0) --min-mb MB (default 50.0)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const auto flags = ParseFlags(argc, argv, &positional);
  GateThresholds thresholds;
  thresholds.time = FlagOr(flags, "threshold", 25.0) / 100.0;
  thresholds.score = FlagOr(flags, "score-threshold", 5.0) / 100.0;
  thresholds.quality = FlagOr(flags, "quality-threshold", 10.0) / 100.0;
  thresholds.min_seconds = FlagOr(flags, "min-seconds", 0.05);
  thresholds.min_latency_ms = FlagOr(flags, "min-latency-ms", 1.0);
  thresholds.min_pct = FlagOr(flags, "min-pct", 3.0);
  thresholds.min_mb = FlagOr(flags, "min-mb", 50.0);

  std::string before_json, after_json, error;
  std::string before_name = "before", after_name = "after";
  if (flags.count("history")) {
    std::string content;
    if (!ReadFile(flags.at("history"), &content, &error)) {
      std::fprintf(stderr, "report_diff: %s\n", error.c_str());
      return 2;
    }
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < content.size()) {
      size_t end = content.find('\n', start);
      if (end == std::string::npos) end = content.size();
      if (end > start) {
        std::string line = content.substr(start, end - start);
        if (line.find_first_not_of(" \t\r") != std::string::npos) {
          lines.push_back(std::move(line));
        }
      }
      start = end + 1;
    }
    if (lines.empty()) {
      std::fprintf(stderr, "report_diff: empty history %s\n",
                   flags.at("history").c_str());
      return 2;
    }
    if (lines.size() == 1) {
      std::printf(
          "report_diff: only one history entry (the seed data point); "
          "nothing to compare — pass\n");
      return 0;
    }
    const bool against_seed = flags.count("against-seed") > 0;
    before_json = against_seed ? lines.front() : lines[lines.size() - 2];
    after_json = lines.back();
    before_name = against_seed ? "seed entry" : "previous entry";
    after_name = "latest entry";
  } else {
    if (positional.size() != 2) return Usage();
    if (!ReadFile(positional[0], &before_json, &error) ||
        !ReadFile(positional[1], &after_json, &error)) {
      std::fprintf(stderr, "report_diff: %s\n", error.c_str());
      return 2;
    }
    before_name = positional[0];
    after_name = positional[1];
  }

  JsonValue before_doc, after_doc;
  if (!ParseJson(before_json, &before_doc, &error)) {
    std::fprintf(stderr, "report_diff: %s: invalid JSON: %s\n",
                 before_name.c_str(), error.c_str());
    return 2;
  }
  if (!ParseJson(after_json, &after_doc, &error)) {
    std::fprintf(stderr, "report_diff: %s: invalid JSON: %s\n",
                 after_name.c_str(), error.c_str());
    return 2;
  }
  GateMetricMap before, after;
  if (!FlattenGateSnapshot(before_doc, &before, &error) ||
      !FlattenGateSnapshot(after_doc, &after, &error)) {
    std::fprintf(stderr, "report_diff: %s\n", error.c_str());
    return 2;
  }

  // History entries carry their commit stamp (and work-tree state);
  // surface both so a regression is attributable at a glance.
  const auto annotate = [](const JsonValue& doc, std::string* name) {
    const JsonValue* commit = doc.Find("commit");
    if (commit == nullptr || !commit->is_string()) return;
    *name += " (" + commit->as_string();
    if (const JsonValue* dirty = doc.Find("dirty");
        dirty != nullptr && dirty->is_bool() && dirty->as_bool()) {
      *name += ", dirty";
    }
    *name += ")";
  };
  annotate(before_doc, &before_name);
  annotate(after_doc, &after_name);

  std::printf(
      "report_diff: %s -> %s (time +%.0f%%, score -%.0f%%, "
      "drift rate +%.0f%%)\n",
      before_name.c_str(), after_name.c_str(), thresholds.time * 100,
      thresholds.score * 100, thresholds.quality * 100);
  std::printf("%-44s %14s %14s %9s\n", "metric", "before", "after",
              "delta");
  const GateReport report = CompareGateMetrics(before, after, thresholds);
  for (const auto& delta : report.deltas) {
    // Print every gated metric and any informational metric that moved.
    if (delta.direction != GateDirection::kInformational ||
        std::fabs(delta.rel) > 1e-9) {
      std::printf("%-44s %14.6g %14.6g %+8.1f%%%s\n", delta.name.c_str(),
                  delta.before.value, delta.after.value, delta.rel * 100,
                  delta.regressed ? "  REGRESSION" : "");
    }
  }
  if (report.compared == 0) {
    std::fprintf(stderr,
                 "report_diff: no comparable metrics between inputs\n");
    return 2;
  }
  if (report.regressions > 0) {
    std::printf("report_diff: %zu regression(s) beyond threshold\n",
                report.regressions);
    return 1;
  }
  std::printf("report_diff: OK (%zu metrics compared)\n", report.compared);
  return 0;
}
