// Perf-regression differ: compares two observability snapshots — run
// reports (ltee_cli --metrics-out), bench-history entries, or the last
// two lines of BENCH_history.json — against per-metric relative
// thresholds and exits non-zero when anything regressed. This is the
// gate wired into ctest as `bench_regression`.
//
// Usage:
//   report_diff BEFORE.json AFTER.json [options]
//   report_diff --history FILE [--against-seed] [options]
//
// Inputs may be RunReport JSON ({"total_seconds":..,"stages":..,
// "metrics":..}) or a bench_history entry ({"commit":..,"results":..});
// the kind is auto-detected. --history compares the newest entry of the
// trajectory file against the previous one, or against the very first
// (the seed data point) with --against-seed.
//
// Options:
//   --threshold PCT          allowed relative time increase (default 25)
//   --score-threshold PCT    allowed relative score drop (default 5)
//   --quality-threshold PCT  allowed relative increase of a quality-drift
//                            rate (default 10)
//   --min-seconds S          time pairs where both sides are below this
//                            are noise and never gate (default 0.05)
//
// Direction comes from the unit recorded with each metric: "seconds",
// "ms" and "ns" regress upward; "score" regresses downward; "rate"
// (quality-drift gauges such as ltee.prov.fusion_conflict_rate, flattened
// from run-report gauges ending in `_rate`) regresses upward against
// --quality-threshold; "count", "ratio" and "gauge" changes are reported
// but never gate.
//
// Exit: 0 when no metric regressed beyond its threshold (including the
// trivial one-entry history), 1 on regression, 2 on usage/parse errors.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/json_parse.h"

namespace {

using ltee::util::JsonValue;
using ltee::util::ParseJson;

enum class Direction { kHigherIsWorse, kLowerIsWorse, kInformational };

struct MetricValue {
  double value = 0.0;
  std::string unit;
};

using MetricMap = std::map<std::string, MetricValue>;

Direction DirectionOf(const std::string& unit) {
  if (unit == "seconds" || unit == "ms" || unit == "ns" || unit == "rate") {
    return Direction::kHigherIsWorse;
  }
  if (unit == "score" || unit == "f1") return Direction::kLowerIsWorse;
  return Direction::kInformational;
}

/// True for suffix `suffix` of `name`.
bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

double ToSeconds(double value, const std::string& unit) {
  if (unit == "ms") return value / 1e3;
  if (unit == "ns") return value / 1e9;
  return value;
}

/// Flattens one snapshot into name -> (value, unit). Supports RunReport
/// objects and bench_history entries.
bool Flatten(const JsonValue& doc, MetricMap* out, std::string* error) {
  if (const JsonValue* results = doc.Find("results");
      results != nullptr && results->is_array()) {
    for (const JsonValue& r : results->items()) {
      const JsonValue* bench = r.Find("bench");
      const JsonValue* metric = r.Find("metric");
      const JsonValue* value = r.Find("value");
      if (bench == nullptr || metric == nullptr || value == nullptr ||
          !value->is_number()) {
        continue;
      }
      (*out)[bench->as_string() + "/" + metric->as_string()] = {
          value->as_number(), r.StringOr("unit", "unknown")};
    }
    return true;
  }
  if (const JsonValue* total = doc.Find("total_seconds");
      total != nullptr && total->is_number()) {
    (*out)["run/total_seconds"] = {total->as_number(), "seconds"};
    if (const JsonValue* stages = doc.Find("stages");
        stages != nullptr && stages->is_array()) {
      for (const JsonValue& stage : stages->items()) {
        const JsonValue* name = stage.Find("stage");
        const JsonValue* seconds = stage.Find("seconds");
        if (name == nullptr || seconds == nullptr ||
            !seconds->is_number()) {
          continue;
        }
        (*out)["stage/" + name->as_string()] = {seconds->as_number(),
                                                "seconds"};
      }
    }
    if (const JsonValue* metrics = doc.Find("metrics");
        metrics != nullptr && metrics->is_object()) {
      if (const JsonValue* counters = metrics->Find("counters");
          counters != nullptr && counters->is_object()) {
        for (const auto& [name, value] : counters->members()) {
          if (value.is_number()) {
            (*out)["counter/" + name] = {value.as_number(), "count"};
          }
        }
      }
      if (const JsonValue* gauges = metrics->Find("gauges");
          gauges != nullptr && gauges->is_object()) {
        for (const auto& [name, value] : gauges->members()) {
          if (!value.is_number()) continue;
          // Quality-drift gauges (`.._rate`) gate against
          // --quality-threshold; `.._ratio` and everything else are
          // informational.
          const char* unit = EndsWith(name, "_rate")
                                 ? "rate"
                                 : (EndsWith(name, "_ratio") ? "ratio"
                                                             : "gauge");
          (*out)["gauge/" + name] = {value.as_number(), unit};
        }
      }
    }
    return true;
  }
  if (error != nullptr) {
    *error = "unrecognized snapshot: neither a run report nor a bench "
             "history entry";
  }
  return false;
}

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              std::vector<std::string>* args) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args->push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0 &&
        (key == "threshold" || key == "score-threshold" ||
         key == "quality-threshold" || key == "min-seconds" ||
         key == "history")) {
      flags[key] = argv[++i];
    } else {
      flags[key] = std::string("1");
    }
  }
  return flags;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  report_diff BEFORE.json AFTER.json [options]\n"
               "  report_diff --history FILE [--against-seed] [options]\n"
               "options: --threshold PCT (time, default 25) "
               "--score-threshold PCT (default 5) --quality-threshold PCT "
               "(drift rates, default 10) --min-seconds S (default 0.05)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  const auto flags = ParseFlags(argc, argv, &positional);
  const double time_threshold =
      (flags.count("threshold") ? std::atof(flags.at("threshold").c_str())
                                : 25.0) /
      100.0;
  const double score_threshold =
      (flags.count("score-threshold")
           ? std::atof(flags.at("score-threshold").c_str())
           : 5.0) /
      100.0;
  const double quality_threshold =
      (flags.count("quality-threshold")
           ? std::atof(flags.at("quality-threshold").c_str())
           : 10.0) /
      100.0;
  const double min_seconds =
      flags.count("min-seconds") ? std::atof(flags.at("min-seconds").c_str())
                                 : 0.05;

  std::string before_json, after_json, error;
  std::string before_name = "before", after_name = "after";
  if (flags.count("history")) {
    std::string content;
    if (!ReadFile(flags.at("history"), &content, &error)) {
      std::fprintf(stderr, "report_diff: %s\n", error.c_str());
      return 2;
    }
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < content.size()) {
      size_t end = content.find('\n', start);
      if (end == std::string::npos) end = content.size();
      if (end > start) {
        std::string line = content.substr(start, end - start);
        if (line.find_first_not_of(" \t\r") != std::string::npos) {
          lines.push_back(std::move(line));
        }
      }
      start = end + 1;
    }
    if (lines.empty()) {
      std::fprintf(stderr, "report_diff: empty history %s\n",
                   flags.at("history").c_str());
      return 2;
    }
    if (lines.size() == 1) {
      std::printf(
          "report_diff: only one history entry (the seed data point); "
          "nothing to compare — pass\n");
      return 0;
    }
    const bool against_seed = flags.count("against-seed") > 0;
    before_json = against_seed ? lines.front() : lines[lines.size() - 2];
    after_json = lines.back();
    before_name = against_seed ? "seed entry" : "previous entry";
    after_name = "latest entry";
  } else {
    if (positional.size() != 2) return Usage();
    if (!ReadFile(positional[0], &before_json, &error) ||
        !ReadFile(positional[1], &after_json, &error)) {
      std::fprintf(stderr, "report_diff: %s\n", error.c_str());
      return 2;
    }
    before_name = positional[0];
    after_name = positional[1];
  }

  JsonValue before_doc, after_doc;
  if (!ParseJson(before_json, &before_doc, &error)) {
    std::fprintf(stderr, "report_diff: %s: invalid JSON: %s\n",
                 before_name.c_str(), error.c_str());
    return 2;
  }
  if (!ParseJson(after_json, &after_doc, &error)) {
    std::fprintf(stderr, "report_diff: %s: invalid JSON: %s\n",
                 after_name.c_str(), error.c_str());
    return 2;
  }
  MetricMap before, after;
  if (!Flatten(before_doc, &before, &error) ||
      !Flatten(after_doc, &after, &error)) {
    std::fprintf(stderr, "report_diff: %s\n", error.c_str());
    return 2;
  }

  // History entries carry their commit stamp (and work-tree state);
  // surface both so a regression is attributable at a glance.
  const auto annotate = [](const JsonValue& doc, std::string* name) {
    const JsonValue* commit = doc.Find("commit");
    if (commit == nullptr || !commit->is_string()) return;
    *name += " (" + commit->as_string();
    if (const JsonValue* dirty = doc.Find("dirty");
        dirty != nullptr && dirty->is_bool() && dirty->as_bool()) {
      *name += ", dirty";
    }
    *name += ")";
  };
  annotate(before_doc, &before_name);
  annotate(after_doc, &after_name);

  std::printf(
      "report_diff: %s -> %s (time +%.0f%%, score -%.0f%%, "
      "drift rate +%.0f%%)\n",
      before_name.c_str(), after_name.c_str(), time_threshold * 100,
      score_threshold * 100, quality_threshold * 100);
  std::printf("%-44s %14s %14s %9s\n", "metric", "before", "after",
              "delta");
  size_t regressions = 0, compared = 0;
  for (const auto& [name, b] : before) {
    auto it = after.find(name);
    if (it == after.end()) continue;
    const MetricValue& a = it->second;
    ++compared;
    const double rel =
        b.value != 0.0 ? (a.value - b.value) / std::fabs(b.value)
                       : (a.value != 0.0 ? 1.0 : 0.0);
    const Direction direction = DirectionOf(b.unit);
    bool regressed = false;
    if (direction == Direction::kHigherIsWorse) {
      if (b.unit == "rate") {
        regressed = rel > quality_threshold;
      } else {
        const bool above_floor = ToSeconds(b.value, b.unit) >= min_seconds ||
                                 ToSeconds(a.value, a.unit) >= min_seconds;
        regressed = above_floor && rel > time_threshold;
      }
    } else if (direction == Direction::kLowerIsWorse) {
      regressed = rel < -score_threshold;
    }
    // Print every gated metric and any informational metric that moved.
    if (direction != Direction::kInformational || std::fabs(rel) > 1e-9) {
      std::printf("%-44s %14.6g %14.6g %+8.1f%%%s\n", name.c_str(), b.value,
                  a.value, rel * 100,
                  regressed ? "  REGRESSION" : "");
    }
    if (regressed) ++regressions;
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "report_diff: no comparable metrics between inputs\n");
    return 2;
  }
  if (regressions > 0) {
    std::printf("report_diff: %zu regression(s) beyond threshold\n",
                regressions);
    return 1;
  }
  std::printf("report_diff: OK (%zu metrics compared)\n", compared);
  return 0;
}
