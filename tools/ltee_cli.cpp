// Command-line interface to the LTEE library: generate a synthetic
// experiment environment to files, inspect knowledge bases and corpora,
// and run the full pipeline over file-based inputs (or a default
// synthetic dataset), exporting discovered long-tail entities as RDF
// N-Triples plus optional observability artifacts.
//
// Usage:
//   ltee_cli generate --out DIR [--scale S] [--seed N]
//   ltee_cli stats --kb FILE | --corpus FILE
//   ltee_cli run [--kb FILE --corpus FILE --gs-corpus FILE --gold FILE]
//            [--scale S] [--ntriples FILE] [--min-facts N] [--dedup]
//            [--seed N] [--trace-out FILE] [--metrics-out FILE]
//            [--provenance-out FILE] [--log-level LEVEL]
//            [--status-port PORT]
//   ltee_cli explain [QUERY] --ledger FILE [--property NAME] [--first]
//            [--json]
//   ltee_cli analyze-trace TRACE.json [--json]
//
// Without the four input files, `run` builds the default synthetic
// dataset in memory. --trace-out enables tracing and writes Chrome
// trace-event JSON (open in Perfetto); --metrics-out writes the run
// report (per-stage wall times + metrics snapshot) as JSON; --log-level
// overrides LTEE_LOG_LEVEL.
//
// --provenance-out enables the decision-provenance ledger (every schema
// mapping, cluster membership, fused value, NEW/EXISTING verdict and KB
// mutation of the run) and writes it as JSON lines; `explain` then walks
// a fact's lineage backwards through that ledger: KB triple -> fused
// value -> source cells -> cluster memberships -> column mappings.
//
// --status-port (or the LTEE_STATUS_PORT env var) serves live
// introspection while the run executes: GET /metrics (Prometheus text),
// /report (latest run report), /trace (Chrome trace JSON), /provenance
// (published ledger; ?entity= filters to a lineage), /healthz.
// `analyze-trace` aggregates an exported trace into per-span self-time /
// percentile statistics and per-class critical paths (--json switches
// the output to machine-readable JSON).

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "eval/gold_serialization.h"
#include "kb/applier.h"
#include "kb/serialization.h"
#include "obsv/access_log.h"
#include "obsv/crash_flush.h"
#include "obsv/http_client.h"
#include "obsv/memtrack.h"
#include "obsv/profiler.h"
#include "obsv/span_analytics.h"
#include "obsv/status_server.h"
#include "pipeline/dedup.h"
#include "pipeline/delta.h"
#include "pipeline/kb_update.h"
#include "pipeline/pipeline.h"
#include "pipeline/slot_filling.h"
#include "pipeline/training.h"
#include "prov/explain.h"
#include "prov/ledger.h"
#include "serve/kb_endpoints.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_io.h"
#include "synth/dataset.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "webtable/serialization.h"

namespace {

using namespace ltee;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = std::string("1");
    }
  }
  return flags;
}

/// First argument after `first` that is neither a flag nor a flag's
/// value, following the same pairing rule as ParseFlags.
std::string FirstPositional(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) ++i;
      continue;
    }
    return argv[i];
  }
  return "";
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ltee_cli generate --out DIR [--scale S] [--seed N] "
               "[--delta-split N]\n"
               "  ltee_cli stats --kb FILE | --corpus FILE\n"
               "  ltee_cli run [--kb FILE --corpus FILE --gs-corpus FILE "
               "--gold FILE] [--scale S] [--ntriples FILE] [--min-facts N] "
               "[--dedup] [--seed N] [--state-out DIR] [--trace-out FILE] "
               "[--metrics-out FILE] [--provenance-out FILE] "
               "[--profile-out FILE] [--profile-hz N] "
               "[--memtrack] [--heap-profile-out FILE] "
               "[--heap-sample-kb N] "
               "[--log-level debug|info|warning|error] [--status-port PORT] "
               "[--status-linger SECONDS]\n"
               "  ltee_cli ingest --state DIR --delta FILE "
               "[--publish-snapshot FILE] [--snapshot-version N] "
               "[--ledger FILE]\n"
               "  ltee_cli explain [QUERY] --ledger FILE [--property NAME] "
               "[--first] [--json]\n"
               "  ltee_cli analyze-trace TRACE.json [--json]\n"
               "  ltee_cli analyze-profile PROFILE.collapsed [--json] "
               "[--top N]\n"
               "  ltee_cli analyze-memory PROFILE.collapsed [--json] "
               "[--top N]\n"
               "  ltee_cli serve --snapshot FILE [--port PORT] [--shards N] "
               "[--workers N] [--cache-capacity N] [--linger SECONDS] "
               "[--watch] [--trace-out FILE] [--access-log FILE] "
               "[--slow-ms MS]\n"
               "  ltee_cli get --port PORT --path /kb/... [--expect-json] "
               "[--traceparent HEADER] [--show-traceparent]\n"
               "run uses the default synthetic dataset when the four input "
               "files are omitted; --status-port (or LTEE_STATUS_PORT) "
               "serves /metrics /report /trace /provenance /healthz while it "
               "executes. --provenance-out records every pipeline decision "
               "as JSON lines; explain prints the lineage of the accepted "
               "facts whose subject contains QUERY. "
               "run --publish-snapshot FILE writes the enriched KB as a "
               "binary serving snapshot at end of run "
               "(--snapshot-version stamps it); run --state-out DIR "
               "persists the delta-resumable state; ingest appends the "
               "delta tables, reruns only affected classes, and publishes "
               "the next snapshot version; serve answers /kb/entity "
               "/kb/search /kb/classes /kb/snapshot (plus /metrics /stats "
               "/healthz) from such a file until SIGINT/SIGTERM "
               "(--watch republishes when the snapshot file changes; "
               "--trace-out exports the request spans on shutdown, "
               "--access-log writes the request ring as JSON lines, "
               "--slow-ms sets the slow-request WARNING threshold); get "
               "is a dependency-free loopback HTTP client for scripts "
               "(--traceparent sends the header downstream, "
               "--show-traceparent prints the server's response header on "
               "stderr). run --profile-out samples the pipeline's CPU "
               "(--profile-hz, default 99) and writes flamegraph.pl-ready "
               "collapsed stacks; analyze-profile aggregates such a file "
               "(top functions by self samples + per-span CPU); a status "
               "or serve port also answers GET /profile?seconds=N&hz=H "
               "with a live capture. run --memtrack (or LTEE_MEMTRACK=1) "
               "counts every allocation cheaply (per-stage byte deltas "
               "and peak RSS land in the run report); --heap-profile-out "
               "additionally attributes bytes to the open span and samples "
               "allocation stacks (~1 per --heap-sample-kb KB, default 64) "
               "and writes a collapsed heap profile weighted by live "
               "bytes; analyze-memory aggregates such a file; a status or "
               "serve port also answers GET /memory?seconds=N&sample_kb=K "
               "with a live heap capture\n");
  return 2;
}

int Generate(const std::map<std::string, std::string>& flags) {
  auto out_it = flags.find("out");
  if (out_it == flags.end()) return Usage();
  const std::string dir = out_it->second;
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  synth::DatasetOptions options;
  if (auto it = flags.find("scale"); it != flags.end()) {
    options.scale = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("seed"); it != flags.end()) {
    options.seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  auto dataset = synth::BuildDataset(options);

  auto write = [&dir](const std::string& name, auto&& saver) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    saver(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  bool ok = true;
  ok &= write("kb.tsv", [&](std::ostream& out) {
    kb::SaveKnowledgeBase(dataset.kb, out);
  });
  ok &= write("corpus.tsv", [&](std::ostream& out) {
    webtable::SaveCorpus(dataset.corpus, out);
  });
  ok &= write("gs_corpus.tsv", [&](std::ostream& out) {
    webtable::SaveCorpus(dataset.gs_corpus, out);
  });
  ok &= write("gold.tsv", [&](std::ostream& out) {
    eval::SaveGoldStandards(dataset.gold, out);
  });

  // --delta-split N: additionally write the corpus as a base part and a
  // delta part of N tables, the inputs of a `run --state-out` followed by
  // an `ingest --delta` (full(A+B) must equal full(A)+delta(B)).
  if (auto it = flags.find("delta-split"); it != flags.end()) {
    const size_t requested =
        static_cast<size_t>(std::atoll(it->second.c_str()));
    const size_t delta = std::min(dataset.corpus.size(), requested);
    const size_t num_base = dataset.corpus.size() - delta;
    webtable::TableCorpus base_corpus, delta_corpus;
    for (size_t t = 0; t < dataset.corpus.size(); ++t) {
      webtable::WebTable copy =
          dataset.corpus.table(static_cast<webtable::TableId>(t));
      if (t < num_base) {
        base_corpus.Add(std::move(copy));
      } else {
        delta_corpus.Add(std::move(copy));
      }
    }
    ok &= write("corpus_base.tsv", [&](std::ostream& out) {
      webtable::SaveCorpus(base_corpus, out);
    });
    ok &= write("corpus_delta.tsv", [&](std::ostream& out) {
      webtable::SaveCorpus(delta_corpus, out);
    });
  }
  return ok ? 0 : 1;
}

int Stats(const std::map<std::string, std::string>& flags) {
  if (auto it = flags.find("kb"); it != flags.end()) {
    std::ifstream in(it->second);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", it->second.c_str());
      return 1;
    }
    auto kb = kb::LoadKnowledgeBase(in);
    if (!kb) return 1;
    std::printf("%zu classes, %zu properties, %zu instances\n",
                kb->num_classes(), kb->num_properties(), kb->num_instances());
    for (size_t c = 0; c < kb->num_classes(); ++c) {
      const auto stats = kb->StatsOfClass(static_cast<kb::ClassId>(c));
      if (stats.instances == 0) continue;
      std::printf("  %-26s %8zu instances %10zu facts\n",
                  kb->cls(static_cast<kb::ClassId>(c)).name.c_str(),
                  stats.instances, stats.facts);
    }
    return 0;
  }
  if (auto it = flags.find("corpus"); it != flags.end()) {
    std::ifstream in(it->second);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", it->second.c_str());
      return 1;
    }
    auto corpus = webtable::LoadCorpus(in);
    if (!corpus) return 1;
    const auto stats = corpus->Stats();
    std::printf("%zu tables, %zu rows\n", stats.num_tables,
                corpus->TotalRows());
    std::printf("rows    avg %.2f median %.1f min %.0f max %.0f\n",
                stats.rows.average, stats.rows.median, stats.rows.min,
                stats.rows.max);
    std::printf("columns avg %.2f median %.1f min %.0f max %.0f\n",
                stats.columns.average, stats.columns.median,
                stats.columns.min, stats.columns.max);
    return 0;
  }
  return Usage();
}

int Run(const std::map<std::string, std::string>& flags) {
  // --trace-out implies tracing on (LTEE_TRACE=1 enables it without a
  // flag; the export then has to be requested explicitly).
  const bool want_trace = flags.count("trace-out") > 0;
  if (want_trace) util::trace::SetEnabled(true);

  // Memory accounting must be on before the pipeline allocates anything:
  // per-stage byte deltas in the run report read the live counter.
  // --heap-profile-out implies --memtrack (the profiler session would
  // enable it anyway; doing it here covers dataset synthesis too).
  const bool want_heap = flags.count("heap-profile-out") > 0;
  const bool want_memtrack = want_heap || flags.count("memtrack") > 0;
  if (want_memtrack) {
    if (!obsv::MemTrackingSupported()) {
      std::fprintf(stderr,
                   "warning: memory tracking unsupported in this build "
                   "(sanitizer or non-Linux); counters stay zero\n");
    }
    obsv::SetMemTrackingEnabled(true);
  }

  // A crashing run still flushes its observability artifacts: arm now,
  // disarm after the normal export paths below have written the files.
  const bool want_profile = flags.count("profile-out") > 0;
  if (want_trace || flags.count("metrics-out") || want_profile ||
      want_heap) {
    obsv::ArmCrashFlush(
        want_trace ? flags.at("trace-out") : std::string(),
        flags.count("metrics-out") ? flags.at("metrics-out")
                                   : std::string(),
        std::string(),
        want_profile ? flags.at("profile-out") : std::string(),
        want_heap ? flags.at("heap-profile-out") : std::string());
  }

  // Live introspection: --status-port wins over LTEE_STATUS_PORT.
  obsv::StatusServer status_server;
  int status_port = -1;
  if (auto it = flags.find("status-port"); it != flags.end()) {
    status_port = std::atoi(it->second.c_str());
  } else if (const char* env = std::getenv("LTEE_STATUS_PORT");
             env != nullptr && *env != '\0') {
    status_port = std::atoi(env);
  }
  if (status_port >= 0) {
    std::string error;
    if (!status_server.Start(static_cast<uint16_t>(status_port), &error)) {
      std::fprintf(stderr, "cannot start status server on port %d: %s\n",
                   status_port, error.c_str());
      return 1;
    }
    std::printf(
        "status server on http://localhost:%u "
        "(/metrics /report /trace /provenance /profile /memory /healthz)\n",
        status_server.port());
  }

  const bool any_file = flags.count("kb") || flags.count("corpus") ||
                        flags.count("gs-corpus") || flags.count("gold");
  std::optional<synth::SyntheticDataset> dataset;
  std::optional<kb::KnowledgeBase> kb_storage;
  std::optional<webtable::TableCorpus> corpus_storage, gs_storage;
  std::optional<std::vector<eval::GoldStandard>> gold_storage;
  kb::KnowledgeBase* kb = nullptr;
  const webtable::TableCorpus* corpus = nullptr;
  const webtable::TableCorpus* gs_corpus = nullptr;
  const std::vector<eval::GoldStandard>* gold = nullptr;

  if (any_file) {
    for (const char* required : {"kb", "corpus", "gs-corpus", "gold"}) {
      if (!flags.count(required)) return Usage();
    }
    std::ifstream kb_in(flags.at("kb"));
    kb_storage = kb::LoadKnowledgeBase(kb_in);
    std::ifstream corpus_in(flags.at("corpus"));
    corpus_storage = webtable::LoadCorpus(corpus_in);
    std::ifstream gs_in(flags.at("gs-corpus"));
    gs_storage = webtable::LoadCorpus(gs_in);
    std::ifstream gold_in(flags.at("gold"));
    gold_storage = eval::LoadGoldStandards(gold_in);
    if (!kb_storage || !corpus_storage || !gs_storage || !gold_storage) {
      std::fprintf(stderr, "failed to load inputs\n");
      return 1;
    }
    kb = &*kb_storage;
    corpus = &*corpus_storage;
    gs_corpus = &*gs_storage;
    gold = &*gold_storage;
  } else {
    synth::DatasetOptions dataset_options;
    if (auto it = flags.find("scale"); it != flags.end()) {
      dataset_options.scale = std::atof(it->second.c_str());
    }
    if (auto it = flags.find("seed"); it != flags.end()) {
      dataset_options.seed = std::strtoull(it->second.c_str(), nullptr, 10);
    }
    dataset = synth::BuildDataset(dataset_options);
    kb = &dataset->kb;
    corpus = &dataset->corpus;
    gs_corpus = &dataset->gs_corpus;
    gold = &dataset->gold;
  }

  uint64_t seed = 7;
  if (auto it = flags.find("seed"); it != flags.end()) {
    seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  // Sample from training through changeset apply — the CPU the pipeline
  // itself burns, excluding dataset synthesis and file exports.
  if (want_profile) {
    obsv::ProfilerOptions profiler_options;
    if (auto it = flags.find("profile-hz"); it != flags.end()) {
      profiler_options.hz = std::atoi(it->second.c_str());
    }
    std::string error;
    if (!obsv::StartProfiler(profiler_options, &error)) {
      std::fprintf(stderr, "cannot start profiler: %s\n", error.c_str());
      return 1;
    }
  }
  // Same window for the heap profiler: allocation stacks from training
  // through changeset apply.
  if (want_heap) {
    obsv::HeapProfilerOptions heap_options;
    if (auto it = flags.find("heap-sample-kb"); it != flags.end()) {
      heap_options.sample_bytes =
          static_cast<size_t>(std::atoll(it->second.c_str())) * 1024;
    }
    std::string error;
    if (!obsv::StartHeapProfiler(heap_options, &error)) {
      std::fprintf(stderr, "cannot start heap profiler: %s\n",
                   error.c_str());
      return 1;
    }
  }

  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(*kb, options);
  util::Rng rng(seed);
  pipeline::TrainPipelineOnGold(&pipe, *gs_corpus, *gold, rng);

  // Enable the decision ledger only now: training probes Cluster()/Match()
  // internals and would pollute the record of the actual run.
  const bool want_prov = flags.count("provenance-out") > 0;
  if (want_prov) {
    prov::SetEnabled(true);
    prov::Clear();
  }

  std::vector<kb::ClassId> classes;
  for (const auto& gs : *gold) classes.push_back(gs.cls);
  auto run = pipe.Run(*corpus, classes);
  if (status_server.running()) {
    // Publish as soon as the pipeline finishes; the post-run stages below
    // re-publish with their counters folded in.
    status_server.PublishReport(pipeline::RunReportToJson(run.report));
  }

  pipeline::KbUpdateOptions update_options;
  if (auto it = flags.find("min-facts"); it != flags.end()) {
    update_options.min_facts =
        static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  std::ofstream ntriples;
  const bool export_nt = flags.count("ntriples") > 0;
  if (export_nt) {
    ntriples.open(flags.at("ntriples"));
    if (!ntriples) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.at("ntriples").c_str());
      return 1;
    }
  }

  // Stage every class sweep against the still-immutable base KB, then
  // apply the typed changeset through the kb::Applier — the single KB
  // write path the delta ingest shares.
  pipeline::StageClassOptions stage_options;
  stage_options.dedup = flags.count("dedup") > 0;
  stage_options.update = update_options;
  stage_options.ntriples = export_nt ? &ntriples : nullptr;

  kb::Applier applier(kb);
  std::vector<size_t> merges_of_class;
  merges_of_class.reserve(run.classes.size());
  for (auto& class_run : run.classes) {
    auto staged = pipeline::StageClassRun(*kb, class_run, stage_options);
    merges_of_class.push_back(staged.dedup_merges);
    applier.Stage(std::move(staged.change));
  }
  kb::ChangeSet changes = applier.TakeStaged();

  // --state-out: persist everything a later `ltee_cli ingest` needs to
  // continue this run incrementally. The base KB must be written before
  // the changeset is applied below (the changeset replays against it).
  std::string state_dir;
  if (auto it = flags.find("state-out"); it != flags.end()) {
    state_dir = it->second;
    if (::mkdir(state_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "cannot create %s\n", state_dir.c_str());
      return 1;
    }
    auto write = [&state_dir](const std::string& name, auto&& saver) {
      const std::string path = state_dir + "/" + name;
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      saver(out);
      return true;
    };
    bool ok = true;
    ok &= write("base_kb.tsv",
                [&](std::ostream& out) { kb::SaveKnowledgeBase(*kb, out); });
    ok &= write("corpus.tsv",
                [&](std::ostream& out) { webtable::SaveCorpus(*corpus, out); });
    ok &= write("gs_corpus.tsv", [&](std::ostream& out) {
      webtable::SaveCorpus(*gs_corpus, out);
    });
    ok &= write("gold.tsv", [&](std::ostream& out) {
      eval::SaveGoldStandards(*gold, out);
    });
    if (!ok) return 1;
  }

  const kb::ApplyOutcome outcome = kb::ApplyChangeSet(kb, changes);
  if (want_profile) obsv::StopProfiler();
  if (want_heap) obsv::StopHeapProfiler();
  for (size_t i = 0; i < run.classes.size(); ++i) {
    const auto& class_run = run.classes[i];
    const kb::ClassApplyOutcome& applied = outcome.classes[i];
    std::printf("%-26s rows=%zu clusters=%d new=%zu facts=%zu merges=%zu\n",
                kb->cls(class_run.cls).name.c_str(),
                class_run.rows.rows.size(), class_run.num_clusters,
                applied.instances_added, applied.facts_added,
                merges_of_class[i]);
  }
  std::printf("total: %zu new entities, %zu facts, %zu slot fills\n",
              outcome.instances_added, outcome.facts_added,
              outcome.slot_fills);
  if (export_nt) {
    std::printf("N-Triples written to %s\n", flags.at("ntriples").c_str());
  }

  uint64_t snapshot_version = 1;
  if (auto v = flags.find("snapshot-version"); v != flags.end()) {
    snapshot_version = std::strtoull(v->second.c_str(), nullptr, 10);
  }

  // The enriched KB (slot fills + new entities applied above) as a
  // binary serving snapshot, ready for `ltee_cli serve`.
  if (auto it = flags.find("publish-snapshot"); it != flags.end()) {
    std::string error;
    if (!serve::SaveSnapshotFile(*kb, snapshot_version, it->second,
                                 &error)) {
      std::fprintf(stderr, "cannot publish snapshot: %s\n", error.c_str());
      return 1;
    }
    std::printf("snapshot v%llu written to %s (%zu instances)\n",
                static_cast<unsigned long long>(snapshot_version),
                it->second.c_str(), kb->num_instances());
  }

  if (!state_dir.empty()) {
    pipeline::DeltaState state;
    state.seed = seed;
    state.dedup = stage_options.dedup;
    state.min_facts = update_options.min_facts;
    state.snapshot_version = snapshot_version;
    state.classes = classes;
    state.mappings = run.mappings;
    state.feedback = run.feedback;
    state.changes = std::move(changes);
    const std::string path = state_dir + "/state.tsv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    pipeline::SaveDeltaState(state, out);
    std::printf("delta state written to %s\n", state_dir.c_str());
  }

  std::string ledger;
  if (want_prov) {
    // Fold the post-run stage counters into the quality gauges before the
    // report snapshot below.
    prov::RefreshQualityGauges();
    ledger = prov::ExportJsonLines();
    const std::string& path = flags.at("provenance-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << ledger;
    std::printf("provenance ledger written to %s (%zu events)\n",
                path.c_str(), prov::EventCount());
  }

  // Re-snapshot so the post-run stages (dedup, slot filling, KB update)
  // are part of the exported/published report.
  run.report.metrics = util::Metrics().Snapshot();
  if (status_server.running()) {
    status_server.PublishReport(pipeline::RunReportToJson(run.report));
    if (want_prov) status_server.PublishProvenance(ledger);
  }
  if (auto it = flags.find("metrics-out"); it != flags.end()) {
    std::ofstream out(it->second);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", it->second.c_str());
      return 1;
    }
    out << pipeline::RunReportToJson(run.report) << "\n";
    std::printf("metrics written to %s\n", it->second.c_str());
  }
  if (want_trace) {
    const std::string& path = flags.at("trace-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    util::trace::ExportChromeTrace(out);
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                path.c_str());
  }
  if (want_profile) {
    const std::string& path = flags.at("profile-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << obsv::CollectCollapsedProfile();
    const obsv::ProfileStats stats = obsv::CurrentProfileStats();
    std::printf(
        "profile written to %s (%llu samples @ %d Hz, %llu dropped; "
        "feed to flamegraph.pl or ltee_cli analyze-profile)\n",
        path.c_str(), static_cast<unsigned long long>(stats.samples),
        stats.hz, static_cast<unsigned long long>(stats.dropped));
    obsv::ResetProfiler();
  }
  if (want_heap) {
    const std::string& path = flags.at("heap-profile-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << obsv::CollectCollapsedHeapProfile();
    const obsv::HeapProfileStats stats = obsv::CurrentHeapProfileStats();
    std::printf(
        "heap profile written to %s (%llu sampled allocations, ~1 per "
        "%zu KB, %llu dropped; feed to flamegraph.pl or ltee_cli "
        "analyze-memory)\n",
        path.c_str(), static_cast<unsigned long long>(stats.samples),
        stats.sample_kb, static_cast<unsigned long long>(stats.dropped));
    obsv::ResetHeapProfiler();
  }
  obsv::DisarmCrashFlush();
  if (status_server.running()) {
    // Give late scrapers a beat if requested, then shut down cleanly.
    if (auto it = flags.find("status-linger"); it != flags.end()) {
      const int seconds = std::atoi(it->second.c_str());
      std::printf("status server lingering %ds for final scrapes\n",
                  seconds);
      std::this_thread::sleep_for(std::chrono::seconds(seconds));
    }
    status_server.Stop();
  }
  return 0;
}

/// `ltee_cli ingest`: incremental continuation of a `run --state-out`.
/// Loads the persisted state, appends the delta tables, reruns the scoped
/// pipeline (only classes the new tables affect), merges the staged
/// changes into the cumulative changeset, applies it to a fresh copy of
/// the base KB, optionally publishes the result as the next snapshot
/// version, and rewrites the state directory for the ingest after this
/// one.
int Ingest(const std::map<std::string, std::string>& flags) {
  auto state_it = flags.find("state");
  auto delta_it = flags.find("delta");
  if (state_it == flags.end() || delta_it == flags.end()) return Usage();
  const std::string dir = state_it->second;

  auto open = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return in;
  };
  std::ifstream kb_in = open(dir + "/base_kb.tsv");
  std::ifstream corpus_in = open(dir + "/corpus.tsv");
  std::ifstream gs_in = open(dir + "/gs_corpus.tsv");
  std::ifstream gold_in = open(dir + "/gold.tsv");
  std::ifstream state_in = open(dir + "/state.tsv");
  std::ifstream delta_in = open(delta_it->second);
  if (!kb_in || !corpus_in || !gs_in || !gold_in || !state_in || !delta_in) {
    return 1;
  }
  auto kb = kb::LoadKnowledgeBase(kb_in);
  auto corpus = webtable::LoadCorpus(corpus_in);
  auto gs_corpus = webtable::LoadCorpus(gs_in);
  auto gold = eval::LoadGoldStandards(gold_in);
  auto state = pipeline::LoadDeltaState(state_in);
  auto delta_corpus = webtable::LoadCorpus(delta_in);
  if (!kb || !corpus || !gs_corpus || !gold || !state || !delta_corpus) {
    std::fprintf(stderr, "failed to load state from %s\n", dir.c_str());
    return 1;
  }
  std::vector<webtable::WebTable> batch;
  batch.reserve(delta_corpus->size());
  for (const webtable::WebTable& table : delta_corpus->tables()) {
    batch.push_back(table);
  }

  // Reconstruct the exact pipeline of the original run: same KB, same
  // options, same training seed — the delta diff is only sound when the
  // trained components match bit for bit.
  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(*kb, options);
  util::Rng rng(state->seed);
  pipeline::TrainPipelineOnGold(&pipe, *gs_corpus, *gold, rng);

  // Like `run`: enable the ledger only after training.
  const bool want_prov = flags.count("ledger") > 0;
  if (want_prov) {
    prov::SetEnabled(true);
    prov::Clear();
  }

  auto result =
      pipeline::DeltaIngest(pipe, &*corpus, std::move(batch), &*state);
  std::printf("ingested %zu tables; recomputed %zu of %zu classes\n",
              result.new_tables, result.recomputed.size(),
              state->classes.size());
  for (kb::ClassId cls : result.recomputed) {
    std::printf("  recomputed %s\n", kb->cls(cls).name.c_str());
  }

  // Apply the merged cumulative changeset to the (still base) KB — this
  // reproduces what a full run over the grown corpus would have built.
  const kb::ApplyOutcome outcome = kb::ApplyChangeSet(&*kb, state->changes);
  std::printf("total: %zu new entities, %zu facts, %zu slot fills\n",
              outcome.instances_added, outcome.facts_added,
              outcome.slot_fills);

  uint64_t snapshot_version = state->snapshot_version + 1;
  if (auto v = flags.find("snapshot-version"); v != flags.end()) {
    snapshot_version = std::strtoull(v->second.c_str(), nullptr, 10);
  }
  if (auto it = flags.find("publish-snapshot"); it != flags.end()) {
    std::string error;
    if (!serve::SaveSnapshotFile(*kb, snapshot_version, it->second,
                                 &error)) {
      std::fprintf(stderr, "cannot publish snapshot: %s\n", error.c_str());
      return 1;
    }
    std::printf("snapshot v%llu written to %s (%zu instances)\n",
                static_cast<unsigned long long>(snapshot_version),
                it->second.c_str(), kb->num_instances());
    state->snapshot_version = snapshot_version;
  }

  if (want_prov) {
    prov::RefreshQualityGauges();
    const std::string& path = flags.at("ledger");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << prov::ExportJsonLines();
    std::printf("provenance ledger written to %s (%zu events)\n",
                path.c_str(), prov::EventCount());
  }

  // Rewrite the grown corpus and the updated state so the next ingest
  // continues from here (base_kb/gs_corpus/gold are unchanged: the
  // changeset stays cumulative against the original base KB).
  {
    const std::string path = dir + "/corpus.tsv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    webtable::SaveCorpus(*corpus, out);
  }
  {
    const std::string path = dir + "/state.tsv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    pipeline::SaveDeltaState(*state, out);
  }
  std::printf("delta state updated in %s\n", dir.c_str());
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleServeSignal(int) { g_serve_stop = 1; }

/// `ltee_cli serve`: loads a snapshot file and answers /kb/* queries
/// (plus the introspection endpoints of StatusServer, so the
/// `ltee.serve.*` metrics are scrapable at /metrics) until SIGINT or
/// SIGTERM.
int Serve(const std::map<std::string, std::string>& flags) {
  auto snapshot_it = flags.find("snapshot");
  if (snapshot_it == flags.end()) return Usage();

  // Request observability: --trace-out turns tracing on (every request
  // gets an http.request span carrying its trace id) and exports the
  // buffers on shutdown; --access-log writes the request ring as JSON
  // lines; --slow-ms lowers/raises the slow-request WARNING threshold.
  // All three also flush on a crash, which is when a serving process
  // needs them most.
  const std::string trace_out =
      flags.count("trace-out") ? flags.at("trace-out") : std::string();
  const std::string access_log_out =
      flags.count("access-log") ? flags.at("access-log") : std::string();
  if (!trace_out.empty()) util::trace::SetEnabled(true);
  if (auto it = flags.find("slow-ms"); it != flags.end()) {
    obsv::GlobalAccessLog().SetSlowThresholdMs(std::atof(it->second.c_str()));
  }
  if (!trace_out.empty() || !access_log_out.empty()) {
    obsv::ArmCrashFlush(trace_out, std::string(), access_log_out);
  }
  size_t shards = 4;
  if (auto it = flags.find("shards"); it != flags.end()) {
    shards = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  std::string error;
  auto snapshot = serve::LoadSnapshot(snapshot_it->second, shards, &error);
  if (snapshot == nullptr) {
    std::fprintf(stderr, "cannot load snapshot: %s\n", error.c_str());
    return 1;
  }

  serve::QueryEngineOptions engine_options;
  if (auto it = flags.find("cache-capacity"); it != flags.end()) {
    engine_options.cache_capacity_per_shard = std::max<size_t>(
        1, static_cast<size_t>(std::atoll(it->second.c_str())) /
               engine_options.cache_shards);
  }
  serve::QueryEngine engine(engine_options);
  engine.Publish(snapshot);

  size_t workers = 4;
  if (auto it = flags.find("workers"); it != flags.end()) {
    workers = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  obsv::StatusServer status_server(workers);
  serve::RegisterKbEndpoints(&status_server.http(), &engine);
  int port = 0;
  if (auto it = flags.find("port"); it != flags.end()) {
    port = std::atoi(it->second.c_str());
  }
  if (!status_server.Start(static_cast<uint16_t>(port), &error)) {
    std::fprintf(stderr, "cannot start kb service on port %d: %s\n", port,
                 error.c_str());
    return 1;
  }
  std::printf("kb service on http://localhost:%u (snapshot v%llu, "
              "%zu entities, %zu shards; /kb/entity /kb/search /kb/classes "
              "/kb/snapshot /metrics /stats /healthz)\n",
              status_server.port(),
              static_cast<unsigned long long>(snapshot->version()),
              snapshot->num_entities(), snapshot->num_shards());
  std::fflush(stdout);

  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  // --linger bounds the lifetime for scripted smoke tests; without it the
  // service runs until a signal arrives.
  double linger = -1.0;
  if (auto it = flags.find("linger"); it != flags.end()) {
    linger = std::atof(it->second.c_str());
  }
  // --watch: poll the snapshot file and republish on change. The writer
  // side is atomic (tmp + rename), so a changed mtime/size always refers
  // to a complete file; Publish() is the RCU swap — in-flight readers
  // keep their version, new requests see the new one, no stalls.
  const bool watch = flags.count("watch") > 0;
  const std::string& snapshot_path = snapshot_it->second;
  struct stat watch_stat {};
  if (watch) ::stat(snapshot_path.c_str(), &watch_stat);
  uint64_t published_version = snapshot->version();
  int ticks = 0;
  const auto start = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (watch && ++ticks % 4 == 0) {
      struct stat st {};
      if (::stat(snapshot_path.c_str(), &st) == 0 &&
          (st.st_mtim.tv_sec != watch_stat.st_mtim.tv_sec ||
           st.st_mtim.tv_nsec != watch_stat.st_mtim.tv_nsec ||
           st.st_size != watch_stat.st_size)) {
        watch_stat = st;
        auto reloaded = serve::LoadSnapshot(snapshot_path, shards, &error);
        if (reloaded == nullptr) {
          std::fprintf(stderr, "watch: cannot reload snapshot: %s\n",
                       error.c_str());
        } else if (reloaded->version() != published_version) {
          engine.Publish(reloaded);
          published_version = reloaded->version();
          std::printf("published snapshot v%llu (%zu entities)\n",
                      static_cast<unsigned long long>(published_version),
                      reloaded->num_entities());
          std::fflush(stdout);
        }
      }
    }
    if (linger >= 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= linger) {
      break;
    }
  }
  status_server.Stop();

  // Normal shutdown: write the artifacts ourselves and disarm the crash
  // handlers so they do not write a second time.
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (out) {
      out << util::trace::ExportChromeTrace() << "\n";
      std::printf("request trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    }
  }
  if (!access_log_out.empty()) {
    std::ofstream out(access_log_out);
    if (out) {
      out << obsv::GlobalAccessLog().ToJsonLines();
      std::printf("access log (%zu entries) written to %s\n",
                  obsv::GlobalAccessLog().size(), access_log_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", access_log_out.c_str());
    }
  }
  obsv::DisarmCrashFlush();

  std::printf("kb service stopped\n");
  return 0;
}

/// `ltee_cli get`: loopback HTTP client for scripts on hosts without
/// curl. Prints the body; exits 0 only on status 200 (and, with
/// --expect-json, a body that parses as JSON).
int Get(const std::map<std::string, std::string>& flags) {
  auto port_it = flags.find("port");
  auto path_it = flags.find("path");
  if (port_it == flags.end() || path_it == flags.end()) return Usage();
  int status = 0;
  std::string body, error, response_traceparent;
  obsv::HttpGetOptions options;
  if (auto it = flags.find("traceparent"); it != flags.end()) {
    options.traceparent = it->second;
  }
  if (!obsv::HttpGet(static_cast<uint16_t>(std::atoi(port_it->second.c_str())),
                     path_it->second, options, &status, &body,
                     &response_traceparent, &error)) {
    std::fprintf(stderr, "get %s: %s\n", path_it->second.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s\n", body.c_str());
  if (flags.count("show-traceparent")) {
    // stderr so the body on stdout stays pipeable.
    std::fprintf(stderr, "traceparent: %s\n", response_traceparent.c_str());
  }
  if (flags.count("expect-json") &&
      !ltee::util::JsonIsValid(body, &error)) {
    std::fprintf(stderr, "get %s: body is not valid JSON: %s\n",
                 path_it->second.c_str(), error.c_str());
    return 1;
  }
  if (status != 200) {
    std::fprintf(stderr, "get %s: HTTP %d\n", path_it->second.c_str(),
                 status);
    return 1;
  }
  return 0;
}

int Explain(const std::map<std::string, std::string>& flags,
            const std::string& query) {
  auto it = flags.find("ledger");
  if (it == flags.end()) return Usage();
  std::ifstream in(it->second);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", it->second.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  prov::ExplainOptions options;
  options.entity = query;
  if (auto p = flags.find("property"); p != flags.end()) {
    options.property = p->second;
  }
  options.first_only = flags.count("first") > 0;
  options.json = flags.count("json") > 0;
  const prov::ExplainResult result = prov::Explain(buffer.str(), options);
  if (!result.ok) {
    std::fprintf(stderr, "%s: %s\n", it->second.c_str(),
                 result.error.c_str());
    return 1;
  }
  std::fputs(result.output.c_str(), stdout);
  return result.facts_found > 0 ? 0 : 1;
}

int AnalyzeTrace(const std::map<std::string, std::string>& flags,
                 const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  obsv::TraceAnalysis analysis;
  std::string error;
  if (!obsv::AnalyzeChromeTrace(buffer.str(), &analysis, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (flags.count("json")) {
    std::printf("%s\n", obsv::AnalysisToJson(analysis).c_str());
  } else {
    std::fputs(obsv::AnalysisToText(analysis).c_str(), stdout);
  }
  return 0;
}

int AnalyzeProfile(const std::map<std::string, std::string>& flags,
                   const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  obsv::ProfileAnalysis analysis;
  std::string error;
  if (!obsv::ParseCollapsedProfile(buffer.str(), &analysis, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  size_t top_n = 20;
  if (auto it = flags.find("top"); it != flags.end()) {
    top_n = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  if (flags.count("json")) {
    std::printf("%s\n", obsv::ProfileAnalysisToJson(analysis, top_n).c_str());
  } else {
    std::fputs(obsv::ProfileAnalysisToText(analysis, top_n).c_str(), stdout);
  }
  return 0;
}

int AnalyzeMemory(const std::map<std::string, std::string>& flags,
                  const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // The stack lines share the collapsed format with CPU profiles; the
  // heap-specific header + span table parse separately.
  obsv::ProfileAnalysis analysis;
  std::string error;
  if (!obsv::ParseCollapsedProfile(content, &analysis, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  obsv::HeapProfileHeader header;
  if (!obsv::ParseHeapProfileHeader(content, &header)) {
    std::fprintf(stderr,
                 "%s: not a heap profile (no `heap=1` header — use "
                 "analyze-profile for CPU profiles)\n",
                 path.c_str());
    return 1;
  }
  size_t top_n = 20;
  if (auto it = flags.find("top"); it != flags.end()) {
    top_n = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  if (flags.count("json")) {
    std::printf("%s\n",
                obsv::HeapAnalysisToJson(analysis, header, top_n).c_str());
  } else {
    std::fputs(obsv::HeapAnalysisToText(analysis, header, top_n).c_str(),
               stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (auto it = flags.find("log-level"); it != flags.end()) {
    const auto level = ltee::util::ParseLogLevel(it->second);
    if (!level) {
      std::fprintf(stderr, "unknown log level '%s'\n", it->second.c_str());
      return Usage();
    }
    ltee::util::SetLogLevel(*level);
  }
  if (command == "generate") return Generate(flags);
  if (command == "stats") return Stats(flags);
  if (command == "run") return Run(flags);
  if (command == "ingest") return Ingest(flags);
  if (command == "serve") return Serve(flags);
  if (command == "get") return Get(flags);
  if (command == "explain") {
    return Explain(flags, FirstPositional(argc, argv, 2));
  }
  if (command == "analyze-trace") {
    // The trace path is the first non-flag argument after the command.
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        return AnalyzeTrace(flags, argv[i]);
      }
    }
    return Usage();
  }
  if (command == "analyze-profile") {
    const std::string path = FirstPositional(argc, argv, 2);
    if (path.empty()) return Usage();
    return AnalyzeProfile(flags, path);
  }
  if (command == "analyze-memory") {
    const std::string path = FirstPositional(argc, argv, 2);
    if (path.empty()) return Usage();
    return AnalyzeMemory(flags, path);
  }
  return Usage();
}
