// Command-line interface to the LTEE library: generate a synthetic
// experiment environment to files, inspect knowledge bases and corpora,
// and run the full pipeline over file-based inputs, exporting discovered
// long-tail entities as RDF N-Triples.
//
// Usage:
//   ltee_cli generate --out DIR [--scale S] [--seed N]
//   ltee_cli stats --kb FILE | --corpus FILE
//   ltee_cli run --kb FILE --corpus FILE --gs-corpus FILE --gold FILE
//            [--ntriples FILE] [--min-facts N] [--dedup] [--seed N]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "eval/gold_serialization.h"
#include "kb/serialization.h"
#include "pipeline/dedup.h"
#include "pipeline/kb_update.h"
#include "pipeline/pipeline.h"
#include "pipeline/training.h"
#include "synth/dataset.h"
#include "webtable/serialization.h"

namespace {

using namespace ltee;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ltee_cli generate --out DIR [--scale S] [--seed N]\n"
               "  ltee_cli stats --kb FILE | --corpus FILE\n"
               "  ltee_cli run --kb FILE --corpus FILE --gs-corpus FILE "
               "--gold FILE [--ntriples FILE] [--min-facts N] [--dedup] "
               "[--seed N]\n");
  return 2;
}

int Generate(const std::map<std::string, std::string>& flags) {
  auto out_it = flags.find("out");
  if (out_it == flags.end()) return Usage();
  const std::string dir = out_it->second;

  synth::DatasetOptions options;
  if (auto it = flags.find("scale"); it != flags.end()) {
    options.scale = std::atof(it->second.c_str());
  }
  if (auto it = flags.find("seed"); it != flags.end()) {
    options.seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  auto dataset = synth::BuildDataset(options);

  auto write = [&dir](const std::string& name, auto&& saver) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    saver(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  bool ok = true;
  ok &= write("kb.tsv", [&](std::ostream& out) {
    kb::SaveKnowledgeBase(dataset.kb, out);
  });
  ok &= write("corpus.tsv", [&](std::ostream& out) {
    webtable::SaveCorpus(dataset.corpus, out);
  });
  ok &= write("gs_corpus.tsv", [&](std::ostream& out) {
    webtable::SaveCorpus(dataset.gs_corpus, out);
  });
  ok &= write("gold.tsv", [&](std::ostream& out) {
    eval::SaveGoldStandards(dataset.gold, out);
  });
  return ok ? 0 : 1;
}

int Stats(const std::map<std::string, std::string>& flags) {
  if (auto it = flags.find("kb"); it != flags.end()) {
    std::ifstream in(it->second);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", it->second.c_str());
      return 1;
    }
    auto kb = kb::LoadKnowledgeBase(in);
    if (!kb) return 1;
    std::printf("%zu classes, %zu properties, %zu instances\n",
                kb->num_classes(), kb->num_properties(), kb->num_instances());
    for (size_t c = 0; c < kb->num_classes(); ++c) {
      const auto stats = kb->StatsOfClass(static_cast<kb::ClassId>(c));
      if (stats.instances == 0) continue;
      std::printf("  %-26s %8zu instances %10zu facts\n",
                  kb->cls(static_cast<kb::ClassId>(c)).name.c_str(),
                  stats.instances, stats.facts);
    }
    return 0;
  }
  if (auto it = flags.find("corpus"); it != flags.end()) {
    std::ifstream in(it->second);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", it->second.c_str());
      return 1;
    }
    auto corpus = webtable::LoadCorpus(in);
    if (!corpus) return 1;
    const auto stats = corpus->Stats();
    std::printf("%zu tables, %zu rows\n", stats.num_tables,
                corpus->TotalRows());
    std::printf("rows    avg %.2f median %.1f min %.0f max %.0f\n",
                stats.rows.average, stats.rows.median, stats.rows.min,
                stats.rows.max);
    std::printf("columns avg %.2f median %.1f min %.0f max %.0f\n",
                stats.columns.average, stats.columns.median,
                stats.columns.min, stats.columns.max);
    return 0;
  }
  return Usage();
}

int Run(const std::map<std::string, std::string>& flags) {
  for (const char* required : {"kb", "corpus", "gs-corpus", "gold"}) {
    if (!flags.count(required)) return Usage();
  }
  std::ifstream kb_in(flags.at("kb"));
  auto kb = kb::LoadKnowledgeBase(kb_in);
  std::ifstream corpus_in(flags.at("corpus"));
  auto corpus = webtable::LoadCorpus(corpus_in);
  std::ifstream gs_in(flags.at("gs-corpus"));
  auto gs_corpus = webtable::LoadCorpus(gs_in);
  std::ifstream gold_in(flags.at("gold"));
  auto gold = eval::LoadGoldStandards(gold_in);
  if (!kb || !corpus || !gs_corpus || !gold) {
    std::fprintf(stderr, "failed to load inputs\n");
    return 1;
  }

  uint64_t seed = 7;
  if (auto it = flags.find("seed"); it != flags.end()) {
    seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  pipeline::PipelineOptions options;
  pipeline::LteePipeline pipe(*kb, options);
  util::Rng rng(seed);
  pipeline::TrainPipelineOnGold(&pipe, *gs_corpus, *gold, rng);

  std::vector<kb::ClassId> classes;
  for (const auto& gs : *gold) classes.push_back(gs.cls);
  auto run = pipe.Run(*corpus, classes);

  pipeline::KbUpdateOptions update_options;
  if (auto it = flags.find("min-facts"); it != flags.end()) {
    update_options.min_facts =
        static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  std::ofstream ntriples;
  const bool export_nt = flags.count("ntriples") > 0;
  if (export_nt) {
    ntriples.open(flags.at("ntriples"));
    if (!ntriples) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.at("ntriples").c_str());
      return 1;
    }
  }

  size_t total_new = 0, total_facts = 0;
  for (auto& class_run : run.classes) {
    std::vector<fusion::CreatedEntity> entities = class_run.entities;
    std::vector<newdetect::Detection> detections = class_run.detections;
    size_t merges = 0;
    if (flags.count("dedup")) {
      auto deduped = pipeline::DeduplicateEntities(std::move(entities),
                                                   std::move(detections));
      entities = std::move(deduped.entities);
      detections = std::move(deduped.detections);
      merges = deduped.merges;
    }
    size_t new_count = 0, facts = 0;
    for (size_t e = 0; e < entities.size(); ++e) {
      if (!detections[e].is_new ||
          entities[e].facts.size() < update_options.min_facts) {
        continue;
      }
      ++new_count;
      facts += entities[e].facts.size();
    }
    std::printf("%-26s rows=%zu clusters=%d new=%zu facts=%zu merges=%zu\n",
                kb->cls(class_run.cls).name.c_str(),
                class_run.rows.rows.size(), class_run.num_clusters,
                new_count, facts, merges);
    total_new += new_count;
    total_facts += facts;
    if (export_nt) {
      pipeline::ExportNTriples(*kb, entities, detections,
                               "http://ltee.example.org/", ntriples,
                               update_options);
    }
  }
  std::printf("total: %zu new entities, %zu facts\n", total_new, total_facts);
  if (export_nt) {
    std::printf("N-Triples written to %s\n", flags.at("ntriples").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "stats") return Stats(flags);
  if (command == "run") return Run(flags);
  return Usage();
}
