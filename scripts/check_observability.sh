#!/usr/bin/env bash
# CI job for the observability surface: builds the tree, runs every test
# labelled `observability` (unit tests, the validate_trace smoke check and
# the bench_regression gate), then appends a quick-bench data point to the
# repo-level BENCH_history.json and diffs it against the seed entry so the
# perf trajectory of the synthetic benchmarks is gated on every run.
#
# Usage: scripts/check_observability.sh [BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

ctest --test-dir "${BUILD_DIR}" -L observability --output-on-failure -j "$(nproc)"

# Perf trajectory against the committed history: each CI run appends one
# commit-stamped quick-bench entry and compares the newest entry with the
# seed (first) entry. The generous threshold tolerates machine variance in
# wall_ms while still catching order-of-magnitude regressions; the
# deterministic count/score metrics gate at the defaults.
"${BUILD_DIR}/tools/bench_history" --quick \
    --bench-dir "${BUILD_DIR}/bench" \
    --out "${REPO_ROOT}/BENCH_history.json"
"${BUILD_DIR}/tools/report_diff" \
    --history "${REPO_ROOT}/BENCH_history.json" --against-seed \
    --threshold 100

# Decision-provenance end to end: a fixed-seed pipeline run writing its
# ledger, structural validation of every event line (util/json_parse via
# validate_ledger), and one explain query resolving a real subject pulled
# from the ledger back to a complete lineage.
LEDGER="${BUILD_DIR}/provenance.jsonl"
"${BUILD_DIR}/tools/ltee_cli" run --scale 0.002 --seed 41 --dedup \
    --provenance-out "${LEDGER}" >/dev/null

"${BUILD_DIR}/tools/validate_ledger" "${LEDGER}"

SUBJECT="$(grep -m1 '"reason":"new_entity"' "${LEDGER}" \
    | sed 's/.*"subject":"\([^"]*\)".*/\1/')"
if [[ -z "${SUBJECT}" ]]; then
    echo "check_observability: FAIL: no accepted new_entity fact in ledger" >&2
    exit 1
fi
EXPLAIN="$("${BUILD_DIR}/tools/ltee_cli" explain "${SUBJECT}" \
    --ledger "${LEDGER}" --first)"
echo "${EXPLAIN}"
if ! grep -q "chain: COMPLETE" <<<"${EXPLAIN}"; then
    echo "check_observability: FAIL: explain '${SUBJECT}' has missing lineage links" >&2
    exit 1
fi

# Serving layer end to end: publish a snapshot from a tiny fixed-seed run,
# serve it on an ephemeral port with request observability on (tracing,
# access log), query the JSON endpoints through the loopback client
# (`ltee_cli get` wraps obsv::HttpGet and validates the body parses as
# JSON), then shut the server down cleanly via SIGTERM.
SNAPSHOT="${BUILD_DIR}/smoke_snapshot.bin"
"${BUILD_DIR}/tools/ltee_cli" run --scale 0.002 --seed 41 \
    --publish-snapshot "${SNAPSHOT}" >/dev/null

SERVE_LOG="${BUILD_DIR}/smoke_serve.log"
SERVE_TRACE="${BUILD_DIR}/smoke_serve_trace.json"
ACCESS_LOG="${BUILD_DIR}/smoke_access.jsonl"
rm -f "${SERVE_TRACE}" "${ACCESS_LOG}"
"${BUILD_DIR}/tools/ltee_cli" serve --snapshot "${SNAPSHOT}" --port 0 \
    --trace-out "${SERVE_TRACE}" --access-log "${ACCESS_LOG}" \
    >"${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n 's|.*http://localhost:\([0-9]*\).*|\1|p' "${SERVE_LOG}")"
    [[ -n "${PORT}" ]] && break
    sleep 0.1
done
if [[ -z "${PORT}" ]]; then
    echo "check_observability: FAIL: kb service did not report a port" >&2
    cat "${SERVE_LOG}" >&2
    exit 1
fi

"${BUILD_DIR}/tools/ltee_cli" get --port "${PORT}" \
    --path '/kb/entity?id=0' --expect-json >/dev/null
"${BUILD_DIR}/tools/ltee_cli" get --port "${PORT}" \
    --path '/kb/search?q=the&k=3' --expect-json >/dev/null
"${BUILD_DIR}/tools/ltee_cli" get --port "${PORT}" \
    --path '/kb/snapshot' --expect-json >/dev/null

# Request-scoped observability: send a request with a known traceparent
# and require the server to continue that exact trace — the response
# header carries the id back, and (checked after shutdown below) so do
# the access log and the exported request trace.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
"${BUILD_DIR}/tools/ltee_cli" get --port "${PORT}" \
    --path '/kb/entity?id=1' --expect-json \
    --traceparent "00-${TRACE_ID}-00f067aa0ba902b7-01" \
    --show-traceparent >"${BUILD_DIR}/smoke_get.out" \
    2>"${BUILD_DIR}/smoke_get.err"
if ! grep -q "traceparent: 00-${TRACE_ID}-" "${BUILD_DIR}/smoke_get.err"; then
    echo "check_observability: FAIL: response did not continue the sent trace" >&2
    cat "${BUILD_DIR}/smoke_get.err" >&2
    exit 1
fi

# The rolling window behind GET /stats must already report percentiles
# for the traffic above.
STATS="$("${BUILD_DIR}/tools/ltee_cli" get --port "${PORT}" \
    --path '/stats' --expect-json)"
if ! grep -q '"p95"' <<<"${STATS}"; then
    echo "check_observability: FAIL: /stats has no windowed p95: ${STATS}" >&2
    exit 1
fi
if ! grep -q '"qps"' <<<"${STATS}"; then
    echo "check_observability: FAIL: /stats has no windowed qps: ${STATS}" >&2
    exit 1
fi

# The terminal dashboard renders frames off the same endpoint.
TOP_OUT="$("${BUILD_DIR}/tools/ltee_top" --port "${PORT}" \
    --iterations 2 --interval-ms 100 --no-clear)"
if ! grep -q "qps" <<<"${TOP_OUT}"; then
    echo "check_observability: FAIL: ltee_top rendered no stats frame" >&2
    echo "${TOP_OUT}" >&2
    exit 1
fi

kill -TERM "${SERVE_PID}"
if ! wait "${SERVE_PID}"; then
    echo "check_observability: FAIL: kb service exited non-zero" >&2
    cat "${SERVE_LOG}" >&2
    exit 1
fi
trap - EXIT
if ! grep -q "kb service stopped" "${SERVE_LOG}"; then
    echo "check_observability: FAIL: kb service did not shut down cleanly" >&2
    cat "${SERVE_LOG}" >&2
    exit 1
fi

# Post-shutdown artifacts: the access log must contain the trace id we
# propagated, and the exported request trace must validate structurally
# and contain the per-request http.request spans carrying that id.
if ! grep -q "${TRACE_ID}" "${ACCESS_LOG}"; then
    echo "check_observability: FAIL: access log is missing the propagated" \
        "trace id ${TRACE_ID}" >&2
    cat "${ACCESS_LOG}" >&2
    exit 1
fi
"${BUILD_DIR}/tools/validate_trace" --file "${SERVE_TRACE}"
if ! grep -q '"http.request"' "${SERVE_TRACE}"; then
    echo "check_observability: FAIL: request trace has no http.request spans" >&2
    exit 1
fi
if ! grep -q "${TRACE_ID}" "${SERVE_TRACE}"; then
    echo "check_observability: FAIL: request trace is missing the propagated" \
        "trace id ${TRACE_ID}" >&2
    exit 1
fi

# Delta pipeline end to end: the delta-labelled unit tests (equivalence
# gate, ingest-while-serving, state round trips), then a CLI smoke over
# the full promotion path — run the base corpus with --state-out, ingest
# the held-out delta tables, and require the incrementally built snapshot
# to be content-identical to the one-shot full run (snapshot_diff exit 0)
# while genuinely differing from the base (exit 1). The ingest ledger
# must validate like a full run's.
ctest --test-dir "${BUILD_DIR}" -L delta --output-on-failure -j "$(nproc)"

DELTA_DIR="${BUILD_DIR}/delta_smoke"
rm -rf "${DELTA_DIR}"
mkdir -p "${DELTA_DIR}"
"${BUILD_DIR}/tools/ltee_cli" generate --out "${DELTA_DIR}" \
    --scale 0.002 --seed 41 --delta-split 50 >/dev/null

"${BUILD_DIR}/tools/ltee_cli" run --kb "${DELTA_DIR}/kb.tsv" \
    --corpus "${DELTA_DIR}/corpus.tsv" \
    --gs-corpus "${DELTA_DIR}/gs_corpus.tsv" \
    --gold "${DELTA_DIR}/gold.tsv" --seed 41 \
    --publish-snapshot "${DELTA_DIR}/full.bin" --snapshot-version 2 \
    >/dev/null

"${BUILD_DIR}/tools/ltee_cli" run --kb "${DELTA_DIR}/kb.tsv" \
    --corpus "${DELTA_DIR}/corpus_base.tsv" \
    --gs-corpus "${DELTA_DIR}/gs_corpus.tsv" \
    --gold "${DELTA_DIR}/gold.tsv" --seed 41 \
    --state-out "${DELTA_DIR}/state" \
    --publish-snapshot "${DELTA_DIR}/base.bin" --snapshot-version 1 \
    >/dev/null

"${BUILD_DIR}/tools/ltee_cli" ingest --state "${DELTA_DIR}/state" \
    --delta "${DELTA_DIR}/corpus_delta.tsv" \
    --publish-snapshot "${DELTA_DIR}/delta.bin" --snapshot-version 2 \
    --ledger "${DELTA_DIR}/delta_ledger.jsonl"

"${BUILD_DIR}/tools/snapshot_diff" \
    "${DELTA_DIR}/full.bin" "${DELTA_DIR}/delta.bin"
if "${BUILD_DIR}/tools/snapshot_diff" \
    "${DELTA_DIR}/base.bin" "${DELTA_DIR}/delta.bin" >/dev/null; then
    echo "check_observability: FAIL: base and delta snapshots are identical" \
        "(the delta smoke is vacuous)" >&2
    exit 1
fi
"${BUILD_DIR}/tools/validate_ledger" "${DELTA_DIR}/delta_ledger.jsonl"

# Sampling profiler end to end: the profile-labelled unit tests, a
# fixed-seed profiled run whose collapsed stacks must surface the row
# clustering similarity path (the paper's hot loop), analyze-profile over
# the written artifact (text and JSON, with per-span attribution and the
# drop counter), and a live bounded capture through GET /profile while
# the kb service answers queries.
ctest --test-dir "${BUILD_DIR}" -L profile --output-on-failure -j "$(nproc)"

PROFILE="${BUILD_DIR}/smoke_profile.collapsed"
"${BUILD_DIR}/tools/ltee_cli" run --scale 0.002 --seed 41 \
    --profile-out "${PROFILE}" --profile-hz 199 >/dev/null
if ! grep -q "^# ltee-profile hz=199 " "${PROFILE}"; then
    echo "check_observability: FAIL: ${PROFILE} has no profile header" >&2
    exit 1
fi
if ! grep -q -e "RowClusterer" -e "rowcluster" "${PROFILE}"; then
    echo "check_observability: FAIL: collapsed profile never sampled the" \
        "row-clustering path" >&2
    exit 1
fi

ANALYSIS="$("${BUILD_DIR}/tools/ltee_cli" analyze-profile "${PROFILE}")"
if ! grep -q "rowcluster.cluster" <<<"${ANALYSIS}"; then
    echo "check_observability: FAIL: analyze-profile reports no" \
        "rowcluster.cluster span attribution" >&2
    echo "${ANALYSIS}" >&2
    exit 1
fi
ANALYSIS_JSON="$("${BUILD_DIR}/tools/ltee_cli" analyze-profile \
    "${PROFILE}" --json)"
for KEY in '"top_functions"' '"spans"' '"dropped"'; do
    if ! grep -q "${KEY}" <<<"${ANALYSIS_JSON}"; then
        echo "check_observability: FAIL: analyze-profile --json is missing" \
            "${KEY}" >&2
        exit 1
    fi
done

# Live capture under load: serve the earlier snapshot again, keep a
# query loop running, and require GET /profile to return a well-formed
# collapsed capture of the serving process.
PROF_SERVE_LOG="${BUILD_DIR}/smoke_profile_serve.log"
"${BUILD_DIR}/tools/ltee_cli" serve --snapshot "${SNAPSHOT}" --port 0 \
    >"${PROF_SERVE_LOG}" 2>&1 &
PROF_SERVE_PID=$!
trap 'kill "${PROF_SERVE_PID}" 2>/dev/null || true' EXIT

PROF_PORT=""
for _ in $(seq 1 100); do
    PROF_PORT="$(sed -n 's|.*http://localhost:\([0-9]*\).*|\1|p' \
        "${PROF_SERVE_LOG}")"
    [[ -n "${PROF_PORT}" ]] && break
    sleep 0.1
done
if [[ -z "${PROF_PORT}" ]]; then
    echo "check_observability: FAIL: profile smoke service reported no port" >&2
    cat "${PROF_SERVE_LOG}" >&2
    exit 1
fi

( for _ in $(seq 1 500); do
    "${BUILD_DIR}/tools/ltee_cli" get --port "${PROF_PORT}" \
        --path '/kb/search?q=the&k=3' >/dev/null 2>&1 || break
  done ) &
LOAD_PID=$!
LIVE_PROFILE="$("${BUILD_DIR}/tools/ltee_cli" get --port "${PROF_PORT}" \
    --path '/profile?seconds=1&hz=199')"
kill "${LOAD_PID}" 2>/dev/null || true
wait "${LOAD_PID}" 2>/dev/null || true
if ! grep -q "^# ltee-profile hz=199 " <<<"${LIVE_PROFILE}"; then
    echo "check_observability: FAIL: live /profile returned no collapsed" \
        "capture" >&2
    echo "${LIVE_PROFILE}" >&2
    exit 1
fi

kill -TERM "${PROF_SERVE_PID}"
wait "${PROF_SERVE_PID}" || true
trap - EXIT

# Memory observability end to end: the memory-labelled unit tests
# (allocator counters, span attribution, heap-profile round trips,
# /memory semantics, reconciliation) plus the seeded mb regression gate,
# then a fixed-seed tracked run whose collapsed heap profile must
# attribute live bytes to the row-clustering stage (the paper's dense
# pair cache), analyze-memory over the artifact (text and JSON), and a
# live bounded capture through GET /memory while the kb service answers
# queries.
ctest --test-dir "${BUILD_DIR}" -L memory --output-on-failure -j "$(nproc)"

HEAP="${BUILD_DIR}/smoke_heap.collapsed"
"${BUILD_DIR}/tools/ltee_cli" run --scale 0.002 --seed 41 \
    --heap-profile-out "${HEAP}" --heap-sample-kb 16 >/dev/null
if ! grep -q "^# ltee-profile heap=1 sample_kb=16 " "${HEAP}"; then
    echo "check_observability: FAIL: ${HEAP} has no heap profile header" >&2
    exit 1
fi
if ! grep -q "^# ltee-memtrack-span rowcluster.cluster " "${HEAP}"; then
    echo "check_observability: FAIL: heap profile attributes no bytes to" \
        "the row-clustering stage" >&2
    exit 1
fi

MEM_ANALYSIS="$("${BUILD_DIR}/tools/ltee_cli" analyze-memory "${HEAP}")"
if ! grep -q "rowcluster" <<<"${MEM_ANALYSIS}"; then
    echo "check_observability: FAIL: analyze-memory reports no rowcluster" \
        "span attribution" >&2
    echo "${MEM_ANALYSIS}" >&2
    exit 1
fi
MEM_ANALYSIS_JSON="$("${BUILD_DIR}/tools/ltee_cli" analyze-memory \
    "${HEAP}" --json)"
for KEY in '"top_sites"' '"spans"' '"live_bytes"'; do
    if ! grep -q "${KEY}" <<<"${MEM_ANALYSIS_JSON}"; then
        echo "check_observability: FAIL: analyze-memory --json is missing" \
            "${KEY}" >&2
        exit 1
    fi
done

# Live capture under load: serve the earlier snapshot once more, keep a
# query loop running, and require GET /memory to return a well-formed
# collapsed heap capture of the serving process. Out-of-range parameters
# must be rejected with 400 (the client surfaces that as a failure).
MEM_SERVE_LOG="${BUILD_DIR}/smoke_memory_serve.log"
"${BUILD_DIR}/tools/ltee_cli" serve --snapshot "${SNAPSHOT}" --port 0 \
    >"${MEM_SERVE_LOG}" 2>&1 &
MEM_SERVE_PID=$!
trap 'kill "${MEM_SERVE_PID}" 2>/dev/null || true' EXIT

MEM_PORT=""
for _ in $(seq 1 100); do
    MEM_PORT="$(sed -n 's|.*http://localhost:\([0-9]*\).*|\1|p' \
        "${MEM_SERVE_LOG}")"
    [[ -n "${MEM_PORT}" ]] && break
    sleep 0.1
done
if [[ -z "${MEM_PORT}" ]]; then
    echo "check_observability: FAIL: memory smoke service reported no port" >&2
    cat "${MEM_SERVE_LOG}" >&2
    exit 1
fi

( for _ in $(seq 1 500); do
    "${BUILD_DIR}/tools/ltee_cli" get --port "${MEM_PORT}" \
        --path '/kb/search?q=the&k=3' >/dev/null 2>&1 || break
  done ) &
MEM_LOAD_PID=$!
LIVE_HEAP="$("${BUILD_DIR}/tools/ltee_cli" get --port "${MEM_PORT}" \
    --path '/memory?seconds=1&sample_kb=16')"
kill "${MEM_LOAD_PID}" 2>/dev/null || true
wait "${MEM_LOAD_PID}" 2>/dev/null || true
if ! grep -q "^# ltee-profile heap=1 sample_kb=16 " <<<"${LIVE_HEAP}"; then
    echo "check_observability: FAIL: live /memory returned no collapsed" \
        "heap capture" >&2
    echo "${LIVE_HEAP}" >&2
    exit 1
fi
if "${BUILD_DIR}/tools/ltee_cli" get --port "${MEM_PORT}" \
    --path '/memory?seconds=0' >/dev/null 2>&1; then
    echo "check_observability: FAIL: /memory accepted seconds=0" >&2
    exit 1
fi
if "${BUILD_DIR}/tools/ltee_cli" get --port "${MEM_PORT}" \
    --path '/memory?sample_kb=0' >/dev/null 2>&1; then
    echo "check_observability: FAIL: /memory accepted sample_kb=0" >&2
    exit 1
fi

# The windowed /stats payload carries the memory section the dashboard's
# --memory panel reads alongside it.
MEM_STATS="$("${BUILD_DIR}/tools/ltee_cli" get --port "${MEM_PORT}" \
    --path '/stats' --expect-json)"
if ! grep -q '"memory"' <<<"${MEM_STATS}"; then
    echo "check_observability: FAIL: /stats has no memory section" >&2
    echo "${MEM_STATS}" >&2
    exit 1
fi

kill -TERM "${MEM_SERVE_PID}"
wait "${MEM_SERVE_PID}" || true
trap - EXIT

echo "check_observability: OK"
