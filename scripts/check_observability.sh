#!/usr/bin/env bash
# CI job for the observability surface: builds the tree, runs every test
# labelled `observability` (unit tests, the validate_trace smoke check and
# the bench_regression gate), then appends a quick-bench data point to the
# repo-level BENCH_history.json and diffs it against the seed entry so the
# perf trajectory of the synthetic benchmarks is gated on every run.
#
# Usage: scripts/check_observability.sh [BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

ctest --test-dir "${BUILD_DIR}" -L observability --output-on-failure -j "$(nproc)"

# Perf trajectory against the committed history: each CI run appends one
# commit-stamped quick-bench entry and compares the newest entry with the
# seed (first) entry. The generous threshold tolerates machine variance in
# wall_ms while still catching order-of-magnitude regressions; the
# deterministic count/score metrics gate at the defaults.
"${BUILD_DIR}/tools/bench_history" --quick \
    --bench-dir "${BUILD_DIR}/bench" \
    --out "${REPO_ROOT}/BENCH_history.json"
"${BUILD_DIR}/tools/report_diff" \
    --history "${REPO_ROOT}/BENCH_history.json" --against-seed \
    --threshold 100

# Decision-provenance end to end: a fixed-seed pipeline run writing its
# ledger, structural validation of every event line (util/json_parse via
# validate_ledger), and one explain query resolving a real subject pulled
# from the ledger back to a complete lineage.
LEDGER="${BUILD_DIR}/provenance.jsonl"
"${BUILD_DIR}/tools/ltee_cli" run --scale 0.002 --seed 41 --dedup \
    --provenance-out "${LEDGER}" >/dev/null

"${BUILD_DIR}/tools/validate_ledger" "${LEDGER}"

SUBJECT="$(grep -m1 '"reason":"new_entity"' "${LEDGER}" \
    | sed 's/.*"subject":"\([^"]*\)".*/\1/')"
if [[ -z "${SUBJECT}" ]]; then
    echo "check_observability: FAIL: no accepted new_entity fact in ledger" >&2
    exit 1
fi
EXPLAIN="$("${BUILD_DIR}/tools/ltee_cli" explain "${SUBJECT}" \
    --ledger "${LEDGER}" --first)"
echo "${EXPLAIN}"
if ! grep -q "chain: COMPLETE" <<<"${EXPLAIN}"; then
    echo "check_observability: FAIL: explain '${SUBJECT}' has missing lineage links" >&2
    exit 1
fi

echo "check_observability: OK"
