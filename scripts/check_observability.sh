#!/usr/bin/env bash
# CI job for the observability surface: builds the tree, runs every test
# labelled `observability` (unit tests, the validate_trace smoke check and
# the bench_regression gate), then appends a quick-bench data point to the
# repo-level BENCH_history.json and diffs it against the seed entry so the
# perf trajectory of the synthetic benchmarks is gated on every run.
#
# Usage: scripts/check_observability.sh [BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

ctest --test-dir "${BUILD_DIR}" -L observability --output-on-failure -j "$(nproc)"

# Perf trajectory against the committed history: each CI run appends one
# commit-stamped quick-bench entry and compares the newest entry with the
# seed (first) entry. The generous threshold tolerates machine variance in
# wall_ms while still catching order-of-magnitude regressions; the
# deterministic count/score metrics gate at the defaults.
"${BUILD_DIR}/tools/bench_history" --quick \
    --bench-dir "${BUILD_DIR}/bench" \
    --out "${REPO_ROOT}/BENCH_history.json"
"${BUILD_DIR}/tools/report_diff" \
    --history "${REPO_ROOT}/BENCH_history.json" --against-seed \
    --threshold 100

echo "check_observability: OK"
