#include "eval/gold_standard.h"

#include <set>

#include "util/string_util.h"

namespace ltee::eval {

void GoldStandard::BuildLookups() {
  cluster_of_row.clear();
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (const auto& row : clusters[c].rows) {
      cluster_of_row[row] = static_cast<int>(c);
    }
  }
}

int GoldStandard::ClusterOfRow(webtable::RowRef row) const {
  auto it = cluster_of_row.find(row);
  return it == cluster_of_row.end() ? -1 : it->second;
}

GoldStandard FilterClusters(const GoldStandard& gold,
                            const std::vector<int>& cluster_indices) {
  GoldStandard out;
  out.cls = gold.cls;
  out.tables = gold.tables;
  out.attributes = gold.attributes;
  std::map<int, int> remap;
  for (int old_index : cluster_indices) {
    remap[old_index] = static_cast<int>(out.clusters.size());
    out.clusters.push_back(gold.clusters[old_index]);
  }
  for (const auto& fact : gold.facts) {
    auto it = remap.find(fact.cluster);
    if (it == remap.end()) continue;
    GsFact copy = fact;
    copy.cluster = it->second;
    out.facts.push_back(std::move(copy));
  }
  out.BuildLookups();
  return out;
}

GsOverview GoldStandard::Overview(const webtable::TableCorpus& corpus) const {
  GsOverview o;
  o.tables = tables.size();
  o.attributes = attributes.size();
  for (const auto& c : clusters) {
    o.rows += c.rows.size();
    if (c.is_new) {
      o.new_clusters += 1;
    } else {
      o.existing_clusters += 1;
    }
  }
  // Matched values: non-empty cells of annotated rows that sit in an
  // annotated attribute column.
  std::map<webtable::TableId, std::set<int>> matched_columns;
  for (const auto& a : attributes) matched_columns[a.table].insert(a.column);
  for (const auto& c : clusters) {
    for (const auto& row : c.rows) {
      auto it = matched_columns.find(row.table);
      if (it == matched_columns.end()) continue;
      for (int col : it->second) {
        if (!util::Trim(corpus.cell(row, static_cast<size_t>(col))).empty()) {
          o.matched_values += 1;
        }
      }
    }
  }
  o.value_groups = facts.size();
  for (const auto& f : facts) {
    if (f.correct_value_present) o.correct_value_present += 1;
  }
  return o;
}

}  // namespace ltee::eval
