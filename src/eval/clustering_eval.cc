#include "eval/clustering_eval.h"

#include <algorithm>
#include <map>

#include "util/stats.h"

namespace ltee::eval {

std::vector<std::vector<webtable::RowRef>> GroupRows(
    const std::vector<webtable::RowRef>& rows,
    const std::vector<int>& cluster_of_row) {
  int num_clusters = 0;
  for (int c : cluster_of_row) num_clusters = std::max(num_clusters, c + 1);
  std::vector<std::vector<webtable::RowRef>> out(num_clusters);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (cluster_of_row[i] >= 0) out[cluster_of_row[i]].push_back(rows[i]);
  }
  return out;
}

std::vector<int> MapClustersToGold(
    const std::vector<std::vector<webtable::RowRef>>& returned,
    const GoldStandard& gold) {
  struct Overlap {
    int returned_cluster;
    int gold_cluster;
    double fraction;  // of the returned cluster's annotated rows
    int absolute;
  };
  std::vector<Overlap> overlaps;
  for (size_t c = 0; c < returned.size(); ++c) {
    std::map<int, int> counts;
    int annotated = 0;
    for (const auto& row : returned[c]) {
      const int g = gold.ClusterOfRow(row);
      if (g >= 0) {
        counts[g] += 1;
        ++annotated;
      }
    }
    for (const auto& [g, count] : counts) {
      overlaps.push_back({static_cast<int>(c), g,
                          static_cast<double>(count) / annotated, count});
    }
  }
  std::sort(overlaps.begin(), overlaps.end(),
            [](const Overlap& a, const Overlap& b) {
              if (a.fraction != b.fraction) return a.fraction > b.fraction;
              if (a.absolute != b.absolute) return a.absolute > b.absolute;
              if (a.returned_cluster != b.returned_cluster) {
                return a.returned_cluster < b.returned_cluster;
              }
              return a.gold_cluster < b.gold_cluster;
            });
  std::vector<int> mapping(returned.size(), -1);
  std::vector<bool> gold_taken(gold.clusters.size(), false);
  std::vector<bool> returned_taken(returned.size(), false);
  for (const auto& o : overlaps) {
    if (returned_taken[o.returned_cluster] || gold_taken[o.gold_cluster]) {
      continue;
    }
    mapping[o.returned_cluster] = o.gold_cluster;
    returned_taken[o.returned_cluster] = true;
    gold_taken[o.gold_cluster] = true;
  }
  return mapping;
}

ClusteringEvalResult EvaluateClustering(
    const std::vector<std::vector<webtable::RowRef>>& returned,
    const GoldStandard& gold) {
  ClusteringEvalResult result;
  result.gold_clusters = gold.clusters.size();

  // Returned clusters restricted to annotated rows; drop empty ones.
  std::vector<std::vector<webtable::RowRef>> clusters;
  for (const auto& cluster : returned) {
    std::vector<webtable::RowRef> annotated;
    for (const auto& row : cluster) {
      if (gold.ClusterOfRow(row) >= 0) annotated.push_back(row);
    }
    if (!annotated.empty()) clusters.push_back(std::move(annotated));
  }
  result.returned_clusters = clusters.size();

  const auto mapping = MapClustersToGold(clusters, gold);
  size_t mapped = 0;
  for (int g : mapping) mapped += g >= 0 ? 1 : 0;
  result.mapped_clusters = mapped;

  // Average recall over gold clusters.
  double recall_sum = 0.0;
  std::vector<int> cluster_of_gold(gold.clusters.size(), -1);
  for (size_t c = 0; c < mapping.size(); ++c) {
    if (mapping[c] >= 0) cluster_of_gold[mapping[c]] = static_cast<int>(c);
  }
  for (size_t g = 0; g < gold.clusters.size(); ++g) {
    const int c = cluster_of_gold[g];
    if (c < 0) continue;
    int overlap = 0;
    for (const auto& row : clusters[c]) {
      if (gold.ClusterOfRow(row) == static_cast<int>(g)) ++overlap;
    }
    recall_sum += static_cast<double>(overlap) /
                  static_cast<double>(gold.clusters[g].rows.size());
  }
  result.average_recall =
      gold.clusters.empty()
          ? 0.0
          : recall_sum / static_cast<double>(gold.clusters.size());

  // Pairwise clustering precision over returned clusters.
  long long pairs = 0, correct_pairs = 0;
  for (const auto& cluster : clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        ++pairs;
        if (gold.ClusterOfRow(cluster[i]) == gold.ClusterOfRow(cluster[j])) {
          ++correct_pairs;
        }
      }
    }
  }
  const double precision =
      pairs == 0 ? 1.0
                 : static_cast<double>(correct_pairs) /
                       static_cast<double>(pairs);
  result.unpenalized_precision = precision;

  // Penalize by cluster-count deviation: lowest of |C|, |G|, |M| divided
  // by the highest.
  const double sizes[3] = {static_cast<double>(result.returned_clusters),
                           static_cast<double>(result.gold_clusters),
                           static_cast<double>(result.mapped_clusters)};
  const double lo = std::min({sizes[0], sizes[1], sizes[2]});
  const double hi = std::max({sizes[0], sizes[1], sizes[2]});
  const double penalty = hi == 0.0 ? 0.0 : lo / hi;
  result.penalized_precision = precision * penalty;
  result.f1 = util::F1(result.penalized_precision, result.average_recall);
  return result;
}

}  // namespace ltee::eval
