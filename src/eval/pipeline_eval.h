#ifndef LTEE_EVAL_PIPELINE_EVAL_H_
#define LTEE_EVAL_PIPELINE_EVAL_H_

#include <vector>

#include "eval/gold_standard.h"
#include "fusion/entity.h"
#include "newdetect/new_detector.h"
#include "types/type_similarity.h"

namespace ltee::eval {

/// New-detection evaluation (Section 3.4): classification accuracy plus
/// separate F1 for existing and new entities. Entities must be parallel to
/// gold clusters (one entity per gold cluster) for this evaluation — it
/// measures the component in isolation, as Table 8 does.
struct NewDetectionEvalResult {
  double accuracy = 0.0;
  double f1_existing = 0.0;
  double f1_new = 0.0;
};
NewDetectionEvalResult EvaluateNewDetection(
    const std::vector<newdetect::Detection>& detections,
    const std::vector<const GsCluster*>& gold_clusters);

/// "New instances found" evaluation (Section 4.1 / Table 9): an entity
/// correctly finds a new instance when (1) the majority of its rows belong
/// to that gold cluster, (2) it contains the majority of the cluster's
/// rows, and (3) it was classified as new. Precision is over entities
/// returned as new; recall over new gold clusters.
struct InstancesFoundResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t returned_new = 0;
  size_t gold_new = 0;
};
InstancesFoundResult EvaluateNewInstancesFound(
    const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const GoldStandard& gold);

/// Facts-found evaluation (Section 4.2 / Table 10): precision over the
/// facts of entities returned as new (facts of wrongly-created or
/// wrongly-new entities count as wrong); recall against the annotated
/// facts of new clusters whose correct value is present in the tables.
struct FactsFoundResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t returned_facts = 0;
  size_t correct_facts = 0;
};
FactsFoundResult EvaluateFactsFound(
    const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const GoldStandard& gold,
    const types::TypeSimilarityOptions& similarity = {});

/// Maps each entity to the gold cluster owning the majority of its rows,
/// with the additional Table 9 condition that the entity also contains the
/// majority of that cluster's rows. -1 where no cluster qualifies.
std::vector<int> MapEntitiesToGold(
    const std::vector<fusion::CreatedEntity>& entities,
    const GoldStandard& gold);

/// Ranked evaluation against set-expansion work (Section 6): MAP with a
/// cut-off, and precision at 5 / 20. `correct` lists, in rank order,
/// whether each returned entity was a correctly identified new instance.
struct RankedEvalResult {
  double map = 0.0;
  double p_at_5 = 0.0;
  double p_at_20 = 0.0;
};
RankedEvalResult EvaluateRanked(const std::vector<bool>& correct,
                                size_t cutoff = 256);

}  // namespace ltee::eval

#endif  // LTEE_EVAL_PIPELINE_EVAL_H_
