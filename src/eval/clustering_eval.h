#ifndef LTEE_EVAL_CLUSTERING_EVAL_H_
#define LTEE_EVAL_CLUSTERING_EVAL_H_

#include <vector>

#include "eval/gold_standard.h"
#include "webtable/web_table.h"

namespace ltee::eval {

/// Result of the Hassanzadeh et al. clustering evaluation (Section 3.2):
/// average recall over gold clusters, pairwise clustering precision
/// penalized by the cluster-count deviation, and their F1.
struct ClusteringEvalResult {
  double penalized_precision = 0.0;
  double average_recall = 0.0;
  double f1 = 0.0;
  double unpenalized_precision = 0.0;
  size_t returned_clusters = 0;
  size_t gold_clusters = 0;
  size_t mapped_clusters = 0;
};

/// One-to-one mapping from returned clusters to gold clusters: a returned
/// cluster maps to the gold cluster contributing the highest fraction of
/// its rows (ties broken by absolute overlap), with each gold cluster
/// claimed at most once (greedy, best overlaps first). Returns, per
/// returned cluster, the gold cluster index or -1.
std::vector<int> MapClustersToGold(
    const std::vector<std::vector<webtable::RowRef>>& returned,
    const GoldStandard& gold);

/// Evaluates `returned` clusters against the gold standard. Rows not
/// annotated in the gold standard are ignored for precision pairs.
ClusteringEvalResult EvaluateClustering(
    const std::vector<std::vector<webtable::RowRef>>& returned,
    const GoldStandard& gold);

/// Utility: regroups a cluster-id-per-row assignment into row lists.
std::vector<std::vector<webtable::RowRef>> GroupRows(
    const std::vector<webtable::RowRef>& rows,
    const std::vector<int>& cluster_of_row);

}  // namespace ltee::eval

#endif  // LTEE_EVAL_CLUSTERING_EVAL_H_
