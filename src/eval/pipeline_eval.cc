#include "eval/pipeline_eval.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/stats.h"

namespace ltee::eval {

NewDetectionEvalResult EvaluateNewDetection(
    const std::vector<newdetect::Detection>& detections,
    const std::vector<const GsCluster*>& gold_clusters) {
  NewDetectionEvalResult result;
  if (detections.empty()) return result;

  int correct = 0;
  int new_tp = 0, new_fp = 0, new_fn = 0;
  int ex_tp = 0, ex_fp = 0, ex_fn = 0;
  for (size_t i = 0; i < detections.size(); ++i) {
    const newdetect::Detection& d = detections[i];
    const GsCluster& g = *gold_clusters[i];
    const bool existing_correct =
        !d.is_new && !g.is_new && d.instance == g.kb_instance;
    const bool new_correct = d.is_new && g.is_new;
    if (existing_correct || new_correct) ++correct;

    if (d.is_new) {
      if (g.is_new) ++new_tp;
      else ++new_fp;
    } else if (g.is_new) {
      ++new_fn;
    }
    if (!d.is_new) {
      if (existing_correct) ++ex_tp;
      else ++ex_fp;
    } else if (!g.is_new) {
      ++ex_fn;
    }
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(detections.size());
  const double np = new_tp + new_fp == 0
                        ? 0.0
                        : static_cast<double>(new_tp) / (new_tp + new_fp);
  const double nr = new_tp + new_fn == 0
                        ? 0.0
                        : static_cast<double>(new_tp) / (new_tp + new_fn);
  result.f1_new = util::F1(np, nr);
  const double ep =
      ex_tp + ex_fp == 0 ? 0.0 : static_cast<double>(ex_tp) / (ex_tp + ex_fp);
  const double er =
      ex_tp + ex_fn == 0 ? 0.0 : static_cast<double>(ex_tp) / (ex_tp + ex_fn);
  result.f1_existing = util::F1(ep, er);
  return result;
}

std::vector<int> MapEntitiesToGold(
    const std::vector<fusion::CreatedEntity>& entities,
    const GoldStandard& gold) {
  std::vector<int> mapping(entities.size(), -1);
  for (size_t e = 0; e < entities.size(); ++e) {
    std::map<int, int> counts;
    for (const auto& row : entities[e].rows) {
      const int g = gold.ClusterOfRow(row);
      if (g >= 0) counts[g] += 1;
    }
    int best_gold = -1, best_count = 0;
    for (const auto& [g, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best_gold = g;
      }
    }
    if (best_gold < 0) continue;
    // Majority of the entity's rows must describe this instance...
    if (2 * best_count < static_cast<int>(entities[e].rows.size())) continue;
    // ...and the entity must contain the majority of the instance's rows.
    if (2 * best_count < static_cast<int>(gold.clusters[best_gold].rows.size())) {
      continue;
    }
    mapping[e] = best_gold;
  }
  return mapping;
}

InstancesFoundResult EvaluateNewInstancesFound(
    const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const GoldStandard& gold) {
  InstancesFoundResult result;
  const auto mapping = MapEntitiesToGold(entities, gold);

  std::set<int> found_new_clusters;
  size_t returned_new = 0, correct_new = 0;
  for (size_t e = 0; e < entities.size(); ++e) {
    if (!detections[e].is_new) continue;
    ++returned_new;
    const int g = mapping[e];
    if (g >= 0 && gold.clusters[g].is_new) {
      ++correct_new;
      found_new_clusters.insert(g);
    }
  }
  size_t gold_new = 0;
  for (const auto& cluster : gold.clusters) gold_new += cluster.is_new ? 1 : 0;

  result.returned_new = returned_new;
  result.gold_new = gold_new;
  result.precision = returned_new == 0
                         ? 0.0
                         : static_cast<double>(correct_new) /
                               static_cast<double>(returned_new);
  result.recall = gold_new == 0
                      ? 0.0
                      : static_cast<double>(found_new_clusters.size()) /
                            static_cast<double>(gold_new);
  result.f1 = util::F1(result.precision, result.recall);
  return result;
}

FactsFoundResult EvaluateFactsFound(
    const std::vector<fusion::CreatedEntity>& entities,
    const std::vector<newdetect::Detection>& detections,
    const GoldStandard& gold, const types::TypeSimilarityOptions& similarity) {
  FactsFoundResult result;
  const auto mapping = MapEntitiesToGold(entities, gold);

  // Gold fact lookup: (cluster, property) -> fact.
  std::map<std::pair<int, kb::PropertyId>, const GsFact*> gold_facts;
  for (const auto& fact : gold.facts) {
    gold_facts[{fact.cluster, fact.property}] = &fact;
  }

  size_t returned = 0, correct = 0;
  std::set<std::pair<int, kb::PropertyId>> correct_groups;
  for (size_t e = 0; e < entities.size(); ++e) {
    if (!detections[e].is_new) continue;
    const int g = mapping[e];
    const bool valid_new = g >= 0 && gold.clusters[g].is_new;
    for (const auto& fact : entities[e].facts) {
      ++returned;
      if (!valid_new) continue;  // wrong entity: facts count as wrong
      auto it = gold_facts.find({g, fact.property});
      if (it == gold_facts.end()) continue;
      if (types::ValuesEqual(fact.value, it->second->correct_value,
                             similarity)) {
        ++correct;
        correct_groups.insert({g, fact.property});
      }
    }
  }

  // Recall denominator: annotated facts of new clusters whose correct
  // value is present in the web tables.
  size_t recallable = 0;
  for (const auto& fact : gold.facts) {
    if (gold.clusters[fact.cluster].is_new && fact.correct_value_present) {
      ++recallable;
    }
  }

  result.returned_facts = returned;
  result.correct_facts = correct;
  result.precision =
      returned == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(returned);
  result.recall = recallable == 0
                      ? 0.0
                      : static_cast<double>(correct_groups.size()) /
                            static_cast<double>(recallable);
  result.f1 = util::F1(result.precision, result.recall);
  return result;
}

RankedEvalResult EvaluateRanked(const std::vector<bool>& correct,
                                size_t cutoff) {
  RankedEvalResult result;
  const size_t n = std::min(correct.size(), cutoff);
  size_t hits = 0;
  double ap_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (correct[i]) {
      ++hits;
      ap_sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
    if (i + 1 == 5) {
      result.p_at_5 = static_cast<double>(hits) / 5.0;
    }
    if (i + 1 == 20) {
      result.p_at_20 = static_cast<double>(hits) / 20.0;
    }
  }
  if (n < 5) result.p_at_5 = n == 0 ? 0.0 : static_cast<double>(hits) / n;
  if (n < 20) result.p_at_20 = n == 0 ? 0.0 : static_cast<double>(hits) / n;
  result.map = hits == 0 ? 0.0 : ap_sum / static_cast<double>(hits);
  return result;
}

}  // namespace ltee::eval
