#ifndef LTEE_EVAL_GOLD_SERIALIZATION_H_
#define LTEE_EVAL_GOLD_SERIALIZATION_H_

#include <iosfwd>
#include <optional>
#include <vector>

#include "eval/gold_standard.h"

namespace ltee::eval {

/// Serializes gold standards (one block per class) into a line format:
///
///   G <class-id>
///   T <table-id>*
///   K <is_new> <kb-instance> <homonym-group> <world-entity> <t:r>*
///   A <table> <column> <property>
///   F <cluster> <property> <present> <typed-value>
///
/// Typed values use kb::SerializeValue.
void SaveGoldStandards(const std::vector<GoldStandard>& gold,
                       std::ostream& out);

/// Parses the format written by SaveGoldStandards; nullopt on malformed
/// input. Lookups are rebuilt.
std::optional<std::vector<GoldStandard>> LoadGoldStandards(std::istream& in);

}  // namespace ltee::eval

#endif  // LTEE_EVAL_GOLD_SERIALIZATION_H_
