#include "eval/gold_serialization.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

#include "kb/serialization.h"
#include "util/logging.h"

namespace ltee::eval {

namespace {

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace

void SaveGoldStandards(const std::vector<GoldStandard>& gold,
                       std::ostream& out) {
  for (const auto& gs : gold) {
    out << "G " << gs.cls << '\n';
    out << "T";
    for (auto tid : gs.tables) out << ' ' << tid;
    out << '\n';
    for (const auto& cluster : gs.clusters) {
      out << "K " << (cluster.is_new ? 1 : 0) << ' ' << cluster.kb_instance
          << ' ' << cluster.homonym_group << ' ' << cluster.world_entity;
      for (const auto& row : cluster.rows) {
        out << ' ' << row.table << ':' << row.row;
      }
      out << '\n';
    }
    for (const auto& attr : gs.attributes) {
      out << "A " << attr.table << ' ' << attr.column << ' ' << attr.property
          << '\n';
    }
    for (const auto& fact : gs.facts) {
      out << "F " << fact.cluster << ' ' << fact.property << ' '
          << (fact.correct_value_present ? 1 : 0) << ' '
          << kb::SerializeValue(fact.correct_value) << '\n';
    }
  }
}

std::optional<std::vector<GoldStandard>> LoadGoldStandards(std::istream& in) {
  std::vector<GoldStandard> out;
  std::string line;
  int line_number = 0;
  auto fail = [&](const char* what) {
    LTEE_LOG(kError) << "LoadGoldStandards: " << what << " at line "
                     << line_number;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitWs(line);
    if (fields[0] == "G") {
      if (fields.size() != 2) return fail("bad G record");
      GoldStandard gs;
      gs.cls = static_cast<kb::ClassId>(std::atoi(fields[1].c_str()));
      out.push_back(std::move(gs));
    } else if (out.empty()) {
      return fail("record before G header");
    } else if (fields[0] == "T") {
      for (size_t f = 1; f < fields.size(); ++f) {
        out.back().tables.push_back(std::atoi(fields[f].c_str()));
      }
    } else if (fields[0] == "K") {
      if (fields.size() < 5) return fail("bad K record");
      GsCluster cluster;
      cluster.is_new = fields[1] == "1";
      cluster.kb_instance = std::atoi(fields[2].c_str());
      cluster.homonym_group = std::atoll(fields[3].c_str());
      cluster.world_entity = std::atoi(fields[4].c_str());
      for (size_t f = 5; f < fields.size(); ++f) {
        int table = 0, row = 0;
        if (std::sscanf(fields[f].c_str(), "%d:%d", &table, &row) != 2) {
          return fail("bad row ref");
        }
        cluster.rows.push_back({table, row});
      }
      if (cluster.rows.empty()) return fail("cluster without rows");
      out.back().clusters.push_back(std::move(cluster));
    } else if (fields[0] == "A") {
      if (fields.size() != 4) return fail("bad A record");
      out.back().attributes.push_back(
          {std::atoi(fields[1].c_str()), std::atoi(fields[2].c_str()),
           static_cast<kb::PropertyId>(std::atoi(fields[3].c_str()))});
    } else if (fields[0] == "F") {
      // The serialized value may contain spaces; parse the three integer
      // fields positionally and take the rest of the line verbatim.
      GsFact fact;
      int cluster = 0, property = 0, present = 0, consumed = 0;
      if (std::sscanf(line.c_str(), "F %d %d %d %n", &cluster, &property,
                      &present, &consumed) != 3 ||
          consumed >= static_cast<int>(line.size())) {
        return fail("bad F record");
      }
      fact.cluster = cluster;
      fact.property = static_cast<kb::PropertyId>(property);
      fact.correct_value_present = present == 1;
      auto value = kb::DeserializeValue(line.substr(consumed));
      if (!value) return fail("bad fact value");
      fact.correct_value = std::move(*value);
      out.back().facts.push_back(std::move(fact));
    } else {
      return fail("unknown record kind");
    }
  }
  for (auto& gs : out) gs.BuildLookups();
  return out;
}

}  // namespace ltee::eval
