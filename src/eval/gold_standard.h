#ifndef LTEE_EVAL_GOLD_STANDARD_H_
#define LTEE_EVAL_GOLD_STANDARD_H_

#include <cstdint>
#include <map>
#include <vector>

#include "kb/knowledge_base.h"
#include "types/value.h"
#include "webtable/web_table.h"

namespace ltee::eval {

/// An annotated cluster: the set of table rows that describe one real-world
/// instance, whether that instance is new (absent from the KB), and — for
/// existing instances — the corresponding KB instance.
struct GsCluster {
  std::vector<webtable::RowRef> rows;
  bool is_new = false;
  kb::InstanceId kb_instance = kb::kInvalidInstance;
  /// Clusters with highly similar labels share a homonym group; the
  /// cross-validation split keeps a homonym group inside one fold.
  int64_t homonym_group = -1;
  /// Provenance: id of the ground-truth world entity (synthetic builds).
  int world_entity = -1;
};

/// An annotated attribute-to-property correspondence.
struct GsAttribute {
  webtable::TableId table = -1;
  int column = -1;
  kb::PropertyId property = kb::kInvalidProperty;
};

/// One "value group": a (cluster, property) combination for which at least
/// one candidate value exists in the annotated tables, together with the
/// annotated correct value (the fact).
struct GsFact {
  int cluster = -1;
  kb::PropertyId property = kb::kInvalidProperty;
  types::Value correct_value;
  /// Whether the correct value is contained among the candidate values in
  /// the web tables (last column of Table 5).
  bool correct_value_present = false;
};

/// Table 5 style overview counts.
struct GsOverview {
  size_t tables = 0;
  size_t attributes = 0;
  size_t rows = 0;
  size_t existing_clusters = 0;
  size_t new_clusters = 0;
  size_t matched_values = 0;
  size_t value_groups = 0;
  size_t correct_value_present = 0;
};

/// The manually-built gold standard of the paper (Section 2.3), for one
/// class: annotated row clusters, new/existing flags with instance
/// correspondences, attribute-to-property correspondences, and facts for
/// every value group.
struct GoldStandard {
  kb::ClassId cls = kb::kInvalidClass;
  std::vector<webtable::TableId> tables;
  std::vector<GsCluster> clusters;
  std::vector<GsAttribute> attributes;
  std::vector<GsFact> facts;

  /// Row -> cluster index lookup (derived; call BuildLookups()).
  std::map<webtable::RowRef, int> cluster_of_row;

  /// Rebuilds `cluster_of_row` from `clusters`.
  void BuildLookups();

  /// Cluster index of `row`, or -1 when the row is not annotated.
  int ClusterOfRow(webtable::RowRef row) const;

  /// Computes the Table 5 overview. `matched_values` counts row values
  /// sitting in annotated attribute columns of annotated rows.
  GsOverview Overview(const webtable::TableCorpus& corpus) const;
};

/// Restriction of a gold standard to a subset of its clusters (used by the
/// cross-validation driver to evaluate on test folds only). Facts are
/// re-indexed to the kept clusters; attributes and tables are kept as-is.
GoldStandard FilterClusters(const GoldStandard& gold,
                            const std::vector<int>& cluster_indices);

}  // namespace ltee::eval

#endif  // LTEE_EVAL_GOLD_STANDARD_H_
