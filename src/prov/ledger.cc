#include "prov/ledger.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <tuple>
#include <variant>

#include "util/json.h"
#include "util/metrics.h"

namespace ltee::prov {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("LTEE_PROVENANCE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool> g_enabled{EnabledFromEnv()};
std::atomic<int> g_iteration{0};

using Event =
    std::variant<SchemaMapDecision, ClusterDecision, FusionDecision,
                 NewDetectDecision, DedupDecision, KbUpdateDecision>;

/// One recorded event plus the iteration in effect when it was emitted.
struct Entry {
  int iteration;
  Event event;
};

/// Event storage of one thread. The registry keeps a shared_ptr so events
/// survive the owning thread; `mu` is only ever contended by an export or
/// Clear racing the owner's append.
struct ThreadArena {
  std::mutex mu;
  std::vector<Entry> entries;
};

struct ArenaRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadArena>> arenas;
};

ArenaRegistry& Registry() {
  static ArenaRegistry* registry = new ArenaRegistry();
  return *registry;
}

ThreadArena& LocalArena() {
  thread_local std::shared_ptr<ThreadArena> arena = [] {
    auto a = std::make_shared<ThreadArena>();
    ArenaRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.arenas.push_back(a);
    return a;
  }();
  return *arena;
}

template <typename T>
void Append(T&& event) {
  Entry entry{CurrentIteration(), std::forward<T>(event)};
  ThreadArena& arena = LocalArena();
  std::lock_guard<std::mutex> lock(arena.mu);
  arena.entries.push_back(std::move(entry));
}

// ---- Serialization -------------------------------------------------------

void AppendField(std::string* out, const char* key, long long value) {
  out->push_back(',');
  out->append(util::JsonQuote(key));
  out->push_back(':');
  out->append(std::to_string(value));
}

void AppendField(std::string* out, const char* key, double value) {
  out->push_back(',');
  out->append(util::JsonQuote(key));
  out->push_back(':');
  util::AppendJsonNumber(out, value);
}

void AppendField(std::string* out, const char* key, bool value) {
  out->push_back(',');
  out->append(util::JsonQuote(key));
  out->append(value ? ":true" : ":false");
}

void AppendField(std::string* out, const char* key, const std::string& value) {
  out->push_back(',');
  out->append(util::JsonQuote(key));
  out->push_back(':');
  out->append(util::JsonQuote(value));
}

void AppendComponents(std::string* out, const char* key,
                      const ScoreComponents& components) {
  if (components.empty()) return;
  out->push_back(',');
  out->append(util::JsonQuote(key));
  out->append(":{");
  for (size_t i = 0; i < components.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append(util::JsonQuote(components[i].first));
    out->push_back(':');
    util::AppendJsonNumber(out, components[i].second);
  }
  out->push_back('}');
}

void Open(std::string* out, const char* kind, int iteration, int cls) {
  out->append("{\"kind\":");
  out->append(util::JsonQuote(kind));
  AppendField(out, "iter", static_cast<long long>(iteration));
  AppendField(out, "cls", static_cast<long long>(cls));
}

struct Serializer {
  int iteration;
  std::string* out;

  void operator()(const SchemaMapDecision& e) const {
    Open(out, "schema_map", iteration, e.cls);
    AppendField(out, "table", static_cast<long long>(e.table));
    AppendField(out, "column", static_cast<long long>(e.column));
    AppendField(out, "property", static_cast<long long>(e.property));
    AppendField(out, "property_name", e.property_name);
    AppendField(out, "score", e.score);
    AppendField(out, "threshold", e.threshold);
    AppendField(out, "accepted", e.accepted);
    AppendComponents(out, "matchers", e.matcher_scores);
    out->push_back('}');
  }

  void operator()(const ClusterDecision& e) const {
    Open(out, "cluster", iteration, e.cls);
    AppendField(out, "table", static_cast<long long>(e.table));
    AppendField(out, "row", static_cast<long long>(e.row));
    AppendField(out, "cluster_id", static_cast<long long>(e.cluster_id));
    AppendField(out, "cluster_size", static_cast<long long>(e.cluster_size));
    AppendField(out, "support", e.support);
    AppendField(out, "threshold", e.threshold);
    if (e.support_table >= 0) {
      AppendField(out, "support_table",
                  static_cast<long long>(e.support_table));
      AppendField(out, "support_row", static_cast<long long>(e.support_row));
    }
    AppendComponents(out, "components", e.components);
    out->push_back('}');
  }

  void operator()(const FusionDecision& e) const {
    Open(out, "fusion", iteration, e.cls);
    AppendField(out, "cluster_id", static_cast<long long>(e.cluster_id));
    AppendField(out, "property", static_cast<long long>(e.property));
    AppendField(out, "property_name", e.property_name);
    AppendField(out, "value", e.value);
    AppendField(out, "rule", e.rule);
    AppendField(out, "score", e.score);
    AppendField(out, "candidates", static_cast<long long>(e.candidate_count));
    out->append(",\"sources\":[");
    for (size_t i = 0; i < e.sources.size(); ++i) {
      if (i > 0) out->push_back(',');
      out->append("{\"table\":");
      out->append(std::to_string(e.sources[i].table));
      out->append(",\"row\":");
      out->append(std::to_string(e.sources[i].row));
      out->append(",\"column\":");
      out->append(std::to_string(e.sources[i].column));
      out->push_back('}');
    }
    out->push_back(']');
    if (!e.losing_values.empty()) {
      out->append(",\"losers\":[");
      for (size_t i = 0; i < e.losing_values.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(util::JsonQuote(e.losing_values[i]));
      }
      out->push_back(']');
    }
    out->push_back('}');
  }

  void operator()(const NewDetectDecision& e) const {
    Open(out, "new_detect", iteration, e.cls);
    AppendField(out, "cluster_id", static_cast<long long>(e.cluster_id));
    AppendField(out, "label", e.label);
    AppendField(out, "is_new", e.is_new);
    AppendField(out, "best_score", e.best_score);
    AppendField(out, "new_threshold", e.new_threshold);
    AppendField(out, "match_threshold", e.match_threshold);
    if (!e.matched_instance.empty()) {
      AppendField(out, "matched_instance", e.matched_instance);
    }
    if (!e.candidates.empty()) {
      out->append(",\"candidates\":[");
      for (size_t i = 0; i < e.candidates.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append("{\"instance\":");
        out->append(util::JsonQuote(e.candidates[i].first));
        out->append(",\"score\":");
        util::AppendJsonNumber(out, e.candidates[i].second);
        out->push_back('}');
      }
      out->push_back(']');
    }
    AppendComponents(out, "features", e.features);
    out->push_back('}');
  }

  void operator()(const DedupDecision& e) const {
    Open(out, "dedup", iteration, e.cls);
    AppendField(out, "cluster_id", static_cast<long long>(e.surviving_cluster));
    AppendField(out, "absorbed_cluster",
                static_cast<long long>(e.absorbed_cluster));
    AppendField(out, "facts_adopted", static_cast<long long>(e.facts_adopted));
    AppendField(out, "label", e.label);
    out->push_back('}');
  }

  void operator()(const KbUpdateDecision& e) const {
    Open(out, "kb_update", iteration, e.cls);
    AppendField(out, "cluster_id", static_cast<long long>(e.cluster_id));
    AppendField(out, "subject", e.subject);
    AppendField(out, "property", static_cast<long long>(e.property));
    AppendField(out, "property_name", e.property_name);
    AppendField(out, "value", e.value);
    AppendField(out, "accepted", e.accepted);
    AppendField(out, "reason", e.reason);
    out->push_back('}');
  }
};

/// Deterministic ordering key of one entry. Every field is derived from
/// event content (never from thread or arrival order), so sorting makes
/// the export independent of the parallel class sweep's interleaving.
struct SortKey {
  int iteration;
  int kind;
  int cls;
  int table;
  int row;
  int column;
  int cluster_id;
  int property;
  std::string line;

  friend bool operator<(const SortKey& a, const SortKey& b) {
    return std::tie(a.iteration, a.kind, a.cls, a.table, a.row, a.column,
                    a.cluster_id, a.property, a.line) <
           std::tie(b.iteration, b.kind, b.cls, b.table, b.row, b.column,
                    b.cluster_id, b.property, b.line);
  }
};

struct KeyBuilder {
  SortKey* key;
  void operator()(const SchemaMapDecision& e) const {
    key->kind = 0;
    key->cls = e.cls;
    key->table = e.table;
    key->column = e.column;
    key->property = e.property;
  }
  void operator()(const ClusterDecision& e) const {
    key->kind = 1;
    key->cls = e.cls;
    key->table = e.table;
    key->row = e.row;
    key->cluster_id = e.cluster_id;
  }
  void operator()(const FusionDecision& e) const {
    key->kind = 2;
    key->cls = e.cls;
    key->cluster_id = e.cluster_id;
    key->property = e.property;
  }
  void operator()(const NewDetectDecision& e) const {
    key->kind = 3;
    key->cls = e.cls;
    key->cluster_id = e.cluster_id;
  }
  void operator()(const DedupDecision& e) const {
    key->kind = 4;
    key->cls = e.cls;
    key->cluster_id = e.surviving_cluster;
    key->row = e.absorbed_cluster;
  }
  void operator()(const KbUpdateDecision& e) const {
    key->kind = 5;
    key->cls = e.cls;
    key->cluster_id = e.cluster_id;
    key->property = e.property;
  }
};

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool IsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetIteration(int iteration) {
  g_iteration.store(iteration, std::memory_order_relaxed);
}

int CurrentIteration() {
  return g_iteration.load(std::memory_order_relaxed);
}

void Record(SchemaMapDecision event) { Append(std::move(event)); }
void Record(ClusterDecision event) { Append(std::move(event)); }
void Record(FusionDecision event) { Append(std::move(event)); }
void Record(NewDetectDecision event) { Append(std::move(event)); }
void Record(DedupDecision event) { Append(std::move(event)); }
void Record(KbUpdateDecision event) { Append(std::move(event)); }

size_t EventCount() {
  ArenaRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& arena : registry.arenas) {
    std::lock_guard<std::mutex> arena_lock(arena->mu);
    total += arena->entries.size();
  }
  return total;
}

void Clear() {
  ArenaRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& arena : registry.arenas) {
    std::lock_guard<std::mutex> arena_lock(arena->mu);
    arena->entries.clear();
  }
}

std::string ExportJsonLines() {
  std::vector<SortKey> keys;
  {
    ArenaRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& arena : registry.arenas) {
      std::lock_guard<std::mutex> arena_lock(arena->mu);
      for (const Entry& entry : arena->entries) {
        SortKey key;
        key.iteration = entry.iteration;
        key.kind = -1;
        key.cls = key.table = key.row = key.column = -1;
        key.cluster_id = key.property = -1;
        std::visit(KeyBuilder{&key}, entry.event);
        std::visit(Serializer{entry.iteration, &key.line}, entry.event);
        keys.push_back(std::move(key));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const SortKey& key : keys) {
    out.append(key.line);
    out.push_back('\n');
  }
  return out;
}

void ExportJsonLines(std::ostream& out) { out << ExportJsonLines(); }

void RefreshQualityGauges() {
  util::MetricsRegistry& metrics = util::Metrics();
  const auto rate = [&metrics](const char* gauge, uint64_t num,
                               uint64_t den) {
    if (den > 0) {
      metrics.GetGauge(gauge).Set(static_cast<double>(num) /
                                  static_cast<double>(den));
    }
  };
  const uint64_t facts =
      metrics.GetCounter("ltee.fusion.facts_fused").value();
  rate("ltee.prov.single_source_rate",
       metrics.GetCounter("ltee.prov.facts_with_single_source").value(),
       facts);
  rate("ltee.prov.fusion_conflict_rate",
       metrics.GetCounter("ltee.prov.fusion_conflicts").value(), facts);
  rate("ltee.prov.near_threshold_rate",
       metrics.GetCounter("ltee.prov.cluster_decisions_near_threshold")
           .value(),
       metrics.GetCounter("ltee.rowcluster.pair_cache.misses").value());
}

}  // namespace ltee::prov
