#ifndef LTEE_PROV_EXPLAIN_H_
#define LTEE_PROV_EXPLAIN_H_

#include <string>

namespace ltee::prov {

/// Query over a serialized provenance ledger (JSON-lines, as produced by
/// ExportJsonLines / `ltee_cli run --provenance-out`).
struct ExplainOptions {
  /// Case-insensitive substring matched against the subject label of KB
  /// update decisions. Empty matches every subject.
  std::string entity;
  /// Exact property-name filter (empty = all properties).
  std::string property;
  /// Explain only the first matching accepted fact (ledger order — which
  /// is deterministic).
  bool first_only = false;
  /// Render machine-readable JSON instead of indented text.
  bool json = false;
};

/// Result of one explain query. `text`/`json` hold the rendered lineage
/// chains (cell -> schema mapping -> row cluster -> fused value -> KB
/// triple), walked backwards from every accepted KB-update decision that
/// matches the query. Dedup merges crossed along the way are reported as
/// part of the chain.
struct ExplainResult {
  bool ok = false;
  std::string error;
  /// Matching accepted triples.
  int facts_found = 0;
  /// Chains with every link present (fusion event, one cluster event per
  /// source row, one accepted schema mapping per source column).
  int complete_chains = 0;
  /// Rendered output (text or JSON per ExplainOptions::json).
  std::string output;
};

/// Walks the ledger backwards and renders the full lineage of every
/// matching fact. Returns ok=false with `error` set when the ledger does
/// not parse as JSON-lines.
ExplainResult Explain(const std::string& ledger_jsonl,
                      const ExplainOptions& options);

}  // namespace ltee::prov

#endif  // LTEE_PROV_EXPLAIN_H_
