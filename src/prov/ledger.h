#ifndef LTEE_PROV_LEDGER_H_
#define LTEE_PROV_LEDGER_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ltee::prov {

/// Runtime switch of the provenance ledger. Off by default; initialized
/// from the LTEE_PROVENANCE environment variable at process start (any
/// value except "" and "0" enables). When off, every Record() call is one
/// relaxed atomic load — the instrumented decision points are effectively
/// free, mirroring util::trace.
void SetEnabled(bool enabled);
bool IsEnabled();

/// Pipeline iteration context (1-based) stamped onto every recorded
/// event. pipeline::Run sets it at each iteration boundary; post-run
/// stages (dedup, slot filling, KB update) inherit the final iteration.
void SetIteration(int iteration);
int CurrentIteration();

/// Named score components (a matcher, a row metric, an entity metric, ...)
/// attached to a decision.
using ScoreComponents = std::vector<std::pair<std::string, double>>;

/// One attribute-to-property mapping decision of the schema matcher: the
/// best candidate property of a column, its per-matcher scores, the
/// aggregated score and the threshold it was judged against.
struct SchemaMapDecision {
  int cls = -1;
  int table = -1;
  int column = -1;
  int property = -1;
  std::string property_name;
  double score = 0.0;
  double threshold = 0.0;
  bool accepted = false;
  ScoreComponents matcher_scores;
};

/// One row's cluster membership: the cluster it landed in, the strongest
/// similarity supporting the membership (best co-member), the per-metric
/// components of that comparison, and the calibrated score offset the
/// correlation clusterer applied.
struct ClusterDecision {
  int cls = -1;
  int table = -1;
  int row = -1;
  int cluster_id = -1;
  int cluster_size = 0;
  /// Aggregated similarity to the closest co-member (0 for singletons).
  double support = 0.0;
  /// Score offset in effect (the clustering analogue of a threshold).
  double threshold = 0.0;
  int support_table = -1;
  int support_row = -1;
  ScoreComponents components;
};

/// A source cell a fused value was read from.
struct SourceCell {
  int table = -1;
  int row = -1;
  int column = -1;
};

/// One fused fact of a created entity: the winning value, the
/// conflict-resolution rule that produced it, the cells it came from, and
/// the losing candidate values.
struct FusionDecision {
  int cls = -1;
  int cluster_id = -1;
  int property = -1;
  std::string property_name;
  std::string value;
  /// "majority" | "weighted_median" | "exact".
  std::string rule;
  /// Summed score of the winning value group.
  double score = 0.0;
  /// Total candidate values considered (winning + losing).
  int candidate_count = 0;
  std::vector<SourceCell> sources;
  std::vector<std::string> losing_values;
};

/// One NEW/EXISTING verdict: the entity, the scored KB candidates, the
/// feature vector of the best candidate and both learned thresholds.
struct NewDetectDecision {
  int cls = -1;
  int cluster_id = -1;
  std::string label;
  bool is_new = true;
  double best_score = -1.0;
  double new_threshold = 0.0;
  double match_threshold = 0.0;
  /// Label of the matched KB instance (empty when new / below the match
  /// threshold).
  std::string matched_instance;
  /// Top KB candidates as (instance label, aggregated score).
  ScoreComponents candidates;
  /// Per-metric features of the best candidate.
  ScoreComponents features;
};

/// One post-run entity merge: `absorbed_cluster`'s rows, labels and
/// missing facts moved into `surviving_cluster`.
struct DedupDecision {
  int cls = -1;
  int surviving_cluster = -1;
  int absorbed_cluster = -1;
  int facts_adopted = 0;
  std::string label;
};

/// One KB mutation verdict: a triple accepted into (or rejected from) the
/// knowledge base, with the rule that decided it. `reason` is one of
/// "new_entity", "no_labels", "below_min_facts", "slot_fill",
/// "slot_conflict", "slot_confirmed".
struct KbUpdateDecision {
  int cls = -1;
  int cluster_id = -1;
  std::string subject;
  int property = -1;
  std::string property_name;
  std::string value;
  bool accepted = false;
  std::string reason;
};

/// Appends one event to the calling thread's arena (no-op when the ledger
/// is disabled). Arenas are per thread, so pool workers never serialize
/// against each other; the export merges and orders them.
void Record(SchemaMapDecision event);
void Record(ClusterDecision event);
void Record(FusionDecision event);
void Record(NewDetectDecision event);
void Record(DedupDecision event);
void Record(KbUpdateDecision event);

/// Number of buffered events across all threads (alive or finished).
size_t EventCount();

/// Drops all buffered events.
void Clear();

/// Serializes every buffered event as one JSON object per line. The
/// output is sorted by a content key (iteration, kind, class, table, row,
/// column, cluster, property, serialized line), so a fixed-seed run
/// produces a byte-identical ledger regardless of how the parallel class
/// sweep interleaved the per-thread arenas.
std::string ExportJsonLines();
void ExportJsonLines(std::ostream& out);

/// Recomputes the derived quality gauges from the always-on ltee.prov.*
/// counters: single-source and fusion-conflict rates over fused facts,
/// and the near-threshold rate over computed row pairs. Call once after a
/// run (racing per-class updates would make the gauges order-dependent).
void RefreshQualityGauges();

}  // namespace ltee::prov

#endif  // LTEE_PROV_LEDGER_H_
