#include "prov/explain.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <string_view>
#include <tuple>
#include <vector>

#include "util/json_parse.h"

namespace ltee::prov {

namespace {

using util::JsonValue;

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// One parsed ledger line with its raw JSON (re-embedded verbatim in the
/// JSON rendering so the explain output stays faithful to the ledger).
struct Event {
  JsonValue value;
  std::string raw;
};

int IntOf(const JsonValue& v, const char* key, int fallback = -1) {
  return static_cast<int>(v.NumberOr(key, fallback));
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// The lineage of one accepted triple.
struct Chain {
  const Event* kb_update = nullptr;
  const Event* fusion = nullptr;
  const Event* new_detect = nullptr;
  std::vector<const Event*> dedups;
  /// Per source cell: the cell's fusion "sources" entry index, the row's
  /// cluster decision and the column's schema mapping (either may be
  /// missing).
  struct Source {
    int table = -1, row = -1, column = -1;
    const Event* cluster = nullptr;
    const Event* schema_map = nullptr;
  };
  std::vector<Source> sources;
  bool complete = false;
};

void RenderText(const std::vector<Chain>& chains, std::string* out) {
  for (const Chain& chain : chains) {
    const JsonValue& ku = chain.kb_update->value;
    out->append("fact: " + ku.StringOr("subject", "?") + " --" +
                ku.StringOr("property_name", "?") + "--> " +
                ku.StringOr("value", "?") + "  [" +
                ku.StringOr("reason", "?") + ", class " +
                std::to_string(IntOf(ku, "cls")) + ", iter " +
                std::to_string(IntOf(ku, "iter")) + "]\n");
    for (const Event* dedup : chain.dedups) {
      const JsonValue& d = dedup->value;
      out->append("  dedup: cluster " +
                  std::to_string(IntOf(d, "absorbed_cluster")) +
                  " absorbed into " + std::to_string(IntOf(d, "cluster_id")) +
                  " (" + std::to_string(IntOf(d, "facts_adopted", 0)) +
                  " facts adopted)\n");
    }
    if (chain.fusion == nullptr) {
      out->append("  fusion: MISSING\n");
    } else {
      const JsonValue& f = chain.fusion->value;
      out->append("  fused: rule=" + f.StringOr("rule", "?") + " score=" +
                  Num(f.NumberOr("score", 0)) + " cluster=" +
                  std::to_string(IntOf(f, "cluster_id")) + " from " +
                  std::to_string(chain.sources.size()) + " source cell(s)");
      if (const JsonValue* losers = f.Find("losers");
          losers != nullptr && losers->is_array()) {
        out->append(", beat");
        for (const JsonValue& loser : losers->items()) {
          out->append(" \"" + loser.as_string() + "\"");
        }
      }
      out->push_back('\n');
    }
    for (const Chain::Source& source : chain.sources) {
      out->append("  cell t" + std::to_string(source.table) + ":r" +
                  std::to_string(source.row) + ":c" +
                  std::to_string(source.column) + "\n");
      if (source.cluster == nullptr) {
        out->append("    cluster: MISSING\n");
      } else {
        const JsonValue& c = source.cluster->value;
        out->append("    in cluster " + std::to_string(IntOf(c, "cluster_id")) +
                    " (size " + std::to_string(IntOf(c, "cluster_size", 0)) +
                    ", support " + Num(c.NumberOr("support", 0)) +
                    ", offset " + Num(c.NumberOr("threshold", 0)) + ")\n");
      }
      if (source.schema_map == nullptr) {
        out->append("    schema mapping: MISSING\n");
      } else {
        const JsonValue& m = source.schema_map->value;
        out->append("    column c" + std::to_string(IntOf(m, "column")) +
                    " -> " + m.StringOr("property_name", "?") + " (score " +
                    Num(m.NumberOr("score", 0)) + " >= threshold " +
                    Num(m.NumberOr("threshold", 0)) + ")\n");
      }
    }
    if (chain.new_detect != nullptr) {
      const JsonValue& n = chain.new_detect->value;
      const bool is_new = n.Find("is_new") != nullptr &&
                          n.Find("is_new")->is_bool() &&
                          n.Find("is_new")->as_bool();
      out->append(std::string("  verdict: ") + (is_new ? "NEW" : "EXISTING") +
                  " (best candidate score " +
                  Num(n.NumberOr("best_score", -1)) + ", new threshold " +
                  Num(n.NumberOr("new_threshold", 0)) + ")\n");
    }
    out->append(chain.complete ? "  chain: COMPLETE\n" : "  chain: INCOMPLETE\n");
  }
}

void RenderJson(const std::vector<Chain>& chains, std::string* out) {
  out->append("{\"facts\":[");
  for (size_t i = 0; i < chains.size(); ++i) {
    const Chain& chain = chains[i];
    if (i > 0) out->push_back(',');
    out->append("{\"complete\":");
    out->append(chain.complete ? "true" : "false");
    out->append(",\"kb_update\":");
    out->append(chain.kb_update->raw);
    if (chain.fusion != nullptr) {
      out->append(",\"fusion\":");
      out->append(chain.fusion->raw);
    }
    if (chain.new_detect != nullptr) {
      out->append(",\"new_detect\":");
      out->append(chain.new_detect->raw);
    }
    if (!chain.dedups.empty()) {
      out->append(",\"dedups\":[");
      for (size_t d = 0; d < chain.dedups.size(); ++d) {
        if (d > 0) out->push_back(',');
        out->append(chain.dedups[d]->raw);
      }
      out->push_back(']');
    }
    out->append(",\"sources\":[");
    for (size_t s = 0; s < chain.sources.size(); ++s) {
      const Chain::Source& source = chain.sources[s];
      if (s > 0) out->push_back(',');
      out->append("{\"table\":" + std::to_string(source.table) +
                  ",\"row\":" + std::to_string(source.row) +
                  ",\"column\":" + std::to_string(source.column));
      if (source.cluster != nullptr) {
        out->append(",\"cluster\":");
        out->append(source.cluster->raw);
      }
      if (source.schema_map != nullptr) {
        out->append(",\"schema_map\":");
        out->append(source.schema_map->raw);
      }
      out->push_back('}');
    }
    out->append("]}");
  }
  out->append("]}");
}

}  // namespace

ExplainResult Explain(const std::string& ledger_jsonl,
                      const ExplainOptions& options) {
  ExplainResult result;

  // ---- Parse the ledger and index the link targets. ----------------------
  std::vector<Event> events;
  size_t pos = 0, line_no = 0;
  while (pos < ledger_jsonl.size()) {
    size_t end = ledger_jsonl.find('\n', pos);
    if (end == std::string::npos) end = ledger_jsonl.size();
    ++line_no;
    std::string line = ledger_jsonl.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    Event event;
    std::string error;
    if (!util::ParseJson(line, &event.value, &error)) {
      result.error =
          "ledger line " + std::to_string(line_no) + ": " + error;
      return result;
    }
    event.raw = std::move(line);
    events.push_back(std::move(event));
  }
  result.ok = true;

  using CellKey = std::tuple<int, int, int, int>;  // cls, table, x, iter
  using ClusterKey = std::tuple<int, int, int, int>;  // cls, cluster, prop, iter
  std::map<ClusterKey, const Event*> fusion_by_key;
  std::map<CellKey, const Event*> cluster_by_row;
  std::map<CellKey, const Event*> mapping_by_column;
  std::map<std::tuple<int, int, int>, const Event*> detect_by_cluster;
  std::map<std::pair<int, int>, std::vector<const Event*>> dedups_by_survivor;
  std::vector<const Event*> kb_updates;
  for (const Event& event : events) {
    const std::string kind = event.value.StringOr("kind", "");
    const int cls = IntOf(event.value, "cls");
    const int iter = IntOf(event.value, "iter");
    if (kind == "kb_update") {
      kb_updates.push_back(&event);
    } else if (kind == "fusion") {
      fusion_by_key[{cls, IntOf(event.value, "cluster_id"),
                     IntOf(event.value, "property"), iter}] = &event;
    } else if (kind == "cluster") {
      cluster_by_row[{cls, IntOf(event.value, "table"),
                      IntOf(event.value, "row"), iter}] = &event;
    } else if (kind == "schema_map") {
      const JsonValue* accepted = event.value.Find("accepted");
      if (accepted != nullptr && accepted->is_bool() && accepted->as_bool()) {
        mapping_by_column[{cls, IntOf(event.value, "table"),
                           IntOf(event.value, "column"), iter}] = &event;
      }
    } else if (kind == "new_detect") {
      detect_by_cluster[{cls, IntOf(event.value, "cluster_id"), iter}] =
          &event;
    } else if (kind == "dedup") {
      dedups_by_survivor[{cls, IntOf(event.value, "cluster_id")}].push_back(
          &event);
    }
  }

  // ---- Select the target triples. ----------------------------------------
  const std::string query = AsciiLower(options.entity);
  std::vector<Chain> chains;
  for (const Event* ku : kb_updates) {
    const JsonValue& v = ku->value;
    const JsonValue* accepted = v.Find("accepted");
    if (accepted == nullptr || !accepted->is_bool() || !accepted->as_bool()) {
      continue;
    }
    if (IntOf(v, "property") < 0) continue;  // entity-level rejection record
    if (!query.empty() &&
        AsciiLower(v.StringOr("subject", "")).find(query) ==
            std::string::npos) {
      continue;
    }
    if (!options.property.empty() &&
        v.StringOr("property_name", "") != options.property) {
      continue;
    }

    // ---- Walk backwards: triple -> fusion (crossing dedups) -> rows. ----
    Chain chain;
    chain.kb_update = ku;
    const int cls = IntOf(v, "cls");
    const int iter = IntOf(v, "iter");
    const int property = IntOf(v, "property");

    // The fused fact lives on the recorded cluster, or — when dedup moved
    // it — on a cluster absorbed into it (transitively).
    std::vector<int> frontier = {IntOf(v, "cluster_id")};
    int fusion_cluster = -1;
    for (size_t f = 0; f < frontier.size() && chain.fusion == nullptr; ++f) {
      auto it = fusion_by_key.find({cls, frontier[f], property, iter});
      if (it != fusion_by_key.end()) {
        const JsonValue& fv = it->second->value;
        if (fv.StringOr("value", "") == v.StringOr("value", "")) {
          chain.fusion = it->second;
          fusion_cluster = frontier[f];
          break;
        }
      }
      auto absorbed = dedups_by_survivor.find({cls, frontier[f]});
      if (absorbed != dedups_by_survivor.end()) {
        for (const Event* dedup : absorbed->second) {
          chain.dedups.push_back(dedup);
          frontier.push_back(IntOf(dedup->value, "absorbed_cluster"));
        }
      }
    }
    // Keep only dedup hops actually on the path to the fusion event: when
    // the fact was found on the original cluster, the crossings are noise.
    if (fusion_cluster == IntOf(v, "cluster_id")) chain.dedups.clear();

    auto detect = detect_by_cluster.find({cls, IntOf(v, "cluster_id"), iter});
    if (detect != detect_by_cluster.end()) chain.new_detect = detect->second;

    bool sources_complete = chain.fusion != nullptr;
    if (chain.fusion != nullptr) {
      const JsonValue* sources = chain.fusion->value.Find("sources");
      if (sources != nullptr && sources->is_array()) {
        for (const JsonValue& cell : sources->items()) {
          Chain::Source source;
          source.table = IntOf(cell, "table");
          source.row = IntOf(cell, "row");
          source.column = IntOf(cell, "column");
          auto cluster =
              cluster_by_row.find({cls, source.table, source.row, iter});
          if (cluster != cluster_by_row.end()) {
            source.cluster = cluster->second;
          }
          auto mapping =
              mapping_by_column.find({cls, source.table, source.column, iter});
          if (mapping != mapping_by_column.end()) {
            source.schema_map = mapping->second;
          }
          sources_complete &= source.cluster != nullptr;
          sources_complete &= source.schema_map != nullptr;
          chain.sources.push_back(source);
        }
      }
      sources_complete &= !chain.sources.empty();
    }
    chain.complete = sources_complete;

    chains.push_back(std::move(chain));
    if (options.first_only) break;
  }

  result.facts_found = static_cast<int>(chains.size());
  for (const Chain& chain : chains) {
    if (chain.complete) ++result.complete_chains;
  }
  if (options.json) {
    RenderJson(chains, &result.output);
  } else if (chains.empty()) {
    result.output = "no matching accepted facts in ledger\n";
  } else {
    RenderText(chains, &result.output);
  }
  return result;
}

}  // namespace ltee::prov
