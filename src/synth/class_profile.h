#ifndef LTEE_SYNTH_CLASS_PROFILE_H_
#define LTEE_SYNTH_CLASS_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "types/data_type.h"

namespace ltee::synth {

/// How ground-truth values of a property are generated.
enum class ValueGen {
  kCollege,
  kTeam,
  kPosition,
  kGenre,
  kRecordLabel,
  kCountry,
  kRegion,
  kArtistRef,
  kAlbumRef,
  kWriterRef,
  kPlaceRef,
  kFullDate,        // day-granular date in [qmin, qmax] years
  kYear,            // year-granular date in [qmin, qmax]
  kQuantityUniform, // uniform quantity in [qmin, qmax]
  kQuantityZipf,    // Zipf-ish heavy-tailed quantity with base qmin
  kSmallInt,        // nominal integer in [qmin, qmax]
  kPostalCode,      // 5-digit nominal string
};

/// Profile of one KB property: its semantic type, the generator of its
/// ground-truth values, the densities that shape Tables 2 and 12, and the
/// surface header labels it appears under in web tables.
struct PropertyProfile {
  std::string name;
  types::DataType type = types::DataType::kText;
  ValueGen gen = ValueGen::kQuantityUniform;
  /// Fraction of KB instances carrying a fact for this property (Table 2).
  double kb_density = 0.9;
  /// Probability that a web table about this class includes this property
  /// as a column (shapes the new-entity densities of Table 12).
  double table_density = 0.3;
  double qmin = 0.0;
  double qmax = 0.0;
  /// Header surface forms (first entry doubles as the KB property label
  /// synonym set; others appear only in tables).
  std::vector<std::string> header_aliases;
};

/// Profile of a class: hierarchy, world sizes, corpus parameters, and the
/// noise model. Counts are the paper's full-scale numbers; the builders
/// multiply them by a scale factor.
struct ClassProfile {
  std::string name;
  /// Ancestors root-first, e.g. {"Agent", "Athlete"}.
  std::vector<std::string> ancestry;
  /// True for GF-Player / Song / Settlement; false for distractor classes
  /// whose tables exercise table-to-class matching errors.
  bool is_target = true;

  /// How entity labels are generated.
  ValueGen label_gen = ValueGen::kPlaceRef;

  // --- world sizes (paper scale, pre-multiplication) ---------------------
  size_t kb_instances = 1000;
  /// Long-tail (not-in-KB) entities as a fraction of kb_instances.
  double longtail_ratio = 0.5;
  /// Probability that a long-tail entity reuses the label of another
  /// entity (the homonym problem; high for songs).
  double homonym_rate = 0.05;
  /// Probability that a KB instance is missing its class in the KB even
  /// though it exists (the "athlete not assigned the correct class"
  /// error source of Section 5).
  double kb_missing_class_rate = 0.0;

  // --- corpus parameters (paper scale) -----------------------------------
  size_t num_tables = 1000;
  /// Mean rows per table about this class (row counts are heavy-tailed).
  double mean_rows_per_table = 12.0;
  /// Probability that a sampled row describes a long-tail entity.
  double table_longtail_bias = 0.35;
  /// Probability that a table is built around a theme (shared implicit
  /// property-value combination, e.g. players drafted in the same year).
  double theme_rate = 0.5;
  /// Probability that a table gets an extra unmatched junk column.
  double junk_column_rate = 0.35;

  // --- noise model --------------------------------------------------------
  double cell_missing_rate = 0.08;
  double typo_rate = 0.03;
  /// Probability a rendered value is stale/conflicting (wrong vintage
  /// population, different-but-valid isPartOf, ...).
  double stale_rate = 0.05;
  /// Probability a rendered value is plain wrong (another entity's value).
  double wrong_value_rate = 0.01;
  /// Probability a header is replaced by an uninformative one ("Info").
  double header_noise_rate = 0.10;

  // --- gold standard ------------------------------------------------------
  size_t gs_tables = 150;
  size_t gs_target_clusters = 100;
  /// Fraction of gold-standard clusters describing new instances
  /// (Table 5: 19% for GF-Player, 65% for Song, 34% for Settlement).
  double gs_new_fraction = 0.39;

  /// Label-column headers used by tables about this class.
  std::vector<std::string> label_headers;
  std::vector<PropertyProfile> properties;
};

/// The three target class profiles of the paper — GridironFootballPlayer,
/// Song, Settlement — with Tables 1, 2, 4, 5 and 11 shaping the parameters,
/// plus distractor classes (BasketballPlayer, Album, Region) that exercise
/// table-to-class confusion.
std::vector<ClassProfile> DefaultProfiles();

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_CLASS_PROFILE_H_
