#include "synth/class_profile.h"

namespace ltee::synth {

namespace {

using types::DataType;

ClassProfile GfPlayerProfile() {
  ClassProfile p;
  p.name = "GridironFootballPlayer";
  p.ancestry = {"Agent", "Athlete"};
  p.label_gen = ValueGen::kWriterRef;  // person names
  p.kb_instances = 20751;
  p.longtail_ratio = 0.85;
  p.homonym_rate = 0.06;
  p.kb_missing_class_rate = 0.02;
  p.num_tables = 10432;
  p.mean_rows_per_table = 18.0;
  p.table_longtail_bias = 0.30;
  p.theme_rate = 0.55;
  p.junk_column_rate = 0.55;
  p.header_noise_rate = 0.18;
  p.gs_tables = 192;
  p.gs_target_clusters = 100;
  p.gs_new_fraction = 0.19;
  p.label_headers = {"Name", "Player", "Player Name"};
  p.properties = {
      // name, type, gen, kb_density, table_density, qmin, qmax, headers
      {"birthDate", DataType::kDate, ValueGen::kFullDate, 0.9743, 0.16,
       1950, 1995, {"Born", "Birth Date", "DOB", "Birthdate"}},
      {"college", DataType::kInstanceReference, ValueGen::kCollege, 0.9292,
       0.42, 0, 0, {"College", "School"}},
      {"birthPlace", DataType::kInstanceReference, ValueGen::kPlaceRef,
       0.8632, 0.04, 0, 0, {"Birthplace", "Hometown", "Place of Birth"}},
      {"team", DataType::kInstanceReference, ValueGen::kTeam, 0.6433, 0.46,
       0, 0, {"Team", "Club", "NFL Team", "Franchise"}},
      {"number", DataType::kNominalInteger, ValueGen::kSmallInt, 0.5508,
       0.20, 1, 99, {"Number", "No.", "Jersey", "#"}},
      {"position", DataType::kNominalString, ValueGen::kPosition, 0.5417,
       0.55, 0, 0, {"Position", "Pos", "Pos."}},
      {"height", DataType::kQuantity, ValueGen::kQuantityUniform, 0.4847,
       0.28, 168, 208, {"Height", "Ht", "Height (cm)"}},
      {"weight", DataType::kQuantity, ValueGen::kQuantityUniform, 0.4832,
       0.36, 72, 150, {"Weight", "Wt", "Weight (kg)"}},
      {"draftYear", DataType::kDate, ValueGen::kYear, 0.3830, 0.05, 1970,
       2012, {"Draft Year", "Drafted", "Year Drafted"}},
      {"draftRound", DataType::kNominalInteger, ValueGen::kSmallInt, 0.3822,
       0.11, 1, 7, {"Round", "Draft Round", "Rd"}},
      {"draftPick", DataType::kNominalInteger, ValueGen::kSmallInt, 0.3819,
       0.15, 1, 260, {"Pick", "Draft Pick", "Overall", "Selection"}},
  };
  return p;
}

ClassProfile SongProfile() {
  ClassProfile p;
  p.name = "Song";
  p.ancestry = {"Work", "MusicalWork"};
  p.label_gen = ValueGen::kAlbumRef;  // song-title generator
  p.kb_instances = 52533;
  p.longtail_ratio = 4.2;
  p.homonym_rate = 0.13;  // cover versions, reused titles
  p.kb_missing_class_rate = 0.01;
  p.num_tables = 58594;
  p.mean_rows_per_table = 14.0;
  p.table_longtail_bias = 0.50;
  p.theme_rate = 0.6;
  p.junk_column_rate = 0.55;
  p.header_noise_rate = 0.18;
  p.gs_tables = 152;
  p.gs_target_clusters = 97;
  p.gs_new_fraction = 0.65;
  p.label_headers = {"Title", "Song", "Track", "Song Title"};
  p.properties = {
      {"genre", DataType::kNominalString, ValueGen::kGenre, 0.8954, 0.11,
       0, 0, {"Genre", "Style"}},
      {"musicalArtist", DataType::kInstanceReference, ValueGen::kArtistRef,
       0.8585, 0.68, 0, 0, {"Artist", "Performer", "Singer", "By"}},
      {"recordLabel", DataType::kInstanceReference, ValueGen::kRecordLabel,
       0.8195, 0.05, 0, 0, {"Label", "Record Label"}},
      {"runtime", DataType::kQuantity, ValueGen::kQuantityUniform, 0.8002,
       0.52, 95, 620, {"Length", "Duration", "Time", "Runtime"}},
      {"album", DataType::kInstanceReference, ValueGen::kAlbumRef, 0.7741,
       0.26, 0, 0, {"Album", "From Album", "Record"}},
      {"writer", DataType::kInstanceReference, ValueGen::kWriterRef, 0.6461,
       0.01, 0, 0, {"Writer", "Written By", "Songwriter"}},
      {"releaseDate", DataType::kDate, ValueGen::kFullDate, 0.6034, 0.24,
       1955, 2012, {"Released", "Release Date", "Year", "Date"}},
  };
  return p;
}

ClassProfile SettlementProfile() {
  ClassProfile p;
  p.name = "Settlement";
  p.ancestry = {"Place", "PopulatedPlace"};
  p.label_gen = ValueGen::kPlaceRef;
  p.kb_instances = 468986;
  p.longtail_ratio = 0.035;  // Wikipedia already covers almost all
  p.homonym_rate = 0.12;     // same village name in different countries
  p.kb_missing_class_rate = 0.005;
  p.num_tables = 11757;
  p.mean_rows_per_table = 30.0;
  p.table_longtail_bias = 0.05;
  p.theme_rate = 0.7;  // "cities in Bavaria" style tables are the norm
  p.stale_rate = 0.14; // outdated population numbers, alternate isPartOf
  p.junk_column_rate = 0.5;
  p.header_noise_rate = 0.15;
  p.gs_tables = 188;
  p.gs_target_clusters = 74;
  p.gs_new_fraction = 0.34;
  p.label_headers = {"Name", "City", "Town", "Municipality", "Settlement"};
  p.properties = {
      {"country", DataType::kInstanceReference, ValueGen::kCountry, 0.9251,
       0.30, 0, 0, {"Country", "Nation"}},
      {"isPartOf", DataType::kInstanceReference, ValueGen::kRegion, 0.8880,
       0.48, 0, 0, {"Region", "State", "Province", "District"}},
      {"populationTotal", DataType::kQuantity, ValueGen::kQuantityZipf,
       0.6244, 0.42, 200, 2000000, {"Population", "Pop.", "Inhabitants"}},
      {"postalCode", DataType::kNominalString, ValueGen::kPostalCode,
       0.3296, 0.24, 0, 0, {"Postal Code", "ZIP", "Zip Code", "Postcode"}},
      {"elevation", DataType::kQuantity, ValueGen::kQuantityUniform, 0.3126,
       0.05, 1, 2400, {"Elevation", "Altitude", "Elevation (m)"}},
  };
  return p;
}

ClassProfile BasketballPlayerProfile() {
  ClassProfile p;
  p.name = "BasketballPlayer";
  p.ancestry = {"Agent", "Athlete"};
  p.is_target = false;
  p.label_gen = ValueGen::kWriterRef;
  p.kb_instances = 8000;
  p.longtail_ratio = 0.4;
  p.num_tables = 900;
  p.mean_rows_per_table = 14.0;
  p.gs_tables = 0;
  p.label_headers = {"Name", "Player"};
  p.properties = {
      {"team", DataType::kInstanceReference, ValueGen::kTeam, 0.7, 0.5, 0, 0,
       {"Team", "Club"}},
      {"height", DataType::kQuantity, ValueGen::kQuantityUniform, 0.6, 0.4,
       175, 226, {"Height", "Ht"}},
      {"number", DataType::kNominalInteger, ValueGen::kSmallInt, 0.5, 0.3, 0,
       55, {"Number", "No."}},
  };
  return p;
}

ClassProfile AlbumProfile() {
  ClassProfile p;
  p.name = "Album";
  p.ancestry = {"Work", "MusicalWork"};
  p.is_target = false;
  p.label_gen = ValueGen::kAlbumRef;
  p.kb_instances = 20000;
  p.longtail_ratio = 1.0;
  p.homonym_rate = 0.1;
  p.num_tables = 2500;
  p.mean_rows_per_table = 10.0;
  p.gs_tables = 0;
  p.label_headers = {"Album", "Title"};
  p.properties = {
      {"musicalArtist", DataType::kInstanceReference, ValueGen::kArtistRef,
       0.9, 0.6, 0, 0, {"Artist", "By"}},
      {"releaseDate", DataType::kDate, ValueGen::kYear, 0.8, 0.4, 1955, 2012,
       {"Released", "Year"}},
  };
  return p;
}

ClassProfile RegionProfile() {
  ClassProfile p;
  p.name = "Region";
  p.ancestry = {"Place", "PopulatedPlace"};
  p.is_target = false;
  p.label_gen = ValueGen::kPlaceRef;  // shares surface forms with settlements
  p.kb_instances = 6000;
  p.longtail_ratio = 0.15;
  p.homonym_rate = 0.08;
  p.num_tables = 700;
  p.mean_rows_per_table = 16.0;
  p.gs_tables = 0;
  p.label_headers = {"Name", "Region", "Area"};
  p.properties = {
      {"country", DataType::kInstanceReference, ValueGen::kCountry, 0.9, 0.5,
       0, 0, {"Country"}},
      {"populationTotal", DataType::kQuantity, ValueGen::kQuantityZipf, 0.6,
       0.4, 20000, 20000000, {"Population", "Pop."}},
  };
  return p;
}

}  // namespace

std::vector<ClassProfile> DefaultProfiles() {
  return {GfPlayerProfile(),         SongProfile(), SettlementProfile(),
          BasketballPlayerProfile(), AlbumProfile(), RegionProfile()};
}

}  // namespace ltee::synth
