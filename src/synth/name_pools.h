#ifndef LTEE_SYNTH_NAME_POOLS_H_
#define LTEE_SYNTH_NAME_POOLS_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace ltee::synth {

/// Vocabulary pools used by the synthetic world generator to produce
/// realistic labels and categorical values. Compositional pools (person
/// and place names, song titles) yield naturally colliding labels, which
/// is what makes the homonym problem of the paper reproducible.
class NamePools {
 public:
  NamePools();

  /// "First Last"; collisions across entities arise naturally.
  std::string PersonName(util::Rng& rng) const;
  /// Compositional settlement name, e.g. "Springfield", "North Oakton".
  std::string PlaceName(util::Rng& rng) const;
  /// Song title of 1-4 capitalized words.
  std::string SongTitle(util::Rng& rng) const;
  std::string ArtistName(util::Rng& rng) const;
  std::string AlbumName(util::Rng& rng) const;

  const std::vector<std::string>& colleges() const { return colleges_; }
  const std::vector<std::string>& teams() const { return teams_; }
  const std::vector<std::string>& positions() const { return positions_; }
  const std::vector<std::string>& genres() const { return genres_; }
  const std::vector<std::string>& record_labels() const {
    return record_labels_;
  }
  const std::vector<std::string>& countries() const { return countries_; }
  const std::vector<std::string>& regions() const { return regions_; }
  const std::vector<std::string>& writers() const { return writers_; }

  /// Uniformly picks one element of `pool`.
  static const std::string& Pick(const std::vector<std::string>& pool,
                                 util::Rng& rng);

 private:
  std::vector<std::string> first_names_;
  std::vector<std::string> last_names_;
  std::vector<std::string> place_prefixes_;
  std::vector<std::string> place_suffixes_;
  std::vector<std::string> place_modifiers_;
  std::vector<std::string> place_extensions_;
  std::vector<std::string> song_words_;
  std::vector<std::string> artist_adjectives_;
  std::vector<std::string> artist_nouns_;
  std::vector<std::string> colleges_;
  std::vector<std::string> teams_;
  std::vector<std::string> positions_;
  std::vector<std::string> genres_;
  std::vector<std::string> record_labels_;
  std::vector<std::string> countries_;
  std::vector<std::string> regions_;
  std::vector<std::string> writers_;
};

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_NAME_POOLS_H_
