#ifndef LTEE_SYNTH_GOLD_STANDARD_BUILDER_H_
#define LTEE_SYNTH_GOLD_STANDARD_BUILDER_H_

#include <vector>

#include "eval/gold_standard.h"
#include "synth/corpus_builder.h"
#include "synth/kb_builder.h"
#include "synth/world.h"
#include "util/random.h"
#include "webtable/web_table.h"

namespace ltee::synth {

/// Output of the gold standard construction: a dedicated small corpus of
/// annotated tables (one corpus shared by all classes; each GoldStandard
/// references its table ids) plus provenance truth parallel to it.
struct GoldStandardBuildResult {
  webtable::TableCorpus gs_corpus;
  std::vector<TableTruth> gs_truth;
  std::vector<eval::GoldStandard> gold;  // one per target profile
  std::vector<int> gold_profile;         // profile index per gold entry
};

/// Derives the gold standard from ground truth, following the paper's
/// construction (Section 2.3): tables with head and long-tail rows,
/// prioritizing rows unlikely to match the KB; clusters annotated with
/// new/existing flags and instance correspondences; attribute-to-property
/// correspondences; facts for every (cluster, property) with candidate
/// values, flagged with whether the correct value is present in the
/// tables. Cross-class homonym groups are preserved for the CV split.
GoldStandardBuildResult BuildGoldStandard(const World& world,
                                          const KbBuildResult& kb_result,
                                          const CorpusBuildResult& corpus,
                                          util::Rng& rng);

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_GOLD_STANDARD_BUILDER_H_
