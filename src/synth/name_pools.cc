#include "synth/name_pools.h"

namespace ltee::synth {

NamePools::NamePools() {
  first_names_ = {
      "James", "John",   "Robert",  "Michael", "William", "David",  "Richard",
      "Joseph", "Thomas", "Charles", "Chris",   "Daniel",  "Matt",   "Anthony",
      "Donald", "Mark",   "Paul",    "Steven",  "Andrew",  "Kenny",  "Josh",
      "Kevin",  "Brian",  "George",  "Edward",  "Ron",     "Tim",    "Jason",
      "Jeff",   "Ryan",   "Jacob",   "Gary",    "Nick",    "Eric",   "Jon",
      "Larry",  "Justin", "Scott",   "Brandon", "Frank",   "Ben",    "Greg",
      "Sam",    "Ray",    "Pat",     "Alex",    "Jack",    "Dennis", "Jerry",
      "Tyler",  "Aaron",  "Henry",   "Doug",    "Peter",   "Zach",   "Kyle",
      "Walt",   "Ethan",  "Jeremy",  "Keith",   "Roger",   "Terry",  "Sean",
      "Austin", "Carl",   "Arthur",  "Lawrence", "Dylan",  "Jesse",  "Jordan",
      "Bryan",  "Billy",  "Bruce",   "Gabriel", "Joe",     "Logan",  "Albert",
      "Willie", "Elijah", "Wayne",   "Randy",   "Mason",   "Vincent", "Liam"};
  last_names_ = {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",    "Garcia",
      "Miller",   "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
      "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",   "Moore",
      "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson", "White",
      "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",   "Scott",
      "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",    "Adams",
      "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
      "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",    "Turner",
      "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes",
      "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",     "Rogers",
      "Gutierrez", "Ortiz",   "Morgan",   "Cooper",   "Peterson", "Bailey",
      "Reed",     "Kelly",    "Howard",   "Ramos",    "Kim",      "Cox",
      "Ward",     "Richardson", "Watson", "Brooks",   "Chavez",   "Wood",
      "James",    "Bennett",  "Gray",     "Mendoza",  "Ruiz",     "Hughes",
      "Price",    "Alvarez",  "Castillo", "Sanders",  "Patel",    "Myers"};
  place_prefixes_ = {
      "Spring", "Oak",   "Maple",  "Cedar",  "Pine",   "Elm",    "River",
      "Lake",   "Hill",  "Glen",   "Fair",   "Green",  "Clear",  "Stone",
      "Mill",   "Bridge", "Ash",   "Birch",  "Sunny",  "Silver", "Golden",
      "Red",    "Black", "White",  "Brook",  "Wood",   "Rock",   "Salt",
      "Sand",   "Cross", "Church", "King",   "Queen",  "Bell",   "Eagle",
      "Fox",    "Deer",  "Bear",   "Wolf",   "Hazel",  "Willow", "Chestnut"};
  place_suffixes_ = {
      "field", "ton",   "ville", "burg",  "borough", "ford",  "port",
      "mouth", "dale",  "wood",  "land",  "stead",   "ham",   "wick",
      "bury",  "view",  "haven", "crest", "side",    "gate",  "bridge",
      "creek", "falls", "grove", "hurst", "cliff",   "shire", "minster"};
  place_modifiers_ = {"North", "South", "East", "West", "New", "Old",
                      "Upper", "Lower", "Fort", "Mount", "Saint", "Lake"};
  place_extensions_ = {"Heights", "Junction", "Springs",  "Park",
                       "Corner",  "Hollow",   "Landing",  "Meadows",
                       "Point",   "Ridge",    "Crossing", "Valley",
                       "Harbor",  "Beach",    "Terrace",  "Gardens"};
  song_words_ = {
      "Love",    "Night",  "Heart",  "Dream",   "Fire",   "Rain",   "Summer",
      "Blue",    "Golden", "Wild",   "Broken",  "Sweet",  "Lonely", "Dancing",
      "Midnight", "River", "Angel",  "Shadow",  "Light",  "Star",   "Moon",
      "Sun",     "Road",   "Home",   "Tears",   "Kiss",   "Soul",   "Time",
      "Forever", "Tonight", "Baby",  "Crazy",   "Ocean",  "Storm",  "Whisper",
      "Echo",    "Silent", "Velvet", "Crimson", "Electric", "Neon", "Paper",
      "Glass",   "Winter", "Autumn", "Morning", "Memory", "Ghost",  "Diamond",
      "Thunder", "Lightning", "Honey", "Sugar", "Magic",  "Mirror", "Window",
      "Garden",  "Highway", "Train", "City",    "Desert", "Island", "Mountain",
      "Castle",  "Bridge",  "Candle", "Feather", "Flame", "Harbor", "Horizon",
      "Jewel",   "Lantern", "Meadow", "Nightfall", "Opal", "Petal",  "Quiver",
      "Raven",   "Sapphire", "Tempest", "Umbrella", "Vapor", "Willow", "Zephyr",
      "Amber",   "Breeze",  "Cascade", "Dawn",   "Ember", "Frost",  "Glow",
      "Halo",    "Ivory",   "Jade",   "Karma",   "Lull",  "Mist",   "Nova"};
  artist_adjectives_ = {"Electric", "Velvet",  "Midnight", "Golden", "Silent",
                        "Crimson",  "Neon",    "Wild",     "Broken", "Lonely",
                        "Savage",   "Crystal", "Hollow",   "Frozen", "Burning"};
  artist_nouns_ = {"Tigers",  "Wolves",  "Echoes", "Shadows", "Riders",
                   "Hearts",  "Kings",   "Queens", "Ravens",  "Saints",
                   "Strangers", "Drifters", "Rebels", "Ghosts", "Pilots"};
  colleges_ = {
      "Alabama",      "Ohio State",   "Michigan",     "Notre Dame",
      "Texas",        "Oklahoma",     "Nebraska",     "Penn State",
      "Florida State", "Miami",       "Georgia",      "Tennessee",
      "Auburn",       "LSU",          "Florida",      "Wisconsin",
      "Oregon",       "Stanford",     "Washington",   "UCLA",
      "USC",          "Clemson",      "Iowa",         "Michigan State",
      "Texas A&M",    "Arkansas",     "Colorado",     "Pittsburgh",
      "Syracuse",     "Boston College", "Purdue",     "Illinois",
      "Minnesota",    "Missouri",     "Kansas State", "West Virginia",
      "Virginia Tech", "North Carolina", "Kentucky",  "Mississippi State"};
  teams_ = {
      "Arizona Cardinals",   "Atlanta Falcons",      "Baltimore Ravens",
      "Buffalo Bills",       "Carolina Panthers",    "Chicago Bears",
      "Cincinnati Bengals",  "Cleveland Browns",     "Dallas Cowboys",
      "Denver Broncos",      "Detroit Lions",        "Green Bay Packers",
      "Houston Texans",      "Indianapolis Colts",   "Jacksonville Jaguars",
      "Kansas City Chiefs",  "Miami Dolphins",       "Minnesota Vikings",
      "New England Patriots", "New Orleans Saints",  "New York Giants",
      "New York Jets",       "Oakland Raiders",      "Philadelphia Eagles",
      "Pittsburgh Steelers", "San Diego Chargers",   "San Francisco 49ers",
      "Seattle Seahawks",    "St. Louis Rams",       "Tampa Bay Buccaneers",
      "Tennessee Titans",    "Washington Redskins"};
  positions_ = {"Quarterback",    "Running back",  "Wide receiver",
                "Tight end",      "Center",        "Offensive tackle",
                "Offensive guard", "Defensive end", "Defensive tackle",
                "Linebacker",     "Cornerback",    "Safety",
                "Kicker",         "Punter",        "Fullback",
                "Long snapper"};
  genres_ = {"Rock",      "Pop",     "Country", "Hip hop", "R&B",
             "Jazz",      "Blues",   "Folk",    "Soul",    "Electronic",
             "Reggae",    "Punk",    "Metal",   "Disco",   "Funk",
             "Gospel",    "Indie rock", "Alternative rock", "Hard rock",
             "Soft rock", "Dance",   "House",   "Techno",  "Ska"};
  record_labels_ = {"Columbia Records",  "Atlantic Records", "Capitol Records",
                    "RCA Records",       "Warner Bros",      "Motown",
                    "Island Records",    "Epic Records",     "Mercury Records",
                    "Decca Records",     "Elektra Records",  "Chrysalis",
                    "Geffen Records",    "Virgin Records",   "A&M Records",
                    "Interscope",        "Def Jam",          "Sub Pop"};
  countries_ = {"United States", "Germany",  "France",   "United Kingdom",
                "Italy",         "Spain",    "Poland",   "Canada",
                "Australia",     "Austria",  "Brazil",   "Mexico",
                "Netherlands",   "Sweden",   "Norway",   "Switzerland",
                "Czech Republic", "Hungary", "Romania",  "Portugal",
                "India",         "Japan",    "Turkey",   "Greece"};
  regions_ = {"Bavaria",      "Saxony",       "Tuscany",    "Provence",
              "Catalonia",    "Andalusia",    "Ontario",    "Quebec",
              "Queensland",   "Victoria",     "Texas",      "California",
              "Ohio",         "Silesia",      "Normandy",   "Brittany",
              "Lombardy",     "Tyrol",        "Galicia",    "Westphalia",
              "Saskatchewan", "Bohemia",      "Transylvania", "Castile",
              "Flanders",     "Wallonia",     "Scania",     "Lapland"};
  writers_ = {};
  // Writers reuse person names; generated lazily through PersonName().
}

const std::string& NamePools::Pick(const std::vector<std::string>& pool,
                                   util::Rng& rng) {
  return pool[rng.NextBounded(pool.size())];
}

std::string NamePools::PersonName(util::Rng& rng) const {
  return Pick(first_names_, rng) + " " + Pick(last_names_, rng);
}

std::string NamePools::PlaceName(util::Rng& rng) const {
  std::string base = Pick(place_prefixes_, rng) + Pick(place_suffixes_, rng);
  if (rng.NextBool(0.3)) {
    base = Pick(place_modifiers_, rng) + " " + base;
  }
  if (rng.NextBool(0.3)) {
    base += " " + Pick(place_extensions_, rng);
  }
  return base;
}

std::string NamePools::SongTitle(util::Rng& rng) const {
  // Mostly 2-3 word titles; single-word titles are rare enough that title
  // collisions stay a hard-but-bounded phenomenon (the homonym problem).
  const int words = rng.NextBool(0.08) ? 1 : 2 + static_cast<int>(rng.NextBounded(2));
  std::string title = Pick(song_words_, rng);
  for (int w = 1; w < words; ++w) {
    std::string next = Pick(song_words_, rng);
    if (next != title) title += " " + next;
  }
  if (rng.NextBool(0.15)) title = "The " + title;
  return title;
}

std::string NamePools::ArtistName(util::Rng& rng) const {
  switch (rng.NextBounded(3)) {
    case 0:
      return "The " + Pick(artist_adjectives_, rng) + " " +
             Pick(artist_nouns_, rng);
    case 1:
      return PersonName(rng);
    default:
      return Pick(artist_adjectives_, rng) + " " + Pick(artist_nouns_, rng);
  }
}

std::string NamePools::AlbumName(util::Rng& rng) const {
  return SongTitle(rng);
}

}  // namespace ltee::synth
