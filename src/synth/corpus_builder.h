#ifndef LTEE_SYNTH_CORPUS_BUILDER_H_
#define LTEE_SYNTH_CORPUS_BUILDER_H_

#include <vector>

#include "synth/world.h"
#include "util/random.h"
#include "webtable/web_table.h"

namespace ltee::synth {

/// Ground-truth provenance of one generated table (never shown to the
/// pipeline; consumed by the gold standard builder and the evaluations).
struct TableTruth {
  /// World profile index of the class the table is about.
  int profile_index = -1;
  int label_column = 0;
  /// Per column: index of the property in the profile's property vector,
  /// kLabelColumn for the label attribute, kJunkColumn for noise columns.
  std::vector<int> column_property;
  /// World entity id per row (-1 for pure-noise rows).
  std::vector<int> row_entity;
  /// Property index of the table's theme (-1 when the table has none).
  int theme_property = -1;

  static constexpr int kLabelColumn = -1;
  static constexpr int kJunkColumn = -2;
};

/// The generated corpus plus its provenance, parallel by table id.
struct CorpusBuildResult {
  webtable::TableCorpus corpus;
  std::vector<TableTruth> truth;
};

/// Generates the web table corpus from the world: for every profile,
/// `num_tables * scale` tables with heavy-tailed row counts, optional
/// themes (shared implicit property-value combinations), per-property
/// column inclusion, heterogeneous headers, and the noise model
/// (missing cells, typos, stale and wrong values, junk columns).
CorpusBuildResult BuildCorpus(const World& world, double scale,
                              util::Rng& rng);

/// Renders a ground-truth value into a surface cell string with realistic
/// formatting variance (date formats, thousands separators, casing).
/// Exposed for tests.
std::string RenderValue(const types::Value& value, util::Rng& rng);

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_CORPUS_BUILDER_H_
