#include "synth/corpus_builder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace ltee::synth {

namespace {

using types::DataType;
using types::DateGranularity;
using types::Value;

std::string ApplyTypo(std::string s, util::Rng& rng) {
  if (s.size() < 3) return s;
  const size_t pos = 1 + rng.NextBounded(s.size() - 2);
  if (rng.NextBool(0.5)) {
    std::swap(s[pos], s[pos - 1]);  // transposition
  } else {
    s.erase(pos, 1);  // deletion
  }
  return s;
}

std::string FormatThousands(long long v) {
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%lld", v);
  std::string digits(raw);
  std::string out;
  const bool negative = !digits.empty() && digits[0] == '-';
  size_t start = negative ? 1 : 0;
  size_t len = digits.size() - start;
  for (size_t i = start; i < digits.size(); ++i) {
    out.push_back(digits[i]);
    size_t remaining = len - (i - start) - 1;
    if (remaining > 0 && remaining % 3 == 0) out.push_back(',');
  }
  return negative ? "-" + out : out;
}

const char* MonthName(int m) {
  static const char* kNames[] = {"January",   "February", "March",
                                 "April",     "May",      "June",
                                 "July",      "August",   "September",
                                 "October",   "November", "December"};
  return kNames[(m - 1) % 12];
}

}  // namespace

std::string RenderValue(const Value& value, util::Rng& rng) {
  char buf[64];
  switch (value.type) {
    case DataType::kText:
    case DataType::kNominalString:
    case DataType::kInstanceReference: {
      std::string s = value.text;
      if (rng.NextBool(0.08)) s = util::ToLower(s);
      return s;
    }
    case DataType::kDate: {
      const auto& d = value.date;
      if (d.granularity == DateGranularity::kYear || rng.NextBool(0.2)) {
        std::snprintf(buf, sizeof(buf), "%d", d.year);
        return buf;
      }
      switch (rng.NextBounded(3)) {
        case 0:
          std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month,
                        d.day);
          return buf;
        case 1:
          std::snprintf(buf, sizeof(buf), "%d/%d/%04d", d.month, d.day,
                        d.year);
          return buf;
        default:
          std::snprintf(buf, sizeof(buf), "%s %d, %04d", MonthName(d.month),
                        d.day, d.year);
          return buf;
      }
    }
    case DataType::kQuantity: {
      const long long v = static_cast<long long>(std::llround(value.number));
      if (std::abs(value.number) >= 1000 && rng.NextBool(0.5)) {
        return FormatThousands(v);
      }
      std::snprintf(buf, sizeof(buf), "%lld", v);
      return buf;
    }
    case DataType::kNominalInteger: {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value.integer));
      return buf;
    }
  }
  return "";
}

namespace {

/// Perturbs a value to model stale / conflicting data.
Value MakeStale(const Value& value, const PropertyProfile& prop,
                const NamePools& pools, util::Rng& rng) {
  Value out = value;
  switch (value.type) {
    case DataType::kQuantity:
      out.number =
          std::round(value.number * (0.75 + 0.5 * rng.NextDouble()));
      break;
    case DataType::kDate:
      out.date.year = static_cast<int16_t>(out.date.year +
                                           (rng.NextBool(0.5) ? 1 : -1));
      break;
    case DataType::kInstanceReference:
    case DataType::kNominalString:
    case DataType::kText:
      out = GenerateValue(prop, pools, rng);
      break;
    case DataType::kNominalInteger:
      out.integer += rng.NextBool(0.5) ? 1 : -1;
      break;
  }
  return out;
}

struct ThemeIndex {
  // property index -> value key -> entity ids sharing that value
  std::vector<std::unordered_map<std::string, std::vector<int>>> groups;
};

ThemeIndex BuildThemeIndex(const World& world, int profile_index) {
  const ClassProfile& profile = world.profiles()[profile_index];
  ThemeIndex idx;
  idx.groups.resize(profile.properties.size());
  for (size_t k = 0; k < profile.properties.size(); ++k) {
    const auto type = profile.properties[k].type;
    // Themes make sense for shared categorical values and years.
    if (type != DataType::kInstanceReference &&
        type != DataType::kNominalString && type != DataType::kDate &&
        type != DataType::kNominalInteger) {
      continue;
    }
    for (int eid : world.EntitiesOfProfile(profile_index)) {
      const auto& v = world.entity(eid).truth[k];
      std::string key = v.type == DataType::kDate
                            ? std::to_string(v.date.year)
                            : v.ToString();
      idx.groups[k][key].push_back(eid);
    }
  }
  return idx;
}

}  // namespace

CorpusBuildResult BuildCorpus(const World& world, double scale,
                              util::Rng& rng) {
  CorpusBuildResult out;
  static const std::vector<std::string> kJunkHeaders = {
      "Rank", "Notes", "Source", "Ref", "Info", "Links"};
  static const std::vector<std::string> kGenericHeaders = {"Info", "Data",
                                                           "Column", "Value"};

  for (size_t pi = 0; pi < world.profiles().size(); ++pi) {
    const ClassProfile& profile = world.profiles()[pi];
    const auto& entity_ids = world.EntitiesOfProfile(static_cast<int>(pi));
    if (entity_ids.empty()) continue;

    std::vector<int> head_ids, tail_ids;
    for (int eid : entity_ids) {
      (world.entity(eid).in_kb ? head_ids : tail_ids).push_back(eid);
    }
    const ThemeIndex themes = BuildThemeIndex(world, static_cast<int>(pi));
    util::ZipfSampler head_zipf(std::max<size_t>(1, head_ids.size()), 0.8);
    util::ZipfSampler tail_zipf(std::max<size_t>(1, tail_ids.size()), 0.5);

    const size_t n_tables = std::max<size_t>(
        40, static_cast<size_t>(std::llround(
                static_cast<double>(profile.num_tables) * scale)));

    for (size_t t = 0; t < n_tables; ++t) {
      // Row count: heavy-tailed (exponential), at least 1.
      double u = rng.NextDouble();
      int n_rows = std::max(
          1, static_cast<int>(std::lround(-std::log(1.0 - u) *
                                          profile.mean_rows_per_table)));
      n_rows = std::min(n_rows, 400);

      // Theme: a shared property-value combination most rows satisfy.
      int theme_property = -1;
      const std::vector<int>* theme_entities = nullptr;
      if (rng.NextBool(profile.theme_rate)) {
        // Pick a themable property and a group big enough to fill a table.
        for (int attempt = 0; attempt < 6 && theme_property < 0; ++attempt) {
          size_t k = rng.NextBounded(profile.properties.size());
          if (themes.groups[k].empty()) continue;
          // Reservoir-pick a random group.
          size_t target = rng.NextBounded(themes.groups[k].size());
          auto it = themes.groups[k].begin();
          std::advance(it, static_cast<long>(target));
          if (it->second.size() >= 3) {
            theme_property = static_cast<int>(k);
            theme_entities = &it->second;
          }
        }
      }

      // Sample distinct entities for the rows.
      std::vector<int> row_entities;
      std::unordered_set<int> used;
      for (int r = 0; r < n_rows; ++r) {
        int eid = -1;
        for (int attempt = 0; attempt < 8; ++attempt) {
          if (theme_entities != nullptr && rng.NextBool(0.9)) {
            eid = (*theme_entities)[rng.NextBounded(theme_entities->size())];
          } else if (!tail_ids.empty() &&
                     rng.NextBool(profile.table_longtail_bias)) {
            eid = tail_ids[tail_zipf.Sample(rng)];
          } else if (!head_ids.empty()) {
            eid = head_ids[head_zipf.Sample(rng)];
          }
          // Rows of one table usually describe different entities
          // (SAME_TABLE assumption); tolerate rare duplicates.
          if (eid >= 0 && (used.insert(eid).second || rng.NextBool(0.02))) {
            break;
          }
          eid = -1;
        }
        if (eid < 0) break;
        row_entities.push_back(eid);
      }
      if (row_entities.empty()) continue;

      // Choose columns.
      TableTruth truth;
      truth.profile_index = static_cast<int>(pi);
      truth.theme_property = theme_property;
      std::vector<int> value_columns;  // property indices
      for (size_t k = 0; k < profile.properties.size(); ++k) {
        double density = profile.properties[k].table_density;
        // Theme columns are usually left out of the table — the shared
        // value is implied by the page context (IMPLICIT_ATT's premise).
        if (static_cast<int>(k) == theme_property) density *= 0.25;
        if (rng.NextBool(density)) value_columns.push_back(static_cast<int>(k));
      }
      if (value_columns.empty()) {
        value_columns.push_back(
            static_cast<int>(rng.NextBounded(profile.properties.size())));
      }
      const bool junk = rng.NextBool(profile.junk_column_rate);

      const int n_cols = 1 + static_cast<int>(value_columns.size()) +
                         (junk ? 1 : 0);
      int label_col = rng.NextBool(0.85)
                          ? 0
                          : static_cast<int>(rng.NextBounded(
                                static_cast<uint64_t>(n_cols)));
      truth.label_column = label_col;
      truth.column_property.assign(n_cols, TableTruth::kJunkColumn);
      truth.column_property[label_col] = TableTruth::kLabelColumn;
      // Scatter value columns into the remaining slots in order.
      {
        size_t next_prop = 0;
        for (int c = 0; c < n_cols && next_prop < value_columns.size(); ++c) {
          if (c == label_col) continue;
          // Leave the junk slot for the last unassigned column.
          truth.column_property[c] = value_columns[next_prop++];
        }
      }

      // Headers.
      webtable::WebTable table;
      table.page_url = "http://synthetic.example/" + profile.name + "/" +
                       std::to_string(t);
      table.headers.resize(n_cols);
      for (int c = 0; c < n_cols; ++c) {
        if (rng.NextBool(profile.header_noise_rate)) {
          table.headers[c] = NamePools::Pick(kGenericHeaders, rng);
          continue;
        }
        const int cp = truth.column_property[c];
        if (cp == TableTruth::kLabelColumn) {
          table.headers[c] = NamePools::Pick(profile.label_headers, rng);
        } else if (cp == TableTruth::kJunkColumn) {
          table.headers[c] = NamePools::Pick(kJunkHeaders, rng);
        } else {
          table.headers[c] =
              NamePools::Pick(profile.properties[cp].header_aliases, rng);
        }
      }

      // Junk columns come in three flavours that exert false-positive
      // pressure on different matcher types: a rank counter and random
      // small integers (syntactically fit nominal-integer/quantity
      // properties), and low-cardinality note phrases (fit text
      // properties without out-uniquing the label column, as real
      // "Notes"/"Source" columns behave).
      const int junk_kind = static_cast<int>(rng.NextBounded(3));
      static const std::vector<std::string> kJunkPhrases = {
          "ok", "tbd", "n/a", "see notes", "confirmed", "pending", "source"};

      // Cells.
      int junk_counter = 1;
      for (int eid : row_entities) {
        const WorldEntity& entity = world.entity(eid);
        std::vector<std::string> row(n_cols);
        for (int c = 0; c < n_cols; ++c) {
          const int cp = truth.column_property[c];
          if (cp == TableTruth::kLabelColumn) {
            std::string label = entity.label;
            if (rng.NextBool(profile.typo_rate)) label = ApplyTypo(label, rng);
            row[c] = label;
          } else if (cp == TableTruth::kJunkColumn) {
            switch (junk_kind) {
              case 0:
                row[c] = std::to_string(junk_counter);
                break;
              case 1:
                row[c] = std::to_string(1 + rng.NextBounded(150));
                break;
              default:
                row[c] = NamePools::Pick(kJunkPhrases, rng);
                break;
            }
          } else {
            if (rng.NextBool(profile.cell_missing_rate)) {
              row[c].clear();
              continue;
            }
            Value value = entity.truth[cp];
            if (rng.NextBool(profile.wrong_value_rate)) {
              const int other =
                  entity_ids[rng.NextBounded(entity_ids.size())];
              value = world.entity(other).truth[cp];
            } else if (rng.NextBool(profile.stale_rate)) {
              value = MakeStale(value, profile.properties[cp], world.pools(),
                                rng);
            }
            std::string cell = RenderValue(value, rng);
            if (rng.NextBool(profile.typo_rate) &&
                (value.type == DataType::kText ||
                 value.type == DataType::kInstanceReference)) {
              cell = ApplyTypo(cell, rng);
            }
            row[c] = std::move(cell);
          }
        }
        table.rows.push_back(std::move(row));
        truth.row_entity.push_back(eid);
        ++junk_counter;
      }

      out.corpus.Add(std::move(table));
      out.truth.push_back(std::move(truth));
    }
  }
  return out;
}

}  // namespace ltee::synth
