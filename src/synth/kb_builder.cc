#include "synth/kb_builder.h"

#include <string>
#include <unordered_map>

#include "util/string_util.h"

namespace ltee::synth {

KbBuildResult BuildKb(World* world, util::Rng& rng) {
  KbBuildResult out;
  kb::KnowledgeBase& base = out.kb;

  // Ontology: create ancestry chains, deduplicating by name.
  std::unordered_map<std::string, kb::ClassId> class_ids;
  auto intern_class = [&](const std::string& name,
                          kb::ClassId parent) -> kb::ClassId {
    auto it = class_ids.find(name);
    if (it != class_ids.end()) return it->second;
    kb::ClassId id = base.AddClass(name, parent);
    class_ids.emplace(name, id);
    return id;
  };

  const auto& profiles = world->profiles();
  out.class_of_profile.resize(profiles.size());
  out.property_ids.resize(profiles.size());
  std::vector<kb::ClassId> parent_of_profile(profiles.size());

  for (size_t pi = 0; pi < profiles.size(); ++pi) {
    const ClassProfile& profile = profiles[pi];
    kb::ClassId parent = kb::kInvalidClass;
    for (const auto& ancestor : profile.ancestry) {
      parent = intern_class(ancestor, parent);
    }
    parent_of_profile[pi] = parent;
    kb::ClassId cls = intern_class(profile.name, parent);
    out.class_of_profile[pi] = cls;
    for (const auto& prop : profile.properties) {
      // The KB knows the canonical property name plus at most one common
      // synonym. Web tables use the full heterogeneous alias pool, so many
      // headers ("DOB", "Ht", "Duration") are *not* label-matchable — the
      // gap the duplicate-based matchers close in the second iteration
      // (Table 6).
      std::vector<std::string> extra;
      if (!prop.header_aliases.empty()) {
        extra.push_back(prop.header_aliases.front());
      }
      out.property_ids[pi].push_back(
          base.AddProperty(cls, prop.name, prop.type, std::move(extra)));
    }
  }

  // Instances: head entities only, with density-thinned facts.
  for (size_t pi = 0; pi < profiles.size(); ++pi) {
    const ClassProfile& profile = profiles[pi];
    for (int eid : world->EntitiesOfProfile(static_cast<int>(pi))) {
      const WorldEntity& entity = world->entity(eid);
      if (!entity.in_kb) continue;
      const kb::ClassId cls = entity.kb_has_class
                                  ? out.class_of_profile[pi]
                                  : parent_of_profile[pi];
      kb::InstanceId id =
          base.AddInstance(cls, {entity.label}, entity.popularity);
      world->SetKbId(eid, id);

      std::vector<std::string> abstract_tokens =
          util::Tokenize(entity.label + " " + profile.name);
      for (size_t k = 0; k < profile.properties.size(); ++k) {
        if (!rng.NextBool(profile.properties[k].kb_density)) continue;
        base.AddFact(id, out.property_ids[pi][k], entity.truth[k]);
        for (auto& tok : util::Tokenize(entity.truth[k].ToString())) {
          abstract_tokens.push_back(std::move(tok));
        }
      }
      base.SetAbstractTokens(id, std::move(abstract_tokens));
    }
  }
  return out;
}

}  // namespace ltee::synth
