#include "synth/dataset.h"

#include "synth/gold_standard_builder.h"
#include "util/logging.h"

namespace ltee::synth {

int SyntheticDataset::ProfileOfClass(kb::ClassId cls) const {
  for (size_t pi = 0; pi < class_of_profile.size(); ++pi) {
    if (class_of_profile[pi] == cls) return static_cast<int>(pi);
  }
  return -1;
}

SyntheticDataset BuildDataset(const DatasetOptions& options) {
  util::Rng rng(options.seed);
  SyntheticDataset ds;

  std::vector<ClassProfile> profiles =
      options.profiles.empty() ? DefaultProfiles() : options.profiles;
  ds.world = BuildWorld(std::move(profiles), options.scale, rng);

  KbBuildResult kb_result = BuildKb(&ds.world, rng);
  ds.kb = std::move(kb_result.kb);
  ds.class_of_profile = std::move(kb_result.class_of_profile);
  ds.property_ids = std::move(kb_result.property_ids);

  CorpusBuildResult corpus_result = BuildCorpus(ds.world, options.scale, rng);

  KbBuildResult mapping;  // shallow mapping view for the GS builder
  mapping.class_of_profile = ds.class_of_profile;
  mapping.property_ids = ds.property_ids;
  GoldStandardBuildResult gs =
      BuildGoldStandard(ds.world, mapping, corpus_result, rng);

  ds.corpus = std::move(corpus_result.corpus);
  ds.table_truth = std::move(corpus_result.truth);
  ds.gs_corpus = std::move(gs.gs_corpus);
  ds.gs_truth = std::move(gs.gs_truth);
  ds.gold = std::move(gs.gold);
  ds.gold_profile = std::move(gs.gold_profile);

  LTEE_LOG(kInfo) << "Synthetic dataset: " << ds.world.entities().size()
                  << " world entities, " << ds.kb.num_instances()
                  << " KB instances, " << ds.corpus.size() << " tables ("
                  << ds.corpus.TotalRows() << " rows), "
                  << ds.gs_corpus.size() << " gold tables";
  return ds;
}

}  // namespace ltee::synth
