#include "synth/gold_standard_builder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "types/type_similarity.h"
#include "types/value_parser.h"
#include "util/string_util.h"

namespace ltee::synth {

namespace {

/// A row occurrence of an entity in the source corpus.
struct Occurrence {
  webtable::TableId table;
  int row;
};

}  // namespace

GoldStandardBuildResult BuildGoldStandard(const World& world,
                                          const KbBuildResult& kb_result,
                                          const CorpusBuildResult& corpus,
                                          util::Rng& rng) {
  GoldStandardBuildResult out;
  const types::TypeSimilarityOptions sim_options;

  for (int pi : world.TargetProfiles()) {
    const ClassProfile& profile = world.profiles()[pi];

    // ---- 1. Order source tables, prioritizing long-tail-heavy ones. ----
    std::vector<std::pair<double, webtable::TableId>> pool;
    for (size_t t = 0; t < corpus.truth.size(); ++t) {
      const TableTruth& truth = corpus.truth[t];
      if (truth.profile_index != pi) continue;
      int tail_rows = 0;
      for (int eid : truth.row_entity) {
        if (eid >= 0 && !world.entity(eid).in_kb) ++tail_rows;
      }
      const double score = static_cast<double>(tail_rows) + rng.NextDouble();
      pool.emplace_back(-score, static_cast<webtable::TableId>(t));
    }
    std::sort(pool.begin(), pool.end());

    // ---- 2. Entity occurrences across the pool (capped per entity). ----
    std::unordered_map<int, std::vector<Occurrence>> occurrences;
    for (const auto& [neg_score, tid] : pool) {
      const TableTruth& truth = corpus.truth[tid];
      for (size_t r = 0; r < truth.row_entity.size(); ++r) {
        const int eid = truth.row_entity[r];
        if (eid < 0) continue;
        auto& occ = occurrences[eid];
        if (occ.size() < 8) occ.push_back({tid, static_cast<int>(r)});
      }
    }

    // ---- 3. Select cluster entities. -----------------------------------
    std::vector<int> new_candidates, existing_candidates;
    for (const auto& [eid, occ] : occurrences) {
      const WorldEntity& entity = world.entity(eid);
      (entity.in_kb ? existing_candidates : new_candidates).push_back(eid);
    }
    auto prefer_multirow = [&](std::vector<int>* ids) {
      rng.Shuffle(ids);
      std::stable_sort(ids->begin(), ids->end(), [&](int a, int b) {
        return occurrences[a].size() > occurrences[b].size();
      });
    };
    prefer_multirow(&new_candidates);
    prefer_multirow(&existing_candidates);

    const size_t want_new = static_cast<size_t>(
        std::lround(profile.gs_new_fraction *
                    static_cast<double>(profile.gs_target_clusters)));
    const size_t want_existing = profile.gs_target_clusters - want_new;

    std::unordered_set<int> selected;
    auto take = [&](const std::vector<int>& from, size_t want) {
      size_t taken = 0;
      for (int eid : from) {
        if (taken >= want) break;
        if (selected.insert(eid).second) ++taken;
      }
    };
    take(new_candidates, want_new);
    take(existing_candidates, want_existing);

    // Pull in homonym mates that also occur in the pool, so that homonym
    // groups are fully annotated (they stress row clustering).
    std::unordered_map<int64_t, std::vector<int>> mates_by_group;
    for (const auto& [eid, occ] : occurrences) {
      const int64_t g = world.entity(eid).homonym_group;
      if (g >= 0) mates_by_group[g].push_back(eid);
    }
    std::vector<int> extra;
    for (int eid : selected) {
      const int64_t g = world.entity(eid).homonym_group;
      if (g < 0) continue;
      for (int mate : mates_by_group[g]) extra.push_back(mate);
    }
    for (int mate : extra) selected.insert(mate);

    // ---- 4. Fix the table set: tables containing selected rows. --------
    std::vector<webtable::TableId> gs_source_tables;
    for (const auto& [neg_score, tid] : pool) {
      if (gs_source_tables.size() >= profile.gs_tables) break;
      const TableTruth& truth = corpus.truth[tid];
      bool has_selected = false;
      for (int eid : truth.row_entity) {
        if (eid >= 0 && selected.count(eid)) {
          has_selected = true;
          break;
        }
      }
      if (has_selected) gs_source_tables.push_back(tid);
    }
    std::unordered_set<webtable::TableId> gs_table_set(
        gs_source_tables.begin(), gs_source_tables.end());

    // ---- 5. Emit restricted copies of the tables into gs_corpus. -------
    eval::GoldStandard gold;
    gold.cls = kb_result.class_of_profile[pi];
    std::unordered_map<int, eval::GsCluster> cluster_of_entity;

    for (webtable::TableId tid : gs_source_tables) {
      const webtable::WebTable& src = corpus.corpus.table(tid);
      const TableTruth& src_truth = corpus.truth[tid];
      webtable::WebTable copy;
      copy.headers = src.headers;
      copy.page_url = src.page_url;
      TableTruth new_truth;
      new_truth.profile_index = src_truth.profile_index;
      new_truth.label_column = src_truth.label_column;
      new_truth.column_property = src_truth.column_property;
      new_truth.theme_property = src_truth.theme_property;
      for (size_t r = 0; r < src.rows.size(); ++r) {
        const int eid = src_truth.row_entity[r];
        if (eid < 0 || !selected.count(eid)) continue;
        copy.rows.push_back(src.rows[r]);
        new_truth.row_entity.push_back(eid);
      }
      if (copy.rows.empty()) continue;
      const webtable::TableId new_id = out.gs_corpus.Add(std::move(copy));
      out.gs_truth.push_back(new_truth);
      gold.tables.push_back(new_id);

      // Attribute annotations for every matched value column.
      for (size_t c = 0; c < new_truth.column_property.size(); ++c) {
        const int cp = new_truth.column_property[c];
        if (cp < 0) continue;
        gold.attributes.push_back(
            {new_id, static_cast<int>(c), kb_result.property_ids[pi][cp]});
      }
      // Cluster membership rows.
      for (size_t r = 0; r < new_truth.row_entity.size(); ++r) {
        const int eid = new_truth.row_entity[r];
        auto& cluster = cluster_of_entity[eid];
        cluster.rows.push_back({new_id, static_cast<int>(r)});
        if (cluster.world_entity < 0) {
          const WorldEntity& entity = world.entity(eid);
          cluster.world_entity = eid;
          cluster.is_new = !entity.in_kb;
          cluster.kb_instance = entity.kb_id;
          cluster.homonym_group = entity.homonym_group;
        }
      }
    }
    (void)gs_table_set;

    for (auto& [eid, cluster] : cluster_of_entity) {
      gold.clusters.push_back(std::move(cluster));
    }
    // Deterministic order: by first row.
    std::sort(gold.clusters.begin(), gold.clusters.end(),
              [](const eval::GsCluster& a, const eval::GsCluster& b) {
                return a.rows.front() < b.rows.front();
              });
    gold.BuildLookups();

    // ---- 6. Facts: per (cluster, property) with candidate values. -------
    for (size_t ci = 0; ci < gold.clusters.size(); ++ci) {
      const eval::GsCluster& cluster = gold.clusters[ci];
      const WorldEntity& entity = world.entity(cluster.world_entity);
      for (size_t k = 0; k < profile.properties.size(); ++k) {
        const kb::PropertyId prop_id = kb_result.property_ids[pi][k];
        const types::DataType type = profile.properties[k].type;
        bool any_candidate = false;
        bool correct_present = false;
        for (const auto& row : cluster.rows) {
          const TableTruth& truth = out.gs_truth[row.table];
          for (size_t c = 0; c < truth.column_property.size(); ++c) {
            if (truth.column_property[c] != static_cast<int>(k)) continue;
            const std::string& cell =
                out.gs_corpus.cell(row, static_cast<size_t>(c));
            auto value = types::NormalizeCell(cell, type);
            if (!value) continue;
            any_candidate = true;
            if (types::ValuesEqual(*value, entity.truth[k], sim_options)) {
              correct_present = true;
            }
          }
        }
        if (any_candidate) {
          eval::GsFact fact;
          fact.cluster = static_cast<int>(ci);
          fact.property = prop_id;
          fact.correct_value = entity.truth[k];
          fact.correct_value_present = correct_present;
          gold.facts.push_back(std::move(fact));
        }
      }
    }

    out.gold.push_back(std::move(gold));
    out.gold_profile.push_back(pi);
  }
  return out;
}

}  // namespace ltee::synth
