#ifndef LTEE_SYNTH_DATASET_H_
#define LTEE_SYNTH_DATASET_H_

#include <cstdint>
#include <vector>

#include "eval/gold_standard.h"
#include "synth/corpus_builder.h"
#include "synth/kb_builder.h"
#include "synth/world.h"

namespace ltee::synth {

/// Options for generating a complete synthetic experiment environment.
struct DatasetOptions {
  /// Multiplier applied to the paper-scale instance/table counts of the
  /// profiles. 0.01 yields a laptop-size environment in a few seconds.
  double scale = 0.01;
  uint64_t seed = 42;
  /// Profiles to use; empty selects DefaultProfiles().
  std::vector<ClassProfile> profiles;
};

/// Everything the experiments need: the ground-truth world, the KB sliced
/// from its head entities, the large noisy corpus with provenance, and the
/// per-class gold standards over a dedicated annotated sub-corpus.
struct SyntheticDataset {
  World world;
  kb::KnowledgeBase kb;
  std::vector<kb::ClassId> class_of_profile;
  std::vector<std::vector<kb::PropertyId>> property_ids;

  webtable::TableCorpus corpus;
  std::vector<TableTruth> table_truth;

  webtable::TableCorpus gs_corpus;
  std::vector<TableTruth> gs_truth;
  std::vector<eval::GoldStandard> gold;
  std::vector<int> gold_profile;

  /// Profile index of a KB class id, or -1.
  int ProfileOfClass(kb::ClassId cls) const;
};

/// Deterministically builds the full environment from a seed.
SyntheticDataset BuildDataset(const DatasetOptions& options = {});

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_DATASET_H_
