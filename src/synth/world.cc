#include "synth/world.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ltee::synth {

namespace {

using types::Value;

std::string RandomDigits(int n, util::Rng& rng) {
  std::string s;
  s.reserve(n);
  for (int i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('0' + rng.NextBounded(10)));
  }
  if (s[0] == '0') s[0] = '1';
  return s;
}

}  // namespace

types::Value GenerateValue(const PropertyProfile& prop, const NamePools& pools,
                           util::Rng& rng) {
  switch (prop.gen) {
    case ValueGen::kCollege:
      return Value::InstanceRef(NamePools::Pick(pools.colleges(), rng));
    case ValueGen::kTeam:
      return Value::InstanceRef(NamePools::Pick(pools.teams(), rng));
    case ValueGen::kPosition:
      return Value::Nominal(NamePools::Pick(pools.positions(), rng));
    case ValueGen::kGenre:
      return Value::Nominal(NamePools::Pick(pools.genres(), rng));
    case ValueGen::kRecordLabel:
      return Value::InstanceRef(NamePools::Pick(pools.record_labels(), rng));
    case ValueGen::kCountry:
      return Value::InstanceRef(NamePools::Pick(pools.countries(), rng));
    case ValueGen::kRegion:
      return Value::InstanceRef(NamePools::Pick(pools.regions(), rng));
    case ValueGen::kArtistRef:
      return Value::InstanceRef(pools.ArtistName(rng));
    case ValueGen::kAlbumRef:
      return Value::InstanceRef(pools.AlbumName(rng));
    case ValueGen::kWriterRef:
      return Value::InstanceRef(pools.PersonName(rng));
    case ValueGen::kPlaceRef:
      return Value::InstanceRef(pools.PlaceName(rng));
    case ValueGen::kFullDate: {
      int year = static_cast<int>(rng.NextInt(
          static_cast<int64_t>(prop.qmin), static_cast<int64_t>(prop.qmax)));
      int month = static_cast<int>(rng.NextInt(1, 12));
      int day = static_cast<int>(rng.NextInt(1, 28));
      return Value::DayDate(year, month, day);
    }
    case ValueGen::kYear: {
      int year = static_cast<int>(rng.NextInt(
          static_cast<int64_t>(prop.qmin), static_cast<int64_t>(prop.qmax)));
      return Value::YearDate(year);
    }
    case ValueGen::kQuantityUniform: {
      double v = prop.qmin + rng.NextDouble() * (prop.qmax - prop.qmin);
      return Value::OfQuantity(std::round(v));
    }
    case ValueGen::kQuantityZipf: {
      // Heavy-tailed: qmin * exp(Exp-ish); clipped at qmax.
      double u = rng.NextDouble();
      double v = prop.qmin * std::pow(prop.qmax / prop.qmin, u * u * u);
      return Value::OfQuantity(std::round(v));
    }
    case ValueGen::kSmallInt:
      return Value::OfInteger(rng.NextInt(static_cast<int64_t>(prop.qmin),
                                          static_cast<int64_t>(prop.qmax)));
    case ValueGen::kPostalCode:
      return Value::Nominal(RandomDigits(5, rng));
  }
  return Value::Text("?");
}

std::vector<int> World::TargetProfiles() const {
  std::vector<int> out;
  for (size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i].is_target) out.push_back(static_cast<int>(i));
  }
  return out;
}

namespace {

std::string GenerateLabel(const ClassProfile& profile, const NamePools& pools,
                          util::Rng& rng) {
  switch (profile.label_gen) {
    case ValueGen::kWriterRef:
      return pools.PersonName(rng);
    case ValueGen::kAlbumRef:
      return pools.SongTitle(rng);
    case ValueGen::kPlaceRef:
    default:
      return pools.PlaceName(rng);
  }
}

}  // namespace

World BuildWorld(std::vector<ClassProfile> profiles, double scale,
                 util::Rng& rng) {
  World world;
  world.profiles_ = std::move(profiles);
  world.scale_ = scale;
  world.by_profile_.resize(world.profiles_.size());

  int64_t next_homonym_group = 0;
  for (size_t pi = 0; pi < world.profiles_.size(); ++pi) {
    const ClassProfile& profile = world.profiles_[pi];
    const size_t n_kb = std::max<size_t>(
        30, static_cast<size_t>(std::llround(
                static_cast<double>(profile.kb_instances) * scale)));
    const size_t n_tail = std::max<size_t>(
        10, static_cast<size_t>(std::llround(static_cast<double>(n_kb) *
                                             profile.longtail_ratio)));
    const size_t total = n_kb + n_tail;

    // Labels of entities created so far for this profile (homonym reuse).
    std::vector<int> created;

    for (size_t e = 0; e < total; ++e) {
      WorldEntity entity;
      entity.id = static_cast<int>(world.entities_.size());
      entity.profile_index = static_cast<int>(pi);
      entity.in_kb = e < n_kb;

      int copy_from = -1;
      const bool homonym =
          !created.empty() && rng.NextBool(profile.homonym_rate);
      if (homonym) {
        copy_from = created[rng.NextBounded(created.size())];
        entity.label = world.entities_[copy_from].label;
      } else {
        entity.label = GenerateLabel(profile, world.pools_, rng);
      }

      // Popularity: Zipfian in creation order; head entities are earlier
      // and thus more popular, with noise.
      const double rank = static_cast<double>(e + 1);
      entity.popularity =
          1e6 / std::pow(rank, 0.9) * (0.5 + rng.NextDouble());

      entity.kb_has_class =
          !entity.in_kb || !rng.NextBool(profile.kb_missing_class_rate);

      entity.truth.reserve(profile.properties.size());
      for (const auto& prop : profile.properties) {
        entity.truth.push_back(GenerateValue(prop, world.pools_, rng));
      }
      // Cover-version style homonyms: copy some values from the namesake
      // (slightly perturbed quantities) so they are hard to tell apart.
      if (copy_from >= 0 && rng.NextBool(0.35)) {
        const WorldEntity& src = world.entities_[copy_from];
        for (size_t v = 0; v < entity.truth.size(); ++v) {
          if (!rng.NextBool(0.5)) continue;
          types::Value copied = src.truth[v];
          if (copied.type == types::DataType::kQuantity) {
            copied.number = std::round(copied.number * (0.98 + 0.04 * rng.NextDouble()));
          }
          entity.truth[v] = std::move(copied);
        }
      }

      created.push_back(entity.id);
      world.by_profile_[pi].push_back(entity.id);
      world.entities_.push_back(std::move(entity));
    }

    // Post-pass: every label shared by two or more entities (whether by
    // deliberate reuse or natural pool collision) forms a homonym group.
    std::unordered_map<std::string, std::vector<int>> by_label;
    for (int id : world.by_profile_[pi]) {
      by_label[world.entities_[id].label].push_back(id);
    }
    for (const auto& [label, ids] : by_label) {
      if (ids.size() < 2) continue;
      for (int id : ids) world.entities_[id].homonym_group = next_homonym_group;
      ++next_homonym_group;
    }
  }
  return world;
}

}  // namespace ltee::synth
