#ifndef LTEE_SYNTH_WORLD_H_
#define LTEE_SYNTH_WORLD_H_

#include <optional>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "synth/class_profile.h"
#include "synth/name_pools.h"
#include "types/value.h"
#include "util/random.h"

namespace ltee::synth {

/// One ground-truth entity of the synthetic universe. The world is the
/// oracle from which the KB (head slice), the web table corpus (noisy
/// renderings), and the gold standard (exact annotations) are derived.
struct WorldEntity {
  int id = -1;
  /// Index into the profile vector of the world.
  int profile_index = -1;
  std::string label;
  /// Ground-truth value per property (parallel to the profile's property
  /// vector). All slots are populated — density is applied when slicing
  /// into the KB or rendering tables.
  std::vector<types::Value> truth;
  /// Head entity: present in the knowledge base.
  bool in_kb = false;
  /// For in-KB entities: whether the KB has the correct class for it
  /// (false models the "athlete not assigned the correct class" errors).
  bool kb_has_class = true;
  /// Filled by KbBuilder for in-KB entities.
  kb::InstanceId kb_id = kb::kInvalidInstance;
  /// Page-link-count proxy; Zipfian, higher for head entities.
  double popularity = 0.0;
  /// Entities sharing a (near-)identical label share a group; -1 if unique.
  int64_t homonym_group = -1;
};

/// The synthetic ground-truth universe.
class World {
 public:
  World() = default;
  World(World&&) = default;
  World& operator=(World&&) = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const std::vector<ClassProfile>& profiles() const { return profiles_; }
  const std::vector<WorldEntity>& entities() const { return entities_; }
  const WorldEntity& entity(int id) const { return entities_[id]; }
  const std::vector<int>& EntitiesOfProfile(int profile_index) const {
    return by_profile_[profile_index];
  }
  const NamePools& pools() const { return pools_; }
  double scale() const { return scale_; }

  /// Indices of target-class profiles (GF-Player, Song, Settlement).
  std::vector<int> TargetProfiles() const;

  /// Records the KB instance id of a head entity (used by KbBuilder).
  void SetKbId(int entity_id, kb::InstanceId kb_id) {
    entities_[entity_id].kb_id = kb_id;
  }

 private:
  friend World BuildWorld(std::vector<ClassProfile> profiles, double scale,
                          util::Rng& rng);

  std::vector<ClassProfile> profiles_;
  std::vector<WorldEntity> entities_;
  std::vector<std::vector<int>> by_profile_;
  NamePools pools_;
  double scale_ = 1.0;
};

/// Generates the universe: for each profile, `kb_instances * scale` head
/// entities plus `longtail_ratio` times as many long-tail entities, with
/// homonym groups, Zipfian popularity, and fully-populated ground-truth
/// values.
World BuildWorld(std::vector<ClassProfile> profiles, double scale,
                 util::Rng& rng);

/// Generates one ground-truth value for `prop` (exposed for tests).
types::Value GenerateValue(const PropertyProfile& prop, const NamePools& pools,
                           util::Rng& rng);

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_WORLD_H_
