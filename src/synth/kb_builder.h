#ifndef LTEE_SYNTH_KB_BUILDER_H_
#define LTEE_SYNTH_KB_BUILDER_H_

#include <vector>

#include "kb/knowledge_base.h"
#include "synth/world.h"
#include "util/random.h"

namespace ltee::synth {

/// Output of slicing the world's head entities into a knowledge base.
struct KbBuildResult {
  kb::KnowledgeBase kb;
  /// Class id per world profile index.
  std::vector<kb::ClassId> class_of_profile;
  /// property_ids[profile][k] is the KB property id of the k-th property of
  /// that profile.
  std::vector<std::vector<kb::PropertyId>> property_ids;
};

/// Builds the knowledge base from the world: the ontology (roots Agent /
/// Work / Place, intermediate classes, leaf classes with typed property
/// schemas), one instance per head entity (under its parent class when the
/// world says the class annotation is missing), facts subject to the
/// per-property KB densities of Table 2, abstract tokens, and popularity.
/// Also writes each head entity's KB id back into the world.
KbBuildResult BuildKb(World* world, util::Rng& rng);

}  // namespace ltee::synth

#endif  // LTEE_SYNTH_KB_BUILDER_H_
