#include "fusion/entity_creator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "matching/attribute_matchers.h"
#include "prov/ledger.h"
#include "types/value_parser.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/token_dictionary.h"
#include "util/trace.h"

namespace ltee::fusion {

namespace {

using types::DataType;
using types::Value;

/// Serial number of a date for weighted-median fusion.
double DateSerial(const types::Date& d) {
  return static_cast<double>(d.year) * 372.0 +
         static_cast<double>(d.month) * 31.0 + static_cast<double>(d.day);
}

}  // namespace

const char* ScoringApproachName(ScoringApproach approach) {
  switch (approach) {
    case ScoringApproach::kVoting: return "VOTING";
    case ScoringApproach::kKbt: return "KBT";
    case ScoringApproach::kMatching: return "MATCHING";
  }
  return "?";
}

const types::Value* CreatedEntity::FactOf(kb::PropertyId property) const {
  for (const auto& fact : facts) {
    if (fact.property == property) return &fact.value;
  }
  return nullptr;
}

EntityCreator::EntityCreator(const kb::KnowledgeBase& kb,
                             EntityCreatorOptions options)
    : kb_(&kb), options_(options) {}

double EntityCreator::ColumnTrust(const webtable::PreparedCorpus& prepared,
                                  const matching::TableMapping& mapping,
                                  int column) const {
  const kb::PropertyId property = mapping.columns[column].property;
  if (property == kb::kInvalidProperty) return options_.kbt_default_trust;
  const webtable::PreparedTable& table = prepared.table(mapping.table);
  const DataType type = kb_->property(property).type;
  int compared = 0, correct = 0;
  for (size_t r = 0; r < table.num_rows; ++r) {
    const kb::InstanceId inst = mapping.row_instance.empty()
                                    ? kb::kInvalidInstance
                                    : mapping.row_instance[r];
    if (inst == kb::kInvalidInstance) continue;
    const Value* fact = kb_->FactOf(inst, property);
    if (fact == nullptr) continue;
    const auto& value =
        table.cell(r, static_cast<size_t>(column)).parsed_as(type);
    if (!value) continue;
    ++compared;
    if (types::ValuesEqual(*value, *fact, options_.similarity)) ++correct;
  }
  if (compared == 0) return options_.kbt_default_trust;
  return static_cast<double>(correct) / static_cast<double>(compared);
}

std::vector<CreatedEntity> EntityCreator::Create(
    const rowcluster::ClassRowSet& rows, const std::vector<int>& cluster_of_row,
    const matching::SchemaMapping& mapping,
    const webtable::PreparedCorpus& prepared) const {
  int num_clusters = 0;
  for (int c : cluster_of_row) num_clusters = std::max(num_clusters, c + 1);
  util::trace::ScopedSpan span("fusion.create");
  span.AddArg("rows", rows.rows.size());
  span.AddArg("clusters", static_cast<long long>(num_clusters));

  // KBT: column trust cache, keyed by (table, column).
  std::map<std::pair<webtable::TableId, int>, double> trust_cache;
  auto column_trust = [&](webtable::TableId table, int column) {
    auto key = std::make_pair(table, column);
    auto it = trust_cache.find(key);
    if (it != trust_cache.end()) return it->second;
    const double trust = ColumnTrust(prepared, mapping.of(table), column);
    trust_cache.emplace(key, trust);
    return trust;
  };

  std::vector<CreatedEntity> entities(num_clusters);
  for (int c = 0; c < num_clusters; ++c) {
    entities[c].cluster_id = c;
    entities[c].cls = rows.cls;
  }

  // ---- Collect rows, labels, bow, candidate values per cluster. --------
  struct Candidate {
    Value value;
    double score;
    /// Source cell the value was read from (fusion provenance).
    webtable::RowRef source;
    int column = -1;
  };
  // per cluster: property -> candidates
  std::vector<std::unordered_map<kb::PropertyId, std::vector<Candidate>>>
      candidates(num_clusters);

  for (size_t i = 0; i < rows.rows.size(); ++i) {
    const int c = cluster_of_row[i];
    if (c < 0) continue;
    const rowcluster::RowFeature& row = rows.rows[i];
    CreatedEntity& entity = entities[c];
    entity.rows.push_back(row.ref);
    if (std::find(entity.labels.begin(), entity.labels.end(), row.raw_label) ==
        entity.labels.end()) {
      entity.labels.push_back(row.raw_label);
    }
    entity.bow.insert(entity.bow.end(), row.bow.begin(), row.bow.end());
    for (const auto& rv : row.values) {
      double score = 1.0;
      switch (options_.scoring) {
        case ScoringApproach::kVoting:
          score = 1.0;
          break;
        case ScoringApproach::kKbt:
          score = column_trust(row.ref.table, rv.column);
          break;
        case ScoringApproach::kMatching: {
          const auto& cols = mapping.of(row.ref.table).columns;
          score = rv.column < static_cast<int>(cols.size())
                      ? cols[rv.column].score
                      : 0.0;
          break;
        }
      }
      candidates[c][rv.property].push_back(
          {rv.value, score, row.ref, rv.column});
    }
  }

  for (auto& entity : entities) {
    entity.bow = util::SortedUnique(std::move(entity.bow));
  }

  // ---- Entity-level implicit attributes. --------------------------------
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    const int c = cluster_of_row[i];
    if (c < 0) continue;
    const rowcluster::RowFeature& row = rows.rows[i];
    for (const auto& implicit : rows.table_implicit[row.table_index]) {
      auto& list = entities[c].implicit_attrs;
      bool merged = false;
      for (auto& existing : list) {
        if (existing.property == implicit.property &&
            types::ValuesEqual(existing.value, implicit.value,
                               options_.similarity)) {
          existing.score += implicit.score;
          merged = true;
          break;
        }
      }
      if (!merged) list.push_back(implicit);
    }
  }
  for (auto& entity : entities) {
    const double denom =
        std::max<size_t>(1, entity.rows.size());
    for (auto& implicit : entity.implicit_attrs) {
      implicit.score /= static_cast<double>(denom);
    }
  }

  // ---- Fuse candidate values: score -> group -> select -> fuse. ---------
  util::Counter& single_source_counter =
      util::Metrics().GetCounter("ltee.prov.facts_with_single_source");
  util::Counter& conflict_counter =
      util::Metrics().GetCounter("ltee.prov.fusion_conflicts");
  for (int c = 0; c < num_clusters; ++c) {
    for (auto& [property, values] : candidates[c]) {
      const size_t candidate_count = values.size();
      // Group equal values (type-specific equality).
      struct Group {
        std::vector<Candidate> members;
        double score_sum = 0.0;
      };
      std::vector<Group> groups;
      for (auto& cand : values) {
        bool placed = false;
        for (auto& group : groups) {
          if (types::ValuesEqual(group.members.front().value, cand.value,
                                 options_.similarity)) {
            group.score_sum += cand.score;
            group.members.push_back(std::move(cand));
            placed = true;
            break;
          }
        }
        if (!placed) {
          Group group;
          group.score_sum = cand.score;
          group.members.push_back(std::move(cand));
          groups.push_back(std::move(group));
        }
      }
      if (groups.empty()) continue;
      // Select the group with the highest summed score.
      Group* best = &groups.front();
      for (auto& group : groups) {
        if (group.score_sum > best->score_sum) best = &group;
      }

      // Fuse the selected group.
      const DataType type = kb_->property(property).type;
      Value fused;
      const char* fusion_rule = "exact";
      switch (type) {
        case DataType::kText:
        case DataType::kInstanceReference: {
          // Majority by exact key, resolved to the highest-scored member.
          fusion_rule = "majority";
          std::unordered_map<std::string, double> votes;
          for (const auto& member : best->members) {
            votes[matching::ExactValueKey(member.value)] += 1.0;
          }
          std::string best_key;
          double best_votes = -1.0;
          for (const auto& [key, count] : votes) {
            if (count > best_votes) {
              best_votes = count;
              best_key = key;
            }
          }
          for (const auto& member : best->members) {
            if (matching::ExactValueKey(member.value) == best_key) {
              fused = member.value;
              break;
            }
          }
          break;
        }
        case DataType::kQuantity: {
          fusion_rule = "weighted_median";
          std::vector<std::pair<double, double>> vw;
          for (const auto& member : best->members) {
            vw.emplace_back(member.value.number, member.score);
          }
          fused = Value::OfQuantity(util::WeightedMedian(std::move(vw)));
          break;
        }
        case DataType::kDate: {
          fusion_rule = "weighted_median";
          // Weighted median over date serials, resolved back to the member
          // closest to the median (so granularities stay authentic).
          std::vector<std::pair<double, double>> vw;
          for (const auto& member : best->members) {
            vw.emplace_back(DateSerial(member.value.date), member.score);
          }
          const double median = util::WeightedMedian(std::move(vw));
          const Candidate* closest = &best->members.front();
          for (const auto& member : best->members) {
            if (std::abs(DateSerial(member.value.date) - median) <
                std::abs(DateSerial(closest->value.date) - median)) {
              closest = &member;
            }
          }
          fused = closest->value;
          break;
        }
        case DataType::kNominalString:
        case DataType::kNominalInteger:
          // All group members are exactly equal; no fusion necessary.
          fused = best->members.front().value;
          break;
      }
      if (best->members.size() == 1) single_source_counter.Increment();
      if (groups.size() > 1) conflict_counter.Increment();
      if (prov::IsEnabled()) {
        prov::FusionDecision decision;
        decision.cls = rows.cls;
        decision.cluster_id = c;
        decision.property = property;
        decision.property_name = kb_->property(property).name;
        decision.value = fused.ToString();
        decision.rule = fusion_rule;
        decision.score = best->score_sum;
        decision.candidate_count = static_cast<int>(candidate_count);
        for (const auto& member : best->members) {
          decision.sources.push_back(
              {member.source.table, member.source.row, member.column});
        }
        for (const auto& group : groups) {
          if (&group == best) continue;
          decision.losing_values.push_back(
              group.members.front().value.ToString());
        }
        prov::Record(std::move(decision));
      }
      entities[c].facts.push_back(kb::Fact{property, std::move(fused)});
    }
  }
  size_t facts = 0;
  for (const auto& entity : entities) facts += entity.facts.size();
  span.AddArg("facts", facts);
  util::Metrics().GetCounter("ltee.fusion.entities_created")
      .Increment(entities.size());
  util::Metrics().GetCounter("ltee.fusion.facts_fused").Increment(facts);
  return entities;
}

}  // namespace ltee::fusion
