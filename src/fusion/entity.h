#ifndef LTEE_FUSION_ENTITY_H_
#define LTEE_FUSION_ENTITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "rowcluster/row_features.h"
#include "webtable/web_table.h"

namespace ltee::fusion {

/// An entity created from a row cluster (Section 3.3): one or more labels
/// extracted from the label attribute, fused facts mapped to the KB schema,
/// plus the aggregate features new detection consumes.
struct CreatedEntity {
  /// Id of the source row cluster.
  int cluster_id = -1;
  kb::ClassId cls = kb::kInvalidClass;
  /// Distinct raw labels collected from the cluster's rows.
  std::vector<std::string> labels;
  /// Rows the entity was created from.
  std::vector<webtable::RowRef> rows;
  /// Fused facts, one per property at most.
  std::vector<kb::Fact> facts;
  /// Union of the rows' bag-of-words vectors: sorted, deduplicated token
  /// ids of the row set's dictionary.
  std::vector<uint32_t> bow;
  /// Entity-level implicit attributes with entity-level confidences.
  std::vector<rowcluster::ImplicitAttribute> implicit_attrs;

  /// Fused value of `property`, or nullptr.
  const types::Value* FactOf(kb::PropertyId property) const;
};

}  // namespace ltee::fusion

#endif  // LTEE_FUSION_ENTITY_H_
