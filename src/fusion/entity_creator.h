#ifndef LTEE_FUSION_ENTITY_CREATOR_H_
#define LTEE_FUSION_ENTITY_CREATOR_H_

#include <vector>

#include "fusion/entity.h"
#include "matching/schema_mapping.h"
#include "rowcluster/row_features.h"
#include "types/type_similarity.h"
#include "webtable/prepared_corpus.h"

namespace ltee::fusion {

/// The three candidate-value scoring approaches of Section 3.3.
enum class ScoringApproach {
  /// Every candidate value scores 1.0.
  kVoting = 0,
  /// Knowledge-Based Trust: the score of a value is the measured
  /// correctness of its attribute column against overlapping KB facts.
  kKbt = 1,
  /// The aggregated attribute-to-property matcher score of its column.
  kMatching = 2,
};
const char* ScoringApproachName(ScoringApproach approach);

/// Options of the entity creation component.
struct EntityCreatorOptions {
  ScoringApproach scoring = ScoringApproach::kVoting;
  types::TypeSimilarityOptions similarity;
  /// Default column trust when KBT has no overlapping values to measure.
  double kbt_default_trust = 0.5;
};

/// Entity creation (Section 3.3): transforms each row cluster into an
/// entity by collecting labels and fusing candidate values per property in
/// four steps — scoring, grouping, selection, fusion (majority for
/// text-like types, weighted median for quantities and dates).
class EntityCreator {
 public:
  EntityCreator(const kb::KnowledgeBase& kb, EntityCreatorOptions options = {});

  /// Creates one entity per cluster id in `cluster_of_row` (dense ids).
  /// `mapping` and `prepared` supply column scores and KBT trust inputs.
  std::vector<CreatedEntity> Create(
      const rowcluster::ClassRowSet& rows, const std::vector<int>& cluster_of_row,
      const matching::SchemaMapping& mapping,
      const webtable::PreparedCorpus& prepared) const;

  /// Measured KBT trust of one column (exposed for tests and benches):
  /// fraction of cells equal to the KB fact of the row's matched instance,
  /// among comparable cells.
  double ColumnTrust(const webtable::PreparedCorpus& prepared,
                     const matching::TableMapping& mapping, int column) const;

 private:
  const kb::KnowledgeBase* kb_;
  EntityCreatorOptions options_;
};

}  // namespace ltee::fusion

#endif  // LTEE_FUSION_ENTITY_CREATOR_H_
