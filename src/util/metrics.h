#ifndef LTEE_UTIL_METRICS_H_
#define LTEE_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ltee::util {

/// Monotonic event counter. The hot path is one relaxed atomic add; the
/// exact cross-thread sum is recovered at snapshot time (relaxed ordering
/// is sufficient because fetch_add is a read-modify-write — no increments
/// are lost, only momentarily unordered).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, cache bytes, ratios).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if it is below (high-water marks).
  void Max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency/size histogram. `bounds` are inclusive upper
/// bounds; one implicit overflow bucket catches everything above the last
/// bound. Observe is a bucket scan (bounds are few) plus two relaxed
/// atomic adds — cheap enough for per-task thread-pool accounting.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_count(i) for i in [0, bounds().size()] — the last entry is the
  /// overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` exponentially growing bucket bounds starting at `start`.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Seconds on the process-wide steady clock (zero at first use) — the
/// shared time base of the windowed metrics below, injectable in tests
/// through the *At overloads.
uint64_t SteadyNowSeconds();

/// Event counter over a sliding window of one-second slots: Increment
/// lands in the current second's slot, old slots are recycled in place
/// (a ring of `window_seconds` slots), and CountInWindow/RatePerSecond
/// aggregate only slots whose stamp is still inside the window. This is
/// what turns a cumulative "requests" counter into a live QPS readout.
class WindowedCounter {
 public:
  explicit WindowedCounter(size_t window_seconds = 60);

  void Increment(uint64_t n = 1) { IncrementAt(SteadyNowSeconds(), n); }
  void IncrementAt(uint64_t now_sec, uint64_t n = 1);

  uint64_t CountInWindow() const { return CountAt(SteadyNowSeconds()); }
  uint64_t CountAt(uint64_t now_sec) const;

  /// Count over the window divided by the seconds actually covered (the
  /// span from the oldest live slot to `now`, capped at the window), so a
  /// burst that started two seconds ago reads as its real rate instead of
  /// being diluted across an empty minute.
  double RatePerSecond() const { return RateAt(SteadyNowSeconds()); }
  double RateAt(uint64_t now_sec) const;

  size_t window_seconds() const { return window_; }

 private:
  struct Slot {
    uint64_t second = kEmpty;
    uint64_t count = 0;
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  size_t window_;
};

/// Latency histogram over a sliding window of one-second slots. Each slot
/// is a fixed-bucket histogram (same `bounds` semantics as Histogram) plus
/// a per-slot max; StatsAt merges the live slots and reads percentiles
/// from the merged buckets with linear interpolation inside the matched
/// bucket (the overflow bucket is capped by the observed max). Unlike the
/// cumulative Histogram this answers "p95 over the last N seconds", which
/// is what an operator staring at a latency excursion actually needs.
/// Cumulative MetricsSnapshot output is untouched — windowed series are
/// exposed through /stats, not the registry snapshot.
class TimeWindowedHistogram {
 public:
  TimeWindowedHistogram(size_t window_seconds, std::vector<double> bounds);

  void Observe(double v) { ObserveAt(SteadyNowSeconds(), v); }
  void ObserveAt(uint64_t now_sec, double v);

  struct WindowStats {
    uint64_t count = 0;
    double sum = 0.0;
    double qps = 0.0;  // count over the seconds the window actually covers
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    size_t covered_seconds = 0;  // distinct live one-second slots
  };
  WindowStats Stats() const { return StatsAt(SteadyNowSeconds()); }
  WindowStats StatsAt(uint64_t now_sec) const;

  size_t window_seconds() const { return window_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Slot {
    uint64_t second = kEmpty;
    std::vector<uint64_t> buckets;  // bounds.size() + 1, overflow last
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  double PercentileFromBuckets(const std::vector<uint64_t>& buckets,
                               uint64_t total, double p, double max) const;

  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<Slot> slots_;
  size_t window_;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  /// Serializes as {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

/// Thread-safe registry of named metrics. Metric names must follow the
/// `ltee.<component>.<name>` convention (validated by
/// util::IsValidMetricName at registration — lowercase segments of
/// [a-z0-9_] joined by dots, at least three of them). Get* registers on
/// first use and returns a reference that stays valid for the registry's
/// lifetime, so callers hoist the lookup out of hot loops and pay only
/// the atomic op per event afterwards.
///
/// A name registered as one metric kind cannot be re-registered as
/// another: requesting `GetGauge` on an existing counter name (or any
/// other cross-kind collision) throws std::invalid_argument instead of
/// silently aliasing two series that would then fight over exposition.
/// Malformed names throw std::invalid_argument as well.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `bounds` are used only when the histogram does not exist yet.
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric (tests and repeated CLI runs). Registered metric
  /// objects stay alive — held references remain valid.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every component reports into.
MetricsRegistry& Metrics();

}  // namespace ltee::util

#endif  // LTEE_UTIL_METRICS_H_
