#ifndef LTEE_UTIL_LOGGING_H_
#define LTEE_UTIL_LOGGING_H_

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace ltee::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Defaults to kInfo,
/// overridable at process start with the LTEE_LOG_LEVEL environment
/// variable (debug|info|warning|error or 0-3, case-insensitive).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name or digit as accepted by LTEE_LOG_LEVEL.
std::optional<LogLevel> ParseLogLevel(std::string_view s);

/// Small dense id of the calling thread, stable for the thread's lifetime
/// (also stamped onto every emitted log line). Not the OS tid: ids start
/// at 1 in first-use order, so they stay readable in logs and traces.
uint32_t StableThreadId();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ltee::util

#define LTEE_LOG(level)                                               \
  if (::ltee::util::LogLevel::level < ::ltee::util::GetLogLevel()) {  \
  } else                                                              \
    ::ltee::util::internal::LogMessage(::ltee::util::LogLevel::level).stream()

#endif  // LTEE_UTIL_LOGGING_H_
