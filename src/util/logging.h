#ifndef LTEE_UTIL_LOGGING_H_
#define LTEE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ltee::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ltee::util

#define LTEE_LOG(level)                                               \
  if (::ltee::util::LogLevel::level < ::ltee::util::GetLogLevel()) {  \
  } else                                                              \
    ::ltee::util::internal::LogMessage(::ltee::util::LogLevel::level).stream()

#endif  // LTEE_UTIL_LOGGING_H_
