#ifndef LTEE_UTIL_STATS_H_
#define LTEE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace ltee::util {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Population variance; 0 for inputs of size < 2.
double Variance(const std::vector<double>& v);

/// Median (average of middle two for even sizes); 0 for an empty input.
double Median(std::vector<double> v);

/// Weighted median: the smallest value v such that the summed weight of
/// elements <= v reaches half the total weight. Used by the paper's fusion
/// step for quantity and date properties.
double WeightedMedian(std::vector<std::pair<double, double>> value_weight);

/// Harmonic mean of precision and recall; 0 when both are 0.
double F1(double precision, double recall);

/// Summary statistics of a sample: average, median, min, max (Table 3).
struct Summary {
  double average = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};
Summary Summarize(std::vector<double> v);

}  // namespace ltee::util

#endif  // LTEE_UTIL_STATS_H_
