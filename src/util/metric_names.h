#ifndef LTEE_UTIL_METRIC_NAMES_H_
#define LTEE_UTIL_METRIC_NAMES_H_

#include <string>
#include <string_view>

namespace ltee::util {

/// True iff `name` follows the repo-wide metric naming convention:
/// `ltee.<component>.<name>` — at least three dot-separated segments, the
/// first exactly "ltee", every segment non-empty and limited to lowercase
/// letters, digits and underscores. This is the single source of truth
/// used by the registry at registration time.
bool IsValidMetricName(std::string_view name);

/// Maps a dotted registry name onto the Prometheus data model
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots become underscores, any other
/// character outside the legal set becomes '_' too. Shared by the
/// Prometheus text exposition and anything else that needs the mangled
/// form, so the two never drift apart.
std::string PrometheusMetricName(std::string_view name);

/// Folds an arbitrary string (a matcher name, a class label, ...) into a
/// single legal metric-name segment: letters are lowercased, anything
/// outside [a-z0-9_] becomes '_', and an empty input becomes "_". Use
/// this when splicing runtime values into registry names so registration
/// validation cannot fail on dynamic names.
std::string SanitizeMetricSegment(std::string_view raw);

}  // namespace ltee::util

#endif  // LTEE_UTIL_METRIC_NAMES_H_
