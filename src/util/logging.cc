#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "util/trace.h"

namespace ltee::util {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("LTEE_LOG_LEVEL");
  if (env != nullptr) {
    if (auto parsed = ParseLogLevel(env); parsed.has_value()) return *parsed;
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{LevelFromEnv()};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

std::optional<LogLevel> ParseLogLevel(std::string_view s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

uint32_t StableThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

namespace internal {

void Emit(LogLevel level, const std::string& message) {
  // ISO-8601 UTC timestamp with millisecond precision.
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char stamp[80];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  // Lines emitted under a request-scoped trace context carry the trace
  // id, so one grep correlates a request's log lines with its spans and
  // access-log entry.
  if (trace::HasCurrentContext()) {
    std::fprintf(stderr, "%s [%s] [t%u] [trace:%s] %s\n", stamp,
                 LevelName(level), StableThreadId(),
                 trace::CurrentTraceId().c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "%s [%s] [t%u] %s\n", stamp, LevelName(level),
                 StableThreadId(), message.c_str());
  }
}

}  // namespace internal

}  // namespace ltee::util
