#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace ltee::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}
}  // namespace internal

}  // namespace ltee::util
