#ifndef LTEE_UTIL_JSON_H_
#define LTEE_UTIL_JSON_H_

#include <string>
#include <string_view>

namespace ltee::util {

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Does not add the surrounding quotes.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// `s` escaped as above, surrounded by double quotes.
std::string JsonQuote(std::string_view s);

/// Appends a double as a valid JSON number (JSON has no NaN/Infinity;
/// those are emitted as null).
void AppendJsonNumber(std::string* out, double v);

/// Minimal RFC 8259 validity check: returns true iff `s` is exactly one
/// well-formed JSON value (with surrounding whitespace allowed). Used by
/// trace/metrics round-trip tests and the validate_trace tool — this is a
/// validator, not a DOM parser. On failure, `error` (when non-null)
/// receives a short description with the byte offset.
bool JsonIsValid(std::string_view s, std::string* error = nullptr);

}  // namespace ltee::util

#endif  // LTEE_UTIL_JSON_H_
