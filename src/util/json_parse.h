#ifndef LTEE_UTIL_JSON_PARSE_H_
#define LTEE_UTIL_JSON_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ltee::util {

/// Minimal owned JSON document node. The repo's observability artifacts
/// (Chrome traces, run reports, bench history lines) are read back by the
/// analysis tools through this — a deliberately small RFC 8259 DOM, not a
/// general-purpose library. Numbers are doubles (the artifacts never need
/// 64-bit integer fidelity), object keys keep first-wins semantics.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience accessors with fallbacks for optional members.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON value (surrounding whitespace allowed).
/// Returns false on malformed input; `error` (when non-null) receives a
/// short message with the byte offset. `\uXXXX` escapes decode to UTF-8.
bool ParseJson(std::string_view s, JsonValue* out,
               std::string* error = nullptr);

}  // namespace ltee::util

#endif  // LTEE_UTIL_JSON_PARSE_H_
