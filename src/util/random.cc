#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace ltee::util {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  gauss_ = mag * std::sin(2.0 * M_PI * u2);
  has_gauss_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double alpha) {
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t r) const {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace ltee::util
