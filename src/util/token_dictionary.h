#ifndef LTEE_UTIL_TOKEN_DICTIONARY_H_
#define LTEE_UTIL_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ltee::util {

/// Process-wide string interner mapping tokens to dense uint32 ids.
///
/// One dictionary is shared by the prepared corpus, the label indexes and
/// every id-based similarity kernel, so a token interned anywhere compares
/// by integer equality everywhere. Thread-safe: Intern takes a writer lock,
/// lookups a reader lock, which lets the corpus preparation pass intern from
/// ThreadPool workers. Id values therefore depend on interning order and
/// carry no meaning beyond equality — nothing may order or hash *output* by
/// raw id (sort resolved strings instead, as LabelIndex::Search does).
///
/// Token storage is a deque so `token(id)` string_views stay valid across
/// growth; the dictionary never shrinks.
class TokenDictionary {
 public:
  /// Sentinel returned by Find for unknown tokens.
  static constexpr uint32_t kNoToken = 0xffffffffu;

  TokenDictionary() = default;
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;

  /// Id of `tok`, interning it if unseen.
  uint32_t Intern(std::string_view tok);

  /// Id of `tok`, or kNoToken if it was never interned.
  uint32_t Find(std::string_view tok) const;

  /// The token string of `id`. The view stays valid for the dictionary's
  /// lifetime. `id` must come from Intern/Find.
  std::string_view token(uint32_t id) const;

  size_t size() const;

  /// Interns every token of util::Tokenize(text), in order, duplicates
  /// kept — the id-level equivalent of Tokenize.
  std::vector<uint32_t> InternTokens(std::string_view text);

  /// Lookup-only variant: unknown tokens map to kNoToken.
  std::vector<uint32_t> FindTokens(std::string_view text) const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> tokens_;
  /// Keys view into tokens_ (stable storage).
  std::unordered_map<std::string_view, uint32_t> ids_;
};

/// `ids` sorted + deduplicated — the canonical token-set form consumed by
/// the set-based similarity kernels.
std::vector<uint32_t> SortedUnique(std::vector<uint32_t> ids);

}  // namespace ltee::util

#endif  // LTEE_UTIL_TOKEN_DICTIONARY_H_
