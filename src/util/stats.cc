#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ltee::util {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double WeightedMedian(std::vector<std::pair<double, double>> value_weight) {
  if (value_weight.empty()) return 0.0;
  std::sort(value_weight.begin(), value_weight.end());
  double total = 0.0;
  for (const auto& [v, w] : value_weight) total += w;
  double acc = 0.0;
  for (const auto& [v, w] : value_weight) {
    acc += w;
    if (acc >= total / 2.0) return v;
  }
  return value_weight.back().first;
}

double F1(double precision, double recall) {
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

Summary Summarize(std::vector<double> v) {
  Summary s;
  if (v.empty()) return s;
  s.average = Mean(v);
  s.median = Median(v);
  s.min = *std::min_element(v.begin(), v.end());
  s.max = *std::max_element(v.begin(), v.end());
  return s;
}

}  // namespace ltee::util
