#ifndef LTEE_UTIL_THREAD_POOL_H_
#define LTEE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ltee::util {

/// Fixed-size worker pool used by the parallel greedy clustering step.
/// Kept deliberately simple: submit void() tasks, wait for drain.
class ThreadPool {
 public:
  /// `num_threads` == 0 selects hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace ltee::util

#endif  // LTEE_UTIL_THREAD_POOL_H_
