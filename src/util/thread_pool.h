#ifndef LTEE_UTIL_THREAD_POOL_H_
#define LTEE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ltee::util {

/// Fixed-size worker pool used by the parallel greedy clustering step.
/// Kept deliberately simple: submit void() tasks, wait for drain.
class ThreadPool {
 public:
  /// `num_threads` == 0 selects hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed. Must not be called
  /// from a worker thread (the calling task counts as in-flight and would
  /// deadlock); use ParallelFor for nested fan-out.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and waits for completion. Safe to call from a worker thread:
  /// completion is tracked by a per-call latch (not Wait), and the caller
  /// helps execute queued tasks while its chunks are pending, so nested
  /// ParallelFor calls make progress even when every worker is blocked in
  /// one.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_index);

  /// Pops and runs one queued task. Returns false if the queue was empty.
  bool RunOneTask();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace ltee::util

#endif  // LTEE_UTIL_THREAD_POOL_H_
