#ifndef LTEE_UTIL_TRACE_H_
#define LTEE_UTIL_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ltee::util::trace {

/// Runtime switch. Off by default; initialized from the LTEE_TRACE
/// environment variable at process start (any value except "" and "0"
/// enables). When off, a ScopedSpan is one relaxed atomic load and two
/// member stores — the instrumented hot paths are effectively free.
void SetEnabled(bool enabled);
bool IsEnabled();

/// One completed span. Times are nanoseconds on the process-wide steady
/// clock (zero at the first trace use), converted to microseconds in the
/// Chrome export.
struct TraceEvent {
  std::string name;
  const char* category = "ltee";
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// RAII span: records [construction, destruction) into the calling
/// thread's buffer when tracing is enabled. Buffers are per thread — the
/// append path takes a mutex only its owner thread ever contends for
/// (exports lock it briefly), so spans on pool workers never serialize
/// against each other.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, const char* category = "ltee");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value argument (shown in the Perfetto span details).
  /// No-ops when the span is disabled.
  void AddArg(std::string_view key, std::string_view value);
  void AddArg(std::string_view key, long long value);
  void AddArg(std::string_view key, unsigned long long value);
  void AddArg(std::string_view key, double value);
  void AddArg(std::string_view key, size_t value) {
    AddArg(key, static_cast<unsigned long long>(value));
  }
  void AddArg(std::string_view key, int value) {
    AddArg(key, static_cast<long long>(value));
  }

 private:
  bool enabled_;
  bool tracked_;
  TraceEvent event_;
};

/// Request-scoped trace context of the calling thread. While set, every
/// ScopedSpan started on this thread carries `trace_id` (and `span_id`)
/// args in the exported trace, and util::logging stamps its lines with
/// the trace id — so one id follows a request from socket accept through
/// every instrumented layer it touches. The ids are opaque lowercase-hex
/// strings; obsv::TraceContext owns their generation and the W3C
/// `traceparent` wire format. Installing is cheap (two string moves into
/// a thread_local); Clear must run before the thread is reused for an
/// unrelated request (obsv::TraceContextScope is the RAII way).
void SetCurrentContext(std::string trace_id, std::string span_id);
void ClearCurrentContext();
bool HasCurrentContext();
/// Empty strings when no context is installed.
std::string CurrentTraceId();
std::string CurrentSpanId();

/// Longest span name the signal-safe tracking below preserves (including
/// the terminating NUL); longer names are truncated in profile
/// attribution but stay intact in the trace export.
inline constexpr size_t kTrackedSpanNameLen = 48;

/// Signal-safe span tracking: while enabled, every ScopedSpan — even with
/// trace *recording* off — pushes a fixed-size copy of its name onto a
/// per-thread lock-free name stack on construction and pops it on
/// destruction. The sampling profiler (obsv::profiler) turns this on for
/// the duration of a capture so its SIGPROF handler can attribute each
/// sample to the interrupted thread's innermost span without touching a
/// std::string or a mutex; the heap tracker (obsv::memtrack) does the
/// same from its allocation hook. Enable/disable calls are reference
/// counted so overlapping consumers compose: tracking stays on until
/// every enabler has disabled (disables below zero are ignored). Cost
/// when off: one extra relaxed load per span.
void SetSpanTrackingEnabled(bool enabled);
bool IsSpanTrackingEnabled();

/// Monotonic per-thread counter bumped on every tracked span push/pop.
/// An allocation hook caches (epoch, innermost name) and only re-reads
/// the name when the epoch moved — O(1) span attribution per allocation.
/// The counter itself is exposed (rather than only the accessor) so the
/// allocation hook's per-allocation read inlines to one TLS load; treat
/// it as read-only outside trace.cc.
namespace internal {
inline constinit thread_local uint64_t t_span_epoch = 0;
}  // namespace internal

inline uint64_t SpanEpochForThread() { return internal::t_span_epoch; }

/// Async-signal-safe: copies the calling thread's innermost tracked span
/// name into `buf` (NUL-terminated, truncated to `len`). Returns false
/// with an empty string when no tracked span is open. Only meaningful
/// from the thread being sampled — i.e. from a signal handler running on
/// it.
bool CurrentSpanNameForSignal(char* buf, size_t len);

/// Async-signal-safe counterpart of CurrentTraceId: the request trace id
/// installed by SetCurrentContext, kept in a fixed per-thread buffer so
/// a SIGPROF handler may read it. Returns false when no context is set.
bool CurrentTraceIdForSignal(char* buf, size_t len);

/// Names the calling thread in exported traces (Perfetto track label).
/// The thread-pool workers call this with "ltee-worker-N".
void SetCurrentThreadName(std::string name);

/// Stable dense id of the calling thread, also used as the Chrome `tid`.
uint32_t CurrentThreadId();

/// Number of buffered events across all threads (alive or finished).
size_t EventCount();

/// Drops all buffered events (thread name registrations survive).
void Clear();

/// Serializes every buffered event as Chrome trace-event JSON — an object
/// with a `traceEvents` array of complete ("ph":"X") events plus
/// thread_name metadata — loadable in Perfetto / chrome://tracing.
std::string ExportChromeTrace();
void ExportChromeTrace(std::ostream& out);

}  // namespace ltee::util::trace

#define LTEE_TRACE_CONCAT_IMPL(a, b) a##b
#define LTEE_TRACE_CONCAT(a, b) LTEE_TRACE_CONCAT_IMPL(a, b)

/// Anonymous function-scope span covering the rest of the block.
#define LTEE_TRACE_SPAN(name)                  \
  ::ltee::util::trace::ScopedSpan LTEE_TRACE_CONCAT( \
      ltee_trace_span_, __LINE__)(name)

#endif  // LTEE_UTIL_TRACE_H_
