#include "util/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstdio>

#include "util/metric_names.h"

namespace ltee::util {

namespace {

/// Prometheus sample values are plain floats; the exposition format spec
/// allows "Inf"/"NaN" spellings (unlike JSON, which has neither). Uses
/// the shortest precision that still round-trips the double, so a 0.1
/// bucket bound scrapes as le="0.1" rather than le="0.10000000000000001".
void AppendSampleValue(std::string* out, double v) {
  if (std::isnan(v)) {
    out->append("NaN");
    return;
  }
  if (std::isinf(v)) {
    out->append(v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out->append(buf);
}

void AppendTypeLine(std::string* out, const std::string& name,
                    const char* type) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name) + "_total";
    AppendTypeLine(&out, prom, "counter");
    out.append(prom);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out.append(buf);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    AppendTypeLine(&out, prom, "gauge");
    out.append(prom);
    out.push_back(' ');
    AppendSampleValue(&out, value);
    out.push_back('\n');
  }
  for (const auto& histogram : snapshot.histograms) {
    const std::string prom = PrometheusMetricName(histogram.name);
    AppendTypeLine(&out, prom, "histogram");
    // Exposition buckets are cumulative; the snapshot stores per-bucket
    // counts, so accumulate while emitting. The overflow bucket becomes
    // the mandatory le="+Inf" series, which must equal `_count`.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      out.append(prom);
      out.append("_bucket{le=\"");
      if (i < histogram.bounds.size()) {
        AppendSampleValue(&out, histogram.bounds[i]);
      } else {
        out.append("+Inf");
      }
      out.append("\"} ");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", cumulative);
      out.append(buf);
    }
    out.append(prom);
    out.append("_sum ");
    AppendSampleValue(&out, histogram.sum);
    out.push_back('\n');
    out.append(prom);
    out.append("_count ");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", histogram.count);
    out.append(buf);
  }
  return out;
}

}  // namespace ltee::util
