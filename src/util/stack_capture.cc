#include "util/stack_capture.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__) && __has_include(<execinfo.h>) && \
    __has_include(<dlfcn.h>)
#define LTEE_HAS_STACK_CAPTURE 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#else
#define LTEE_HAS_STACK_CAPTURE 0
#endif

namespace ltee::util {

bool StackCaptureSupported() { return LTEE_HAS_STACK_CAPTURE != 0; }

#if LTEE_HAS_STACK_CAPTURE

void WarmUpStackCapture() {
  static std::atomic<bool> warmed{false};
  if (warmed.load(std::memory_order_acquire)) return;
  // First backtrace dlopens libgcc_s (unwinder), first dladdr touches the
  // link map; both must happen outside signal context exactly once.
  void* frames[4];
  ::backtrace(frames, 4);
  Dl_info info;
  ::dladdr(reinterpret_cast<void*>(&WarmUpStackCapture), &info);
  warmed.store(true, std::memory_order_release);
}

int CaptureStack(void** frames, int max_depth, int skip) {
  if (max_depth <= 0) return 0;
  // CaptureStack is its own innermost frame (separate TU, never
  // inlined): always drop it, plus the caller's `skip`.
  ++skip;
  // Capture into a scratch buffer large enough to still fill max_depth
  // after dropping the handler/trampoline frames.
  void* scratch[kMaxStackDepth + 8];
  int want = max_depth + skip;
  if (want > static_cast<int>(sizeof(scratch) / sizeof(scratch[0]))) {
    want = static_cast<int>(sizeof(scratch) / sizeof(scratch[0]));
  }
  const int depth = ::backtrace(scratch, want);
  if (depth <= skip) return 0;
  const int kept = depth - skip < max_depth ? depth - skip : max_depth;
  std::memcpy(frames, scratch + skip, sizeof(void*) * kept);
  return kept;
}

std::string DemangleSymbol(const std::string& mangled) {
  int status = 0;
  char* demangled =
      abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
  if (status != 0 || demangled == nullptr) {
    std::free(demangled);
    return mangled;
  }
  std::string out(demangled);
  std::free(demangled);
  return out;
}

SymbolizedFrame SymbolizeAddress(const void* pc) {
  SymbolizedFrame frame;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    frame.name = DemangleSymbol(info.dli_sname);
    frame.known = true;
    return frame;
  }
  if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
    // Mapped module without an exported symbol: basename+offset keeps
    // distinct addresses distinguishable in a flamegraph.
    const char* base = std::strrchr(info.dli_fname, '/');
    const char* module = base != nullptr ? base + 1 : info.dli_fname;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", module,
                  reinterpret_cast<uintptr_t>(pc) -
                      reinterpret_cast<uintptr_t>(info.dli_fbase));
    frame.name = buf;
    return frame;
  }
  frame.name = "[unknown]";
  return frame;
}

#else  // !LTEE_HAS_STACK_CAPTURE

void WarmUpStackCapture() {}

int CaptureStack(void**, int, int) { return 0; }

std::string DemangleSymbol(const std::string& mangled) { return mangled; }

SymbolizedFrame SymbolizeAddress(const void*) {
  SymbolizedFrame frame;
  frame.name = "[unsupported]";
  return frame;
}

#endif  // LTEE_HAS_STACK_CAPTURE

}  // namespace ltee::util
