#include "util/similarity.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "util/token_dictionary.h"

namespace ltee::util {

namespace {

/// Intersection size of two sorted duplicate-free id ranges.
size_t SortedIntersectionSize(std::span<const uint32_t> a,
                              std::span<const uint32_t> b) {
  size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

}  // namespace

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size(), m = b.size();
  if (n == 0) return static_cast<int>(m);
  std::vector<int> prev(n + 1), cur(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardSimilarity(std::span<const uint32_t> a_sorted,
                         std::span<const uint32_t> b_sorted) {
  if (a_sorted.empty() && b_sorted.empty()) return 1.0;
  const size_t inter = SortedIntersectionSize(a_sorted, b_sorted);
  const size_t uni = a_sorted.size() + b_sorted.size() - inter;
  return uni == 0 ? 1.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

double MongeElkanDirected(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty()) return b.empty() ? 1.0 : 0.0;
  double sum = 0.0;
  for (const auto& ta : a) {
    double best = 0.0;
    for (const auto& tb : b) best = std::max(best, LevenshteinSimilarity(ta, tb));
    sum += best;
  }
  return sum / static_cast<double>(a.size());
}

}  // namespace

double MongeElkanLevenshtein(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  return std::max(MongeElkanDirected(a, b), MongeElkanDirected(b, a));
}

double MongeElkanLevenshtein(std::string_view a, std::string_view b) {
  return MongeElkanLevenshtein(Tokenize(a), Tokenize(b));
}

namespace {

double MongeElkanDirectedIds(std::span<const uint32_t> a,
                             std::span<const uint32_t> b,
                             std::span<const std::string_view> a_str,
                             std::span<const std::string_view> b_str) {
  if (a.empty()) return b.empty() ? 1.0 : 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double best = 0.0;
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i] == b[j]) {
        best = 1.0;
        break;  // LevenshteinSimilarity(x, x) == 1.0, the maximum
      }
      best = std::max(best, LevenshteinSimilarity(a_str[i], b_str[j]));
    }
    sum += best;
  }
  return sum / static_cast<double>(a.size());
}

}  // namespace

double MongeElkanLevenshtein(std::span<const uint32_t> a,
                             std::span<const uint32_t> b,
                             const TokenDictionary& dict) {
  std::vector<std::string_view> a_str(a.size()), b_str(b.size());
  for (size_t i = 0; i < a.size(); ++i) a_str[i] = dict.token(a[i]);
  for (size_t j = 0; j < b.size(); ++j) b_str[j] = dict.token(b[j]);
  return std::max(MongeElkanDirectedIds(a, b, a_str, b_str),
                  MongeElkanDirectedIds(b, a, b_str, a_str));
}

double CosineBinary(const std::unordered_set<std::string>& a,
                    const std::unordered_set<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const auto& t : small) inter += large.count(t);
  return static_cast<double>(inter) /
         (std::sqrt(static_cast<double>(a.size())) *
          std::sqrt(static_cast<double>(b.size())));
}

double CosineBinary(std::span<const uint32_t> a_sorted,
                    std::span<const uint32_t> b_sorted) {
  if (a_sorted.empty() || b_sorted.empty()) return 0.0;
  const size_t inter = SortedIntersectionSize(a_sorted, b_sorted);
  return static_cast<double>(inter) /
         (std::sqrt(static_cast<double>(a_sorted.size())) *
          std::sqrt(static_cast<double>(b_sorted.size())));
}

double CosineSparse(const std::unordered_map<uint32_t, double>& a,
                    const std::unordered_map<uint32_t, double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [k, v] : small) {
    auto it = large.find(k);
    if (it != large.end()) dot += v * it->second;
  }
  double na = 0.0, nb = 0.0;
  for (const auto& [k, v] : a) na += v * v;
  for (const auto& [k, v] : b) nb += v * v;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double CosineDense(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace ltee::util
