#include "util/metric_names.h"

namespace ltee::util {

namespace {

bool IsSegmentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  size_t segments = 0;
  size_t start = 0;
  while (start <= name.size()) {
    size_t dot = name.find('.', start);
    const size_t end = dot == std::string_view::npos ? name.size() : dot;
    if (end == start) return false;  // empty segment (leading/trailing/"..")
    for (size_t i = start; i < end; ++i) {
      if (!IsSegmentChar(name[i])) return false;
    }
    if (segments == 0 && name.substr(start, end - start) != "ltee") {
      return false;
    }
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return segments >= 3;
}

std::string PrometheusMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':' || (c >= '0' && c <= '9' && i > 0);
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string SanitizeMetricSegment(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out.push_back(IsSegmentChar(c) ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

}  // namespace ltee::util
