#include "util/token_dictionary.h"

#include <algorithm>
#include <mutex>

#include "util/string_util.h"

namespace ltee::util {

uint32_t TokenDictionary::Intern(std::string_view tok) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(tok);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(tok);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(tokens_.size());
  tokens_.emplace_back(tok);
  ids_.emplace(std::string_view(tokens_.back()), id);
  return id;
}

uint32_t TokenDictionary::Find(std::string_view tok) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(tok);
  return it == ids_.end() ? kNoToken : it->second;
}

std::string_view TokenDictionary::token(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tokens_[id];
}

size_t TokenDictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tokens_.size();
}

std::vector<uint32_t> TokenDictionary::InternTokens(std::string_view text) {
  std::vector<uint32_t> out;
  for (const auto& tok : Tokenize(text)) out.push_back(Intern(tok));
  return out;
}

std::vector<uint32_t> TokenDictionary::FindTokens(std::string_view text) const {
  std::vector<uint32_t> out;
  for (const auto& tok : Tokenize(text)) out.push_back(Find(tok));
  return out;
}

std::vector<uint32_t> SortedUnique(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace ltee::util
