#include "util/thread_pool.h"

#include <algorithm>

namespace ltee::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, threads_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace ltee::util
