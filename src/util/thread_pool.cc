#include "util/thread_pool.h"

#include <algorithm>
#include <string>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ltee::util {

namespace {

/// Pool-wide instrumentation, registered once and shared by every pool in
/// the process (`ltee.threadpool.*`). References are hoisted here so the
/// per-task cost is the atomic ops alone.
struct PoolMetrics {
  Counter& tasks_completed =
      Metrics().GetCounter("ltee.threadpool.tasks_completed");
  Gauge& queue_depth = Metrics().GetGauge("ltee.threadpool.queue_depth");
  Gauge& queue_depth_peak =
      Metrics().GetGauge("ltee.threadpool.queue_depth_peak");
  Gauge& workers = Metrics().GetGauge("ltee.threadpool.workers");
  /// Summed wall time spent inside tasks; utilization over an interval is
  /// busy_seconds / (workers * interval).
  Gauge& busy_seconds = Metrics().GetGauge("ltee.threadpool.busy_seconds");
  Histogram& task_seconds = Metrics().GetHistogram(
      "ltee.threadpool.task_seconds", ExponentialBuckets(1e-5, 4.0, 12));
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

/// Runs one dequeued task with latency/utilization accounting.
void RunTimedTask(const std::function<void()>& task) {
  PoolMetrics& metrics = GetPoolMetrics();
  WallTimer timer;
  task();
  const double seconds = timer.ElapsedSeconds();
  metrics.tasks_completed.Increment();
  metrics.busy_seconds.Add(seconds);
  metrics.task_seconds.Observe(seconds);
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  GetPoolMetrics().workers.Set(static_cast<double>(num_threads));
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
    PoolMetrics& metrics = GetPoolMetrics();
    metrics.queue_depth.Set(static_cast<double>(queue_.size()));
    metrics.queue_depth_peak.Max(static_cast<double>(queue_.size()));
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

/// Completion latch of one ParallelFor call. Chunk tasks count down;
/// the issuing thread waits on `cv` (shared_ptr keeps it alive in case the
/// issuer returns between a chunk's decrement and its notify).
struct ForLatch {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, threads_.size() * 4);
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  auto latch = std::make_shared<ForLatch>();
  size_t submitted = 0;
  for (size_t c = 0; c < chunks; ++c) {
    if (c * chunk_size >= n) break;
    ++submitted;
  }
  latch->remaining = submitted;
  for (size_t c = 0; c < submitted; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    Submit([begin, end, &fn, latch] {
      for (size_t i = begin; i < end; ++i) fn(i);
      {
        std::unique_lock<std::mutex> lock(latch->mu);
        --latch->remaining;
      }
      latch->cv.notify_all();
    });
  }
  // Help drain the queue while our chunks are pending. Running unrelated
  // queued tasks is fine — it only speeds up the pool; the latch alone
  // decides when this call is done.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(latch->mu);
      if (latch->remaining == 0) return;
    }
    if (!RunOneTask()) {
      // Queue empty: our chunks are executing on workers; wait for them.
      std::unique_lock<std::mutex> lock(latch->mu);
      latch->cv.wait(lock, [&] { return latch->remaining == 0; });
      return;
    }
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    GetPoolMetrics().queue_depth.Set(static_cast<double>(queue_.size()));
  }
  RunTimedTask(task);
  {
    std::unique_lock<std::mutex> lock(mu_);
    --in_flight_;
    if (in_flight_ == 0) cv_done_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  trace::SetCurrentThreadName("ltee-worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      GetPoolMetrics().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    RunTimedTask(task);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace ltee::util
