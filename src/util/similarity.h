#ifndef LTEE_UTIL_SIMILARITY_H_
#define LTEE_UTIL_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ltee::util {

/// Levenshtein edit distance between `a` and `b`.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized Levenshtein similarity in [0, 1]:
/// 1 - distance / max(|a|, |b|). Two empty strings are fully similar.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of two token sets.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Monge-Elkan similarity with Levenshtein as the inner similarity
/// function, as used by the paper's LABEL metrics: the mean over tokens of
/// `a` of the best inner similarity against tokens of `b`. The returned
/// value is symmetrized: max(ME(a,b), ME(b,a)).
double MongeElkanLevenshtein(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Convenience overload operating on raw strings (tokenizes internally).
double MongeElkanLevenshtein(std::string_view a, std::string_view b);

/// Cosine similarity of two *binary* term vectors represented as sets.
double CosineBinary(const std::unordered_set<std::string>& a,
                    const std::unordered_set<std::string>& b);

/// Cosine similarity of two sparse real vectors keyed by uint32 ids.
double CosineSparse(const std::unordered_map<uint32_t, double>& a,
                    const std::unordered_map<uint32_t, double>& b);

/// Cosine similarity of two dense vectors (must be equal length).
double CosineDense(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ltee::util

#endif  // LTEE_UTIL_SIMILARITY_H_
