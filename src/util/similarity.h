#ifndef LTEE_UTIL_SIMILARITY_H_
#define LTEE_UTIL_SIMILARITY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ltee::util {

class TokenDictionary;

/// Levenshtein edit distance between `a` and `b`.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized Levenshtein similarity in [0, 1]:
/// 1 - distance / max(|a|, |b|). Two empty strings are fully similar.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of two token sets.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Jaccard similarity of two interned token sets. Both spans must be
/// sorted and duplicate-free (see util::SortedUnique). Numerically
/// identical to the string overload on the same token sets.
double JaccardSimilarity(std::span<const uint32_t> a_sorted,
                         std::span<const uint32_t> b_sorted);

/// Monge-Elkan similarity with Levenshtein as the inner similarity
/// function, as used by the paper's LABEL metrics: the mean over tokens of
/// `a` of the best inner similarity against tokens of `b`. The returned
/// value is symmetrized: max(ME(a,b), ME(b,a)).
double MongeElkanLevenshtein(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Convenience overload operating on raw strings (tokenizes internally).
double MongeElkanLevenshtein(std::string_view a, std::string_view b);

/// Monge-Elkan over interned token lists (ordered, duplicates kept, like
/// Tokenize output). Ids are resolved through `dict` for the inner
/// Levenshtein similarity; equal ids short-circuit to 1.0. Numerically
/// identical to the string overload on the same token lists.
double MongeElkanLevenshtein(std::span<const uint32_t> a,
                             std::span<const uint32_t> b,
                             const TokenDictionary& dict);

/// Cosine similarity of two *binary* term vectors represented as sets.
double CosineBinary(const std::unordered_set<std::string>& a,
                    const std::unordered_set<std::string>& b);

/// Cosine similarity of binary term vectors as sorted-unique interned
/// token sets. Numerically identical to the set-of-strings overload.
double CosineBinary(std::span<const uint32_t> a_sorted,
                    std::span<const uint32_t> b_sorted);

/// Cosine similarity of two sparse real vectors keyed by uint32 ids.
double CosineSparse(const std::unordered_map<uint32_t, double>& a,
                    const std::unordered_map<uint32_t, double>& b);

/// Cosine similarity of two dense vectors (must be equal length).
double CosineDense(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ltee::util

#endif  // LTEE_UTIL_SIMILARITY_H_
