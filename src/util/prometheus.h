#ifndef LTEE_UTIL_PROMETHEUS_H_
#define LTEE_UTIL_PROMETHEUS_H_

#include <string>

#include "util/metrics.h"

namespace ltee::util {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// 0.0.4 (the `Content-Type: text/plain; version=0.0.4` format every
/// Prometheus scraper understands):
///   - counters  -> `# TYPE <name> counter` + one sample (name gets a
///                  `_total` suffix per the naming convention),
///   - gauges    -> `# TYPE <name> gauge` + one sample,
///   - histograms-> `# TYPE <name> histogram` + cumulative
///                  `<name>_bucket{le="..."}` series (including the
///                  mandatory `le="+Inf"` bucket), `<name>_sum` and
///                  `<name>_count`.
/// Dotted registry names are mangled through PrometheusMetricName, so
/// `ltee.prepared.cells` scrapes as `ltee_prepared_cells_total`.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace ltee::util

#endif  // LTEE_UTIL_PROMETHEUS_H_
