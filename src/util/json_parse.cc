#include "util/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace ltee::util {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

namespace {

/// Recursive-descent parser; mirrors the Validator in json.cc but builds
/// the DOM as it goes.
class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      if (error != nullptr) {
        *error = "trailing data at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth_ > 256) return Fail("nesting too deep");
    bool ok;
    if (pos_ >= s_.size()) {
      ok = Fail("unexpected end of input");
    } else {
      switch (s_[pos_]) {
        case '{': ok = ParseObject(out); break;
        case '[': ok = ParseArray(out); break;
        case '"': {
          std::string str;
          ok = ParseString(&str);
          if (ok) *out = JsonValue::MakeString(std::move(str));
          break;
        }
        case 't':
          ok = ParseLiteral("true");
          if (ok) *out = JsonValue::MakeBool(true);
          break;
        case 'f':
          ok = ParseLiteral("false");
          if (ok) *out = JsonValue::MakeBool(false);
          break;
        case 'n':
          ok = ParseLiteral("null");
          if (ok) *out = JsonValue::MakeNull();
          break;
        default: ok = ParseNumber(out); break;
      }
    }
    --depth_;
    return ok;
  }

  bool ParseLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return Fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseObject(JsonValue* out) {
    Eat('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Eat('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat('}')) {
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    Eat('[');
    std::vector<JsonValue> items;
    SkipWs();
    if (Eat(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      items.push_back(std::move(value));
      SkipWs();
      if (Eat(']')) {
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseHex4(unsigned* out) {
    unsigned code = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos_ >= s_.size()) return Fail("invalid \\u escape");
      const char c = s_[pos_];
      unsigned digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
      code = code * 16 + digit;
      ++pos_;
    }
    *out = code;
    return true;
  }

  bool ParseString(std::string* out) {
    Eat('"');
    out->clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Fail("dangling escape");
        const char e = s_[pos_];
        ++pos_;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned code;
            if (!ParseHex4(&code)) return false;
            // Surrogate pair: a high surrogate must be followed by
            // \uDC00-\uDFFF; decode the pair as one code point.
            if (code >= 0xD800 && code <= 0xDBFF &&
                pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                s_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned low;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            AppendUtf8(out, code);
            break;
          }
          default: return Fail("invalid escape");
        }
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    Eat('-');
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return Fail("invalid number");
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("digit expected after '.'");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    const std::string text(s_.substr(start, pos_ - start));
    *out = JsonValue::MakeNumber(std::strtod(text.c_str(), nullptr));
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool ParseJson(std::string_view s, JsonValue* out, std::string* error) {
  return Parser(s).Parse(out, error);
}

}  // namespace ltee::util
