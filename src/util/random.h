#ifndef LTEE_UTIL_RANDOM_H_
#define LTEE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ltee::util {

/// Deterministic, fast PRNG (xoshiro256**) seeded via splitmix64.
/// All randomized components of the library take an explicit Rng so that
/// every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) (bound > 0).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// True with probability `p`.
  bool NextBool(double p);

  /// Forks an independent stream; deterministic given this stream's state.
  Rng Fork();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

/// Samples ranks from a Zipf distribution with exponent `alpha` over
/// {0, ..., n-1} (rank 0 is the most popular). Uses precomputed cumulative
/// weights; O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha);

  /// Returns a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Probability mass of rank `r`.
  double Probability(size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ltee::util

#endif  // LTEE_UTIL_RANDOM_H_
