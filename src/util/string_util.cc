#include "util/string_util.h"

#include <cctype>
#include <cstdlib>

namespace ltee::util {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, std::string_view separators) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || separators.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::string NormalizeLabel(std::string_view s) {
  return Join(Tokenize(s), " ");
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseNumberLenient(std::string_view s, double* out) {
  std::string cleaned;
  cleaned.reserve(s.size());
  bool seen_digit = false;
  for (char c : Trim(s)) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      seen_digit = true;
      cleaned.push_back(c);
    } else if (c == ',' && seen_digit) {
      continue;  // thousands separator
    } else if ((c == '.' || c == '-' || c == '+') &&
               (cleaned.empty() || c == '.')) {
      cleaned.push_back(c);
    } else if (seen_digit) {
      break;  // trailing unit suffix
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      return false;  // leading junk
    }
  }
  if (!seen_digit) return false;
  char* end = nullptr;
  double v = std::strtod(cleaned.c_str(), &end);
  if (end == cleaned.c_str()) return false;
  *out = v;
  return true;
}

}  // namespace ltee::util
