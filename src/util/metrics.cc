#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/json.h"
#include "util/metric_names.h"

namespace ltee::util {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

uint64_t SteadyNowSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - epoch)
          .count());
}

WindowedCounter::WindowedCounter(size_t window_seconds)
    : slots_(window_seconds == 0 ? 1 : window_seconds),
      window_(window_seconds == 0 ? 1 : window_seconds) {}

void WindowedCounter::IncrementAt(uint64_t now_sec, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[now_sec % window_];
  if (slot.second != now_sec) {
    slot.second = now_sec;
    slot.count = 0;
  }
  slot.count += n;
}

uint64_t WindowedCounter::CountAt(uint64_t now_sec) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  const uint64_t oldest = now_sec >= window_ - 1 ? now_sec - (window_ - 1) : 0;
  for (const Slot& slot : slots_) {
    if (slot.second != kEmpty && slot.second >= oldest &&
        slot.second <= now_sec) {
      total += slot.count;
    }
  }
  return total;
}

double WindowedCounter::RateAt(uint64_t now_sec) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  uint64_t oldest_live = kEmpty;
  const uint64_t oldest = now_sec >= window_ - 1 ? now_sec - (window_ - 1) : 0;
  for (const Slot& slot : slots_) {
    if (slot.second != kEmpty && slot.second >= oldest &&
        slot.second <= now_sec) {
      total += slot.count;
      if (oldest_live == kEmpty || slot.second < oldest_live) {
        oldest_live = slot.second;
      }
    }
  }
  if (total == 0) return 0.0;
  const uint64_t covered = now_sec - oldest_live + 1;
  return static_cast<double>(total) / static_cast<double>(covered);
}

TimeWindowedHistogram::TimeWindowedHistogram(size_t window_seconds,
                                             std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      slots_(window_seconds == 0 ? 1 : window_seconds),
      window_(window_seconds == 0 ? 1 : window_seconds) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Slot& slot : slots_) {
    slot.buckets.assign(bounds_.size() + 1, 0);
  }
}

void TimeWindowedHistogram::ObserveAt(uint64_t now_sec, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[now_sec % window_];
  if (slot.second != now_sec) {
    slot.second = now_sec;
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
    slot.max = 0.0;
  }
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++slot.buckets[i];
  ++slot.count;
  slot.sum += v;
  if (v > slot.max) slot.max = v;
}

double TimeWindowedHistogram::PercentileFromBuckets(
    const std::vector<uint64_t>& buckets, uint64_t total, double p,
    double max) const {
  if (total == 0) return 0.0;
  // Rank of the p-th sample (1-based nearest rank), then linear
  // interpolation between the matched bucket's bounds.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max;
      if (hi <= lo) return lo;
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[i]);
      // Interpolation can overshoot the bucket's real occupants when few
      // samples landed in a wide bucket; the observed max is a hard cap.
      return std::min(lo + frac * (hi - lo), max);
    }
    seen += buckets[i];
  }
  return max;
}

TimeWindowedHistogram::WindowStats TimeWindowedHistogram::StatsAt(
    uint64_t now_sec) const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowStats stats;
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  uint64_t oldest_live = kEmpty;
  const uint64_t oldest = now_sec >= window_ - 1 ? now_sec - (window_ - 1) : 0;
  for (const Slot& slot : slots_) {
    if (slot.second == kEmpty || slot.second < oldest ||
        slot.second > now_sec) {
      continue;
    }
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += slot.buckets[i];
    stats.count += slot.count;
    stats.sum += slot.sum;
    if (slot.max > stats.max) stats.max = slot.max;
    ++stats.covered_seconds;
    if (oldest_live == kEmpty || slot.second < oldest_live) {
      oldest_live = slot.second;
    }
  }
  if (stats.count == 0) return stats;
  const uint64_t covered = now_sec - oldest_live + 1;
  stats.qps = static_cast<double>(stats.count) / static_cast<double>(covered);
  stats.p50 = PercentileFromBuckets(merged, stats.count, 0.50, stats.max);
  stats.p95 = PercentileFromBuckets(merged, stats.count, 0.95, stats.max);
  stats.p99 = PercentileFromBuckets(merged, stats.count, 0.99, stats.max);
  return stats;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.append("{\"counters\":{");
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(JsonQuote(counters[i].first));
    out.push_back(':');
    out.append(std::to_string(counters[i].second));
  }
  out.append("},\"gauges\":{");
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(JsonQuote(gauges[i].first));
    out.push_back(':');
    AppendJsonNumber(&out, gauges[i].second);
  }
  out.append("},\"histograms\":{");
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& h = histograms[i];
    if (i > 0) out.push_back(',');
    out.append(JsonQuote(h.name));
    out.append(":{\"bounds\":[");
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      AppendJsonNumber(&out, h.bounds[b]);
    }
    out.append("],\"buckets\":[");
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out.push_back(',');
      out.append(std::to_string(h.buckets[b]));
    }
    out.append("],\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    AppendJsonNumber(&out, h.sum);
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

namespace {

/// Registration-time checks shared by the three Get* entry points. Called
/// with the registry mutex held, only on the first-use (insert) path so
/// the steady-state lookup stays one map find.
template <typename MapA, typename MapB>
void CheckRegistration(std::string_view name, const char* kind,
                       const MapA& other_a, const char* kind_a,
                       const MapB& other_b, const char* kind_b) {
  if (!IsValidMetricName(name)) {
    throw std::invalid_argument(
        "invalid metric name '" + std::string(name) +
        "': expected ltee.<component>.<name> with lowercase [a-z0-9_] "
        "segments");
  }
  const char* clash = nullptr;
  if (other_a.find(name) != other_a.end()) clash = kind_a;
  if (other_b.find(name) != other_b.end()) clash = kind_b;
  if (clash != nullptr) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered as a " + clash +
                                "; cannot re-register as a " + kind);
  }
}

}  // namespace

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    CheckRegistration(name, "counter", gauges_, "gauge", histograms_,
                      "histogram");
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    CheckRegistration(name, "gauge", counters_, "counter", histograms_,
                      "histogram");
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CheckRegistration(name, "histogram", counters_, "counter", gauges_,
                      "gauge");
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.buckets.resize(h.bounds.size() + 1);
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = histogram->bucket_count(i);
    }
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace ltee::util
