#include "util/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "util/json.h"
#include "util/metric_names.h"

namespace ltee::util {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.append("{\"counters\":{");
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(JsonQuote(counters[i].first));
    out.push_back(':');
    out.append(std::to_string(counters[i].second));
  }
  out.append("},\"gauges\":{");
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(JsonQuote(gauges[i].first));
    out.push_back(':');
    AppendJsonNumber(&out, gauges[i].second);
  }
  out.append("},\"histograms\":{");
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& h = histograms[i];
    if (i > 0) out.push_back(',');
    out.append(JsonQuote(h.name));
    out.append(":{\"bounds\":[");
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      AppendJsonNumber(&out, h.bounds[b]);
    }
    out.append("],\"buckets\":[");
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out.push_back(',');
      out.append(std::to_string(h.buckets[b]));
    }
    out.append("],\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    AppendJsonNumber(&out, h.sum);
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

namespace {

/// Registration-time checks shared by the three Get* entry points. Called
/// with the registry mutex held, only on the first-use (insert) path so
/// the steady-state lookup stays one map find.
template <typename MapA, typename MapB>
void CheckRegistration(std::string_view name, const char* kind,
                       const MapA& other_a, const char* kind_a,
                       const MapB& other_b, const char* kind_b) {
  if (!IsValidMetricName(name)) {
    throw std::invalid_argument(
        "invalid metric name '" + std::string(name) +
        "': expected ltee.<component>.<name> with lowercase [a-z0-9_] "
        "segments");
  }
  const char* clash = nullptr;
  if (other_a.find(name) != other_a.end()) clash = kind_a;
  if (other_b.find(name) != other_b.end()) clash = kind_b;
  if (clash != nullptr) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' already registered as a " + clash +
                                "; cannot re-register as a " + kind);
  }
}

}  // namespace

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    CheckRegistration(name, "counter", gauges_, "gauge", histograms_,
                      "histogram");
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    CheckRegistration(name, "gauge", counters_, "counter", histograms_,
                      "histogram");
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    CheckRegistration(name, "histogram", counters_, "counter", gauges_,
                      "gauge");
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.buckets.resize(h.bounds.size() + 1);
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = histogram->bucket_count(i);
    }
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace ltee::util
