#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace ltee::util {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  AppendJsonEscaped(&out, s);
  out.push_back('"');
  return out;
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

namespace {

/// Recursive-descent JSON validator over a string_view. Tracks position;
/// every Parse* returns false after recording an error.
class Validator {
 public:
  explicit Validator(std::string_view s) : s_(s) {}

  bool Validate(std::string* error) {
    SkipWs();
    if (!ParseValue()) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      if (error != nullptr) {
        *error = "trailing data at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue() {
    if (++depth_ > 256) return Fail("nesting too deep");
    bool ok;
    if (pos_ >= s_.size()) {
      ok = Fail("unexpected end of input");
    } else {
      switch (s_[pos_]) {
        case '{': ok = ParseObject(); break;
        case '[': ok = ParseArray(); break;
        case '"': ok = ParseString(); break;
        case 't': ok = ParseLiteral("true"); break;
        case 'f': ok = ParseLiteral("false"); break;
        case 'n': ok = ParseLiteral("null"); break;
        default: ok = ParseNumber(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool ParseLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return Fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseObject() {
    Eat('{');
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString()) return false;
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray() {
    Eat('[');
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseString() {
    Eat('"');
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Fail("dangling escape");
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + k]))) {
              return Fail("invalid \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("invalid escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const size_t start = pos_;
    Eat('-');
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return Fail("invalid number");
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("digit expected after '.'");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("digit expected in exponent");
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool JsonIsValid(std::string_view s, std::string* error) {
  return Validator(s).Validate(error);
}

}  // namespace ltee::util
