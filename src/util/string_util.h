#ifndef LTEE_UTIL_STRING_UTIL_H_
#define LTEE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ltee::util {

/// Returns a copy of `s` with all ASCII letters lower-cased.
std::string ToLower(std::string_view s);

/// Returns `s` without leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on any character contained in `separators`; empty pieces are
/// dropped.
std::vector<std::string> Split(std::string_view s, std::string_view separators);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Tokenizes a cell or label into lower-case alphanumeric tokens. Any
/// non-alphanumeric character is treated as a separator. This is the shared
/// normalization used by the BOW metrics, the label index, and blocking.
std::vector<std::string> Tokenize(std::string_view s);

/// Normalizes a label for blocking and indexing: lower-case, punctuation
/// stripped, whitespace collapsed to single spaces.
std::string NormalizeLabel(std::string_view s);

/// True if every character of `s` is an ASCII digit (and `s` is non-empty).
bool IsDigits(std::string_view s);

/// Parses a double out of `s`, tolerating thousands separators (commas) and
/// surrounding junk such as unit suffixes ("1,234 m" -> 1234). Returns false
/// if no leading numeric prefix exists.
bool ParseNumberLenient(std::string_view s, double* out);

}  // namespace ltee::util

#endif  // LTEE_UTIL_STRING_UTIL_H_
