#include "util/trace.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <cstdio>
#include <ostream>

#include "util/json.h"

namespace ltee::util::trace {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("LTEE_TRACE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool> g_enabled{EnabledFromEnv()};

/// Nanoseconds since the first trace call (a process-wide steady epoch so
/// spans from different threads share a time base).
uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// Span storage of one thread. The registry keeps a shared_ptr so events
/// survive the owning thread; `mu` is only ever contended by an export or
/// Clear racing the owner's append.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  std::string name;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

struct CurrentContext {
  std::string trace_id;
  std::string span_id;
};

CurrentContext& LocalContext() {
  thread_local CurrentContext context;
  return context;
}

/// Reference count of span-tracking consumers (the sampling profiler and
/// the heap tracker can hold overlapping sessions); tracking is on while
/// the count is positive.
std::atomic<int> g_span_tracking{0};

/// Per-thread signal-safe span-name stack. Constant-initialized and
/// trivially destructible on purpose: a SIGPROF handler interrupting this
/// thread reads it directly, so touching it must never run a TLS
/// initialization guard or allocate. Deeper nesting than kMaxTrackedDepth
/// keeps counting depth but stops storing names — samples then attribute
/// to the deepest stored ancestor.
inline constexpr uint32_t kMaxTrackedDepth = 32;

struct SpanNameStack {
  std::atomic<uint32_t> depth{0};
  char names[kMaxTrackedDepth][kTrackedSpanNameLen] = {};
};

constinit thread_local SpanNameStack t_span_names;

/// Fixed mirror of LocalContext().trace_id for signal-context reads.
constinit thread_local char t_signal_trace_id[33];

void PushTrackedSpan(std::string_view name) {
  SpanNameStack& stack = t_span_names;
  const uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth < kMaxTrackedDepth) {
    char* dst = stack.names[depth];
    const size_t n = name.size() < kTrackedSpanNameLen - 1
                         ? name.size()
                         : kTrackedSpanNameLen - 1;
    std::memcpy(dst, name.data(), n);
    dst[n] = '\0';
  }
  // The name bytes must be visible to a signal handler interrupting this
  // thread before the depth increment that publishes them.
  std::atomic_signal_fence(std::memory_order_release);
  stack.depth.store(depth + 1, std::memory_order_relaxed);
  ++internal::t_span_epoch;
}

void PopTrackedSpan() {
  SpanNameStack& stack = t_span_names;
  const uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  if (depth > 0) stack.depth.store(depth - 1, std::memory_order_relaxed);
  ++internal::t_span_epoch;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    b->tid = registry.next_tid++;
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool IsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetCurrentContext(std::string trace_id, std::string span_id) {
  CurrentContext& context = LocalContext();
  const size_t n = trace_id.size() < sizeof(t_signal_trace_id) - 1
                       ? trace_id.size()
                       : sizeof(t_signal_trace_id) - 1;
  // Byte 32 is never written non-NUL, so the buffer stays terminated even
  // if a SIGPROF lands mid-copy (the handler may then read a garbled but
  // bounded id for that one sample).
  std::memcpy(t_signal_trace_id, trace_id.data(), n);
  t_signal_trace_id[n] = '\0';
  std::atomic_signal_fence(std::memory_order_release);
  context.trace_id = std::move(trace_id);
  context.span_id = std::move(span_id);
}

void ClearCurrentContext() {
  CurrentContext& context = LocalContext();
  t_signal_trace_id[0] = '\0';
  context.trace_id.clear();
  context.span_id.clear();
}

bool HasCurrentContext() { return !LocalContext().trace_id.empty(); }

std::string CurrentTraceId() { return LocalContext().trace_id; }

std::string CurrentSpanId() { return LocalContext().span_id; }

void SetSpanTrackingEnabled(bool enabled) {
  if (enabled) {
    g_span_tracking.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Floor at zero so a stray disable can never mask a live consumer.
  int count = g_span_tracking.load(std::memory_order_relaxed);
  while (count > 0 &&
         !g_span_tracking.compare_exchange_weak(count, count - 1,
                                                std::memory_order_relaxed)) {
  }
}

bool IsSpanTrackingEnabled() {
  return g_span_tracking.load(std::memory_order_relaxed) > 0;
}

bool CurrentSpanNameForSignal(char* buf, size_t len) {
  if (buf == nullptr || len == 0) return false;
  buf[0] = '\0';
  const SpanNameStack& stack = t_span_names;
  uint32_t depth = stack.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (depth == 0) return false;
  if (depth > kMaxTrackedDepth) depth = kMaxTrackedDepth;
  const char* src = stack.names[depth - 1];
  size_t i = 0;
  for (; i + 1 < len && src[i] != '\0'; ++i) buf[i] = src[i];
  buf[i] = '\0';
  return i > 0;
}

bool CurrentTraceIdForSignal(char* buf, size_t len) {
  if (buf == nullptr || len == 0) return false;
  std::atomic_signal_fence(std::memory_order_acquire);
  const char* src = t_signal_trace_id;
  size_t i = 0;
  for (; i + 1 < len && src[i] != '\0'; ++i) buf[i] = src[i];
  buf[i] = '\0';
  return i > 0;
}

ScopedSpan::ScopedSpan(std::string_view name, const char* category)
    : enabled_(IsEnabled()),
      tracked_(g_span_tracking.load(std::memory_order_relaxed) > 0) {
  if (tracked_) PushTrackedSpan(name);
  if (!enabled_) return;
  event_.name.assign(name);
  event_.category = category;
  const CurrentContext& context = LocalContext();
  if (!context.trace_id.empty()) {
    event_.args.emplace_back("trace_id", context.trace_id);
    if (!context.span_id.empty()) {
      event_.args.emplace_back("span_id", context.span_id);
    }
  }
  event_.start_ns = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (tracked_) PopTrackedSpan();
  if (!enabled_) return;
  event_.duration_ns = NowNs() - event_.start_ns;
  ThreadBuffer& buffer = LocalBuffer();
  event_.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event_));
}

void ScopedSpan::AddArg(std::string_view key, std::string_view value) {
  if (!enabled_) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::AddArg(std::string_view key, long long value) {
  if (!enabled_) return;
  event_.args.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::AddArg(std::string_view key, unsigned long long value) {
  if (!enabled_) return;
  event_.args.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::AddArg(std::string_view key, double value) {
  if (!enabled_) return;
  std::string repr;
  AppendJsonNumber(&repr, value);
  event_.args.emplace_back(std::string(key), std::move(repr));
}

void SetCurrentThreadName(std::string name) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.name = std::move(name);
}

uint32_t CurrentThreadId() { return LocalBuffer().tid; }

size_t EventCount() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void Clear() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

namespace {

void AppendEvent(std::string* out, const TraceEvent& event) {
  out->append("{\"name\":");
  out->append(JsonQuote(event.name));
  out->append(",\"cat\":");
  out->append(JsonQuote(event.category));
  out->append(",\"ph\":\"X\",\"pid\":1,\"tid\":");
  out->append(std::to_string(event.tid));
  // Chrome timestamps are microseconds; keep nanosecond precision in the
  // fraction.
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                static_cast<double>(event.start_ns) / 1e3,
                static_cast<double>(event.duration_ns) / 1e3);
  out->append(buf);
  if (!event.args.empty()) {
    out->append(",\"args\":{");
    for (size_t a = 0; a < event.args.size(); ++a) {
      if (a > 0) out->push_back(',');
      out->append(JsonQuote(event.args[a].first));
      out->push_back(':');
      out->append(JsonQuote(event.args[a].second));
    }
    out->push_back('}');
  }
  out->push_back('}');
}

}  // namespace

std::string ExportChromeTrace() {
  BufferRegistry& registry = Registry();
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (!buffer->name.empty()) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
      out.append(std::to_string(buffer->tid));
      out.append(",\"args\":{\"name\":");
      out.append(JsonQuote(buffer->name));
      out.append("}}");
    }
    for (const TraceEvent& event : buffer->events) {
      if (!first) out.push_back(',');
      first = false;
      AppendEvent(&out, event);
    }
  }
  out.append("]}");
  return out;
}

void ExportChromeTrace(std::ostream& out) { out << ExportChromeTrace(); }

}  // namespace ltee::util::trace
