#ifndef LTEE_UTIL_STACK_CAPTURE_H_
#define LTEE_UTIL_STACK_CAPTURE_H_

#include <cstdint>
#include <string>

namespace ltee::util {

/// Raw program-counter capture and lazy symbolization — the substrate of
/// the sampling CPU profiler (obsv::profiler). Capture and symbolization
/// are deliberately split: CaptureStack runs inside a SIGPROF handler and
/// must be async-signal-safe, while SymbolizeAddress allocates freely and
/// only runs at export time, on the addresses the samples recorded.

/// Deepest stack a single capture records; deeper frames are truncated
/// from the root end (the leaf frames, where the CPU actually is, are
/// always kept).
inline constexpr int kMaxStackDepth = 48;

/// True when the platform supports stack capture (glibc backtrace +
/// dladdr). When false, CaptureStack returns 0 frames and profiles come
/// out empty — the profiler degrades instead of failing the build.
bool StackCaptureSupported();

/// Must run once in normal (non-signal) context before the first
/// signal-context CaptureStack: glibc's backtrace lazily dlopens
/// libgcc_s on first use, and dlopen is not async-signal-safe. Calling
/// it here forces that load so later captures never allocate or lock.
/// Idempotent and thread-safe.
void WarmUpStackCapture();

/// Fills `frames` with up to `max_depth` return addresses of the calling
/// stack, innermost (leaf) first. CaptureStack's own frame is always
/// excluded; `skip` drops that many additional innermost frames of the
/// caller's context (the handler and the kernel signal trampoline, for a
/// profiler capture). Returns the number of frames stored.
/// Async-signal-safe after WarmUpStackCapture has run.
int CaptureStack(void** frames, int max_depth, int skip = 0);

/// One symbolized program counter.
struct SymbolizedFrame {
  /// Demangled function name when the symbol resolved; otherwise
  /// "module+0xoffset" for a mapped but nameless address, or
  /// "[unknown]". Never empty.
  std::string name;
  /// True when a real symbol name (not a fallback form) resolved.
  bool known = false;
};

/// Resolves `pc` to a function name via dladdr + C++ demangling. The
/// executable must export its symbols for its own functions to resolve
/// (CMake ENABLE_EXPORTS / -rdynamic — set on every binary that starts
/// the profiler). NOT async-signal-safe: export-time only.
SymbolizedFrame SymbolizeAddress(const void* pc);

/// Demangles a C++ symbol name, returning the input unchanged when it is
/// not a mangled name.
std::string DemangleSymbol(const std::string& mangled);

}  // namespace ltee::util

#endif  // LTEE_UTIL_STACK_CAPTURE_H_
