#ifndef LTEE_KB_SERIALIZATION_H_
#define LTEE_KB_SERIALIZATION_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "kb/knowledge_base.h"

namespace ltee::kb {

/// Serializes the knowledge base into a line-based TSV format:
///
///   C <id> <name> <parent-id>
///   P <id> <class-id> <name> <type> <label>*
///   I <id> <class-id> <popularity> <label>*
///   F <instance-id> <property-id> <typed-value>
///   A <instance-id> <token>*
///
/// Typed values are rendered as "<type>:<payload>" with dates as
/// y-m-d|granularity, references as ref-id|label. Fields are tab
/// separated; tabs and newlines inside strings are escaped (\t, \n, \\).
void SaveKnowledgeBase(const KnowledgeBase& kb, std::ostream& out);

/// Parses the format written by SaveKnowledgeBase. Returns nullopt on any
/// malformed line (the error is reported via LTEE_LOG).
std::optional<KnowledgeBase> LoadKnowledgeBase(std::istream& in);

/// Escapes tab/newline/backslash for the TSV format.
std::string EscapeField(const std::string& s);
std::string UnescapeField(const std::string& s);

/// Value <-> string round-trip used by the serializers (exposed for
/// tests).
std::string SerializeValue(const types::Value& v);
std::optional<types::Value> DeserializeValue(const std::string& s);

}  // namespace ltee::kb

#endif  // LTEE_KB_SERIALIZATION_H_
