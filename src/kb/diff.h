#ifndef LTEE_KB_DIFF_H_
#define LTEE_KB_DIFF_H_

#include <cstddef>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace ltee::kb {

/// Entity/fact-level difference between two knowledge bases, aligned by
/// instance id (the KB is append-only, so common ids are comparable and
/// ids beyond the shorter KB are adds/removals).
struct KbDiff {
  bool schema_differs = false;
  size_t instances_added = 0;    // in `after` beyond `before`
  size_t instances_removed = 0;  // in `before` beyond `after`
  size_t instances_changed = 0;  // common id with different class/labels
  size_t facts_added = 0;
  size_t facts_removed = 0;
  size_t facts_changed = 0;
  /// Human-readable renderings of the first differences found, capped at
  /// the `max_samples` passed to DiffKnowledgeBases.
  std::vector<std::string> samples;

  bool identical() const {
    return !schema_differs && instances_added == 0 && instances_removed == 0 &&
           instances_changed == 0 && facts_added == 0 && facts_removed == 0 &&
           facts_changed == 0;
  }
};

/// Compares two KBs: schema (classes + properties by id), then every
/// instance by id — class, labels, and facts (per property, values
/// compared on their serialized form). Fact adds/removals/changes on a
/// common instance count as fact-level differences; instances present in
/// only one KB count once as instance added/removed plus their fact count.
KbDiff DiffKnowledgeBases(const KnowledgeBase& before,
                          const KnowledgeBase& after,
                          size_t max_samples = 20);

}  // namespace ltee::kb

#endif  // LTEE_KB_DIFF_H_
