#ifndef LTEE_KB_APPLIER_H_
#define LTEE_KB_APPLIER_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"

namespace ltee::kb {

/// One staged new entity: becomes an AddInstance plus one AddFact per
/// fact when the changeset is applied.
struct EntityAdd {
  ClassId cls = kInvalidClass;
  /// Source row-cluster id (provenance link back to the fusion stage).
  int cluster_id = -1;
  std::vector<std::string> labels;
  std::vector<Fact> facts;
};

/// One staged fact for an *existing* instance (a slot fill). Applying
/// skips the fact when the slot is already occupied, which makes replaying
/// a changeset against a KB that already absorbed part of it idempotent.
struct FactAdd {
  InstanceId instance = kInvalidInstance;
  PropertyId property = kInvalidProperty;
  types::Value value;
};

/// One staged overwrite of an existing fact's value. Unlike FactAdd this
/// never creates a slot: applying is a no-op when the slot is empty.
struct ValueChange {
  InstanceId instance = kInvalidInstance;
  PropertyId property = kInvalidProperty;
  types::Value value;
};

/// All staged mutations produced by one class sweep of the pipeline, in
/// apply order: slot fills, value changes, then new entities.
struct ClassChange {
  ClassId cls = kInvalidClass;
  std::vector<FactAdd> fact_adds;
  std::vector<ValueChange> value_changes;
  std::vector<EntityAdd> entities;

  bool empty() const {
    return fact_adds.empty() && value_changes.empty() && entities.empty();
  }
};

/// A typed, replayable description of every KB mutation of one pipeline
/// run, grouped per class in run order. Applying a changeset to the KB the
/// run started from reproduces exactly the KB the legacy in-place update
/// path produced — new instance ids included — because classes apply in
/// run order and slot fills skip occupied slots just like the sequential
/// per-class loop did.
struct ChangeSet {
  std::vector<ClassChange> classes;

  bool empty() const;
  /// Pointer to the entry of `cls`, or nullptr.
  ClassChange* Find(ClassId cls);
  const ClassChange* Find(ClassId cls) const;
  /// Replaces the entry of `change.cls` in place (preserving run order) or
  /// appends when the class has no entry yet.
  void Replace(ClassChange change);
};

/// What applying one ClassChange did.
struct ClassApplyOutcome {
  ClassId cls = kInvalidClass;
  size_t instances_added = 0;
  size_t facts_added = 0;    // facts of new instances
  size_t slot_fills = 0;     // FactAdds that landed in an empty slot
  size_t value_changes = 0;  // ValueChanges that overwrote a fact
  std::vector<InstanceId> new_instance_ids;
};

/// What applying a full ChangeSet did.
struct ApplyOutcome {
  std::vector<ClassApplyOutcome> classes;
  size_t instances_added = 0;
  size_t facts_added = 0;
  size_t slot_fills = 0;
  size_t value_changes = 0;
};

/// The single KB write path: stages typed changes and applies them in one
/// pass, recording a prov::KbUpdateDecision per accepted fact and bumping
/// the ltee.kbupdate.* counters. Nothing mutates the KnowledgeBase until
/// Apply() runs, so the pipeline can keep reading an immutable base KB
/// while the changeset for the next version accumulates.
class Applier {
 public:
  explicit Applier(KnowledgeBase* kb) : kb_(kb) {}

  /// Appends (or replaces, by class) one class's staged changes.
  void Stage(ClassChange change) { staged_.Replace(std::move(change)); }
  void StageAll(ChangeSet changes);

  const ChangeSet& staged() const { return staged_; }
  ChangeSet TakeStaged() { return std::move(staged_); }

  /// Applies everything staged, clears the staging area, and returns what
  /// happened per class.
  ApplyOutcome Apply();

 private:
  KnowledgeBase* kb_;
  ChangeSet staged_;
};

/// Applies `changes` to `kb` directly (the Applier's engine, exposed for
/// callers that already hold a complete changeset).
ApplyOutcome ApplyChangeSet(KnowledgeBase* kb, const ChangeSet& changes);

/// Line-based TSV serialization of a changeset (same escaping and value
/// syntax as kb/serialization):
///
///   G <class-id>
///   S <instance-id> <property-id> <typed-value>    (FactAdd)
///   V <instance-id> <property-id> <typed-value>    (ValueChange)
///   E <class-id> <cluster-id> <num-labels> <label>*
///   X <property-id> <typed-value>                  (fact of last E)
void SaveChangeSet(const ChangeSet& changes, std::ostream& out);
std::optional<ChangeSet> LoadChangeSet(std::istream& in);

}  // namespace ltee::kb

#endif  // LTEE_KB_APPLIER_H_
