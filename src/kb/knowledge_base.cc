#include "kb/knowledge_base.h"

#include <algorithm>

#include "util/string_util.h"

namespace ltee::kb {

ClassId AsClassId(size_t i) { return static_cast<ClassId>(i); }

ClassId KnowledgeBase::AddClass(std::string name, ClassId parent) {
  ClassSpec spec;
  spec.id = static_cast<ClassId>(classes_.size());
  spec.name = std::move(name);
  spec.parent = parent;
  class_by_name_[spec.name] = spec.id;
  classes_.push_back(std::move(spec));
  instances_by_class_.emplace_back();
  return classes_.back().id;
}

PropertyId KnowledgeBase::AddProperty(ClassId cls, std::string name,
                                      types::DataType type,
                                      std::vector<std::string> extra_labels) {
  PropertySpec spec;
  spec.id = static_cast<PropertyId>(properties_.size());
  spec.cls = cls;
  spec.name = std::move(name);
  spec.type = type;
  spec.labels.push_back(util::NormalizeLabel(spec.name));
  for (auto& l : extra_labels) spec.labels.push_back(util::NormalizeLabel(l));
  classes_[cls].properties.push_back(spec.id);
  properties_.push_back(std::move(spec));
  return properties_.back().id;
}

InstanceId KnowledgeBase::AddInstance(ClassId cls,
                                      std::vector<std::string> labels,
                                      double popularity) {
  Instance inst;
  inst.id = static_cast<InstanceId>(instances_.size());
  inst.cls = cls;
  inst.labels = std::move(labels);
  inst.popularity = popularity;
  instances_by_class_[cls].push_back(inst.id);
  instances_.push_back(std::move(inst));
  return instances_.back().id;
}

void KnowledgeBase::AddFact(InstanceId instance, PropertyId property,
                            types::Value value) {
  instances_[instance].facts.push_back(Fact{property, std::move(value)});
}

bool KnowledgeBase::ReplaceFact(InstanceId instance, PropertyId property,
                                types::Value value) {
  for (Fact& f : instances_[instance].facts) {
    if (f.property == property) {
      f.value = std::move(value);
      return true;
    }
  }
  return false;
}

void KnowledgeBase::SetAbstractTokens(InstanceId instance,
                                      std::vector<std::string> tokens) {
  instances_[instance].abstract_tokens = std::move(tokens);
}

ClassId KnowledgeBase::FindClass(const std::string& name) const {
  auto it = class_by_name_.find(name);
  return it == class_by_name_.end() ? kInvalidClass : it->second;
}

PropertyId KnowledgeBase::FindProperty(ClassId cls,
                                       const std::string& name) const {
  for (PropertyId pid : classes_[cls].properties) {
    if (properties_[pid].name == name) return pid;
  }
  return kInvalidProperty;
}

const std::vector<InstanceId>& KnowledgeBase::InstancesOfClass(
    ClassId cls) const {
  return instances_by_class_[cls];
}

const types::Value* KnowledgeBase::FactOf(InstanceId instance,
                                          PropertyId property) const {
  for (const Fact& f : instances_[instance].facts) {
    if (f.property == property) return &f.value;
  }
  return nullptr;
}

std::vector<ClassId> KnowledgeBase::Ancestors(ClassId cls) const {
  std::vector<ClassId> out;
  for (ClassId c = cls; c != kInvalidClass; c = classes_[c].parent) {
    out.push_back(c);
  }
  return out;
}

bool KnowledgeBase::ClassesCompatible(ClassId a, ClassId b) const {
  if (a == b) return true;
  for (ClassId c = classes_[a].parent; c != kInvalidClass;
       c = classes_[c].parent) {
    if (c == b) return true;
  }
  for (ClassId c = classes_[b].parent; c != kInvalidClass;
       c = classes_[c].parent) {
    if (c == a) return true;
  }
  // Shared direct parent also counts as compatible (siblings in the tree).
  return classes_[a].parent != kInvalidClass &&
         classes_[a].parent == classes_[b].parent;
}

double KnowledgeBase::ClassOverlap(ClassId a, ClassId b) const {
  auto anc_a = Ancestors(a);
  auto anc_b = Ancestors(b);
  size_t inter = 0;
  for (ClassId c : anc_a) {
    if (std::find(anc_b.begin(), anc_b.end(), c) != anc_b.end()) ++inter;
  }
  size_t uni = anc_a.size() + anc_b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

ClassStats KnowledgeBase::StatsOfClass(ClassId cls) const {
  ClassStats stats;
  for (InstanceId id : instances_by_class_[cls]) {
    stats.instances += 1;
    stats.facts += instances_[id].facts.size();
  }
  return stats;
}

PropertyStats KnowledgeBase::StatsOfProperty(PropertyId property) const {
  PropertyStats stats;
  const ClassId cls = properties_[property].cls;
  const auto& members = instances_by_class_[cls];
  for (InstanceId id : members) {
    if (FactOf(id, property) != nullptr) stats.facts += 1;
  }
  stats.density = members.empty()
                      ? 0.0
                      : static_cast<double>(stats.facts) /
                            static_cast<double>(members.size());
  return stats;
}

}  // namespace ltee::kb
