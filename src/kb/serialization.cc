#include "kb/serialization.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace ltee::kb {

namespace {

using types::DataType;
using types::DateGranularity;
using types::Value;

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == '\t') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\\': out += "\\\\"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't': out.push_back('\t'); break;
        case 'n': out.push_back('\n'); break;
        default: out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string SerializeValue(const Value& v) {
  std::ostringstream out;
  out << static_cast<int>(v.type) << ':';
  switch (v.type) {
    case DataType::kText:
    case DataType::kNominalString:
      out << EscapeField(v.text);
      break;
    case DataType::kInstanceReference:
      out << v.ref << '|' << EscapeField(v.text);
      break;
    case DataType::kDate:
      out << v.date.year << '-' << static_cast<int>(v.date.month) << '-'
          << static_cast<int>(v.date.day) << '|'
          << (v.date.granularity == DateGranularity::kDay ? 'D' : 'Y');
      break;
    case DataType::kQuantity:
      out << v.number;
      break;
    case DataType::kNominalInteger:
      out << v.integer;
      break;
  }
  return out.str();
}

std::optional<Value> DeserializeValue(const std::string& s) {
  const size_t colon = s.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const int type_int = std::atoi(s.substr(0, colon).c_str());
  if (type_int < 0 || type_int >= types::kNumDataTypes) return std::nullopt;
  const DataType type = static_cast<DataType>(type_int);
  const std::string payload = s.substr(colon + 1);
  switch (type) {
    case DataType::kText:
      return Value::Text(UnescapeField(payload));
    case DataType::kNominalString:
      return Value::Nominal(UnescapeField(payload));
    case DataType::kInstanceReference: {
      const size_t bar = payload.find('|');
      if (bar == std::string::npos) return std::nullopt;
      return Value::InstanceRef(UnescapeField(payload.substr(bar + 1)),
                                std::atoi(payload.substr(0, bar).c_str()));
    }
    case DataType::kDate: {
      const size_t bar = payload.find('|');
      if (bar == std::string::npos || bar + 1 >= payload.size()) {
        return std::nullopt;
      }
      int y = 0, m = 0, d = 0;
      if (std::sscanf(payload.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
        return std::nullopt;
      }
      if (payload[bar + 1] == 'D') return Value::DayDate(y, m, d);
      return Value::YearDate(y);
    }
    case DataType::kQuantity:
      return Value::OfQuantity(std::atof(payload.c_str()));
    case DataType::kNominalInteger:
      return Value::OfInteger(std::atoll(payload.c_str()));
  }
  return std::nullopt;
}

void SaveKnowledgeBase(const KnowledgeBase& kb, std::ostream& out) {
  for (size_t c = 0; c < kb.num_classes(); ++c) {
    const ClassSpec& cls = kb.cls(static_cast<ClassId>(c));
    out << "C\t" << cls.id << '\t' << EscapeField(cls.name) << '\t'
        << cls.parent << '\n';
  }
  for (size_t p = 0; p < kb.num_properties(); ++p) {
    const PropertySpec& prop = kb.property(static_cast<PropertyId>(p));
    out << "P\t" << prop.id << '\t' << prop.cls << '\t'
        << EscapeField(prop.name) << '\t' << static_cast<int>(prop.type);
    for (const auto& label : prop.labels) out << '\t' << EscapeField(label);
    out << '\n';
  }
  for (const auto& inst : kb.instances()) {
    out << "I\t" << inst.id << '\t' << inst.cls << '\t' << inst.popularity;
    for (const auto& label : inst.labels) out << '\t' << EscapeField(label);
    out << '\n';
    for (const auto& fact : inst.facts) {
      out << "F\t" << inst.id << '\t' << fact.property << '\t'
          << SerializeValue(fact.value) << '\n';
    }
    if (!inst.abstract_tokens.empty()) {
      out << "A\t" << inst.id;
      for (const auto& tok : inst.abstract_tokens) {
        out << '\t' << EscapeField(tok);
      }
      out << '\n';
    }
  }
}

std::optional<KnowledgeBase> LoadKnowledgeBase(std::istream& in) {
  KnowledgeBase kb;
  std::string line;
  int line_number = 0;
  auto fail = [&](const char* what) {
    LTEE_LOG(kError) << "LoadKnowledgeBase: " << what << " at line "
                     << line_number;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitTabs(line);
    if (fields[0] == "C") {
      if (fields.size() != 4) return fail("bad class record");
      const ClassId id = kb.AddClass(
          UnescapeField(fields[2]),
          static_cast<ClassId>(std::atoi(fields[3].c_str())));
      if (id != std::atoi(fields[1].c_str())) return fail("class id gap");
    } else if (fields[0] == "P") {
      if (fields.size() < 5) return fail("bad property record");
      const int type_int = std::atoi(fields[4].c_str());
      if (type_int < 0 || type_int >= types::kNumDataTypes) {
        return fail("bad property type");
      }
      std::vector<std::string> extra;
      // Skip the first label (the normalized name, re-added by
      // AddProperty).
      for (size_t f = 6; f < fields.size(); ++f) {
        extra.push_back(UnescapeField(fields[f]));
      }
      const PropertyId id = kb.AddProperty(
          static_cast<ClassId>(std::atoi(fields[2].c_str())),
          UnescapeField(fields[3]), static_cast<DataType>(type_int),
          std::move(extra));
      if (id != std::atoi(fields[1].c_str())) return fail("property id gap");
    } else if (fields[0] == "I") {
      if (fields.size() < 5) return fail("bad instance record");
      std::vector<std::string> labels;
      for (size_t f = 4; f < fields.size(); ++f) {
        labels.push_back(UnescapeField(fields[f]));
      }
      const InstanceId id = kb.AddInstance(
          static_cast<ClassId>(std::atoi(fields[2].c_str())),
          std::move(labels), std::atof(fields[3].c_str()));
      if (id != std::atoi(fields[1].c_str())) return fail("instance id gap");
    } else if (fields[0] == "F") {
      if (fields.size() != 4) return fail("bad fact record");
      auto value = DeserializeValue(fields[3]);
      if (!value) return fail("bad fact value");
      kb.AddFact(std::atoi(fields[1].c_str()),
                 static_cast<PropertyId>(std::atoi(fields[2].c_str())),
                 std::move(*value));
    } else if (fields[0] == "A") {
      if (fields.size() < 2) return fail("bad abstract record");
      std::vector<std::string> tokens;
      for (size_t f = 2; f < fields.size(); ++f) {
        tokens.push_back(UnescapeField(fields[f]));
      }
      kb.SetAbstractTokens(std::atoi(fields[1].c_str()), std::move(tokens));
    } else {
      return fail("unknown record kind");
    }
  }
  return kb;
}

}  // namespace ltee::kb
