#include "kb/diff.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "kb/serialization.h"

namespace ltee::kb {

namespace {

void AddSample(KbDiff* diff, size_t max_samples, const std::string& text) {
  if (diff->samples.size() < max_samples) diff->samples.push_back(text);
}

std::string InstanceName(const Instance& inst) {
  std::ostringstream out;
  out << "#" << inst.id;
  if (!inst.labels.empty()) out << " \"" << inst.labels.front() << "\"";
  return out.str();
}

/// property -> serialized values (a property can hold several facts; the
/// pipeline writes at most one, but the diff must not assume that).
std::map<PropertyId, std::vector<std::string>> FactMap(const Instance& inst) {
  std::map<PropertyId, std::vector<std::string>> facts;
  for (const Fact& fact : inst.facts) {
    facts[fact.property].push_back(SerializeValue(fact.value));
  }
  for (auto& [property, values] : facts) std::sort(values.begin(), values.end());
  return facts;
}

std::string PropertyName(const KnowledgeBase& kb, PropertyId property) {
  if (property >= 0 && static_cast<size_t>(property) < kb.num_properties()) {
    return kb.property(property).name;
  }
  return "property" + std::to_string(property);
}

bool SchemaEqual(const KnowledgeBase& a, const KnowledgeBase& b) {
  if (a.num_classes() != b.num_classes() ||
      a.num_properties() != b.num_properties()) {
    return false;
  }
  for (size_t c = 0; c < a.num_classes(); ++c) {
    const ClassSpec& ca = a.cls(static_cast<ClassId>(c));
    const ClassSpec& cb = b.cls(static_cast<ClassId>(c));
    if (ca.name != cb.name || ca.parent != cb.parent) return false;
  }
  for (size_t p = 0; p < a.num_properties(); ++p) {
    const PropertySpec& pa = a.property(static_cast<PropertyId>(p));
    const PropertySpec& pb = b.property(static_cast<PropertyId>(p));
    if (pa.name != pb.name || pa.cls != pb.cls || pa.type != pb.type ||
        pa.labels != pb.labels) {
      return false;
    }
  }
  return true;
}

}  // namespace

KbDiff DiffKnowledgeBases(const KnowledgeBase& before,
                          const KnowledgeBase& after, size_t max_samples) {
  KbDiff diff;
  if (!SchemaEqual(before, after)) {
    diff.schema_differs = true;
    AddSample(&diff, max_samples, "schema differs (classes or properties)");
  }

  const size_t common = std::min(before.num_instances(), after.num_instances());
  for (size_t i = 0; i < common; ++i) {
    const Instance& a = before.instance(static_cast<InstanceId>(i));
    const Instance& b = after.instance(static_cast<InstanceId>(i));
    if (a.cls != b.cls || a.labels != b.labels) {
      diff.instances_changed += 1;
      AddSample(&diff, max_samples,
                "~ entity " + InstanceName(a) + ": class/labels changed");
    }
    const auto facts_a = FactMap(a);
    const auto facts_b = FactMap(b);
    for (const auto& [property, values] : facts_a) {
      auto it = facts_b.find(property);
      if (it == facts_b.end()) {
        diff.facts_removed += values.size();
        AddSample(&diff, max_samples,
                  "- fact " + InstanceName(a) + "." +
                      PropertyName(before, property));
      } else if (it->second != values) {
        diff.facts_changed += std::max(values.size(), it->second.size());
        AddSample(&diff, max_samples,
                  "~ fact " + InstanceName(a) + "." +
                      PropertyName(before, property) + ": " + values.front() +
                      " -> " + it->second.front());
      }
    }
    for (const auto& [property, values] : facts_b) {
      if (facts_a.find(property) == facts_a.end()) {
        diff.facts_added += values.size();
        AddSample(&diff, max_samples,
                  "+ fact " + InstanceName(b) + "." +
                      PropertyName(after, property));
      }
    }
  }

  for (size_t i = common; i < after.num_instances(); ++i) {
    const Instance& b = after.instance(static_cast<InstanceId>(i));
    diff.instances_added += 1;
    diff.facts_added += b.facts.size();
    AddSample(&diff, max_samples, "+ entity " + InstanceName(b) + " (" +
                                      std::to_string(b.facts.size()) +
                                      " facts)");
  }
  for (size_t i = common; i < before.num_instances(); ++i) {
    const Instance& a = before.instance(static_cast<InstanceId>(i));
    diff.instances_removed += 1;
    diff.facts_removed += a.facts.size();
    AddSample(&diff, max_samples, "- entity " + InstanceName(a) + " (" +
                                      std::to_string(a.facts.size()) +
                                      " facts)");
  }
  return diff;
}

}  // namespace ltee::kb
