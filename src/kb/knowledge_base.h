#ifndef LTEE_KB_KNOWLEDGE_BASE_H_
#define LTEE_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/value.h"

namespace ltee::kb {

using ClassId = int16_t;
using PropertyId = int16_t;
using InstanceId = int32_t;

inline constexpr ClassId kInvalidClass = -1;
inline constexpr PropertyId kInvalidProperty = -1;
inline constexpr InstanceId kInvalidInstance = -1;

/// Schema description of one property of a class (e.g. GF-Player/birthDate).
struct PropertySpec {
  PropertyId id = kInvalidProperty;
  ClassId cls = kInvalidClass;
  /// Canonical property name, e.g. "birthDate".
  std::string name;
  types::DataType type = types::DataType::kText;
  /// Normalized surface labels of the property (canonical name plus
  /// synonyms); compared against attribute headers by the KB-Label matcher.
  std::vector<std::string> labels;
};

/// A class in the KB ontology. Classes form a tree via `parent`
/// (DBpedia-style: Agent -> Athlete -> GridironFootballPlayer).
struct ClassSpec {
  ClassId id = kInvalidClass;
  std::string name;
  ClassId parent = kInvalidClass;
  std::vector<PropertyId> properties;
};

/// One (property, value) statement about an instance.
struct Fact {
  PropertyId property = kInvalidProperty;
  types::Value value;
};

/// An instance of a class with its labels, facts, abstract, and a
/// page-link-count popularity proxy (used by the POPULARITY metric).
struct Instance {
  InstanceId id = kInvalidInstance;
  ClassId cls = kInvalidClass;
  std::vector<std::string> labels;
  std::vector<Fact> facts;
  std::vector<std::string> abstract_tokens;
  double popularity = 0.0;
};

/// Per-class aggregate statistics (Table 1).
struct ClassStats {
  size_t instances = 0;
  size_t facts = 0;
};

/// Per-property aggregate statistics (Table 2).
struct PropertyStats {
  size_t facts = 0;
  double density = 0.0;  // facts / instances of the class
};

/// In-memory cross-domain knowledge base in the shape the pipeline
/// consumes: a class hierarchy, a typed property schema per class,
/// instances with labels and facts. Plays the role of DBpedia 2014 in the
/// paper. Instances are append-only; ids are dense and index into internal
/// vectors, making fact access O(#facts of instance).
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  // -- schema construction ----------------------------------------------
  ClassId AddClass(std::string name, ClassId parent = kInvalidClass);
  PropertyId AddProperty(ClassId cls, std::string name, types::DataType type,
                         std::vector<std::string> extra_labels = {});

  // -- instance construction --------------------------------------------
  InstanceId AddInstance(ClassId cls, std::vector<std::string> labels,
                         double popularity = 0.0);
  void AddFact(InstanceId instance, PropertyId property, types::Value value);
  /// Overwrites the value of an existing fact. Returns false (and changes
  /// nothing) when the instance has no fact for `property` — use AddFact
  /// to create the slot.
  bool ReplaceFact(InstanceId instance, PropertyId property,
                   types::Value value);
  void SetAbstractTokens(InstanceId instance, std::vector<std::string> tokens);

  // -- accessors ----------------------------------------------------------
  size_t num_classes() const { return classes_.size(); }
  size_t num_properties() const { return properties_.size(); }
  size_t num_instances() const { return instances_.size(); }
  const ClassSpec& cls(ClassId id) const { return classes_[id]; }
  const PropertySpec& property(PropertyId id) const { return properties_[id]; }
  const Instance& instance(InstanceId id) const { return instances_[id]; }
  const std::vector<Instance>& instances() const { return instances_; }

  /// Class id by name, or kInvalidClass.
  ClassId FindClass(const std::string& name) const;
  /// Property id by (class, name), or kInvalidProperty.
  PropertyId FindProperty(ClassId cls, const std::string& name) const;

  /// Ids of instances whose class is `cls` (direct, not transitive).
  const std::vector<InstanceId>& InstancesOfClass(ClassId cls) const;

  /// Value of `property` on `instance`, or nullptr if the slot is empty.
  const types::Value* FactOf(InstanceId instance, PropertyId property) const;

  /// `cls` and all its ancestors up to the root, most specific first.
  std::vector<ClassId> Ancestors(ClassId cls) const;

  /// True if `a` equals `b` or one is an ancestor of the other — the
  /// class-compatibility test of the new-detection candidate selection
  /// ("must be of the class of the created entity or share one parent").
  bool ClassesCompatible(ClassId a, ClassId b) const;

  /// Jaccard overlap of the ancestor sets of two classes (TYPE metric).
  double ClassOverlap(ClassId a, ClassId b) const;

  // -- statistics ---------------------------------------------------------
  ClassStats StatsOfClass(ClassId cls) const;
  PropertyStats StatsOfProperty(PropertyId property) const;

 private:
  std::vector<ClassSpec> classes_;
  std::vector<PropertySpec> properties_;
  std::vector<Instance> instances_;
  std::vector<std::vector<InstanceId>> instances_by_class_;
  std::unordered_map<std::string, ClassId> class_by_name_;
};

}  // namespace ltee::kb

#endif  // LTEE_KB_KNOWLEDGE_BASE_H_
