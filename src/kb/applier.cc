#include "kb/applier.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "kb/serialization.h"
#include "prov/ledger.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ltee::kb {

namespace {

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start <= line.size()) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) tab = line.size();
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

bool ParseInt(const std::string& s, long long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

void RecordAcceptedFact(const KnowledgeBase& kb, ClassId cls, int cluster_id,
                        const std::string& subject, PropertyId property,
                        const types::Value& value, const char* reason) {
  prov::KbUpdateDecision decision;
  decision.cls = cls;
  decision.cluster_id = cluster_id;
  decision.subject = subject;
  decision.property = property;
  decision.property_name = kb.property(property).name;
  decision.value = value.ToString();
  decision.accepted = true;
  decision.reason = reason;
  prov::Record(std::move(decision));
}

}  // namespace

bool ChangeSet::empty() const {
  for (const auto& cls : classes) {
    if (!cls.empty()) return false;
  }
  return true;
}

ClassChange* ChangeSet::Find(ClassId cls) {
  for (auto& change : classes) {
    if (change.cls == cls) return &change;
  }
  return nullptr;
}

const ClassChange* ChangeSet::Find(ClassId cls) const {
  for (const auto& change : classes) {
    if (change.cls == cls) return &change;
  }
  return nullptr;
}

void ChangeSet::Replace(ClassChange change) {
  if (ClassChange* existing = Find(change.cls); existing != nullptr) {
    *existing = std::move(change);
  } else {
    classes.push_back(std::move(change));
  }
}

void Applier::StageAll(ChangeSet changes) {
  for (auto& change : changes.classes) {
    staged_.Replace(std::move(change));
  }
}

ApplyOutcome Applier::Apply() {
  ApplyOutcome outcome = ApplyChangeSet(kb_, staged_);
  staged_ = ChangeSet{};
  return outcome;
}

ApplyOutcome ApplyChangeSet(KnowledgeBase* kb, const ChangeSet& changes) {
  util::trace::ScopedSpan span("kb.apply_changeset");
  span.AddArg("classes", changes.classes.size());
  ApplyOutcome outcome;
  const bool prov_enabled = prov::IsEnabled();
  for (const ClassChange& change : changes.classes) {
    ClassApplyOutcome cls_outcome;
    cls_outcome.cls = change.cls;
    // Slot fills first, skipping occupied slots: identical semantics to
    // the legacy per-class ApplySlotFills -> AddNewEntitiesToKb sequence,
    // so replaying a full-run changeset reproduces the in-place KB
    // byte for byte (new instance ids included).
    for (const FactAdd& fill : change.fact_adds) {
      if (kb->FactOf(fill.instance, fill.property) != nullptr) continue;
      kb->AddFact(fill.instance, fill.property, fill.value);
      cls_outcome.slot_fills += 1;
    }
    for (const ValueChange& vc : change.value_changes) {
      if (!kb->ReplaceFact(vc.instance, vc.property, vc.value)) continue;
      cls_outcome.value_changes += 1;
      if (prov_enabled) {
        const auto& labels = kb->instance(vc.instance).labels;
        RecordAcceptedFact(*kb, change.cls, -1,
                           labels.empty() ? std::string() : labels.front(),
                           vc.property, vc.value, "value_change");
      }
    }
    for (const EntityAdd& entity : change.entities) {
      const InstanceId id = kb->AddInstance(entity.cls, entity.labels);
      for (const Fact& fact : entity.facts) {
        kb->AddFact(id, fact.property, fact.value);
        cls_outcome.facts_added += 1;
        if (prov_enabled) {
          RecordAcceptedFact(*kb, entity.cls, entity.cluster_id,
                             entity.labels.front(), fact.property, fact.value,
                             "new_entity");
        }
      }
      cls_outcome.new_instance_ids.push_back(id);
      cls_outcome.instances_added += 1;
    }
    outcome.instances_added += cls_outcome.instances_added;
    outcome.facts_added += cls_outcome.facts_added;
    outcome.slot_fills += cls_outcome.slot_fills;
    outcome.value_changes += cls_outcome.value_changes;
    outcome.classes.push_back(std::move(cls_outcome));
  }
  span.AddArg("instances_added",
              static_cast<long long>(outcome.instances_added));
  span.AddArg("facts_added", static_cast<long long>(outcome.facts_added));
  util::Metrics().GetCounter("ltee.kbupdate.instances_added")
      .Increment(static_cast<uint64_t>(outcome.instances_added));
  util::Metrics().GetCounter("ltee.kbupdate.facts_added")
      .Increment(static_cast<uint64_t>(outcome.facts_added));
  return outcome;
}

void SaveChangeSet(const ChangeSet& changes, std::ostream& out) {
  for (const ClassChange& change : changes.classes) {
    out << "G\t" << change.cls << "\n";
    for (const FactAdd& fill : change.fact_adds) {
      out << "S\t" << fill.instance << "\t" << fill.property << "\t"
          << EscapeField(SerializeValue(fill.value)) << "\n";
    }
    for (const ValueChange& vc : change.value_changes) {
      out << "V\t" << vc.instance << "\t" << vc.property << "\t"
          << EscapeField(SerializeValue(vc.value)) << "\n";
    }
    for (const EntityAdd& entity : change.entities) {
      out << "E\t" << entity.cls << "\t" << entity.cluster_id << "\t"
          << entity.labels.size();
      for (const auto& label : entity.labels) {
        out << "\t" << EscapeField(label);
      }
      out << "\n";
      for (const Fact& fact : entity.facts) {
        out << "X\t" << fact.property << "\t"
            << EscapeField(SerializeValue(fact.value)) << "\n";
      }
    }
  }
}

std::optional<ChangeSet> LoadChangeSet(std::istream& in) {
  ChangeSet changes;
  ClassChange* current = nullptr;
  EntityAdd* entity = nullptr;
  std::string line;
  size_t line_no = 0;
  auto fail = [&line_no](const char* what) -> std::optional<ChangeSet> {
    LTEE_LOG(kError) << "LoadChangeSet: line " << line_no << ": " << what;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = SplitFields(line);
    const std::string& tag = fields[0];
    if (tag == "G") {
      long long cls = 0;
      if (fields.size() != 2 || !ParseInt(fields[1], &cls)) {
        return fail("malformed G record");
      }
      changes.classes.push_back(ClassChange{});
      current = &changes.classes.back();
      current->cls = static_cast<ClassId>(cls);
      entity = nullptr;
    } else if (tag == "S" || tag == "V") {
      long long instance = 0;
      long long property = 0;
      if (current == nullptr || fields.size() != 4 ||
          !ParseInt(fields[1], &instance) || !ParseInt(fields[2], &property)) {
        return fail("malformed S/V record");
      }
      auto value = DeserializeValue(UnescapeField(fields[3]));
      if (!value.has_value()) return fail("bad value in S/V record");
      if (tag == "S") {
        current->fact_adds.push_back(
            FactAdd{static_cast<InstanceId>(instance),
                    static_cast<PropertyId>(property), *std::move(value)});
      } else {
        current->value_changes.push_back(
            ValueChange{static_cast<InstanceId>(instance),
                        static_cast<PropertyId>(property), *std::move(value)});
      }
    } else if (tag == "E") {
      long long cls = 0;
      long long cluster = 0;
      long long num_labels = 0;
      if (current == nullptr || fields.size() < 4 ||
          !ParseInt(fields[1], &cls) || !ParseInt(fields[2], &cluster) ||
          !ParseInt(fields[3], &num_labels) ||
          fields.size() != 4 + static_cast<size_t>(num_labels)) {
        return fail("malformed E record");
      }
      current->entities.push_back(EntityAdd{});
      entity = &current->entities.back();
      entity->cls = static_cast<ClassId>(cls);
      entity->cluster_id = static_cast<int>(cluster);
      for (size_t i = 4; i < fields.size(); ++i) {
        entity->labels.push_back(UnescapeField(fields[i]));
      }
    } else if (tag == "X") {
      long long property = 0;
      if (entity == nullptr || fields.size() != 3 ||
          !ParseInt(fields[1], &property)) {
        return fail("malformed X record");
      }
      auto value = DeserializeValue(UnescapeField(fields[2]));
      if (!value.has_value()) return fail("bad value in X record");
      entity->facts.push_back(
          Fact{static_cast<PropertyId>(property), *std::move(value)});
    } else {
      return fail("unknown record tag");
    }
  }
  return changes;
}

}  // namespace ltee::kb
