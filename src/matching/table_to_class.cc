#include "matching/table_to_class.h"

#include <algorithm>
#include <unordered_map>

#include "types/type_similarity.h"
#include "types/value_parser.h"
#include "util/similarity.h"

namespace ltee::matching {

namespace {

struct RowCandidate {
  kb::InstanceId instance;
  double label_similarity;
};

}  // namespace

TableToClassResult MatchTableToClass(
    const webtable::PreparedTable& table, int label_column,
    const kb::KnowledgeBase& kb, const index::LabelIndex& kb_index,
    const TableToClassOptions& options) {
  TableToClassResult result;
  result.row_instance.assign(table.num_rows, kb::kInvalidInstance);
  if (label_column < 0 || table.num_rows == 0) return result;
  const util::TokenDictionary& dict = kb_index.dict();

  // --- 1. Row label lookup: candidate instances per row. ----------------
  std::vector<std::vector<RowCandidate>> row_candidates(table.num_rows);
  for (size_t r = 0; r < table.num_rows; ++r) {
    const webtable::PreparedCell& label =
        table.cell(r, static_cast<size_t>(label_column));
    if (label.empty) continue;
    for (const auto& hit :
         kb_index.Search(label.tokens, options.candidates_per_row)) {
      const kb::Instance& inst = kb.instance(static_cast<int>(hit.doc));
      double best_sim = 0.0;
      for (const auto& inst_tokens : kb_index.LabelTokensOf(hit.doc)) {
        best_sim = std::max(best_sim, util::MongeElkanLevenshtein(
                                          label.tokens, inst_tokens, dict));
      }
      if (best_sim >= options.label_similarity_threshold) {
        row_candidates[r].push_back({inst.id, best_sim});
      }
    }
  }

  // --- 2. Candidate classes by row support. ------------------------------
  std::unordered_map<kb::ClassId, int> row_support;
  for (const auto& candidates : row_candidates) {
    std::unordered_map<kb::ClassId, bool> seen;
    for (const auto& cand : candidates) {
      seen[kb.instance(cand.instance).cls] = true;
    }
    for (const auto& [cls, unused] : seen) row_support[cls] += 1;
  }
  const int min_support = std::max(
      1, static_cast<int>(options.min_row_support *
                          static_cast<double>(table.num_rows)));

  // --- 3. Score candidate classes: row support + duplicate-based
  //        attribute matching. -------------------------------------------
  const types::TypeSimilarityOptions sim_options;
  double best_score = 0.0;
  kb::ClassId best_class = kb::kInvalidClass;
  std::vector<kb::InstanceId> best_rows;

  for (const auto& [cls, support] : row_support) {
    if (support < min_support) continue;

    // Per (column, property) matched-cell counts; per row the best
    // candidate instance by fact matches.
    std::unordered_map<int64_t, int> cell_matches;  // (col<<16|prop) -> count
    std::vector<kb::InstanceId> rows(table.num_rows, kb::kInvalidInstance);
    std::vector<int> row_fact_matches(table.num_rows, -1);

    for (size_t r = 0; r < table.num_rows; ++r) {
      for (const auto& cand : row_candidates[r]) {
        const kb::Instance& inst = kb.instance(cand.instance);
        if (inst.cls != cls) continue;
        int fact_matches = 0;
        for (size_t c = 0; c < table.num_columns; ++c) {
          if (static_cast<int>(c) == label_column) continue;
          const webtable::PreparedCell& cell = table.cell(r, c);
          if (cell.empty) continue;
          for (const auto& fact : inst.facts) {
            const kb::PropertySpec& prop = kb.property(fact.property);
            if (!types::DetectedTypeAdmitsProperty(table.column_types[c],
                                                   prop.type)) {
              continue;
            }
            const auto& value = cell.parsed_as(prop.type);
            if (!value) continue;
            if (types::ValuesEqual(*value, fact.value, sim_options)) {
              cell_matches[(static_cast<int64_t>(c) << 16) |
                           static_cast<int64_t>(fact.property)] += 1;
              ++fact_matches;
              break;  // one property match per (row, column, instance)
            }
          }
        }
        // Track the best instance for this row under this class.
        const bool better =
            fact_matches > row_fact_matches[r] ||
            (fact_matches == row_fact_matches[r] && rows[r] >= 0 &&
             inst.popularity > kb.instance(rows[r]).popularity);
        if (better) {
          row_fact_matches[r] = fact_matches;
          rows[r] = inst.id;
        }
      }
    }

    // Duplicate-based attribute matching: per column take the property
    // with the highest matched-cell count.
    std::unordered_map<int, int> best_per_column;
    for (const auto& [key, count] : cell_matches) {
      const int col = static_cast<int>(key >> 16);
      auto [it, inserted] = best_per_column.emplace(col, count);
      if (!inserted && count > it->second) it->second = count;
    }
    double attr_score = 0.0;
    for (const auto& [col, count] : best_per_column) attr_score += count;

    const double score = static_cast<double>(support) + attr_score;
    if (score > best_score) {
      best_score = score;
      best_class = cls;
      best_rows = rows;
    }
  }

  result.cls = best_class;
  result.score = best_score;
  if (best_class != kb::kInvalidClass) {
    result.row_instance = std::move(best_rows);
  }
  return result;
}

}  // namespace ltee::matching
