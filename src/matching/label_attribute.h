#ifndef LTEE_MATCHING_LABEL_ATTRIBUTE_H_
#define LTEE_MATCHING_LABEL_ATTRIBUTE_H_

#include <vector>

#include "types/data_type.h"
#include "webtable/web_table.h"

namespace ltee::matching {

/// Detects the syntactic type of every column of `table` (majority vote of
/// the regex-typed cells; Section 3.1).
std::vector<types::DetectedType> DetectColumnTypes(
    const webtable::WebTable& table);

/// Label attribute detection (Section 3.1): the column with data type text
/// and the highest number of unique values; ties break to the leftmost
/// column. Returns -1 when the table has no text column.
int DetectLabelColumn(const webtable::WebTable& table,
                      const std::vector<types::DetectedType>& column_types);

}  // namespace ltee::matching

#endif  // LTEE_MATCHING_LABEL_ATTRIBUTE_H_
