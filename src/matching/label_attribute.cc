#include "matching/label_attribute.h"

#include <string>
#include <unordered_set>

#include "types/value_parser.h"
#include "util/string_util.h"

namespace ltee::matching {

std::vector<types::DetectedType> DetectColumnTypes(
    const webtable::WebTable& table) {
  std::vector<types::DetectedType> out(table.num_columns(),
                                       types::DetectedType::kText);
  std::vector<std::string> cells;
  cells.reserve(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    cells.clear();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      cells.push_back(table.cell(r, c));
    }
    out[c] = types::DetectColumnType(cells);
  }
  return out;
}

int DetectLabelColumn(const webtable::WebTable& table,
                      const std::vector<types::DetectedType>& column_types) {
  int best = -1;
  size_t best_unique = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (column_types[c] != types::DetectedType::kText) continue;
    std::unordered_set<std::string> unique;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      std::string norm = util::NormalizeLabel(table.cell(r, c));
      if (!norm.empty()) unique.insert(std::move(norm));
    }
    // Strictly-greater keeps the leftmost column on ties.
    if (best < 0 || unique.size() > best_unique) {
      best = static_cast<int>(c);
      best_unique = unique.size();
    }
  }
  return best;
}

}  // namespace ltee::matching
