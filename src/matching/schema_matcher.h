#ifndef LTEE_MATCHING_SCHEMA_MATCHER_H_
#define LTEE_MATCHING_SCHEMA_MATCHER_H_

#include <array>
#include <unordered_map>
#include <vector>

#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "matching/attribute_matchers.h"
#include "matching/schema_mapping.h"
#include "matching/table_to_class.h"
#include "ml/genetic.h"
#include "util/random.h"
#include "webtable/prepared_corpus.h"
#include "webtable/web_table.h"

namespace ltee::matching {

/// Configuration of the schema matching component.
struct SchemaMatcherOptions {
  TableToClassOptions table_to_class;
  /// Threshold applied to properties without a learned threshold.
  double default_threshold = 0.45;
  /// GA settings for weight learning (kept small; 5-dimensional search).
  ml::GeneticOptions genetic = {.population_size = 32, .generations = 30};
};

/// Pipeline feedback consumed by the second iteration: the duplicate-based
/// matchers require row-to-instance correspondences (new detection), row
/// clusters (row clustering), and the preliminary mapping of iteration 1.
struct MatcherFeedback {
  const RowInstanceMap* row_instances = nullptr;
  const RowClusterMap* row_clusters = nullptr;
  const SchemaMapping* preliminary = nullptr;
};

/// Ground-truth attribute correspondence used for learning.
struct AttributeAnnotation {
  webtable::TableId table = -1;
  int column = -1;
  kb::PropertyId property = kb::kInvalidProperty;
};

/// The complete schema-matching component (Section 3.1): data-type
/// detection, label attribute detection, table-to-class matching, and
/// attribute-to-property matching with five matchers aggregated by
/// per-class learned weights and per-property learned thresholds.
class SchemaMatcher {
 public:
  /// `kb_index` must be a label index over KB instances (doc = instance id)
  /// and outlive this matcher.
  SchemaMatcher(const kb::KnowledgeBase& kb, const index::LabelIndex& kb_index,
                SchemaMatcherOptions options = {});

  /// Learns per-class matcher weights (genetic algorithm maximizing
  /// attribute-matching F1) and per-property decision thresholds from
  /// `annotations` over `learning_tables`.
  void Learn(const webtable::PreparedCorpus& prepared,
             const std::vector<webtable::TableId>& learning_tables,
             const std::vector<AttributeAnnotation>& annotations,
             const MatcherFeedback& feedback, util::Rng& rng);

  /// Matches every table of the prepared corpus. Pass an empty feedback on
  /// the first iteration; the duplicate-based matchers activate
  /// automatically when feedback is present. The prepared corpus must share
  /// the KB index's token dictionary.
  SchemaMapping Match(const webtable::PreparedCorpus& prepared,
                      const MatcherFeedback& feedback = {}) const;

  /// Matches a single table (the corpus is still needed to identify it).
  TableMapping MatchTable(const webtable::PreparedCorpus& prepared,
                          webtable::TableId table,
                          const MatcherFeedback& feedback = {}) const;

  /// Average learned weight per matcher across classes (reported in the
  /// paper's Section 3.1 discussion).
  std::array<double, kNumMatchers> AverageWeights() const;

  const kb::KnowledgeBase& knowledge_base() const { return *kb_; }

 private:
  struct Prepared {
    WtLabelStats wt_label;
    WtDuplicateIndex wt_duplicate;
    MatcherInputs inputs;
  };

  Prepared PrepareInputs(const webtable::PreparedCorpus& prepared,
                         const MatcherFeedback& feedback) const;
  TableMapping MatchTableImpl(const webtable::PreparedTable& table,
                              const MatcherInputs& inputs) const;
  double Aggregate(kb::ClassId cls,
                   const std::array<double, kNumMatchers>& scores) const;
  double ThresholdOf(kb::PropertyId property) const;

  const kb::KnowledgeBase* kb_;
  const index::LabelIndex* kb_index_;
  SchemaMatcherOptions options_;
  std::vector<PropertyValueProfile> value_profiles_;
  std::unordered_map<kb::ClassId, std::array<double, kNumMatchers>> weights_;
  std::unordered_map<kb::PropertyId, double> thresholds_;
};

}  // namespace ltee::matching

#endif  // LTEE_MATCHING_SCHEMA_MATCHER_H_
