#ifndef LTEE_MATCHING_PROPERTY_VALUE_PROFILE_H_
#define LTEE_MATCHING_PROPERTY_VALUE_PROFILE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "kb/knowledge_base.h"
#include "types/value.h"

namespace ltee::matching {

/// Summary of the value distribution of one KB property, precomputed once
/// and consulted by the KB-Overlap matcher to test whether a cell value
/// "generally fits" the property.
struct PropertyValueProfile {
  kb::PropertyId property = kb::kInvalidProperty;
  /// Normalized value keys for categorical types (text, nominal string,
  /// instance reference, nominal integer).
  std::unordered_set<std::string> keys;
  /// Observed numeric range for quantity properties / year range for dates.
  double min_value = 0.0;
  double max_value = 0.0;
  bool has_range = false;

  /// True when `v` plausibly belongs to the property's distribution.
  bool Fits(const types::Value& v) const;
};

/// Canonical comparison key of a value (normalized text for categorical
/// types, year for dates, rounded number for quantities).
std::string ValueKey(const types::Value& v);

/// Builds profiles for every property of the KB (indexed by property id).
std::vector<PropertyValueProfile> BuildPropertyValueProfiles(
    const kb::KnowledgeBase& kb);

}  // namespace ltee::matching

#endif  // LTEE_MATCHING_PROPERTY_VALUE_PROFILE_H_
