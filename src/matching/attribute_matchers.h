#ifndef LTEE_MATCHING_ATTRIBUTE_MATCHERS_H_
#define LTEE_MATCHING_ATTRIBUTE_MATCHERS_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "matching/property_value_profile.h"
#include "matching/schema_mapping.h"
#include "webtable/prepared_corpus.h"

namespace ltee::matching {

/// The five attribute-to-property matchers of Section 3.1. The first three
/// exploit the knowledge base; the last two exploit the web table corpus
/// via the preliminary mapping of the previous iteration.
enum class MatcherId {
  kKbOverlap = 0,
  kKbLabel = 1,
  kKbDuplicate = 2,
  kWtLabel = 3,
  kWtDuplicate = 4,
};
inline constexpr int kNumMatchers = 5;
const char* MatcherName(MatcherId id);

/// Exact comparison key for corpus-side duplicate matching (full date for
/// day-granular values, unlike the coarser ValueKey).
std::string ExactValueKey(const types::Value& v);

/// Statistics that power WT-Label: how often a normalized header label was
/// matched to each property in the preliminary mapping.
class WtLabelStats {
 public:
  /// Scans every matched column of `preliminary` over the prepared corpus
  /// (headers are read pre-normalized).
  static WtLabelStats Build(const webtable::PreparedCorpus& prepared,
                            const SchemaMapping& preliminary);

  /// P(property | header label), or -1 when the label was never seen.
  double Score(const std::string& header, kb::PropertyId property) const;

 private:
  struct LabelCounts {
    std::unordered_map<kb::PropertyId, int> per_property;
    int total = 0;
  };
  std::unordered_map<std::string, LabelCounts> counts_;
};

/// Index powering WT-Duplicate: per (row cluster, property), the multiset
/// of value keys seen in preliminarily-matched columns of the cluster's
/// rows.
class WtDuplicateIndex {
 public:
  static WtDuplicateIndex Build(const webtable::PreparedCorpus& prepared,
                                const SchemaMapping& preliminary,
                                const RowClusterMap& clusters,
                                const kb::KnowledgeBase& kb);

  /// Count of occurrences of `key` under (cluster, property).
  int Count(int cluster, kb::PropertyId property,
            const std::string& key) const;

 private:
  // key: (cluster id, property id) packed.
  std::unordered_map<int64_t, std::unordered_map<std::string, int>> index_;
};

/// Shared read-only inputs of the matcher bank. Feedback members are null
/// on the first iteration, which disables the duplicate-based matchers.
struct MatcherInputs {
  const kb::KnowledgeBase* kb = nullptr;
  /// Prepared corpus the matched tables belong to (typed cell parses,
  /// normalized headers); must be set.
  const webtable::PreparedCorpus* prepared = nullptr;
  const std::vector<PropertyValueProfile>* value_profiles = nullptr;
  const RowInstanceMap* row_instances = nullptr;   // for KB-Duplicate
  const RowClusterMap* row_clusters = nullptr;     // for WT-Duplicate
  const WtLabelStats* wt_label = nullptr;          // for WT-Label
  const WtDuplicateIndex* wt_duplicate = nullptr;  // for WT-Duplicate
  /// Preliminary mapping the WT indexes were built from (self-match guard).
  const SchemaMapping* preliminary = nullptr;
};

/// Runs matcher `id` for (table, column) against candidate `property`.
/// `table` must belong to `inputs.prepared`. Returns a score in [0, 1], or
/// -1 when the matcher is not applicable (no feedback available, no
/// comparable cells, ...).
double RunMatcher(MatcherId id, const MatcherInputs& inputs,
                  const webtable::PreparedTable& table, int column,
                  kb::PropertyId property);

/// Runs all five matchers; out[i] corresponds to MatcherId(i).
std::array<double, kNumMatchers> RunAllMatchers(
    const MatcherInputs& inputs, const webtable::PreparedTable& table,
    int column, kb::PropertyId property);

}  // namespace ltee::matching

#endif  // LTEE_MATCHING_ATTRIBUTE_MATCHERS_H_
