#include "matching/property_value_profile.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace ltee::matching {

namespace {
using types::DataType;
}  // namespace

std::string ValueKey(const types::Value& v) {
  switch (v.type) {
    case DataType::kText:
    case DataType::kNominalString:
    case DataType::kInstanceReference:
      return util::NormalizeLabel(v.text);
    case DataType::kDate:
      return std::to_string(v.date.year);
    case DataType::kQuantity:
      return std::to_string(static_cast<long long>(std::llround(v.number)));
    case DataType::kNominalInteger:
      return std::to_string(v.integer);
  }
  return {};
}

bool PropertyValueProfile::Fits(const types::Value& v) const {
  switch (v.type) {
    case DataType::kQuantity:
      return has_range && v.number >= min_value * 0.5 &&
             v.number <= max_value * 1.5;
    case DataType::kDate:
      return has_range && v.date.year >= min_value - 2 &&
             v.date.year <= max_value + 2;
    default:
      return keys.count(ValueKey(v)) > 0;
  }
}

std::vector<PropertyValueProfile> BuildPropertyValueProfiles(
    const kb::KnowledgeBase& kb) {
  std::vector<PropertyValueProfile> profiles(kb.num_properties());
  for (size_t p = 0; p < kb.num_properties(); ++p) {
    profiles[p].property = static_cast<kb::PropertyId>(p);
  }
  for (const auto& inst : kb.instances()) {
    for (const auto& fact : inst.facts) {
      PropertyValueProfile& prof = profiles[fact.property];
      const types::Value& v = fact.value;
      if (v.type == DataType::kQuantity || v.type == DataType::kDate) {
        const double x = v.type == DataType::kQuantity
                             ? v.number
                             : static_cast<double>(v.date.year);
        if (!prof.has_range) {
          prof.min_value = prof.max_value = x;
          prof.has_range = true;
        } else {
          prof.min_value = std::min(prof.min_value, x);
          prof.max_value = std::max(prof.max_value, x);
        }
        if (v.type == DataType::kDate) prof.keys.insert(ValueKey(v));
      } else {
        prof.keys.insert(ValueKey(v));
      }
    }
  }
  return profiles;
}

}  // namespace ltee::matching
