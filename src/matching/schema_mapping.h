#ifndef LTEE_MATCHING_SCHEMA_MAPPING_H_
#define LTEE_MATCHING_SCHEMA_MAPPING_H_

#include <map>
#include <vector>

#include "kb/knowledge_base.h"
#include "types/data_type.h"
#include "webtable/web_table.h"

namespace ltee::matching {

/// Match state of one attribute column.
struct ColumnMatch {
  types::DetectedType detected = types::DetectedType::kText;
  /// Matched KB property, or kInvalidProperty when unmatched.
  kb::PropertyId property = kb::kInvalidProperty;
  /// Aggregated matcher score of the winning property (0 when unmatched).
  double score = 0.0;

  /// Exact field equality (scores included) — the delta pipeline's mapping
  /// diff must treat any numeric drift as a change, since downstream
  /// stages consume the scores.
  bool operator==(const ColumnMatch&) const = default;
};

/// Schema-matching result for one table.
struct TableMapping {
  webtable::TableId table = -1;
  int label_column = -1;
  kb::ClassId cls = kb::kInvalidClass;
  double class_score = 0.0;
  std::vector<ColumnMatch> columns;
  /// Direct row-to-instance matches produced during table-to-class
  /// matching (duplicate-based; -1 where no instance matched). Used by the
  /// KBT fusion scorer and the Table 4 profiling.
  std::vector<kb::InstanceId> row_instance;

  bool operator==(const TableMapping&) const = default;
};

/// Schema-matching result for a corpus, indexed by table id.
struct SchemaMapping {
  std::vector<TableMapping> tables;

  const TableMapping& of(webtable::TableId id) const { return tables[id]; }
};

/// Row -> KB instance correspondences (output of new detection, fed back
/// into the second schema-matching iteration for KB-Duplicate).
using RowInstanceMap = std::map<webtable::RowRef, kb::InstanceId>;

/// Row -> cluster id map (output of row clustering, fed back for
/// WT-Duplicate).
using RowClusterMap = std::map<webtable::RowRef, int>;

}  // namespace ltee::matching

#endif  // LTEE_MATCHING_SCHEMA_MAPPING_H_
