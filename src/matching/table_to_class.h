#ifndef LTEE_MATCHING_TABLE_TO_CLASS_H_
#define LTEE_MATCHING_TABLE_TO_CLASS_H_

#include <vector>

#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "webtable/prepared_corpus.h"

namespace ltee::matching {

/// Options of the table-to-class matcher.
struct TableToClassOptions {
  /// Candidate instances retrieved per row label.
  size_t candidates_per_row = 8;
  /// Minimum Monge-Elkan label similarity for a retrieved instance to
  /// count as a row candidate.
  double label_similarity_threshold = 0.82;
  /// Minimum fraction of rows with a candidate for a class to be
  /// considered a candidate class.
  double min_row_support = 0.10;
};

/// Result: the chosen class, its aggregated score, and the per-row direct
/// instance matches of that class (duplicate-based verification).
struct TableToClassResult {
  kb::ClassId cls = kb::kInvalidClass;
  double score = 0.0;
  std::vector<kb::InstanceId> row_instance;
};

/// Table-to-class matching following Ritze et al. (Section 3.1): row labels
/// retrieve candidate instances from the KB label index; classes are scored
/// by row support plus duplicate-based attribute-to-property match counts;
/// the highest-scoring class wins. Reads tokens, typed parses and column
/// types from the prepared table. `kb_index` must map doc ids to KB
/// instance ids and share the prepared corpus's token dictionary.
TableToClassResult MatchTableToClass(
    const webtable::PreparedTable& table, int label_column,
    const kb::KnowledgeBase& kb, const index::LabelIndex& kb_index,
    const TableToClassOptions& options = {});

}  // namespace ltee::matching

#endif  // LTEE_MATCHING_TABLE_TO_CLASS_H_
