#include "matching/schema_matcher.h"

#include <algorithm>
#include <map>

#include "prov/ledger.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/trace.h"

namespace ltee::matching {

SchemaMatcher::SchemaMatcher(const kb::KnowledgeBase& kb,
                             const index::LabelIndex& kb_index,
                             SchemaMatcherOptions options)
    : kb_(&kb),
      kb_index_(&kb_index),
      options_(options),
      value_profiles_(BuildPropertyValueProfiles(kb)) {}

SchemaMatcher::Prepared SchemaMatcher::PrepareInputs(
    const webtable::PreparedCorpus& prepared,
    const MatcherFeedback& feedback) const {
  Prepared prep;
  prep.inputs.kb = kb_;
  prep.inputs.prepared = &prepared;
  prep.inputs.value_profiles = &value_profiles_;
  prep.inputs.row_instances = feedback.row_instances;
  prep.inputs.row_clusters = feedback.row_clusters;
  prep.inputs.preliminary = feedback.preliminary;
  if (feedback.preliminary != nullptr) {
    prep.wt_label = WtLabelStats::Build(prepared, *feedback.preliminary);
    prep.inputs.wt_label = &prep.wt_label;
    if (feedback.row_clusters != nullptr) {
      prep.wt_duplicate = WtDuplicateIndex::Build(
          prepared, *feedback.preliminary, *feedback.row_clusters, *kb_);
      prep.inputs.wt_duplicate = &prep.wt_duplicate;
    }
  }
  return prep;
}

double SchemaMatcher::Aggregate(
    kb::ClassId cls, const std::array<double, kNumMatchers>& scores) const {
  std::array<double, kNumMatchers> weights;
  auto it = weights_.find(cls);
  if (it != weights_.end()) {
    weights = it->second;
  } else {
    weights.fill(1.0);
  }
  double num = 0.0, den = 0.0;
  for (int i = 0; i < kNumMatchers; ++i) {
    if (scores[i] < 0.0) continue;
    num += weights[i] * scores[i];
    den += weights[i];
  }
  return den == 0.0 ? 0.0 : num / den;
}

double SchemaMatcher::ThresholdOf(kb::PropertyId property) const {
  auto it = thresholds_.find(property);
  return it == thresholds_.end() ? options_.default_threshold : it->second;
}

TableMapping SchemaMatcher::MatchTableImpl(const webtable::PreparedTable& table,
                                           const MatcherInputs& inputs) const {
  TableMapping mapping;
  mapping.table = table.id;
  const auto& column_types = table.column_types;
  mapping.columns.resize(table.num_columns);
  for (size_t c = 0; c < table.num_columns; ++c) {
    mapping.columns[c].detected = column_types[c];
  }
  mapping.label_column = table.label_column;
  if (mapping.label_column < 0) {
    mapping.row_instance.assign(table.num_rows, kb::kInvalidInstance);
    return mapping;
  }

  TableToClassResult ttc = MatchTableToClass(
      table, mapping.label_column, *kb_, *kb_index_, options_.table_to_class);
  mapping.cls = ttc.cls;
  mapping.class_score = ttc.score;
  mapping.row_instance = std::move(ttc.row_instance);
  if (mapping.cls == kb::kInvalidClass) return mapping;

  const auto& class_properties = kb_->cls(mapping.cls).properties;
  for (size_t c = 0; c < table.num_columns; ++c) {
    if (static_cast<int>(c) == mapping.label_column) continue;
    kb::PropertyId best_property = kb::kInvalidProperty;
    double best_score = 0.0;
    std::array<double, kNumMatchers> best_matcher_scores;
    best_matcher_scores.fill(-1.0);
    for (kb::PropertyId pid : class_properties) {
      if (!types::DetectedTypeAdmitsProperty(column_types[c],
                                             kb_->property(pid).type)) {
        continue;
      }
      const auto scores =
          RunAllMatchers(inputs, table, static_cast<int>(c), pid);
      const double agg = Aggregate(mapping.cls, scores);
      if (agg > best_score) {
        best_score = agg;
        best_property = pid;
        best_matcher_scores = scores;
      }
    }
    // Match only when the winner also clears its per-property threshold.
    const bool accepted = best_property != kb::kInvalidProperty &&
                          best_score >= ThresholdOf(best_property);
    if (accepted) {
      mapping.columns[c].property = best_property;
      mapping.columns[c].score = best_score;
    }
    if (best_property != kb::kInvalidProperty && prov::IsEnabled()) {
      prov::SchemaMapDecision decision;
      decision.cls = mapping.cls;
      decision.table = table.id;
      decision.column = static_cast<int>(c);
      decision.property = best_property;
      decision.property_name = kb_->property(best_property).name;
      decision.score = best_score;
      decision.threshold = ThresholdOf(best_property);
      decision.accepted = accepted;
      for (int m = 0; m < kNumMatchers; ++m) {
        if (best_matcher_scores[m] < 0.0) continue;  // not applicable
        decision.matcher_scores.emplace_back(
            MatcherName(static_cast<MatcherId>(m)), best_matcher_scores[m]);
      }
      prov::Record(std::move(decision));
    }
  }
  return mapping;
}

SchemaMapping SchemaMatcher::Match(const webtable::PreparedCorpus& prepared,
                                   const MatcherFeedback& feedback) const {
  const bool refined = feedback.preliminary != nullptr;
  util::trace::ScopedSpan span("matching.schema_match");
  span.AddArg("tables", prepared.size());
  span.AddArg("refined", refined ? "true" : "false");
  Prepared prep = PrepareInputs(prepared, feedback);
  SchemaMapping mapping;
  mapping.tables.resize(prepared.size());
  size_t tables_mapped = 0, columns_matched = 0;
  for (size_t t = 0; t < prepared.size(); ++t) {
    const auto& table = prepared.table(static_cast<webtable::TableId>(t));
    TableMapping& out = mapping.tables[table.id];
    out = MatchTableImpl(table, prep.inputs);
    if (out.cls != kb::kInvalidClass) ++tables_mapped;
    for (const ColumnMatch& match : out.columns) {
      if (match.property != kb::kInvalidProperty) ++columns_matched;
    }
  }
  span.AddArg("tables_mapped", tables_mapped);
  span.AddArg("columns_matched", columns_matched);
  util::Metrics()
      .GetCounter("ltee.matching.tables_mapped")
      .Increment(tables_mapped);
  util::Metrics()
      .GetCounter("ltee.matching.columns_matched")
      .Increment(columns_matched);
  return mapping;
}

TableMapping SchemaMatcher::MatchTable(const webtable::PreparedCorpus& prepared,
                                       webtable::TableId table,
                                       const MatcherFeedback& feedback) const {
  Prepared prep = PrepareInputs(prepared, feedback);
  return MatchTableImpl(prepared.table(table), prep.inputs);
}

namespace {

/// One candidate decision cached for learning: a column, a candidate
/// property, the matcher scores, and whether the annotation says this is
/// the correct property.
struct LearnCandidate {
  int column_key;  // dense id of (table, column)
  kb::PropertyId property;
  std::array<double, kNumMatchers> scores;
  bool correct;
};

/// Computes attribute-matching F1 for fixed weights and a single global
/// threshold over the cached candidates of one class.
double EvaluateWeights(const std::vector<LearnCandidate>& candidates,
                       const std::map<int, kb::PropertyId>& annotated,
                       int num_columns,
                       const std::array<double, kNumMatchers>& weights,
                       double threshold,
                       std::map<int, std::pair<kb::PropertyId, double>>*
                           decisions_out = nullptr) {
  // Per column: argmax aggregated score.
  std::map<int, std::pair<kb::PropertyId, double>> best;
  for (const auto& cand : candidates) {
    double num = 0.0, den = 0.0;
    for (int i = 0; i < kNumMatchers; ++i) {
      if (cand.scores[i] < 0.0) continue;
      num += weights[i] * cand.scores[i];
      den += weights[i];
    }
    const double agg = den == 0.0 ? 0.0 : num / den;
    auto [it, inserted] = best.emplace(
        cand.column_key, std::make_pair(cand.property, agg));
    if (!inserted && agg > it->second.second) {
      it->second = {cand.property, agg};
    }
  }
  if (decisions_out != nullptr) *decisions_out = best;

  int tp = 0, fp = 0, fn = 0;
  for (const auto& [col, decision] : best) {
    const auto ann = annotated.find(col);
    const bool predicted = decision.second >= threshold;
    if (predicted) {
      if (ann != annotated.end() && ann->second == decision.first) {
        ++tp;
      } else {
        ++fp;
      }
    }
  }
  for (const auto& [col, prop] : annotated) {
    auto it = best.find(col);
    if (it == best.end() || it->second.second < threshold ||
        it->second.first != prop) {
      ++fn;
    }
  }
  (void)num_columns;
  const double p = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  const double r = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  return util::F1(p, r);
}

}  // namespace

void SchemaMatcher::Learn(const webtable::PreparedCorpus& prepared,
                          const std::vector<webtable::TableId>& learning_tables,
                          const std::vector<AttributeAnnotation>& annotations,
                          const MatcherFeedback& feedback, util::Rng& rng) {
  Prepared prep = PrepareInputs(prepared, feedback);

  std::map<std::pair<webtable::TableId, int>, kb::PropertyId> annotation_map;
  for (const auto& a : annotations) {
    annotation_map[{a.table, a.column}] = a.property;
  }

  // Cache candidates per class.
  std::unordered_map<kb::ClassId, std::vector<LearnCandidate>> per_class;
  std::unordered_map<kb::ClassId, std::map<int, kb::PropertyId>>
      per_class_annotated;
  std::unordered_map<kb::ClassId, int> per_class_columns;
  int next_column_key = 0;

  for (webtable::TableId tid : learning_tables) {
    const webtable::PreparedTable& table = prepared.table(tid);
    const auto& column_types = table.column_types;
    const int label_column = table.label_column;
    if (label_column < 0) continue;
    TableToClassResult ttc = MatchTableToClass(table, label_column, *kb_,
                                               *kb_index_,
                                               options_.table_to_class);
    if (ttc.cls == kb::kInvalidClass) continue;

    auto& candidates = per_class[ttc.cls];
    auto& annotated = per_class_annotated[ttc.cls];
    for (size_t c = 0; c < table.num_columns; ++c) {
      if (static_cast<int>(c) == label_column) continue;
      const int column_key = next_column_key++;
      per_class_columns[ttc.cls] += 1;
      auto ann = annotation_map.find({tid, static_cast<int>(c)});
      if (ann != annotation_map.end()) annotated[column_key] = ann->second;
      for (kb::PropertyId pid : kb_->cls(ttc.cls).properties) {
        if (!types::DetectedTypeAdmitsProperty(column_types[c],
                                               kb_->property(pid).type)) {
          continue;
        }
        LearnCandidate cand;
        cand.column_key = column_key;
        cand.property = pid;
        cand.scores = RunAllMatchers(prep.inputs, table,
                                     static_cast<int>(c), pid);
        cand.correct = ann != annotation_map.end() && ann->second == pid;
        candidates.push_back(std::move(cand));
      }
    }
  }

  // Learn weights per class via GA (genome: 5 weights + global threshold),
  // then per-property thresholds by sweep under the learned weights.
  for (auto& [cls, candidates] : per_class) {
    const auto& annotated = per_class_annotated[cls];
    if (annotated.empty()) continue;
    auto fitness = [&](const std::vector<double>& genome) {
      std::array<double, kNumMatchers> w;
      for (int i = 0; i < kNumMatchers; ++i) w[i] = genome[i];
      return EvaluateWeights(candidates, annotated, per_class_columns[cls], w,
                             genome[kNumMatchers]);
    };
    auto genome =
        ml::GeneticMaximize(kNumMatchers + 1, fitness, rng, options_.genetic);
    std::array<double, kNumMatchers> weights;
    for (int i = 0; i < kNumMatchers; ++i) weights[i] = genome[i];
    weights_[cls] = weights;
    const double global_threshold = genome[kNumMatchers];

    // Decisions under the final weights (threshold-free argmax).
    std::map<int, std::pair<kb::PropertyId, double>> decisions;
    EvaluateWeights(candidates, annotated, per_class_columns[cls], weights,
                    global_threshold, &decisions);

    // Per-property threshold sweep.
    for (kb::PropertyId pid : kb_->cls(cls).properties) {
      std::vector<double> scores;
      for (const auto& [col, decision] : decisions) {
        if (decision.first == pid) scores.push_back(decision.second);
      }
      if (scores.empty()) {
        thresholds_[pid] = global_threshold;
        continue;
      }
      std::sort(scores.begin(), scores.end());
      double best_f1 = -1.0, best_threshold = global_threshold;
      std::vector<double> trials = scores;
      trials.push_back(global_threshold);
      for (double t : trials) {
        int tp = 0, fp = 0, fn = 0;
        for (const auto& [col, decision] : decisions) {
          auto ann = annotated.find(col);
          const bool is_ann = ann != annotated.end() && ann->second == pid;
          const bool predicted =
              decision.first == pid && decision.second >= t;
          if (predicted && is_ann) ++tp;
          else if (predicted && !is_ann) ++fp;
          else if (!predicted && is_ann) ++fn;
        }
        const double p =
            tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
        const double r =
            tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
        const double f1 = util::F1(p, r);
        if (f1 > best_f1) {
          best_f1 = f1;
          best_threshold = t;
        }
      }
      thresholds_[pid] = best_threshold;
    }
  }
}

std::array<double, kNumMatchers> SchemaMatcher::AverageWeights() const {
  std::array<double, kNumMatchers> out;
  out.fill(0.0);
  if (weights_.empty()) return out;
  for (const auto& [cls, weights] : weights_) {
    double sum = 0.0;
    for (double w : weights) sum += w;
    if (sum == 0.0) continue;
    for (int i = 0; i < kNumMatchers; ++i) out[i] += weights[i] / sum;
  }
  for (auto& w : out) w /= static_cast<double>(weights_.size());
  return out;
}

}  // namespace ltee::matching
