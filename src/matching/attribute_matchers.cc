#include "matching/attribute_matchers.h"

#include <cmath>
#include <string>

#include "types/type_similarity.h"
#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/similarity.h"
#include "util/string_util.h"

namespace ltee::matching {

namespace {

using types::DataType;

int64_t PackClusterProperty(int cluster, kb::PropertyId property) {
  return (static_cast<int64_t>(cluster) << 16) | static_cast<int64_t>(property);
}

}  // namespace

const char* MatcherName(MatcherId id) {
  switch (id) {
    case MatcherId::kKbOverlap: return "KB-Overlap";
    case MatcherId::kKbLabel: return "KB-Label";
    case MatcherId::kKbDuplicate: return "KB-Duplicate";
    case MatcherId::kWtLabel: return "WT-Label";
    case MatcherId::kWtDuplicate: return "WT-Duplicate";
  }
  return "?";
}

std::string ExactValueKey(const types::Value& v) {
  if (v.type == DataType::kDate &&
      v.date.granularity == types::DateGranularity::kDay) {
    return std::to_string(v.date.year) + "|" + std::to_string(v.date.month) +
           "|" + std::to_string(v.date.day);
  }
  return ValueKey(v);
}

WtLabelStats WtLabelStats::Build(const webtable::PreparedCorpus& prepared,
                                 const SchemaMapping& preliminary) {
  WtLabelStats stats;
  for (const auto& mapping : preliminary.tables) {
    if (mapping.table < 0) continue;
    const webtable::PreparedTable& table = prepared.table(mapping.table);
    for (size_t c = 0; c < mapping.columns.size(); ++c) {
      const ColumnMatch& match = mapping.columns[c];
      if (match.property == kb::kInvalidProperty) continue;
      const std::string& header = table.normalized_headers[c];
      if (header.empty()) continue;
      auto& entry = stats.counts_[header];
      entry.per_property[match.property] += 1;
      entry.total += 1;
    }
  }
  return stats;
}

double WtLabelStats::Score(const std::string& header,
                           kb::PropertyId property) const {
  auto it = counts_.find(util::NormalizeLabel(header));
  if (it == counts_.end() || it->second.total == 0) return -1.0;
  auto pit = it->second.per_property.find(property);
  const int count = pit == it->second.per_property.end() ? 0 : pit->second;
  return static_cast<double>(count) / static_cast<double>(it->second.total);
}

WtDuplicateIndex WtDuplicateIndex::Build(
    const webtable::PreparedCorpus& prepared, const SchemaMapping& preliminary,
    const RowClusterMap& clusters, const kb::KnowledgeBase& kb) {
  WtDuplicateIndex index;
  for (const auto& mapping : preliminary.tables) {
    if (mapping.table < 0) continue;
    const webtable::PreparedTable& table = prepared.table(mapping.table);
    for (size_t c = 0; c < mapping.columns.size(); ++c) {
      const ColumnMatch& match = mapping.columns[c];
      if (match.property == kb::kInvalidProperty) continue;
      const DataType type = kb.property(match.property).type;
      for (size_t r = 0; r < table.num_rows; ++r) {
        auto cit = clusters.find(
            {mapping.table, static_cast<int32_t>(r)});
        if (cit == clusters.end()) continue;
        const auto& value = table.cell(r, c).parsed_as(type);
        if (!value) continue;
        index.index_[PackClusterProperty(cit->second, match.property)]
                    [ExactValueKey(*value)] += 1;
      }
    }
  }
  return index;
}

int WtDuplicateIndex::Count(int cluster, kb::PropertyId property,
                            const std::string& key) const {
  auto it = index_.find(PackClusterProperty(cluster, property));
  if (it == index_.end()) return 0;
  auto kit = it->second.find(key);
  return kit == it->second.end() ? 0 : kit->second;
}

namespace {

double KbOverlapScore(const MatcherInputs& in,
                      const webtable::PreparedTable& table, int column,
                      kb::PropertyId property) {
  const DataType type = in.kb->property(property).type;
  const PropertyValueProfile& profile = (*in.value_profiles)[property];
  int non_empty = 0, fits = 0;
  for (size_t r = 0; r < table.num_rows; ++r) {
    const webtable::PreparedCell& cell =
        table.cell(r, static_cast<size_t>(column));
    if (cell.empty) continue;
    ++non_empty;
    const auto& value = cell.parsed_as(type);
    if (value && profile.Fits(*value)) ++fits;
  }
  if (non_empty == 0) return -1.0;
  return static_cast<double>(fits) / static_cast<double>(non_empty);
}

double KbLabelScore(const MatcherInputs& in,
                    const webtable::PreparedTable& table, int column,
                    kb::PropertyId property) {
  // Property labels are compared as raw strings (they live outside the
  // table dictionary), so read the raw header of the table.
  const std::string& header =
      in.prepared->corpus().table(table.id).headers[column];
  if (util::Trim(header).empty()) return -1.0;
  double best = 0.0;
  for (const auto& label : in.kb->property(property).labels) {
    best = std::max(best, util::MongeElkanLevenshtein(header, label));
  }
  return best;
}

double KbDuplicateScore(const MatcherInputs& in,
                        const webtable::PreparedTable& table, int column,
                        kb::PropertyId property) {
  if (in.row_instances == nullptr) return -1.0;
  const DataType type = in.kb->property(property).type;
  const types::TypeSimilarityOptions sim_options;
  int compared = 0, equal = 0;
  for (size_t r = 0; r < table.num_rows; ++r) {
    auto it = in.row_instances->find({table.id, static_cast<int32_t>(r)});
    if (it == in.row_instances->end()) continue;
    const types::Value* fact = in.kb->FactOf(it->second, property);
    if (fact == nullptr) continue;
    const webtable::PreparedCell& cell =
        table.cell(r, static_cast<size_t>(column));
    if (cell.empty) continue;
    const auto& value = cell.parsed_as(type);
    ++compared;
    if (value && types::ValuesEqual(*value, *fact, sim_options)) ++equal;
  }
  if (compared == 0) return -1.0;
  return static_cast<double>(equal) / static_cast<double>(compared);
}

double WtLabelScore(const MatcherInputs& in,
                    const webtable::PreparedTable& table, int column,
                    kb::PropertyId property) {
  if (in.wt_label == nullptr) return -1.0;
  return in.wt_label->Score(table.normalized_headers[column], property);
}

/// Whether this very column fed the WT-Duplicate index under `property`
/// (it was matched to it in the preliminary mapping); in that case every
/// cell of the column indexed itself once.
bool SelfIndexed(const MatcherInputs& in, const webtable::PreparedTable& table,
                 int column, kb::PropertyId property) {
  if (in.preliminary == nullptr ||
      table.id >= static_cast<int>(in.preliminary->tables.size())) {
    return false;
  }
  const TableMapping& mapping = in.preliminary->tables[table.id];
  return column < static_cast<int>(mapping.columns.size()) &&
         mapping.columns[column].property == property;
}

double WtDuplicateScore(const MatcherInputs& in,
                        const webtable::PreparedTable& table, int column,
                        kb::PropertyId property) {
  if (in.wt_duplicate == nullptr || in.row_clusters == nullptr) return -1.0;
  const DataType type = in.kb->property(property).type;
  int considered = 0, supported = 0;
  for (size_t r = 0; r < table.num_rows; ++r) {
    auto cit = in.row_clusters->find({table.id, static_cast<int32_t>(r)});
    if (cit == in.row_clusters->end()) continue;
    const auto& value =
        table.cell(r, static_cast<size_t>(column)).parsed_as(type);
    if (!value) continue;
    ++considered;
    // The cell itself may be indexed (when this column was matched in the
    // preliminary mapping); require a second occurrence in that case is
    // approximated by requiring count >= 2 whenever count includes self.
    const int count =
        in.wt_duplicate->Count(cit->second, property, ExactValueKey(*value));
    if (count >= 2 || (count == 1 && !SelfIndexed(in, table, column, property))) {
      ++supported;
    }
  }
  if (considered == 0) return -1.0;
  return static_cast<double>(supported) / static_cast<double>(considered);
}

}  // namespace

double RunMatcher(MatcherId id, const MatcherInputs& inputs,
                  const webtable::PreparedTable& table, int column,
                  kb::PropertyId property) {
  switch (id) {
    case MatcherId::kKbOverlap:
      return KbOverlapScore(inputs, table, column, property);
    case MatcherId::kKbLabel:
      return KbLabelScore(inputs, table, column, property);
    case MatcherId::kKbDuplicate:
      return KbDuplicateScore(inputs, table, column, property);
    case MatcherId::kWtLabel:
      return WtLabelScore(inputs, table, column, property);
    case MatcherId::kWtDuplicate:
      return WtDuplicateScore(inputs, table, column, property);
  }
  return -1.0;
}

namespace {

/// Per-matcher run/applicability counters
/// (`ltee.matching.matcher.<name>.{runs,applicable}`), registered once.
/// A matcher is "applicable" when it produced a score (>= 0) for the
/// candidate — the per-matcher accounting behind the Table 6 iteration
/// effect (WT-* matchers only apply from iteration 2 on).
struct MatcherCounters {
  std::array<util::Counter*, kNumMatchers> runs;
  std::array<util::Counter*, kNumMatchers> applicable;
  MatcherCounters() {
    for (int i = 0; i < kNumMatchers; ++i) {
      const std::string base =
          std::string("ltee.matching.matcher.") +
          util::SanitizeMetricSegment(MatcherName(static_cast<MatcherId>(i)));
      runs[i] = &util::Metrics().GetCounter(base + ".runs");
      applicable[i] = &util::Metrics().GetCounter(base + ".applicable");
    }
  }
};

MatcherCounters& GetMatcherCounters() {
  static MatcherCounters* counters = new MatcherCounters();
  return *counters;
}

}  // namespace

std::array<double, kNumMatchers> RunAllMatchers(
    const MatcherInputs& inputs, const webtable::PreparedTable& table,
    int column, kb::PropertyId property) {
  MatcherCounters& counters = GetMatcherCounters();
  std::array<double, kNumMatchers> out;
  for (int i = 0; i < kNumMatchers; ++i) {
    out[i] = RunMatcher(static_cast<MatcherId>(i), inputs, table, column,
                        property);
    counters.runs[i]->Increment();
    if (out[i] >= 0.0) counters.applicable[i]->Increment();
  }
  return out;
}

}  // namespace ltee::matching
