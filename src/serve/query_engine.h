#ifndef LTEE_SERVE_QUERY_ENGINE_H_
#define LTEE_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/result_cache.h"
#include "serve/snapshot.h"
#include "util/metrics.h"

namespace ltee::serve {

/// One rendered query outcome: an HTTP-ish status plus a JSON body.
/// Every body carries "snapshot_version" so callers (and the concurrency
/// test) can tie a response to the snapshot that produced it.
struct QueryResult {
  int status = 200;
  std::string body;
};

struct QueryEngineOptions {
  /// Result-cache geometry. Total capacity = shards * per-shard.
  size_t cache_shards = 8;
  size_t cache_capacity_per_shard = 256;
  /// Hard ceiling on `k` for search and class-instance listings.
  size_t max_results = 256;
};

/// The read path of the serving layer: executes entity / search / class
/// queries against the currently published Snapshot and renders JSON.
///
/// Snapshot swap is RCU-style: Publish atomically stores a new
/// shared_ptr<const Snapshot>; every query begins by loading the pointer
/// once and uses that snapshot for its whole execution, so a concurrent
/// publish never tears a response — readers either see the old version
/// or the new one, never a mix. No reader locks are taken; the old
/// snapshot is freed when its last in-flight reader drops the reference.
///
/// Results are cached in a sharded LRU keyed by
/// `<endpoint>|<snapshot version>|<params>`; embedding the version makes
/// every cached entry of a replaced snapshot unreachable immediately.
/// Cache traffic is exported as `ltee.serve.cache.{hits,misses,evictions}`
/// counters and the published version as the `ltee.serve.snapshot.version`
/// gauge, all visible on the /metrics Prometheus endpoint and the /stats
/// rollup.
class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Atomically replaces the served snapshot. Thread-safe against
  /// concurrent queries and other publishers.
  void Publish(std::shared_ptr<const Snapshot> snapshot);

  /// The currently published snapshot (nullptr before the first
  /// Publish).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// `GET /kb/entity?id=` — full entity JSON (labels, facts with
  /// property names, class). 404 on unknown id, 503 before any publish.
  QueryResult EntityById(int64_t id);

  /// `GET /kb/entity?label=` — entities whose normalized label matches
  /// exactly. 404 when none do.
  QueryResult EntityByLabel(const std::string& label);

  /// `GET /kb/search?q=&k=` — ranked label search (top `k`, capped at
  /// options().max_results) with scores and labels.
  QueryResult Search(const std::string& query, size_t k);

  /// `GET /kb/classes` — all classes with instance/fact counts.
  QueryResult Classes();

  /// `GET /kb/classes?name=&limit=` — instances of one class.
  QueryResult ClassInstances(const std::string& name, size_t limit);

  /// `GET /kb/snapshot` — version, content hash, corpus-level counts.
  QueryResult SnapshotInfo();

  const QueryEngineOptions& options() const { return options_; }

  /// The result cache, for eviction statistics: tests reconcile
  /// misses == cache().size() + cache().evictions() (every miss inserts,
  /// every insert beyond capacity evicts).
  const ShardedLruCache<QueryResult>& cache() const { return cache_; }

 private:
  /// Runs `render(snapshot)` through the result cache under `key`.
  template <typename Render>
  QueryResult Cached(const std::shared_ptr<const Snapshot>& snap,
                     const std::string& key, Render render);

  QueryEngineOptions options_;
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_{nullptr};
  ShardedLruCache<QueryResult> cache_;
  util::Counter& cache_hits_;
  util::Counter& cache_misses_;
  util::Counter& queries_total_;
  util::Gauge& version_gauge_;
};

}  // namespace ltee::serve

#endif  // LTEE_SERVE_QUERY_ENGINE_H_
