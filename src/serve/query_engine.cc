#include "serve/query_engine.h"

#include <algorithm>

#include "types/data_type.h"
#include "util/json.h"

namespace ltee::serve {

namespace {

void AppendVersion(std::string* out, const Snapshot& snap) {
  out->append("\"snapshot_version\":");
  util::AppendJsonNumber(out, static_cast<double>(snap.version()));
}

QueryResult Error(int status, const Snapshot* snap, std::string message) {
  QueryResult result;
  result.status = status;
  result.body = "{\"error\":" + util::JsonQuote(message);
  if (snap != nullptr) {
    result.body.append(",");
    AppendVersion(&result.body, *snap);
  }
  result.body.append("}");
  return result;
}

void AppendFact(std::string* out, const Snapshot& snap,
                const SnapshotFact& fact) {
  out->append("{\"property\":");
  const SnapshotProperty* prop = snap.property(fact.property);
  out->append(util::JsonQuote(prop != nullptr ? prop->name : "?"));
  out->append(",\"type\":");
  out->append(util::JsonQuote(types::DataTypeName(fact.value.type)));
  out->append(",\"value\":");
  switch (fact.value.type) {
    case types::DataType::kQuantity:
      util::AppendJsonNumber(out, fact.value.number);
      break;
    case types::DataType::kNominalInteger:
      util::AppendJsonNumber(out, static_cast<double>(fact.value.integer));
      break;
    default:
      out->append(util::JsonQuote(fact.value.ToString()));
      break;
  }
  out->append("}");
}

void AppendEntity(std::string* out, const Snapshot& snap,
                  const SnapshotEntity& entity) {
  out->append("{\"id\":");
  util::AppendJsonNumber(out, entity.id);
  out->append(",\"class\":");
  const auto& classes = snap.classes();
  out->append(util::JsonQuote(
      entity.cls >= 0 && entity.cls < static_cast<kb::ClassId>(classes.size())
          ? classes[entity.cls].name
          : "?"));
  out->append(",\"popularity\":");
  util::AppendJsonNumber(out, entity.popularity);
  out->append(",\"labels\":[");
  for (size_t i = 0; i < entity.labels.size(); ++i) {
    if (i > 0) out->append(",");
    out->append(util::JsonQuote(entity.labels[i]));
  }
  out->append("],\"facts\":[");
  for (size_t i = 0; i < entity.facts.size(); ++i) {
    if (i > 0) out->append(",");
    AppendFact(out, snap, entity.facts[i]);
  }
  out->append("]}");
}

}  // namespace

QueryEngine::QueryEngine(QueryEngineOptions options)
    : options_(options),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      cache_hits_(util::Metrics().GetCounter("ltee.serve.cache.hits")),
      cache_misses_(util::Metrics().GetCounter("ltee.serve.cache.misses")),
      queries_total_(util::Metrics().GetCounter("ltee.serve.queries")),
      version_gauge_(
          util::Metrics().GetGauge("ltee.serve.snapshot.version")) {
  cache_.SetEvictionCounter(
      &util::Metrics().GetCounter("ltee.serve.cache.evictions"));
}

void QueryEngine::Publish(std::shared_ptr<const Snapshot> snapshot) {
  if (snapshot != nullptr) {
    version_gauge_.Set(static_cast<double>(snapshot->version()));
  }
  snapshot_.store(std::move(snapshot), std::memory_order_release);
}

std::shared_ptr<const Snapshot> QueryEngine::snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

template <typename Render>
QueryResult QueryEngine::Cached(const std::shared_ptr<const Snapshot>& snap,
                                const std::string& key, Render render) {
  queries_total_.Increment();
  QueryResult result;
  if (cache_.Get(key, &result)) {
    cache_hits_.Increment();
    return result;
  }
  cache_misses_.Increment();
  result = render(*snap);
  cache_.Put(key, result);
  return result;
}

QueryResult QueryEngine::EntityById(int64_t id) {
  auto snap = snapshot();
  if (snap == nullptr) return Error(503, nullptr, "no snapshot published");
  const std::string key =
      "entity|" + std::to_string(snap->version()) + "|" + std::to_string(id);
  return Cached(snap, key, [id](const Snapshot& s) {
    const SnapshotEntity* entity =
        (id < 0 || id > static_cast<int64_t>(s.num_entities()))
            ? nullptr
            : s.entity(static_cast<kb::InstanceId>(id));
    if (entity == nullptr) {
      return Error(404, &s, "no entity with id " + std::to_string(id));
    }
    QueryResult result;
    result.body.append("{");
    AppendVersion(&result.body, s);
    result.body.append(",\"entity\":");
    AppendEntity(&result.body, s, *entity);
    result.body.append("}");
    return result;
  });
}

QueryResult QueryEngine::EntityByLabel(const std::string& label) {
  auto snap = snapshot();
  if (snap == nullptr) return Error(503, nullptr, "no snapshot published");
  const std::string key =
      "entity_label|" + std::to_string(snap->version()) + "|" + label;
  return Cached(snap, key, [&label](const Snapshot& s) {
    const std::vector<kb::InstanceId> ids = s.EntitiesByLabel(label);
    if (ids.empty()) return Error(404, &s, "no entity labelled " + label);
    QueryResult result;
    result.body.append("{");
    AppendVersion(&result.body, s);
    result.body.append(",\"entities\":[");
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) result.body.append(",");
      AppendEntity(&result.body, s, *s.entity(ids[i]));
    }
    result.body.append("]}");
    return result;
  });
}

QueryResult QueryEngine::Search(const std::string& query, size_t k) {
  auto snap = snapshot();
  if (snap == nullptr) return Error(503, nullptr, "no snapshot published");
  k = std::clamp<size_t>(k, 1, options_.max_results);
  const std::string key = "search|" + std::to_string(snap->version()) + "|" +
                          std::to_string(k) + "|" + query;
  return Cached(snap, key, [&query, k](const Snapshot& s) {
    const auto hits = s.Search(query, k);
    QueryResult result;
    result.body.append("{");
    AppendVersion(&result.body, s);
    result.body.append(",\"query\":");
    result.body.append(util::JsonQuote(query));
    result.body.append(",\"hits\":[");
    for (size_t i = 0; i < hits.size(); ++i) {
      if (i > 0) result.body.append(",");
      const SnapshotEntity* entity = s.entity(hits[i].id);
      result.body.append("{\"id\":");
      util::AppendJsonNumber(&result.body, hits[i].id);
      result.body.append(",\"score\":");
      util::AppendJsonNumber(&result.body, hits[i].score);
      result.body.append(",\"label\":");
      result.body.append(util::JsonQuote(
          entity != nullptr && !entity->labels.empty() ? entity->labels[0]
                                                       : ""));
      result.body.append("}");
    }
    result.body.append("]}");
    return result;
  });
}

QueryResult QueryEngine::Classes() {
  auto snap = snapshot();
  if (snap == nullptr) return Error(503, nullptr, "no snapshot published");
  const std::string key = "classes|" + std::to_string(snap->version());
  return Cached(snap, key, [](const Snapshot& s) {
    QueryResult result;
    result.body.append("{");
    AppendVersion(&result.body, s);
    result.body.append(",\"classes\":[");
    const auto& classes = s.classes();
    for (size_t i = 0; i < classes.size(); ++i) {
      if (i > 0) result.body.append(",");
      result.body.append("{\"id\":");
      util::AppendJsonNumber(&result.body, classes[i].id);
      result.body.append(",\"name\":");
      result.body.append(util::JsonQuote(classes[i].name));
      result.body.append(",\"parent\":");
      result.body.append(
          classes[i].parent >= 0
              ? util::JsonQuote(classes[classes[i].parent].name)
              : "null");
      result.body.append(",\"instances\":");
      util::AppendJsonNumber(&result.body,
                             static_cast<double>(classes[i].num_instances));
      result.body.append(",\"facts\":");
      util::AppendJsonNumber(&result.body,
                             static_cast<double>(classes[i].num_facts));
      result.body.append("}");
    }
    result.body.append("]}");
    return result;
  });
}

QueryResult QueryEngine::ClassInstances(const std::string& name,
                                        size_t limit) {
  auto snap = snapshot();
  if (snap == nullptr) return Error(503, nullptr, "no snapshot published");
  limit = std::clamp<size_t>(limit, 1, options_.max_results);
  const std::string key = "class|" + std::to_string(snap->version()) + "|" +
                          std::to_string(limit) + "|" + name;
  return Cached(snap, key, [&name, limit](const Snapshot& s) {
    const SnapshotClassInfo* info = s.FindClass(name);
    if (info == nullptr) return Error(404, &s, "no class named " + name);
    const auto& ids = s.InstancesOfClass(info->id);
    QueryResult result;
    result.body.append("{");
    AppendVersion(&result.body, s);
    result.body.append(",\"class\":");
    result.body.append(util::JsonQuote(info->name));
    result.body.append(",\"total\":");
    util::AppendJsonNumber(&result.body, static_cast<double>(ids.size()));
    result.body.append(",\"instances\":[");
    const size_t n = std::min(limit, ids.size());
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) result.body.append(",");
      const SnapshotEntity* entity = s.entity(ids[i]);
      result.body.append("{\"id\":");
      util::AppendJsonNumber(&result.body, ids[i]);
      result.body.append(",\"label\":");
      result.body.append(util::JsonQuote(
          entity != nullptr && !entity->labels.empty() ? entity->labels[0]
                                                       : ""));
      result.body.append("}");
    }
    result.body.append("]}");
    return result;
  });
}

QueryResult QueryEngine::SnapshotInfo() {
  auto snap = snapshot();
  if (snap == nullptr) return Error(503, nullptr, "no snapshot published");
  // Deliberately uncached: the body is tiny and the concurrency test uses
  // it to observe the swap point directly.
  queries_total_.Increment();
  QueryResult result;
  result.body.append("{");
  AppendVersion(&result.body, *snap);
  result.body.append(",\"content_hash\":");
  result.body.append(util::JsonQuote(std::to_string(snap->content_hash())));
  result.body.append(",\"entities\":");
  util::AppendJsonNumber(&result.body,
                         static_cast<double>(snap->num_entities()));
  result.body.append(",\"classes\":");
  util::AppendJsonNumber(&result.body,
                         static_cast<double>(snap->num_classes()));
  result.body.append(",\"facts\":");
  util::AppendJsonNumber(&result.body, static_cast<double>(snap->num_facts()));
  result.body.append(",\"shards\":");
  util::AppendJsonNumber(&result.body,
                         static_cast<double>(snap->num_shards()));
  result.body.append("}");
  return result;
}

}  // namespace ltee::serve
