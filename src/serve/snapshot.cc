#include "serve/snapshot.h"

#include <algorithm>
#include <map>

#include "kb/serialization.h"
#include "util/string_util.h"

namespace ltee::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashString(uint64_t* h, const std::string& s) {
  const uint64_t n = s.size();
  HashBytes(h, &n, sizeof(n));
  HashBytes(h, s.data(), s.size());
}

template <typename T>
void HashPod(uint64_t* h, T v) {
  HashBytes(h, &v, sizeof(v));
}

}  // namespace

std::shared_ptr<const Snapshot> Snapshot::Build(const kb::KnowledgeBase& kb,
                                                const SnapshotOptions& options) {
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->version_ = options.version;
  uint64_t hash = kFnvOffset;

  snap->classes_.reserve(kb.num_classes());
  for (kb::ClassId c = 0; c < static_cast<kb::ClassId>(kb.num_classes());
       ++c) {
    const kb::ClassSpec& spec = kb.cls(c);
    SnapshotClassInfo info;
    info.id = spec.id;
    info.name = spec.name;
    info.parent = spec.parent;
    snap->classes_.push_back(std::move(info));
    HashPod(&hash, spec.id);
    HashString(&hash, spec.name);
    HashPod(&hash, spec.parent);
  }

  snap->properties_.reserve(kb.num_properties());
  for (kb::PropertyId p = 0;
       p < static_cast<kb::PropertyId>(kb.num_properties()); ++p) {
    const kb::PropertySpec& spec = kb.property(p);
    SnapshotProperty prop;
    prop.id = spec.id;
    prop.cls = spec.cls;
    prop.name = spec.name;
    prop.type = spec.type;
    snap->properties_.push_back(std::move(prop));
    HashPod(&hash, spec.id);
    HashPod(&hash, spec.cls);
    HashString(&hash, spec.name);
    HashPod(&hash, static_cast<uint8_t>(spec.type));
  }

  snap->instances_of_class_.resize(kb.num_classes());
  snap->dict_ = std::make_shared<util::TokenDictionary>();
  const size_t num_shards = std::max<size_t>(1, options.num_shards);
  snap->shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    snap->shards_.push_back(
        std::make_unique<index::LabelIndex>(snap->dict_));
  }

  snap->entities_.reserve(kb.num_instances());
  for (kb::InstanceId i = 0;
       i < static_cast<kb::InstanceId>(kb.num_instances()); ++i) {
    const kb::Instance& inst = kb.instance(i);
    SnapshotEntity entity;
    entity.id = inst.id;
    entity.cls = inst.cls;
    entity.popularity = inst.popularity;
    entity.labels = inst.labels;
    entity.facts.reserve(inst.facts.size());
    for (const kb::Fact& fact : inst.facts) {
      entity.facts.push_back({fact.property, fact.value});
    }
    snap->num_facts_ += entity.facts.size();

    HashPod(&hash, inst.id);
    HashPod(&hash, inst.cls);
    HashPod(&hash, inst.popularity);
    for (const std::string& label : entity.labels) HashString(&hash, label);
    for (const SnapshotFact& fact : entity.facts) {
      HashPod(&hash, fact.property);
      HashString(&hash, kb::SerializeValue(fact.value));
    }

    if (inst.cls >= 0 &&
        inst.cls < static_cast<kb::ClassId>(snap->instances_of_class_.size())) {
      snap->instances_of_class_[inst.cls].push_back(inst.id);
    }
    index::LabelIndex& shard =
        *snap->shards_[static_cast<size_t>(inst.id) % num_shards];
    for (const std::string& label : entity.labels) {
      std::string normalized = util::NormalizeLabel(label);
      if (normalized.empty()) continue;
      auto& ids = snap->by_label_[normalized];
      if (ids.empty() || ids.back() != inst.id) ids.push_back(inst.id);
      shard.Add(static_cast<uint32_t>(inst.id), label);
    }
    snap->entities_.push_back(std::move(entity));
  }
  for (auto& shard : snap->shards_) shard->Build();

  // Per-class instance and fact counts for the class listing.
  for (auto& info : snap->classes_) {
    info.num_instances = snap->instances_of_class_[info.id].size();
    for (kb::InstanceId id : snap->instances_of_class_[info.id]) {
      info.num_facts += snap->entities_[id].facts.size();
    }
  }

  snap->content_hash_ = hash;
  return snap;
}

const SnapshotEntity* Snapshot::entity(kb::InstanceId id) const {
  if (id < 0 || id >= static_cast<kb::InstanceId>(entities_.size())) {
    return nullptr;
  }
  return &entities_[id];
}

const SnapshotProperty* Snapshot::property(kb::PropertyId id) const {
  if (id < 0 || id >= static_cast<kb::PropertyId>(properties_.size())) {
    return nullptr;
  }
  return &properties_[id];
}

const SnapshotClassInfo* Snapshot::FindClass(const std::string& name) const {
  for (const SnapshotClassInfo& info : classes_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const std::vector<kb::InstanceId>& Snapshot::InstancesOfClass(
    kb::ClassId cls) const {
  static const std::vector<kb::InstanceId> kEmpty;
  if (cls < 0 || cls >= static_cast<kb::ClassId>(instances_of_class_.size())) {
    return kEmpty;
  }
  return instances_of_class_[cls];
}

std::vector<kb::InstanceId> Snapshot::EntitiesByLabel(
    const std::string& label) const {
  auto it = by_label_.find(util::NormalizeLabel(label));
  if (it == by_label_.end()) return {};
  std::vector<kb::InstanceId> ids = it->second;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<SnapshotSearchHit> Snapshot::Search(const std::string& query,
                                                size_t k) const {
  std::vector<SnapshotSearchHit> out;
  if (k == 0) return out;
  // Collapse per-shard hits to the best score per entity, then order by
  // (score desc, id asc) — a deterministic merge independent of shard
  // iteration order.
  std::map<kb::InstanceId, double> best;
  for (const auto& shard : shards_) {
    for (const index::LabelHit& hit : shard->Search(query, k)) {
      const auto id = static_cast<kb::InstanceId>(hit.doc);
      auto [it, inserted] = best.emplace(id, hit.score);
      if (!inserted && hit.score > it->second) it->second = hit.score;
    }
  }
  out.reserve(best.size());
  for (const auto& [id, score] : best) out.push_back({id, score});
  std::stable_sort(out.begin(), out.end(),
                   [](const SnapshotSearchHit& a, const SnapshotSearchHit& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.id < b.id;
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace ltee::serve
