#ifndef LTEE_SERVE_SNAPSHOT_IO_H_
#define LTEE_SERVE_SNAPSHOT_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "kb/knowledge_base.h"
#include "serve/snapshot.h"

namespace ltee::serve {

/// Binary snapshot persistence — the read-optimized sibling of the TSV
/// format in kb/serialization. Layout (all integers little-endian):
///
///   8 bytes   magic "LTEESNP1"
///   u32       format version (currently 1)
///   u64       snapshot version (SnapshotOptions::version of the publish)
///   u64       FNV-1a checksum of the payload bytes
///   u64       payload size in bytes
///   payload   length-prefixed KB records: classes (name, parent),
///             properties (class, name, type, extra labels), instances
///             (class, popularity, labels, facts as kb::SerializeValue
///             strings, abstract tokens)
///
/// Load verifies magic, format version, payload size and checksum before
/// decoding a single record, so a truncated or bit-flipped file is
/// rejected instead of serving corrupt entities.

/// Serializes `kb` with publish version `version` into `path`. The write
/// is atomic: bytes go to `path.tmp` first and are renamed over `path`
/// only after a successful flush, so a concurrently starting server
/// never observes a half-written snapshot.
bool SaveSnapshotFile(const kb::KnowledgeBase& kb, uint64_t version,
                      const std::string& path, std::string* error = nullptr);

/// Reads a snapshot file back into a fresh KnowledgeBase, returning the
/// stored publish version through `version`. Returns false (with a
/// description in `error`) on any structural or checksum mismatch.
bool LoadSnapshotFile(const std::string& path, kb::KnowledgeBase* kb,
                      uint64_t* version, std::string* error = nullptr);

/// Convenience wrapper: load + Snapshot::Build with the stored version.
/// nullptr on failure.
std::shared_ptr<const Snapshot> LoadSnapshot(const std::string& path,
                                             size_t num_shards,
                                             std::string* error = nullptr);

}  // namespace ltee::serve

#endif  // LTEE_SERVE_SNAPSHOT_IO_H_
