#include "serve/snapshot_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "kb/serialization.h"

namespace ltee::serve {

namespace {

constexpr char kMagic[8] = {'L', 'T', 'E', 'E', 'S', 'N', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// -- little-endian primitive encoding -----------------------------------

template <typename T>
void PutPod(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutString(std::string* out, const std::string& s) {
  PutPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over the payload bytes.
class Reader {
 public:
  Reader(const std::string& bytes, std::string* error)
      : bytes_(bytes), error_(error) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  template <typename T>
  T Pod() {
    T v{};
    if (!Take(sizeof(T))) return v;
    std::memcpy(&v, bytes_.data() + pos_ - sizeof(T), sizeof(T));
    return v;
  }

  std::string String() {
    const uint32_t n = Pod<uint32_t>();
    if (!ok_ || !Take(n)) return {};
    return bytes_.substr(pos_ - n, n);
  }

 private:
  bool Take(size_t n) {
    if (!ok_) return false;
    if (bytes_.size() - pos_ < n) {
      ok_ = false;
      if (error_ != nullptr) *error_ = "truncated snapshot payload";
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::string& bytes_;
  std::string* error_;
  size_t pos_ = 0;
  bool ok_ = true;
};

std::string EncodePayload(const kb::KnowledgeBase& kb) {
  std::string out;
  PutPod<uint32_t>(&out, static_cast<uint32_t>(kb.num_classes()));
  for (kb::ClassId c = 0; c < static_cast<kb::ClassId>(kb.num_classes());
       ++c) {
    const kb::ClassSpec& spec = kb.cls(c);
    PutString(&out, spec.name);
    PutPod<int16_t>(&out, spec.parent);
  }
  PutPod<uint32_t>(&out, static_cast<uint32_t>(kb.num_properties()));
  for (kb::PropertyId p = 0;
       p < static_cast<kb::PropertyId>(kb.num_properties()); ++p) {
    const kb::PropertySpec& spec = kb.property(p);
    PutPod<int16_t>(&out, spec.cls);
    PutString(&out, spec.name);
    PutPod<uint8_t>(&out, static_cast<uint8_t>(spec.type));
    // labels[0] is the normalized name AddProperty regenerates; persist
    // only the extras so a reload reconstructs the identical spec.
    const uint32_t extras =
        spec.labels.empty() ? 0 : static_cast<uint32_t>(spec.labels.size() - 1);
    PutPod<uint32_t>(&out, extras);
    for (uint32_t i = 0; i < extras; ++i) PutString(&out, spec.labels[i + 1]);
  }
  PutPod<uint32_t>(&out, static_cast<uint32_t>(kb.num_instances()));
  for (const kb::Instance& inst : kb.instances()) {
    PutPod<int16_t>(&out, inst.cls);
    PutPod<double>(&out, inst.popularity);
    PutPod<uint32_t>(&out, static_cast<uint32_t>(inst.labels.size()));
    for (const std::string& label : inst.labels) PutString(&out, label);
    PutPod<uint32_t>(&out, static_cast<uint32_t>(inst.facts.size()));
    for (const kb::Fact& fact : inst.facts) {
      PutPod<int16_t>(&out, fact.property);
      PutString(&out, kb::SerializeValue(fact.value));
    }
    PutPod<uint32_t>(&out, static_cast<uint32_t>(inst.abstract_tokens.size()));
    for (const std::string& tok : inst.abstract_tokens) PutString(&out, tok);
  }
  return out;
}

bool DecodePayload(const std::string& payload, kb::KnowledgeBase* kb,
                   std::string* error) {
  Reader r(payload, error);
  const uint32_t num_classes = r.Pod<uint32_t>();
  for (uint32_t c = 0; r.ok() && c < num_classes; ++c) {
    std::string name = r.String();
    const auto parent = r.Pod<int16_t>();
    if (!r.ok()) return false;
    // A valid parent is -1 (root) or a previously decoded class id;
    // anything else would index out of bounds in Ancestors().
    if (parent < -1 || parent >= static_cast<int16_t>(c)) {
      if (error != nullptr) *error = "class parent out of range";
      return false;
    }
    kb->AddClass(std::move(name), parent);
  }
  const uint32_t num_properties = r.Pod<uint32_t>();
  for (uint32_t p = 0; r.ok() && p < num_properties; ++p) {
    const auto cls = r.Pod<int16_t>();
    std::string name = r.String();
    const auto type = r.Pod<uint8_t>();
    const uint32_t extras = r.Pod<uint32_t>();
    std::vector<std::string> extra_labels;
    extra_labels.reserve(extras);
    for (uint32_t i = 0; r.ok() && i < extras; ++i) {
      extra_labels.push_back(r.String());
    }
    if (!r.ok()) return false;
    if (cls < 0 || cls >= static_cast<int16_t>(num_classes)) {
      if (error != nullptr) *error = "property class out of range";
      return false;
    }
    if (type >= static_cast<uint8_t>(types::kNumDataTypes)) {
      if (error != nullptr) *error = "property data type out of range";
      return false;
    }
    kb->AddProperty(cls, std::move(name),
                    static_cast<types::DataType>(type),
                    std::move(extra_labels));
  }
  const uint32_t num_instances = r.Pod<uint32_t>();
  for (uint32_t i = 0; r.ok() && i < num_instances; ++i) {
    const auto cls = r.Pod<int16_t>();
    const double popularity = r.Pod<double>();
    const uint32_t num_labels = r.Pod<uint32_t>();
    std::vector<std::string> labels;
    labels.reserve(num_labels);
    for (uint32_t l = 0; r.ok() && l < num_labels; ++l) {
      labels.push_back(r.String());
    }
    if (!r.ok()) return false;
    if (cls < 0 || cls >= static_cast<int16_t>(num_classes)) {
      if (error != nullptr) *error = "instance class out of range";
      return false;
    }
    const kb::InstanceId id = kb->AddInstance(cls, std::move(labels),
                                              popularity);
    const uint32_t num_facts = r.Pod<uint32_t>();
    for (uint32_t f = 0; r.ok() && f < num_facts; ++f) {
      const auto property = r.Pod<int16_t>();
      const std::string encoded = r.String();
      if (!r.ok()) return false;
      if (property < 0 || property >= static_cast<int16_t>(num_properties)) {
        if (error != nullptr) *error = "fact property out of range";
        return false;
      }
      auto value = kb::DeserializeValue(encoded);
      if (!value.has_value()) {
        if (error != nullptr) *error = "undecodable fact value: " + encoded;
        return false;
      }
      kb->AddFact(id, property, std::move(*value));
    }
    const uint32_t num_tokens = r.Pod<uint32_t>();
    std::vector<std::string> tokens;
    tokens.reserve(num_tokens);
    for (uint32_t t = 0; r.ok() && t < num_tokens; ++t) {
      tokens.push_back(r.String());
    }
    if (!r.ok()) return false;
    if (!tokens.empty()) kb->SetAbstractTokens(id, std::move(tokens));
  }
  if (!r.ok()) return false;
  if (!r.AtEnd()) {
    if (error != nullptr) *error = "trailing bytes after snapshot payload";
    return false;
  }
  return true;
}

}  // namespace

bool SaveSnapshotFile(const kb::KnowledgeBase& kb, uint64_t version,
                      const std::string& path, std::string* error) {
  const std::string payload = EncodePayload(kb);
  std::string bytes;
  bytes.append(kMagic, sizeof(kMagic));
  PutPod<uint32_t>(&bytes, kFormatVersion);
  PutPod<uint64_t>(&bytes, version);
  PutPod<uint64_t>(&bytes, Fnv1a(payload));
  PutPod<uint64_t>(&bytes, static_cast<uint64_t>(payload.size()));
  bytes.append(payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " -> " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool LoadSnapshotFile(const std::string& path, kb::KnowledgeBase* kb,
                      uint64_t* version, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  constexpr size_t kHeaderSize =
      sizeof(kMagic) + sizeof(uint32_t) + 3 * sizeof(uint64_t);
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    if (error != nullptr) *error = path + ": not a snapshot file (bad magic)";
    return false;
  }
  size_t pos = sizeof(kMagic);
  const auto read_pod = [&bytes, &pos](auto* v) {
    std::memcpy(v, bytes.data() + pos, sizeof(*v));
    pos += sizeof(*v);
  };
  uint32_t format = 0;
  uint64_t snapshot_version = 0, checksum = 0, payload_size = 0;
  read_pod(&format);
  read_pod(&snapshot_version);
  read_pod(&checksum);
  read_pod(&payload_size);
  if (format != kFormatVersion) {
    if (error != nullptr) {
      *error = path + ": unsupported snapshot format version " +
               std::to_string(format);
    }
    return false;
  }
  if (bytes.size() - pos != payload_size) {
    if (error != nullptr) {
      *error = path + ": payload size mismatch (header says " +
               std::to_string(payload_size) + ", file has " +
               std::to_string(bytes.size() - pos) + ")";
    }
    return false;
  }
  const std::string payload = bytes.substr(pos);
  if (Fnv1a(payload) != checksum) {
    if (error != nullptr) *error = path + ": checksum mismatch";
    return false;
  }
  std::string decode_error;
  if (!DecodePayload(payload, kb, &decode_error)) {
    if (error != nullptr) *error = path + ": " + decode_error;
    return false;
  }
  if (version != nullptr) *version = snapshot_version;
  return true;
}

std::shared_ptr<const Snapshot> LoadSnapshot(const std::string& path,
                                             size_t num_shards,
                                             std::string* error) {
  kb::KnowledgeBase kb;
  uint64_t version = 0;
  if (!LoadSnapshotFile(path, &kb, &version, error)) return nullptr;
  return Snapshot::Build(kb, {.version = version, .num_shards = num_shards});
}

}  // namespace ltee::serve
