#ifndef LTEE_SERVE_SNAPSHOT_H_
#define LTEE_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "types/value.h"
#include "util/token_dictionary.h"

namespace ltee::serve {

/// One fact of a snapshot entity: the property id plus the typed value.
struct SnapshotFact {
  kb::PropertyId property = -1;
  types::Value value;
};

/// A read-optimized entity: dense copy of a kb::Instance with its facts.
struct SnapshotEntity {
  kb::InstanceId id = -1;
  kb::ClassId cls = -1;
  double popularity = 0.0;
  std::vector<std::string> labels;
  std::vector<SnapshotFact> facts;
};

/// Per-class summary precomputed at build time for the class listing.
struct SnapshotClassInfo {
  kb::ClassId id = -1;
  std::string name;
  kb::ClassId parent = -1;
  size_t num_instances = 0;
  size_t num_facts = 0;
};

/// Property metadata needed to render facts.
struct SnapshotProperty {
  kb::PropertyId id = -1;
  kb::ClassId cls = -1;
  std::string name;
  types::DataType type = types::DataType::kText;
};

/// A ranked label-search hit.
struct SnapshotSearchHit {
  kb::InstanceId id = -1;
  double score = 0.0;
};

struct SnapshotOptions {
  /// Monotonically increasing publish version stamped into the snapshot
  /// (and into every response served from it).
  uint64_t version = 1;
  /// Number of inverted-index shards the label search fans out over.
  /// Entities land in shard `id % num_shards`.
  size_t num_shards = 4;
};

/// An immutable, versioned, checksummed read-optimized view of a
/// kb::KnowledgeBase.
///
/// Built once from a finished KB (the KB is copied into dense arrays, so
/// the source may be mutated or destroyed afterwards), then shared
/// read-only between any number of query threads — every accessor is
/// const and the object holds no mutable state, which is what makes the
/// RCU-style `shared_ptr` swap in QueryEngine safe without reader locks.
///
/// Label search runs over `num_shards` independent index::LabelIndex
/// shards sharing one snapshot-private util::TokenDictionary; shard
/// results are merged by (score desc, id asc). IDF is computed per shard,
/// so scores of the same label can differ slightly across shard counts —
/// ranking within a shard is exact, cross-shard ordering is approximate
/// (documented trade-off: shards build and search independently).
///
/// `content_hash()` is a deterministic FNV-1a digest of the logical
/// content (classes, properties, entities, facts, in id order) — two
/// snapshots built from equal KBs hash equal regardless of version.
class Snapshot {
 public:
  /// Builds a snapshot from `kb`. Never fails: an empty KB yields an
  /// empty, still-servable snapshot.
  static std::shared_ptr<const Snapshot> Build(const kb::KnowledgeBase& kb,
                                               const SnapshotOptions& options);

  uint64_t version() const { return version_; }
  uint64_t content_hash() const { return content_hash_; }
  size_t num_shards() const { return shards_.size(); }

  size_t num_entities() const { return entities_.size(); }
  size_t num_classes() const { return classes_.size(); }
  size_t num_properties() const { return properties_.size(); }
  /// Total fact count across all entities.
  size_t num_facts() const { return num_facts_; }

  /// Entity by dense id; nullptr when out of range.
  const SnapshotEntity* entity(kb::InstanceId id) const;
  const SnapshotProperty* property(kb::PropertyId id) const;
  const std::vector<SnapshotClassInfo>& classes() const { return classes_; }

  /// Class lookup by exact name; nullptr when unknown.
  const SnapshotClassInfo* FindClass(const std::string& name) const;
  /// Precomputed instance list of a class (direct instances only).
  const std::vector<kb::InstanceId>& InstancesOfClass(kb::ClassId cls) const;

  /// Entities whose normalized label equals util::NormalizeLabel(label),
  /// in id order; empty when none match.
  std::vector<kb::InstanceId> EntitiesByLabel(const std::string& label) const;

  /// Ranked label/token search across all shards: top `k` by
  /// (score desc, id asc), duplicates collapsed to their best score.
  std::vector<SnapshotSearchHit> Search(const std::string& query,
                                        size_t k) const;

 private:
  Snapshot() = default;

  uint64_t version_ = 0;
  uint64_t content_hash_ = 0;
  size_t num_facts_ = 0;
  std::vector<SnapshotClassInfo> classes_;
  std::vector<SnapshotProperty> properties_;
  std::vector<SnapshotEntity> entities_;
  std::vector<std::vector<kb::InstanceId>> instances_of_class_;
  std::unordered_map<std::string, std::vector<kb::InstanceId>> by_label_;
  std::shared_ptr<util::TokenDictionary> dict_;
  std::vector<std::unique_ptr<index::LabelIndex>> shards_;
};

}  // namespace ltee::serve

#endif  // LTEE_SERVE_SNAPSHOT_H_
