#ifndef LTEE_SERVE_KB_ENDPOINTS_H_
#define LTEE_SERVE_KB_ENDPOINTS_H_

#include "obsv/http_server.h"
#include "serve/query_engine.h"

namespace ltee::serve {

/// Registers the KB query endpoints on `server` (must not have started
/// yet; `engine` must outlive it):
///
///   GET /kb/entity?id=N        entity by dense id
///   GET /kb/entity?label=L     entities by exact normalized label
///   GET /kb/search?q=Q[&k=K]   ranked label search
///   GET /kb/classes            class listing with counts
///   GET /kb/classes?name=C[&limit=N]  instances of one class
///   GET /kb/snapshot           snapshot version / hash / counts
///
/// All responses are application/json; missing required parameters are
/// 400, unknown ids/labels/classes 404, non-GET methods 405 (handled by
/// HttpServer itself). Each request increments
/// `ltee.serve.requests`, tracks `ltee.serve.requests.in_flight`
/// and observes its latency into the `ltee.serve.request.ms` histogram.
void RegisterKbEndpoints(obsv::HttpServer* server, QueryEngine* engine);

}  // namespace ltee::serve

#endif  // LTEE_SERVE_KB_ENDPOINTS_H_
