#include "serve/kb_endpoints.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "util/metrics.h"

namespace ltee::serve {

namespace {

/// Shared per-request accounting: in-flight gauge, request counter, and
/// the latency histogram every handler observes into.
struct EndpointMetrics {
  util::Counter& requests =
      util::Metrics().GetCounter("ltee.serve.requests");
  util::Gauge& in_flight =
      util::Metrics().GetGauge("ltee.serve.requests.in_flight");
  util::Histogram& latency_ms = util::Metrics().GetHistogram(
      "ltee.serve.request.ms", util::ExponentialBuckets(0.01, 4.0, 10));
};

obsv::HttpResponse ToResponse(QueryResult result) {
  obsv::HttpResponse response;
  response.status = result.status;
  response.content_type = "application/json";
  response.body = std::move(result.body);
  return response;
}

/// Wraps a handler with the request accounting.
template <typename Fn>
obsv::HttpHandler Instrumented(Fn fn) {
  return [fn](const obsv::HttpRequest& request) {
    static EndpointMetrics metrics;
    metrics.requests.Increment();
    metrics.in_flight.Add(1.0);
    const auto start = std::chrono::steady_clock::now();
    obsv::HttpResponse response = ToResponse(fn(request));
    metrics.latency_ms.Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    metrics.in_flight.Add(-1.0);
    return response;
  };
}

/// Parses a non-negative size parameter; `fallback` when absent or
/// unparsable.
size_t SizeParam(const std::string& query, const std::string& key,
                 size_t fallback) {
  const std::string raw = obsv::QueryParam(query, key);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') return fallback;
  return static_cast<size_t>(v);
}

}  // namespace

void RegisterKbEndpoints(obsv::HttpServer* server, QueryEngine* engine) {
  server->Handle(
      "/kb/entity", Instrumented([engine](const obsv::HttpRequest& request) {
        const std::string id = obsv::QueryParam(request.query, "id");
        if (!id.empty()) {
          char* end = nullptr;
          const long long parsed = std::strtoll(id.c_str(), &end, 10);
          if (end == id.c_str() || *end != '\0') {
            return QueryResult{400, "{\"error\":\"id must be an integer\"}"};
          }
          return engine->EntityById(parsed);
        }
        const std::string label = obsv::QueryParam(request.query, "label");
        if (!label.empty()) return engine->EntityByLabel(label);
        return QueryResult{400,
                           "{\"error\":\"need an id or label parameter\"}"};
      }));
  server->Handle(
      "/kb/search", Instrumented([engine](const obsv::HttpRequest& request) {
        const std::string q = obsv::QueryParam(request.query, "q");
        if (q.empty()) {
          return QueryResult{400, "{\"error\":\"need a q parameter\"}"};
        }
        return engine->Search(q, SizeParam(request.query, "k", 10));
      }));
  server->Handle(
      "/kb/classes", Instrumented([engine](const obsv::HttpRequest& request) {
        const std::string name = obsv::QueryParam(request.query, "name");
        if (name.empty()) return engine->Classes();
        return engine->ClassInstances(
            name, SizeParam(request.query, "limit", 50));
      }));
  server->Handle("/kb/snapshot",
                 Instrumented([engine](const obsv::HttpRequest&) {
                   return engine->SnapshotInfo();
                 }));
}

}  // namespace ltee::serve
