#ifndef LTEE_SERVE_RESULT_CACHE_H_
#define LTEE_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace ltee::serve {

/// Sharded string-keyed LRU cache for rendered query results.
///
/// Keys hash to one of `num_shards` independent shards, each protected by
/// its own mutex, so concurrent lookups for different keys rarely
/// contend. Each shard holds at most `capacity_per_shard` entries and
/// evicts least-recently-used. Values are copied out on Get — entries
/// are small rendered JSON bodies, and copying keeps the lock section
/// trivial.
///
/// The cache itself knows nothing about snapshot versions: callers embed
/// the version in the key, which makes stale entries unreachable the
/// moment a new snapshot is published (they age out via LRU).
template <typename V>
class ShardedLruCache {
 public:
  ShardedLruCache(size_t num_shards, size_t capacity_per_shard)
      : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copies the cached value for `key` into `*out` and marks it
  /// most-recently-used. False on miss.
  bool Get(const std::string& key, V* out) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(key);
    if (it == shard.by_key.end()) return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->second;
    return true;
  }

  /// Inserts or refreshes `key`, evicting the shard's LRU entry when at
  /// capacity.
  void Put(const std::string& key, V value) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(key);
    if (it != shard.by_key.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= capacity_) {
      shard.by_key.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (util::Counter* counter =
              eviction_counter_.load(std::memory_order_acquire);
          counter != nullptr) {
        counter->Increment();
      }
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.by_key[key] = shard.lru.begin();
  }

  /// Total entries across shards (approximate under concurrency).
  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.lru.size();
    }
    return n;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_; }

  /// Estimated heap footprint of the cached entries: payload bytes of
  /// every key (twice — the LRU node and the index key are separate
  /// strings) and value, plus a fixed per-entry estimate for the list
  /// and hash-map node overhead. String values count their character
  /// buffers; other value types count sizeof(V). An estimate for
  /// reconciliation against obsv::memtrack accounting, not an exact
  /// figure — short-string-optimized keys make it an overcount, node
  /// bookkeeping an undercount.
  size_t ApproxFootprintBytes() const {
    // list node (prev/next + pair) + unordered_map node (hash, next,
    // key/iterator pair) + bucket share, beyond the string/value payloads
    // counted below.
    constexpr size_t kPerEntryOverhead =
        2 * sizeof(void*) + sizeof(std::pair<std::string, V>) +
        sizeof(std::string) + 4 * sizeof(void*);
    size_t bytes = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, value] : shard.lru) {
        bytes += kPerEntryOverhead + 2 * key.capacity();
        if constexpr (std::is_same_v<V, std::string>) {
          bytes += value.capacity();
        } else {
          bytes += sizeof(V);
        }
      }
    }
    return bytes;
  }

  /// Entries evicted (capacity pressure, not refreshes) over the cache's
  /// lifetime. Invariant for reconciliation: insertions - evictions ==
  /// size(), where insertions is the number of Put calls on fresh keys.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Mirrors every eviction into a registry counter (e.g.
  /// ltee.serve.cache.evictions) so /metrics and /stats see cache
  /// pressure. Pass nullptr to detach. The counter must outlive the
  /// cache.
  void SetEvictionCounter(util::Counter* counter) {
    eviction_counter_.store(counter, std::memory_order_release);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<std::string, V>> lru;
    std::unordered_map<std::string,
                       typename std::list<std::pair<std::string, V>>::iterator>
        by_key;
  };

  Shard& ShardOf(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> evictions_{0};
  std::atomic<util::Counter*> eviction_counter_{nullptr};
};

}  // namespace ltee::serve

#endif  // LTEE_SERVE_RESULT_CACHE_H_
