#ifndef LTEE_ROWCLUSTER_ROW_FEATURES_H_
#define LTEE_ROWCLUSTER_ROW_FEATURES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/label_index.h"
#include "kb/knowledge_base.h"
#include "matching/schema_mapping.h"
#include "types/value.h"
#include "util/token_dictionary.h"
#include "webtable/prepared_corpus.h"
#include "webtable/web_table.h"

namespace ltee::rowcluster {

/// One implicit property-value combination derived for a table (Section
/// 3.2, IMPLICIT_ATT): a fact that holds for most rows of the table without
/// being stated in any cell, with the fraction of supporting rows as score.
struct ImplicitAttribute {
  kb::PropertyId property = kb::kInvalidProperty;
  types::Value value;
  double score = 0.0;
};

/// One cell value extracted from a matched column, normalized to the KB
/// schema, with its column of origin (provenance for the fusion scorers).
struct RowValue {
  kb::PropertyId property = kb::kInvalidProperty;
  int column = -1;
  types::Value value;
};

/// Precomputed per-row features consumed by the similarity metrics and by
/// the downstream entity creation / new detection components. Token fields
/// hold ids of the ClassRowSet's shared dictionary.
struct RowFeature {
  webtable::RowRef ref;
  /// Dense index of the row's table within the ClassRowSet.
  int table_index = -1;
  std::string raw_label;
  std::string normalized_label;
  /// Ordered dictionary token ids of the label (duplicates kept).
  std::vector<uint32_t> label_tokens;
  /// Binary bag-of-words over all cells of the row: sorted, deduplicated
  /// dictionary token ids.
  std::vector<uint32_t> bow;
  /// Values of matched columns, normalized to the KB schema.
  std::vector<RowValue> values;

  /// First value matched to `property`, or nullptr.
  const types::Value* ValueOf(kb::PropertyId property) const;
};

/// All rows of one class: every row of every table matched to the class,
/// with per-table implicit attributes and PHI vectors.
struct ClassRowSet {
  kb::ClassId cls = kb::kInvalidClass;
  /// Dictionary resolving the token ids stored in the rows.
  std::shared_ptr<util::TokenDictionary> dict;
  std::vector<webtable::TableId> tables;
  std::vector<RowFeature> rows;
  /// Implicit attributes per table (indexed by table_index).
  std::vector<std::vector<ImplicitAttribute>> table_implicit;
  /// PHI label-correlation vector per table (indexed by table_index),
  /// sparse over label ids.
  std::vector<std::unordered_map<uint32_t, double>> table_phi;
};

/// Options of the feature extraction.
struct RowFeatureOptions {
  /// Candidates per row label for implicit-attribute derivation.
  size_t implicit_candidates_per_row = 5;
  double implicit_label_similarity = 0.82;
  /// Minimum fraction of rows sharing a property-value combination for it
  /// to become an implicit attribute of the table.
  double implicit_score_threshold = 0.5;
  /// Cap on rows per table considered for PHI pair counting (cost guard).
  size_t phi_max_rows_per_table = 60;
};

/// Builds the row set of `cls` from every table the schema mapping matched
/// to that class, reading normalized labels, token ids and typed values
/// from the prepared corpus. `kb_index` is the label index over KB
/// instances used for implicit-attribute candidate lookup; it must share
/// the prepared corpus's token dictionary.
ClassRowSet BuildClassRowSet(const webtable::PreparedCorpus& prepared,
                             const matching::SchemaMapping& mapping,
                             kb::ClassId cls, const kb::KnowledgeBase& kb,
                             const index::LabelIndex& kb_index,
                             const RowFeatureOptions& options = {});

/// Copy of `rows` keeping only the rows with `keep[i]` set. Table-level
/// structures (implicit attributes, PHI vectors) are preserved; table
/// indices of the kept rows stay valid.
ClassRowSet FilterRows(const ClassRowSet& rows, const std::vector<bool>& keep);

}  // namespace ltee::rowcluster

#endif  // LTEE_ROWCLUSTER_ROW_FEATURES_H_
